"""Micro-benchmarks for the hot substrate operations.

These track the costs that dominate experiment wall time, following the
profile-first methodology of the HPC guides: the simulator round loop, the
conflict relation, the Linial polynomial step, and the validators.
"""

import random

from repro.core import ColorSpace, degree_plus_one_instance, validate_ldc
from repro.core.conflict import conflict_weight, psi_g
from repro.graphs import random_regular
from repro.algorithms.linial import poly_coeffs, poly_eval, run_linial
from repro.algorithms.mt_selection import NodeType, seeded_family
from repro.algorithms.congest_coloring import congest_delta_plus_one


def test_bench_simulator_linial_round(benchmark):
    g = random_regular(400, 8, seed=1)
    benchmark(lambda: run_linial(g))


def test_bench_conflict_weight(benchmark):
    rng = random.Random(0)
    a = sorted(rng.sample(range(10_000), 500))
    b = sorted(rng.sample(range(10_000), 500))
    benchmark(lambda: conflict_weight(a, b, 3))


def test_bench_psi_relation(benchmark):
    rng = random.Random(1)
    k1 = [tuple(sorted(rng.sample(range(200), 12))) for _ in range(24)]
    k2 = [tuple(sorted(rng.sample(range(200), 12))) for _ in range(24)]
    benchmark(lambda: psi_g(k1, k2, 4, 3))


def test_bench_poly_eval(benchmark):
    coeffs = poly_coeffs(123456, 97, 3)

    def work():
        return sum(poly_eval(coeffs, x, 97) for x in range(97))

    benchmark(work)


def test_bench_seeded_family(benchmark):
    t = NodeType(17, tuple(range(400)))
    benchmark(lambda: seeded_family(t, 24, 16, seed=3))


def test_bench_validator(benchmark):
    g = random_regular(400, 10, seed=2)
    inst = degree_plus_one_instance(g)
    res, _m, _rep = congest_delta_plus_one(g)
    benchmark(lambda: validate_ldc(inst, res))


def test_bench_congest_pipeline_small(benchmark):
    g = random_regular(80, 10, seed=3)
    benchmark.pedantic(
        lambda: congest_delta_plus_one(g), rounds=1, iterations=1
    )
