"""Compiled vs vectorized Linial at large n (`BENCH_compiled.json`).

The compiled backend's claim (:mod:`repro.sim.compiled`) is a large-n
single-instance claim, complementary to the batching claim of
``bench_batch.py``: on one big graph, the numba-jitted round kernel —
per-node digit extraction, Horner evaluation, and neighbor-scan
collision counting fused into one thread-parallel pass — must beat the
vectorized engine's materialized ``(n, q)`` grid evaluation, while
producing the *identical* coloring, metrics, palette, and per-round
accounting rows.  This script measures exactly that — equivalence
(including :func:`repro.obs.compare_round_accounting`) asserted before
any timing is trusted — and records the result:

    python benchmarks/bench_compiled.py --out BENCH_compiled.json

The acceptance shape is the 100k-node Linial sweep cell (random
8-regular, seed 0, 20-bit random IDs); the bar is >= 5x over the
vectorized engine *when numba is available*.  Without numba the
compiled backend runs its bit-identical numpy fallback — the record
then carries ``numba_available: false`` plus the registry's
``compiled: unavailable`` reason, and no speedup is demanded (graceful
degradation is the contract; equivalence is still asserted).
``--min-speedup`` turns the bar into an exit code for CI-style gating
(default 0: record, don't gate — CI hardware varies, and numba may be
absent).

A small smoke version runs under ``pytest benchmarks/ --benchmark-only``
like the other bench files.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import graphs  # noqa: E402
from repro.obs import (  # noqa: E402
    ENGINE_COMPILED,
    ENGINE_VECTORIZED,
    RunRecorder,
    compare_round_accounting,
)
from repro.sim.backends import get_backend  # noqa: E402
from repro.sim.compiled import NUMBA_AVAILABLE, linial_compiled  # noqa: E402
from repro.sim.vectorized import linial_vectorized  # noqa: E402


def build_instance(n: int, degree: int, seed: int = 0, bits: int = 20):
    """One random regular graph with random-ID initial colors.

    IDs are sampled without replacement from ``range(2**bits)`` with the
    space's maximum pinned in (the paper's model: Linial colors down
    from an ID space, not an n-sized palette) — the same regime as the
    sweep grids and ``bench_batch.py``.
    """
    if n > (1 << bits):
        raise SystemExit(f"n={n} exceeds the {bits}-bit ID space")
    g = graphs.random_regular(n, degree, seed=seed)
    rng = random.Random(seed * 7919 + 1)
    ids = rng.sample(range(1 << bits), n)
    ids[0] = (1 << bits) - 1
    init = dict(zip(sorted(g.nodes()), ids))
    return g, init


def run_vectorized(g, init):
    return linial_vectorized(g, initial_colors=init)


def run_compiled(g, init):
    return linial_compiled(g, initial_colors=init)


def measure(
    n: int, degree: int, seed: int = 0, bits: int = 20, repeats: int = 3
) -> dict:
    """Time both engines on the same cell; best-of-``repeats``.

    Bit-identity — outputs, metrics, palette, and per-round accounting
    rows — is asserted before any timing is reported: a fast wrong
    kernel is not a result.
    """
    g, init = build_instance(n, degree, seed, bits)

    vec_rec = RunRecorder(engine=ENGINE_VECTORIZED)
    cpl_rec = RunRecorder(engine=ENGINE_COMPILED)
    vres, vm, vpal = linial_vectorized(g, initial_colors=init, recorder=vec_rec)
    cres, cm, cpal = linial_compiled(g, initial_colors=init, recorder=cpl_rec)
    assert cres.assignment == vres.assignment, "outputs differ"
    assert cm.summary() == vm.summary(), "metrics differ"
    assert cpal == vpal, "palettes differ"
    cmp = compare_round_accounting(vec_rec.record, cpl_rec.record)
    assert cmp["accounting_equal"], f"per-round accounting differs: {cmp}"

    vectorized_s = min(_timed(run_vectorized, g, init) for _ in range(repeats))
    compiled_s = min(_timed(run_compiled, g, init) for _ in range(repeats))
    spec = get_backend("compiled")
    return {
        "bench": "linial compiled vs vectorized (single large instance)",
        "n": n,
        "degree": degree,
        "id_bits": bits,
        "seed": seed,
        "repeats": repeats,
        "rounds": vm.rounds,
        "palette": vpal,
        "numba_available": NUMBA_AVAILABLE,
        "compiled_backend_status": (
            "available"
            if spec.available
            else f"unavailable ({spec.unavailable_reason})"
        ),
        "vectorized_s": vectorized_s,
        "compiled_s": compiled_s,
        "speedup": vectorized_s / compiled_s if compiled_s else float("inf"),
    }


def _timed(fn, g, init) -> float:
    t0 = time.perf_counter()
    fn(g, init)
    return time.perf_counter() - t0


def test_bench_compiled_smoke(benchmark):
    """pytest-benchmark entry: a small cell, equivalence still asserted."""
    g, init = build_instance(2000, 8, seed=7)
    vres, vm, vpal = run_vectorized(g, init)
    cres, cm, cpal = benchmark.pedantic(
        run_compiled, args=(g, init), rounds=1, iterations=1
    )
    assert cres.assignment == vres.assignment
    assert (cm.summary(), cpal) == (vm.summary(), vpal)
    benchmark.extra_info["experiment"] = "compiled vs vectorized Linial (smoke)"
    benchmark.extra_info["numba_available"] = NUMBA_AVAILABLE


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000,
                        help="nodes (acceptance shape: 100k)")
    parser.add_argument("--degree", type=int, default=8)
    parser.add_argument("--bits", type=int, default=20,
                        help="ID-space width; initial colors are random "
                             "IDs from range(2**bits)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; best-of is reported")
    parser.add_argument("--out", default="BENCH_compiled.json",
                        help="where to write the JSON record")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit nonzero below this speedup when numba "
                             "is available (0 = no gate; never gates the "
                             "numpy fallback)")
    args = parser.parse_args(argv)

    record = measure(
        args.n, args.degree, seed=args.seed, bits=args.bits,
        repeats=args.repeats,
    )
    Path(args.out).write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    mode = "numba" if record["numba_available"] else "numpy fallback"
    print(
        f"n={record['n']} d={record['degree']} "
        f"({record['id_bits']}-bit IDs, {record['rounds']} rounds): "
        f"vectorized {record['vectorized_s']:.3f}s vs compiled[{mode}] "
        f"{record['compiled_s']:.3f}s — {record['speedup']:.2f}x; "
        f"wrote {args.out}"
    )
    if not record["numba_available"]:
        print(
            "note: compiled backend reports "
            f"{record['compiled_backend_status']}; speedup bar waived, "
            "bit-identical equivalence still asserted"
        )
        return 0
    if args.min_speedup and record["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {record['speedup']:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
