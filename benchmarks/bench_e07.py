"""Benchmark E07 — regenerates Theorem 1.1 condition threshold (figure)."""

from repro.experiments.e07_threshold import run


def test_bench_e07(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
