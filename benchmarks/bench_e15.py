"""Benchmark E15 — regenerates the neighborhood-graph lower-bound table."""

from repro.experiments.e15_lowerbound import run


def test_bench_e15(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
