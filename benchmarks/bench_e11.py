"""Benchmark E11 — regenerates Section 1.1 regime crossovers (figure)."""

from repro.experiments.e11_crossover import run


def test_bench_e11(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
