"""Benchmark grid: every (Delta+1)-capable algorithm on one standard graph.

One timed row per algorithm so `--benchmark-only` output doubles as the
performance ledger of the conformance grid (tests/test_conformance_grid.py
checks correctness; this file tracks cost).

Every row is driven through :func:`repro.experiments.sweep.run_sweep` —
the same cached, recomputable cell machinery the experiment drivers use —
so the spec (family, params, algorithm) of each timed run is recorded in
the benchmark's extra_info and reproducible from it.
"""

import pytest

from repro.experiments.sweep import SweepCell, run_sweep

FAMILY = "random_regular"
FAMILY_PARAMS = {"n": 96, "degree": 12, "seed": 777}

ALGORITHMS = [
    ("thm14", True),
    ("thm13", True),
    ("classic", False),
    ("classic_vectorized", False),
    ("linear", True),
    ("bar16", True),
    ("randomized", False),
    ("mis", True),
    ("greedy_vectorized", False),
    ("linial_vectorized", False),
]


@pytest.mark.parametrize(
    "algorithm,single_shot", ALGORITHMS, ids=[a for a, _ in ALGORITHMS]
)
def test_bench_algorithm(benchmark, algorithm, single_shot):
    cell = SweepCell.make(FAMILY, FAMILY_PARAMS, algorithm)

    def once():
        # no cache dir: each timed iteration genuinely recomputes the cell
        return run_sweep([cell], cache_dir=None, workers=1)[0]

    if single_shot:
        result = benchmark.pedantic(once, rounds=1, iterations=1)
    else:
        result = benchmark(once)
    assert result.data["valid"], f"{algorithm} produced an invalid coloring"
    benchmark.extra_info["spec"] = result.data["key"]
    benchmark.extra_info["colors"] = result.data["colors"]
    if result.data["metrics"]:
        benchmark.extra_info["rounds"] = result.data["metrics"]["rounds"]
