"""Benchmark grid: every (Delta+1)-capable algorithm on one standard graph.

One timed row per algorithm so `--benchmark-only` output doubles as the
performance ledger of the conformance grid (tests/test_conformance_grid.py
checks correctness; this file tracks cost).
"""

import pytest

from repro.core import degree_plus_one_instance, validate_proper_coloring
from repro.graphs import random_regular

GRAPH = random_regular(96, 12, seed=777)


def _check(res):
    validate_proper_coloring(GRAPH, res).raise_if_invalid()
    return res


def test_bench_thm14(benchmark):
    from repro.algorithms import congest_delta_plus_one

    res = benchmark.pedantic(
        lambda: congest_delta_plus_one(GRAPH)[0], rounds=1, iterations=1
    )
    _check(res)


def test_bench_thm13(benchmark):
    from repro.algorithms import solve_list_arbdefective

    inst = degree_plus_one_instance(GRAPH)
    res = benchmark.pedantic(
        lambda: solve_list_arbdefective(inst)[0], rounds=1, iterations=1
    )
    _check(res)


def test_bench_classic(benchmark):
    from repro.algorithms import classic_delta_plus_one

    res = benchmark(lambda: classic_delta_plus_one(GRAPH)[0])
    _check(res)


def test_bench_classic_vectorized(benchmark):
    from repro.sim.vectorized import classic_delta_plus_one_vectorized

    res = benchmark(lambda: classic_delta_plus_one_vectorized(GRAPH)[0])
    _check(res)


def test_bench_linear_in_delta(benchmark):
    from repro.algorithms import linear_in_delta_coloring

    res = benchmark.pedantic(
        lambda: linear_in_delta_coloring(GRAPH)[0], rounds=1, iterations=1
    )
    _check(res)


def test_bench_barenboim(benchmark):
    from repro.algorithms import barenboim_coloring

    res = benchmark.pedantic(
        lambda: barenboim_coloring(GRAPH)[0], rounds=1, iterations=1
    )
    _check(res)


def test_bench_randomized(benchmark):
    from repro.algorithms import randomized_list_coloring

    inst = degree_plus_one_instance(GRAPH)
    res = benchmark(lambda: randomized_list_coloring(inst, seed=1)[0])
    _check(res)


def test_bench_mis_product(benchmark):
    from repro.algorithms.mis import coloring_via_mis

    res = benchmark.pedantic(
        lambda: coloring_via_mis(GRAPH, seed=1)[0], rounds=1, iterations=1
    )
    _check(res)


def test_bench_greedy_sequential(benchmark):
    from repro.algorithms import greedy_list_coloring

    inst = degree_plus_one_instance(GRAPH)
    res = benchmark(lambda: greedy_list_coloring(inst))
    _check(res)
