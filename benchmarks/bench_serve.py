"""Serving daemon under load: latency, RPS, equivalence (`BENCH_serve.json`).

The serving claim behind :mod:`repro.serve` is five claims, and this
script measures all of them in one record:

* **equivalence** — every coloring the daemon serves is bit-identical
  (assignment, palette, rounds, total bits) to what the offline batched
  engine :func:`~repro.sim.batch.linial_vectorized_batch` produces for
  the same pinned request set.  Asserted before any timing is reported;
  a fast wrong server is not a result.
* **throughput** — under ≥1000 concurrent synthetic clients the daemon
  sustains its RPS with bounded tail latency; the record carries
  client-observed p50/p90/p99 plus the scheduler's own queue/service
  split and occupancy profile.
* **resilience** — a burst mixing crash-stop
  :class:`~repro.faults.FaultPlan` requests with clean ones must evict
  every halted instance (``status="halted"``) while every clean sibling
  still serves a valid coloring.
* **overload** — offered load far beyond capacity: the unbounded-queue
  baseline converts the excess into latency collapse for everyone,
  while the bounded-queue admission controller (``max_queue``) holds
  admitted-request p99 inside the configured SLO and reports the honest
  shed rate — every response lands in an overload-legal status, every
  admitted coloring stays bit-identical to the offline engine.
* **chaos** — mid-burst disconnects, slow readers, and oversized lines
  run *concurrently* with a clean cohort: the daemon must answer every
  clean request with a valid, offline-identical coloring, answer
  oversized lines with an ``error`` naming the limit, survive every
  disconnect, and still shut down cleanly (zero hangs).

Run it the way CI does::

    python benchmarks/bench_serve.py --out BENCH_serve.json

The committed ``BENCH_serve.json`` was produced at the default shape
(1000 clients x 3 requests, max_batch 64).  A small smoke version runs
under ``pytest benchmarks/ --benchmark-only`` like the other bench
files.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(_SRC))

from repro.obs import quantile  # noqa: E402
from repro.serve import (  # noqa: E402
    OVERLOAD_STATUSES,
    ColoringServer,
    ServeClient,
    ServeConfig,
    encode_line,
    fire_traffic,
    synth_requests,
)
from repro.sim import linial_vectorized_batch  # noqa: E402

#: The crash-stop adversary the resilience run mixes in: every node
#: crashes in round 0 and never recovers, so the instance must halt.
CRASH_PLAN = {
    "seed": 5,
    "p_crash": 1.0,
    "recovery_rounds": None,
    "crash_horizon": 1,
}


async def _serve_set(requests, *, clients: int, max_batch: int):
    """Start a daemon, fire ``requests`` from ``clients`` connections,
    return ``(TrafficReport, scheduler stats)`` after a clean stop."""
    server = ColoringServer(ServeConfig(max_batch=max_batch))
    await server.start()
    try:
        report = await fire_traffic(
            "127.0.0.1", server.port, requests, clients=clients
        )
        stats = server.batcher.stats()
    finally:
        await server.stop()
    return report, stats


def equivalence_run(seed: int, count: int, max_batch: int) -> dict:
    """Serve a pinned request set and diff it against the offline engine.

    Raises AssertionError on the first divergent request — the bench
    record only ever contains a passing equivalence block.
    """
    requests = synth_requests(seed, count)
    report, _ = asyncio.run(
        _serve_set(requests, clients=min(32, count) or 1, max_batch=max_batch)
    )
    graphs = [r.build_graph() for r in requests]
    offline = linial_vectorized_batch(
        graphs, initial_colors=[r.initial_colors for r in requests]
    )
    for request, (result, metrics, palette) in zip(requests, offline):
        served = report.response_for(request.request_id)
        assert served.status == "ok", (
            f"{request.request_id}: served status {served.status}"
        )
        assert served.assignment() == result.assignment, (
            f"{request.request_id}: served coloring differs from offline"
        )
        assert served.palette == palette, f"{request.request_id}: palette"
        assert served.rounds == metrics.rounds, f"{request.request_id}: rounds"
        assert served.total_bits == metrics.total_bits, (
            f"{request.request_id}: total_bits"
        )
    return {"requests": count, "seed": seed, "bit_identical": True}


def throughput_run(
    seed: int, clients: int, requests_per_client: int, max_batch: int
) -> dict:
    """The headline load test: ``clients`` concurrent connections."""
    requests = synth_requests(seed, clients * requests_per_client)
    t0 = time.perf_counter()
    report, stats = asyncio.run(
        _serve_set(requests, clients=clients, max_batch=max_batch)
    )
    wall = time.perf_counter() - t0
    counts = report.status_counts()
    assert counts.get("ok") == len(requests), f"non-ok responses: {counts}"
    invalid = [r for r in report.responses if r.valid is not True]
    assert not invalid, f"{len(invalid)} served colorings failed validation"
    lat = sorted(report.latencies)
    return {
        "clients": clients,
        "requests": len(requests),
        "burst_wall_s": report.wall_seconds,
        "wall_s_incl_startup": wall,
        "rps": report.rps,
        "ok_rps": report.ok_rps,
        "latency_ms": {
            "p50": quantile(lat, 0.50) * 1000.0,
            "p90": quantile(lat, 0.90) * 1000.0,
            "p99": quantile(lat, 0.99) * 1000.0,
            "max": lat[-1] * 1000.0,
        },
        "scheduler": {
            "rounds": stats["round_index"],
            "max_batch": stats["max_batch"],
            "occupancy": stats["occupancy_stats"],
            "queue_latency": stats["latency"]["queue"],
            "service_latency": stats["latency"]["service"],
        },
    }


def crash_run(seed: int, count: int, max_batch: int) -> dict:
    """Crash-plan mix: halted instances evicted, siblings keep serving."""
    requests = synth_requests(seed, count, fault_plans=(None, CRASH_PLAN))
    report, stats = asyncio.run(
        _serve_set(requests, clients=min(32, count) or 1, max_batch=max_batch)
    )
    counts = report.status_counts()
    ok = [r for r in report.responses if r.status == "ok"]
    halted = [r for r in report.responses if r.status == "halted"]
    assert halted, "crash mix produced no halted instances"
    assert ok, "crash mix starved every clean sibling"
    assert all(r.valid for r in ok), "a sibling served an invalid coloring"
    assert counts.get("error", 0) == 0, f"unexpected errors: {counts}"
    return {
        "requests": count,
        "statuses": counts,
        "halted_evicted": len(halted),
        "siblings_served_valid": len(ok),
        "rounds": stats["round_index"],
    }


def _assert_ok_bit_identical(report, requests) -> int:
    """Every ``ok`` response must equal its offline batched-engine twin.

    The overload/chaos cells' correctness floor: shedding, timeouts, and
    chaos clients must never perturb an *admitted* sibling's coloring.
    Returns how many responses were checked.
    """
    by_id = {r.request_id: r for r in requests}
    ok = [r for r in report.responses if r.status == "ok"]
    if not ok:
        return 0
    admitted = [by_id[r.request_id] for r in ok]
    offline = linial_vectorized_batch(
        [r.build_graph() for r in admitted],
        initial_colors=[r.initial_colors for r in admitted],
    )
    for served, request, (result, metrics, palette) in zip(
        ok, admitted, offline
    ):
        assert served.assignment() == result.assignment, (
            f"{request.request_id}: admitted coloring differs from offline"
        )
        assert served.palette == palette, f"{request.request_id}: palette"
        assert served.rounds == metrics.rounds, f"{request.request_id}: rounds"
    return len(ok)


@contextlib.contextmanager
def _daemon_process(*, max_batch: int, max_queue: int | None):
    """A daemon in its *own* process, yielding its bound port.

    The overload cells measure latency, and latency measured against an
    in-process daemon is a lie: hundreds of bench client coroutines
    share the event loop (and the GIL) with the scheduler and starve
    it, so both cells drown in bench-side noise.  A dedicated process
    gives the admission controller its own loop — exactly how
    ``repro-cli serve`` deploys it.
    """
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0", "--max-batch", str(max_batch),
    ]
    if max_queue is not None:
        cmd += ["--max-queue", str(max_queue)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"listening on [\d.]+:(\d+)", banner)
        if not match:
            raise RuntimeError(f"daemon failed to start: {banner!r}")
        yield int(match.group(1))
        proc.wait(timeout=30)  # cell sends the shutdown op before exiting
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=30)


def _heavy_requests(count: int, graph_n: int) -> list:
    """``count`` deliberately expensive requests (large rings).

    The overload cells need the *server* to be the bottleneck — tens of
    milliseconds of graph build plus vectorized kernel work per request,
    against a few hundred bytes of request line — so the numbers measure
    the admission controller, not the bench client's own event loop or
    the wire.  The identity initial coloring is already a large palette
    at this size, and rings keep the offline replay deterministic.
    """
    from repro.serve import ServeRequest

    return [
        ServeRequest(
            family="ring",
            family_params={"n": graph_n},
            request_id=f"overload-{i:04d}",
        )
        for i in range(count)
    ]


def overload_run(
    seed: int,
    *,
    count: int,
    offered_rps: float,
    graph_n: int,
    max_batch: int,
    max_queue: int,
    slo_ms: float,
) -> dict:
    """Offered load >> capacity: bounded queue vs the unbounded baseline.

    Both cells offer the identical heavy-request stream — one request
    per client, arrivals staggered at ``offered_rps`` — to a daemon in
    its own process whose capacity (``max_batch`` instances of
    ``graph_n``-node work) is far below the offered rate.  The unbounded
    baseline admits everything, so the queue grows for the whole burst
    and late arrivals pay the entire backlog.  The bounded cell sheds at
    ``max_queue`` and must hold admitted-request p99 inside ``slo_ms``
    while reporting the shed rate honestly.  Admitted colorings are
    diffed against the offline engine before any number is reported.
    """
    requests = _heavy_requests(count, graph_n)

    def cell(max_queue_cfg):
        async def offered(port):
            responses = [None] * len(requests)
            latencies = [None] * len(requests)

            async def one(i, req):
                await asyncio.sleep(i / offered_rps)
                client = ServeClient("127.0.0.1", port, timeout=120.0)
                t0 = time.perf_counter()
                responses[i] = await client.color(req)
                latencies[i] = time.perf_counter() - t0
                await client.close()

            t0 = time.perf_counter()
            await asyncio.gather(
                *(one(i, r) for i, r in enumerate(requests))
            )
            wall = time.perf_counter() - t0
            probe = ServeClient("127.0.0.1", port, timeout=30.0)
            stats = await probe.stats()
            await probe.shutdown()
            await probe.close()
            return responses, latencies, stats, wall

        with _daemon_process(
            max_batch=max_batch, max_queue=max_queue_cfg
        ) as port:
            responses, latencies, stats, wall = asyncio.run(offered(port))
        counts: dict[str, int] = {}
        for r in responses:
            counts[r.status] = counts.get(r.status, 0) + 1
        illegal = {k: v for k, v in counts.items() if k not in OVERLOAD_STATUSES}
        assert not illegal, f"overload produced illegal statuses: {illegal}"
        assert counts.get("error", 0) == 0, f"unexpected errors: {counts}"
        by_id = {r.request_id: r for r in requests}
        ok_pairs = [
            (lat, resp)
            for lat, resp in zip(latencies, responses)
            if resp.status == "ok"
        ]
        if ok_pairs:
            admitted = [by_id[resp.request_id] for _, resp in ok_pairs]
            offline = linial_vectorized_batch(
                [r.build_graph() for r in admitted],
                initial_colors=[r.initial_colors for r in admitted],
            )
            for (_, served), request, (result, _, palette) in zip(
                ok_pairs, admitted, offline
            ):
                assert served.assignment() == result.assignment, (
                    f"{request.request_id}: admitted coloring differs "
                    "from offline"
                )
                assert served.palette == palette, request.request_id
        ok_lat = sorted(lat for lat, _ in ok_pairs)
        return {
            "max_queue": max_queue_cfg,
            "requests": len(requests),
            "statuses": counts,
            "shed_rate": counts.get("rejected", 0) / len(responses),
            "timeout_rate": counts.get("timeout", 0) / len(responses),
            "admitted": len(ok_lat),
            "admitted_latency_ms": {
                "p50": quantile(ok_lat, 0.50) * 1000.0 if ok_lat else None,
                "p99": quantile(ok_lat, 0.99) * 1000.0 if ok_lat else None,
                "max": ok_lat[-1] * 1000.0 if ok_lat else None,
            },
            "burst_wall_s": wall,
            "bit_identical_admitted": len(ok_lat),
            "scheduler": {
                "queue_latency": stats["latency"]["queue"],
                "service_latency": stats["latency"]["service"],
                "rejected": stats["rejected"],
                "timed_out": stats["timed_out"],
                "retry_after_ms": stats["retry_after_ms"],
                "outcomes": stats["outcomes"],
            },
        }

    baseline = cell(None)
    bounded = cell(max_queue)
    assert bounded["shed_rate"] > 0, (
        "overload cell did not shed: offered load never hit the queue bound"
    )
    assert baseline["statuses"].get("ok") == len(requests), (
        "unbounded baseline should admit everything"
    )
    slo_met = (
        bounded["admitted_latency_ms"]["p99"] is not None
        and bounded["admitted_latency_ms"]["p99"] <= slo_ms
    )
    return {
        "offered_requests": count,
        "offered_rps": offered_rps,
        "graph_n": graph_n,
        "capacity_max_batch": max_batch,
        "slo_ms": slo_ms,
        "unbounded_baseline": baseline,
        "bounded": bounded,
        "slo_met": slo_met,
        "collapse_factor": (
            baseline["admitted_latency_ms"]["p99"]
            / bounded["admitted_latency_ms"]["p99"]
            if bounded["admitted_latency_ms"]["p99"]
            else None
        ),
    }


#: Line limit for the chaos cell's daemon: small enough that an
#: oversized-line attack is cheap to mount, large enough for every
#: legitimate request/response in the cohort.
_CHAOS_LINE_LIMIT = 64 * 1024


def chaos_run(seed: int, *, count: int, max_batch: int) -> dict:
    """Mid-burst disconnects, slow readers, oversized lines — concurrently.

    A clean cohort fires through ``fire_traffic`` while three chaos
    cohorts abuse the same daemon: *disconnectors* submit a request and
    slam the connection without reading, *slow readers* drain their
    response a few bytes at a time, and *oversized senders* ship lines
    past the daemon's limit.  The daemon must keep every clean promise
    (all ``ok``, valid, bit-identical to offline), answer each oversized
    line with an ``error`` naming the limit, and stop cleanly — zero
    hangs, enforced by hard client timeouts on everything.
    """
    requests = synth_requests(seed, count)

    async def scenario():
        server = ColoringServer(
            ServeConfig(max_batch=max_batch),
            max_line_bytes=_CHAOS_LINE_LIMIT,
        )
        await server.start()
        chaos_log = {"disconnects": 0, "slow_reads": 0, "oversized_errors": 0}

        async def disconnector(i: int) -> None:
            victim = synth_requests(seed + 100 + i, 1)[0]
            _, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(
                encode_line({"op": "color", "request": victim.to_dict()})
            )
            await writer.drain()
            # vanish without reading the reply: the daemon eats the
            # reset when it tries to respond, nobody else notices
            writer.close()
            chaos_log["disconnects"] += 1

        async def slow_reader(i: int) -> None:
            victim = synth_requests(seed + 200 + i, 1)[0]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                encode_line({"op": "color", "request": victim.to_dict()})
            )
            await writer.drain()
            line = b""
            while not line.endswith(b"\n"):
                chunk = await asyncio.wait_for(reader.read(7), timeout=30)
                if not chunk:
                    break
                line += chunk
                await asyncio.sleep(0.001)
            assert line.endswith(b"\n"), "slow reader starved of its reply"
            chaos_log["slow_reads"] += 1
            writer.close()
            await writer.wait_closed()

        async def oversized(i: int) -> None:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b'{"op": "x", "pad": "' + b"x" * (2 * _CHAOS_LINE_LIMIT) + b'"}\n')
            await writer.drain()
            reply = await asyncio.wait_for(reader.readline(), timeout=30)
            assert str(_CHAOS_LINE_LIMIT) in reply.decode(), (
                f"oversized reply does not name the limit: {reply!r}"
            )
            chaos_log["oversized_errors"] += 1
            writer.close()

        clean_task = asyncio.create_task(
            fire_traffic(
                "127.0.0.1",
                server.port,
                requests,
                clients=min(16, count) or 1,
                timeout=60.0,
            )
        )
        chaos = [disconnector(i) for i in range(8)]
        chaos += [slow_reader(i) for i in range(4)]
        chaos += [oversized(i) for i in range(4)]
        await asyncio.gather(*chaos)
        report = await asyncio.wait_for(clean_task, timeout=120)
        # the daemon must still be fully alive after the abuse
        post = synth_requests(seed + 300, 1)
        post_report = await fire_traffic(
            "127.0.0.1", server.port, post, clients=1, timeout=30
        )
        stats = server.batcher.stats()
        await asyncio.wait_for(server.stop(), timeout=30)
        return report, post_report, stats, chaos_log

    report, post_report, stats, chaos_log = asyncio.run(scenario())
    counts = report.status_counts()
    assert counts.get("ok") == len(requests), (
        f"chaos perturbed the clean cohort: {counts}, errors={report.errors}"
    )
    assert all(r.valid is True for r in report.responses)
    assert not report.errors, f"clean clients died: {report.errors}"
    checked = _assert_ok_bit_identical(report, requests)
    assert post_report.status_counts() == {"ok": 1}, (
        "daemon unhealthy after chaos"
    )
    return {
        "clean_requests": count,
        "clean_statuses": counts,
        "bit_identical": checked,
        "chaos": chaos_log,
        "post_chaos_probe": "ok",
        "server_errors_counted": stats["errors"],
        "zero_hangs": True,
    }


def measure(
    seed: int,
    clients: int,
    requests_per_client: int,
    max_batch: int,
    equivalence_requests: int,
    crash_requests: int,
    overload_count: int = 160,
    overload_rps: float = 100.0,
    overload_graph_n: int = 8000,
    overload_max_batch: int = 1,
    overload_max_queue: int = 2,
    slo_ms: float = 1000.0,
    chaos_requests: int = 48,
) -> dict:
    """All five serving claims, in contract order."""
    return {
        "bench": "repro.serve continuous-batching daemon",
        "seed": seed,
        "equivalence": equivalence_run(seed, equivalence_requests, max_batch),
        "throughput": throughput_run(
            seed + 1, clients, requests_per_client, max_batch
        ),
        "crash_tolerance": crash_run(seed + 2, crash_requests, max_batch),
        "overload": overload_run(
            seed + 3,
            count=overload_count,
            offered_rps=overload_rps,
            graph_n=overload_graph_n,
            max_batch=overload_max_batch,
            max_queue=overload_max_queue,
            slo_ms=slo_ms,
        ),
        "chaos": chaos_run(seed + 4, count=chaos_requests, max_batch=max_batch),
    }


def test_bench_serve_smoke(benchmark):
    """pytest-benchmark entry: a small burst, all assertions still on."""
    record = benchmark.pedantic(
        measure,
        args=(7, 20, 2, 16, 12, 12),
        kwargs={
            "overload_count": 40,
            "overload_rps": 100.0,
            "overload_graph_n": 4000,
            "overload_max_batch": 1,
            "overload_max_queue": 4,
            "slo_ms": 2000.0,
            "chaos_requests": 12,
        },
        rounds=1,
        iterations=1,
    )
    assert record["equivalence"]["bit_identical"]
    assert record["overload"]["bounded"]["shed_rate"] > 0
    assert record["chaos"]["zero_hangs"]
    benchmark.extra_info["experiment"] = "serve daemon burst (smoke)"
    benchmark.extra_info["rps"] = record["throughput"]["rps"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=1000,
                        help="concurrent connections (acceptance: >= 1000)")
    parser.add_argument("--requests-per-client", dest="requests_per_client",
                        type=int, default=3)
    parser.add_argument("--max-batch", dest="max_batch", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--equivalence-requests", dest="equivalence_requests",
                        type=int, default=100,
                        help="pinned set diffed against the offline engine")
    parser.add_argument("--crash-requests", dest="crash_requests", type=int,
                        default=60, help="crash-plan mix size")
    parser.add_argument("--overload-count", dest="overload_count",
                        type=int, default=160,
                        help="requests offered to the undersized overload cell")
    parser.add_argument("--overload-rps", dest="overload_rps",
                        type=float, default=100.0,
                        help="staggered arrival rate for the overload cell")
    parser.add_argument("--overload-graph-n", dest="overload_graph_n",
                        type=int, default=8000,
                        help="ring size per overload request (server-heavy)")
    parser.add_argument("--overload-max-batch", dest="overload_max_batch",
                        type=int, default=1,
                        help="deliberately tiny capacity for the overload cell")
    parser.add_argument("--overload-max-queue", dest="overload_max_queue",
                        type=int, default=2,
                        help="admission bound for the bounded overload cell")
    parser.add_argument("--slo-ms", dest="slo_ms", type=float, default=1000.0,
                        help="admitted-request p99 budget for the bounded cell")
    parser.add_argument("--chaos-requests", dest="chaos_requests", type=int,
                        default=48, help="clean cohort size for the chaos cell")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    record = measure(
        args.seed,
        args.clients,
        args.requests_per_client,
        args.max_batch,
        args.equivalence_requests,
        args.crash_requests,
        overload_count=args.overload_count,
        overload_rps=args.overload_rps,
        overload_graph_n=args.overload_graph_n,
        overload_max_batch=args.overload_max_batch,
        overload_max_queue=args.overload_max_queue,
        slo_ms=args.slo_ms,
        chaos_requests=args.chaos_requests,
    )
    Path(args.out).write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    thr = record["throughput"]
    crash = record["crash_tolerance"]
    print(
        f"equivalence: {record['equivalence']['requests']} served requests "
        f"bit-identical to the offline batched engine"
    )
    print(
        f"throughput: {thr['requests']} requests from {thr['clients']} "
        f"clients in {thr['burst_wall_s']:.2f}s ({thr['rps']:.0f} rps), "
        f"p50 {thr['latency_ms']['p50']:.1f}ms / "
        f"p99 {thr['latency_ms']['p99']:.1f}ms"
    )
    print(
        f"crash tolerance: {crash['halted_evicted']} halted+evicted, "
        f"{crash['siblings_served_valid']} siblings served valid"
    )
    over = record["overload"]
    base_p99 = over["unbounded_baseline"]["admitted_latency_ms"]["p99"]
    bnd = over["bounded"]
    print(
        f"overload: unbounded baseline p99 {base_p99:.0f}ms vs bounded "
        f"p99 {bnd['admitted_latency_ms']['p99']:.0f}ms at "
        f"shed rate {bnd['shed_rate']:.0%} "
        f"(SLO {over['slo_ms']:.0f}ms met: {over['slo_met']})"
    )
    chaos = record["chaos"]
    print(
        f"chaos: {chaos['clean_requests']} clean requests all ok under "
        f"{chaos['chaos']['disconnects']} disconnects / "
        f"{chaos['chaos']['slow_reads']} slow readers / "
        f"{chaos['chaos']['oversized_errors']} oversized lines; "
        f"wrote {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
