"""Serving daemon under load: latency, RPS, equivalence (`BENCH_serve.json`).

The serving claim behind :mod:`repro.serve` is three claims, and this
script measures all of them in one record:

* **equivalence** — every coloring the daemon serves is bit-identical
  (assignment, palette, rounds, total bits) to what the offline batched
  engine :func:`~repro.sim.batch.linial_vectorized_batch` produces for
  the same pinned request set.  Asserted before any timing is reported;
  a fast wrong server is not a result.
* **throughput** — under ≥1000 concurrent synthetic clients the daemon
  sustains its RPS with bounded tail latency; the record carries
  client-observed p50/p90/p99 plus the scheduler's own queue/service
  split and occupancy profile.
* **resilience** — a burst mixing crash-stop
  :class:`~repro.faults.FaultPlan` requests with clean ones must evict
  every halted instance (``status="halted"``) while every clean sibling
  still serves a valid coloring.

Run it the way CI does::

    python benchmarks/bench_serve.py --out BENCH_serve.json

The committed ``BENCH_serve.json`` was produced at the default shape
(1000 clients x 3 requests, max_batch 64).  A small smoke version runs
under ``pytest benchmarks/ --benchmark-only`` like the other bench
files.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import quantile  # noqa: E402
from repro.serve import (  # noqa: E402
    ColoringServer,
    ServeConfig,
    fire_traffic,
    synth_requests,
)
from repro.sim import linial_vectorized_batch  # noqa: E402

#: The crash-stop adversary the resilience run mixes in: every node
#: crashes in round 0 and never recovers, so the instance must halt.
CRASH_PLAN = {
    "seed": 5,
    "p_crash": 1.0,
    "recovery_rounds": None,
    "crash_horizon": 1,
}


async def _serve_set(requests, *, clients: int, max_batch: int):
    """Start a daemon, fire ``requests`` from ``clients`` connections,
    return ``(TrafficReport, scheduler stats)`` after a clean stop."""
    server = ColoringServer(ServeConfig(max_batch=max_batch))
    await server.start()
    try:
        report = await fire_traffic(
            "127.0.0.1", server.port, requests, clients=clients
        )
        stats = server.batcher.stats()
    finally:
        await server.stop()
    return report, stats


def equivalence_run(seed: int, count: int, max_batch: int) -> dict:
    """Serve a pinned request set and diff it against the offline engine.

    Raises AssertionError on the first divergent request — the bench
    record only ever contains a passing equivalence block.
    """
    requests = synth_requests(seed, count)
    report, _ = asyncio.run(
        _serve_set(requests, clients=min(32, count) or 1, max_batch=max_batch)
    )
    graphs = [r.build_graph() for r in requests]
    offline = linial_vectorized_batch(
        graphs, initial_colors=[r.initial_colors for r in requests]
    )
    for request, (result, metrics, palette) in zip(requests, offline):
        served = report.response_for(request.request_id)
        assert served.status == "ok", (
            f"{request.request_id}: served status {served.status}"
        )
        assert served.assignment() == result.assignment, (
            f"{request.request_id}: served coloring differs from offline"
        )
        assert served.palette == palette, f"{request.request_id}: palette"
        assert served.rounds == metrics.rounds, f"{request.request_id}: rounds"
        assert served.total_bits == metrics.total_bits, (
            f"{request.request_id}: total_bits"
        )
    return {"requests": count, "seed": seed, "bit_identical": True}


def throughput_run(
    seed: int, clients: int, requests_per_client: int, max_batch: int
) -> dict:
    """The headline load test: ``clients`` concurrent connections."""
    requests = synth_requests(seed, clients * requests_per_client)
    t0 = time.perf_counter()
    report, stats = asyncio.run(
        _serve_set(requests, clients=clients, max_batch=max_batch)
    )
    wall = time.perf_counter() - t0
    counts = report.status_counts()
    assert counts.get("ok") == len(requests), f"non-ok responses: {counts}"
    invalid = [r for r in report.responses if r.valid is not True]
    assert not invalid, f"{len(invalid)} served colorings failed validation"
    lat = sorted(report.latencies)
    return {
        "clients": clients,
        "requests": len(requests),
        "burst_wall_s": report.wall_seconds,
        "wall_s_incl_startup": wall,
        "rps": report.rps,
        "ok_rps": report.ok_rps,
        "latency_ms": {
            "p50": quantile(lat, 0.50) * 1000.0,
            "p90": quantile(lat, 0.90) * 1000.0,
            "p99": quantile(lat, 0.99) * 1000.0,
            "max": lat[-1] * 1000.0,
        },
        "scheduler": {
            "rounds": stats["round_index"],
            "max_batch": stats["max_batch"],
            "occupancy": stats["occupancy_stats"],
            "queue_latency": stats["latency"]["queue"],
            "service_latency": stats["latency"]["service"],
        },
    }


def crash_run(seed: int, count: int, max_batch: int) -> dict:
    """Crash-plan mix: halted instances evicted, siblings keep serving."""
    requests = synth_requests(seed, count, fault_plans=(None, CRASH_PLAN))
    report, stats = asyncio.run(
        _serve_set(requests, clients=min(32, count) or 1, max_batch=max_batch)
    )
    counts = report.status_counts()
    ok = [r for r in report.responses if r.status == "ok"]
    halted = [r for r in report.responses if r.status == "halted"]
    assert halted, "crash mix produced no halted instances"
    assert ok, "crash mix starved every clean sibling"
    assert all(r.valid for r in ok), "a sibling served an invalid coloring"
    assert counts.get("error", 0) == 0, f"unexpected errors: {counts}"
    return {
        "requests": count,
        "statuses": counts,
        "halted_evicted": len(halted),
        "siblings_served_valid": len(ok),
        "rounds": stats["round_index"],
    }


def measure(
    seed: int,
    clients: int,
    requests_per_client: int,
    max_batch: int,
    equivalence_requests: int,
    crash_requests: int,
) -> dict:
    """All three serving claims, in contract order."""
    return {
        "bench": "repro.serve continuous-batching daemon",
        "seed": seed,
        "equivalence": equivalence_run(seed, equivalence_requests, max_batch),
        "throughput": throughput_run(
            seed + 1, clients, requests_per_client, max_batch
        ),
        "crash_tolerance": crash_run(seed + 2, crash_requests, max_batch),
    }


def test_bench_serve_smoke(benchmark):
    """pytest-benchmark entry: a small burst, all assertions still on."""
    record = benchmark.pedantic(
        measure,
        args=(7, 20, 2, 16, 12, 12),
        rounds=1,
        iterations=1,
    )
    assert record["equivalence"]["bit_identical"]
    benchmark.extra_info["experiment"] = "serve daemon burst (smoke)"
    benchmark.extra_info["rps"] = record["throughput"]["rps"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=1000,
                        help="concurrent connections (acceptance: >= 1000)")
    parser.add_argument("--requests-per-client", dest="requests_per_client",
                        type=int, default=3)
    parser.add_argument("--max-batch", dest="max_batch", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--equivalence-requests", dest="equivalence_requests",
                        type=int, default=100,
                        help="pinned set diffed against the offline engine")
    parser.add_argument("--crash-requests", dest="crash_requests", type=int,
                        default=60, help="crash-plan mix size")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    record = measure(
        args.seed,
        args.clients,
        args.requests_per_client,
        args.max_batch,
        args.equivalence_requests,
        args.crash_requests,
    )
    Path(args.out).write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    thr = record["throughput"]
    crash = record["crash_tolerance"]
    print(
        f"equivalence: {record['equivalence']['requests']} served requests "
        f"bit-identical to the offline batched engine"
    )
    print(
        f"throughput: {thr['requests']} requests from {thr['clients']} "
        f"clients in {thr['burst_wall_s']:.2f}s ({thr['rps']:.0f} rps), "
        f"p50 {thr['latency_ms']['p50']:.1f}ms / "
        f"p99 {thr['latency_ms']['p99']:.1f}ms"
    )
    print(
        f"crash tolerance: {crash['halted_evicted']} halted+evicted, "
        f"{crash['siblings_served_valid']} siblings served valid; "
        f"wrote {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
