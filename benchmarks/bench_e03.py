"""Benchmark E03 — regenerates [Kuh09] defective coloring substrate (figure)."""

from repro.experiments.e03_defective import run


def test_bench_e03(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
