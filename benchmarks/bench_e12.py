"""Benchmark E12 — regenerates Appendix C internal computation (table)."""

from repro.experiments.e12_internal import run


def test_bench_e12(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
