"""SPAA'23 Theorem 1.3 vs [FK24] crossover record (`BENCH_fk24.json`).

Both constructions solve the *same* list arbdefective instance per cell
of a (Delta, defect, list-slack) grid — lists of
``floor(deg/(d+1)) + 1 + slack`` colors, uniform defect budget ``d`` —
and the record pins who wins rounds and who wins messages where (the
grid itself lives in
:func:`repro.experiments.e11_crossover.fk24_crossover_grid`, so the E11
figure and this benchmark cannot drift apart).

Regenerate with::

    python benchmarks/bench_fk24.py --out BENCH_fk24.json

The committed ``BENCH_fk24.json`` was produced at the default (full)
grid.  The standing claims the record must support: [FK24] wins at
least one cell outright, and every cell's two outputs validate as list
arbdefective colorings.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.experiments.e11_crossover import fk24_crossover_grid

_COLUMNS = (
    "delta",
    "defect",
    "slack",
    "n",
    "thm13_rounds",
    "fk24_rounds",
    "thm13_messages",
    "fk24_messages",
    "rounds_winner",
    "messages_winner",
)


def measure(fast: bool = False, seed: int = 67) -> dict:
    """The ``BENCH_fk24.json`` record for one grid run."""
    _table, rows, checks = fk24_crossover_grid(fast=fast, seed=seed)
    cells = [dict(zip(_COLUMNS, row)) for row in rows]
    return {
        "benchmark": "spaa23-thm13 vs fk24, shared list-defective instances",
        "grid": "fast" if fast else "full",
        "seed": seed,
        "cells": cells,
        "fk24_round_wins": sum(
            c["rounds_winner"] == "fk24" for c in cells
        ),
        "fk24_message_wins": sum(
            c["messages_winner"] == "fk24" for c in cells
        ),
        "all_outputs_valid": all(checks.values()),
    }


def test_bench_fk24_smoke():
    """Fast-grid smoke: validity everywhere, [FK24] wins a cell."""
    record = measure(fast=True)
    assert record["all_outputs_valid"]
    assert record["fk24_round_wins"] + record["fk24_message_wins"] > 0
    for cell in record["cells"]:
        assert cell["thm13_rounds"] > 0 and cell["fk24_rounds"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small grid (the CI smoke shape)")
    parser.add_argument("--seed", type=int, default=67)
    parser.add_argument("--out", default="BENCH_fk24.json",
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    record = measure(fast=args.fast, seed=args.seed)
    Path(args.out).write_text(
        json.dumps(record, indent=1, sort_keys=True) + "\n"
    )
    print(
        f"{len(record['cells'])} cells: fk24 wins rounds in "
        f"{record['fk24_round_wins']}, messages in "
        f"{record['fk24_message_wins']}; outputs valid: "
        f"{record['all_outputs_valid']} -> {args.out}"
    )
    return 0 if record["fk24_round_wins"] + record["fk24_message_wins"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
