"""Benchmark E13 — regenerates the colors/rounds frontier figure."""

from repro.experiments.e13_frontier import run


def test_bench_e13(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
