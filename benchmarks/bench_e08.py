"""Benchmark E08 — regenerates Theorem 1.3 arbdefective scaling (figure)."""

from repro.experiments.e08_arblist import run


def test_bench_e08(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
