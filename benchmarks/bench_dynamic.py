"""Benchmarks for the dynamic repair loop and lower-bound machinery."""

import random

from repro.core import ColorSpace, uniform_instance
from repro.graphs import gnp
from repro.algorithms import solve_ldc_potential
from repro.algorithms.dynamic import DynamicColoring
from repro.analysis.lowerbound import neighborhood_graph_n1, one_round_color_lower_bound


def test_bench_dynamic_churn(benchmark):
    g = gnp(40, 0.12, seed=31)
    delta = max(d for _, d in g.degree)
    inst = uniform_instance(g, ColorSpace(delta + 6), range(delta + 6), 1)
    base = solve_ldc_potential(inst)

    def churn():
        dyn = DynamicColoring(inst, base)
        rng = random.Random(32)
        nodes = sorted(g.nodes)
        for _ in range(20):
            u, v = rng.sample(nodes, 2)
            if dyn.instance.graph.has_edge(u, v):
                dyn.update(delete=[(u, v)])
            else:
                dyn.update(insert=[(u, v)])
        assert dyn.check()
        return dyn

    benchmark.pedantic(churn, rounds=1, iterations=1)


def test_bench_neighborhood_graph(benchmark):
    benchmark(lambda: neighborhood_graph_n1(6))


def test_bench_one_round_chi(benchmark):
    benchmark.pedantic(
        lambda: one_round_color_lower_bound(4), rounds=1, iterations=1
    )
