"""Benchmark E06 — regenerates Theorem 1.2 / Corollary 4.2 reduction (figure)."""

from repro.experiments.e06_reduction import run


def test_bench_e06(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
