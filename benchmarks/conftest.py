"""Shared benchmark configuration.

Each experiment benchmark regenerates its table/figure through the same
``repro.experiments`` runner the documentation uses, asserts every shape
check, and attaches the headline numbers to the benchmark record via
``benchmark.extra_info`` so ``--benchmark-only`` output doubles as the
paper-vs-measured record.
"""

import pytest


@pytest.fixture
def record_experiment(benchmark):
    """Run an experiment under the benchmark timer and assert its checks."""

    def _run(runner, **kwargs):
        result = benchmark.pedantic(runner, kwargs=kwargs, rounds=1, iterations=1)
        failing = [k for k, v in result.checks.items() if not v]
        assert not failing, f"failing checks: {failing}"
        benchmark.extra_info["experiment"] = result.experiment
        benchmark.extra_info["paper_claim"] = result.paper_claim
        benchmark.extra_info["findings"] = result.findings
        return result

    return _run
