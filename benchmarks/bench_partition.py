"""Partitioned Linial at 10M nodes: RSS, cut, exchange (`BENCH_partition.json`).

The claim behind :mod:`repro.sim.partition` is that sharding buys
*memory*, not magic: on one box the shard workers time-slice the same
cores, but each worker's peak resident set scales with its shard's
``n_local``, so graphs whose single-CSR evaluation grid
(``q x n`` int64, ~1.4 GB at 10M nodes and q=17) would crowd a small
machine run comfortably in slices.  This script measures exactly that,
with the equivalence contract asserted before any number is reported:

* **bit-identity** — the final coloring at shards 2/4/8 equals the
  shards=1 run element-for-element (``np.array_equal``), and the
  coloring is proper within the schedule's final palette.  A fast wrong
  shard driver is not a result.
* **memory** — per-shard peak RSS (``ru_maxrss`` of each ``spawn``
  worker — a fresh address space, so the number is honest) drops as the
  shard count grows; the committed record shows the max-per-shard peak
  at 2/4/8 shards below the single-shard baseline.
* **communication** — cut-edge fraction, ghost fraction, and exchanged
  bytes per round for the contiguous strategy on a 3-regular graph
  (contiguous ranges on a ring-plus-matching topology keep most ring
  edges internal; the random matching supplies the cut).

The 10M-node graph is built numpy-natively (a cycle plus a seeded
perfect matching, repaired so no matching edge duplicates a ring edge)
— ``networkx`` object graphs at that scale cost tens of GB and hours.
A small cell cross-checks the generator + partitioned driver against
:func:`~repro.sim.vectorized.linial_vectorized` through the ordinary
``networkx`` path before the big run.

Run it the way the committed record was produced::

    python benchmarks/bench_partition.py --out BENCH_partition.json

A smoke version (4k nodes) runs under ``pytest benchmarks/
--benchmark-only`` like the other bench files.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms.linial import linial_schedule  # noqa: E402
from repro.sim.partition import (  # noqa: E402
    partition_arrays,
    run_partitioned_dense,
    run_partitioned_linial,
)
from repro.sim.vectorized import linial_vectorized  # noqa: E402


def ring_plus_matching_csr(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """CSR arrays of a 3-regular graph: cycle 0..n-1 plus a seeded
    perfect matching, with no matching edge duplicating a ring edge.

    ``n`` must be even.  Built entirely in numpy: neighbor rows are
    ``[(i-1) % n, (i+1) % n, mate[i]]``, so ``indptr`` is the constant
    stride 3.  The matching starts as a random permutation paired off
    consecutively; pairs that landed on a ring edge are repaired by
    cyclically rotating their partners together with one clean pair
    (guaranteeing progress when a single bad pair remains).
    """
    if n % 2 or n < 6:
        raise ValueError(f"n must be even and >= 6, got {n}")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n).astype(np.int64)
    u, v = perm[0::2].copy(), perm[1::2].copy()
    for _ in range(64):
        gap = (u - v) % n
        bad = (gap == 1) | (gap == n - 1)
        k = int(bad.sum())
        if k == 0:
            break
        rot = np.concatenate([np.nonzero(bad)[0], np.nonzero(~bad)[0][:1]])
        v[rot] = np.roll(v[rot], 1)
    else:  # pragma: no cover - the rotation converges in a step or two
        raise RuntimeError("matching repair did not converge")
    mate = np.empty(n, dtype=np.int64)
    mate[u], mate[v] = v, u
    ar = np.arange(n, dtype=np.int64)
    nbr = np.empty((n, 3), dtype=np.int64)
    nbr[:, 0] = (ar - 1) % n
    nbr[:, 1] = (ar + 1) % n
    nbr[:, 2] = mate
    return 3 * np.arange(n + 1, dtype=np.int64), nbr.reshape(-1)


def schedule_for(n: int, delta: int = 3) -> tuple[list[tuple[int, int]], int]:
    """The identity-colors Linial schedule, as ``(q, deg)`` pairs + palette."""
    steps = linial_schedule(n, delta)
    return [(s.q, s.deg) for s in steps], (steps[-1].out_colors if steps else n)


def crosscheck_generator_cell(n: int, seed: int) -> dict:
    """The small trust anchor: the numpy generator's graph, run through
    the ordinary networkx path, partitioned vs vectorized, bit-identical."""
    indptr, indices = ring_plus_matching_csr(n, seed)
    g_nx = __import__("networkx").Graph()
    g_nx.add_nodes_from(range(n))
    for i in range(n):
        for j in indices[indptr[i] : indptr[i + 1]]:
            g_nx.add_edge(i, int(j))
    assert all(d == 3 for _, d in g_nx.degree), "generator is not 3-regular"
    res_p, met_p, pal_p = run_partitioned_linial(
        g_nx, shards=2, mp_context="spawn"
    )
    res_v, met_v, pal_v = linial_vectorized(g_nx)
    assert res_p.assignment == res_v.assignment, "crosscheck diverged"
    assert (pal_p, met_p.summary()) == (pal_v, met_v.summary())
    return {"n": n, "bit_identical_to_vectorized": True, "palette": pal_p}


def measure(
    n: int, seed: int, shard_counts: list[int], barrier_timeout: float
) -> dict:
    indptr, indices = ring_plus_matching_csr(n, seed)
    sched, palette = schedule_for(n)
    initial = np.arange(n, dtype=np.int64)
    baseline = None
    runs = []
    for shards in shard_counts:
        part = partition_arrays(n, indptr, indices, shards)
        t0 = time.perf_counter()
        out, stats, _ = run_partitioned_dense(
            n,
            indptr,
            indices,
            initial.copy(),
            sched,
            shards=shards,
            partition=part,
            mp_context="spawn",
            barrier_timeout=barrier_timeout,
        )
        wall = time.perf_counter() - t0
        if baseline is None:
            baseline = out
            # single-shard output is the reference: proper within palette
            assert int(out.max()) < palette, "colors exceed the palette"
            src = np.repeat(np.arange(n, dtype=np.int64), 3)
            assert not np.any(out[src] == out[indices]), "improper coloring"
        else:
            assert np.array_equal(out, baseline), (
                f"{shards}-shard run diverged from the 1-shard baseline"
            )
        runs.append(
            {
                "shards": shards,
                "wall_s": wall,
                "rounds": stats.rounds,
                "max_peak_rss_kb": stats.max_peak_rss_kb,
                "peak_rss_kb_per_shard": [
                    s.peak_rss_kb for s in stats.shard_stats
                ],
                "cut_edge_fraction": stats.cut_edge_fraction,
                "ghost_fraction": stats.ghost_fraction,
                "exchange_bytes_per_round": stats.exchange_bytes_per_round,
            }
        )
        print(
            f"shards={shards}: wall={wall:.1f}s "
            f"max_peak_rss={stats.max_peak_rss_kb}kB "
            f"cut={stats.cut_edge_fraction:.3f} "
            f"exchange={stats.exchange_bytes_per_round}B/round"
        )
    single = runs[0]["max_peak_rss_kb"]
    return {
        "bench": "repro.sim.partition sharded Linial",
        "n": n,
        "m": 3 * n // 2,
        "degree": 3,
        "seed": seed,
        "schedule": sched,
        "palette": palette,
        "valid": True,
        "bit_identical_across_shard_counts": True,
        "single_shard_peak_rss_kb": single,
        "sharded_peak_below_baseline": all(
            r["max_peak_rss_kb"] < single for r in runs[1:]
        ),
        "runs": runs,
    }


def test_bench_partition_smoke(benchmark):
    """pytest-benchmark entry: 4k nodes, all assertions still on."""
    crosscheck_generator_cell(600, seed=0)
    record = benchmark.pedantic(
        measure,
        args=(4000, 0, [1, 2, 4], 60.0),
        rounds=1,
        iterations=1,
    )
    assert record["bit_identical_across_shard_counts"]
    benchmark.extra_info["experiment"] = "partitioned Linial (smoke)"
    benchmark.extra_info["cut_edge_fraction"] = record["runs"][1][
        "cut_edge_fraction"
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10_000_000,
                        help="node count (even; default 10M)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", default="1,2,4,8",
                        help="comma-separated shard counts; the first is "
                             "the baseline the rest must match bit-for-bit")
    parser.add_argument("--barrier-timeout", dest="barrier_timeout",
                        type=float, default=600.0,
                        help="per-round worker barrier timeout (large "
                             "graphs legitimately take minutes per round)")
    parser.add_argument("--crosscheck-n", dest="crosscheck_n", type=int,
                        default=2000,
                        help="size of the networkx cross-check cell")
    parser.add_argument("--out", default="BENCH_partition.json",
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    shard_counts = [int(s) for s in args.shards.split(",") if s]
    check = crosscheck_generator_cell(args.crosscheck_n, args.seed)
    print(
        f"crosscheck: n={check['n']} partitioned == vectorized "
        f"(palette {check['palette']})"
    )
    record = measure(args.n, args.seed, shard_counts, args.barrier_timeout)
    record["crosscheck"] = check
    Path(args.out).write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    print(
        f"wrote {args.out}: n={record['n']} palette={record['palette']} "
        f"sharded_peak_below_baseline={record['sharded_peak_below_baseline']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
