"""Benchmark A01 — regenerates the design-choice ablation tables."""

from repro.experiments.a01_ablations import run


def test_bench_a01(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
