"""Benchmark E10 — regenerates Lemmas 3.1/3.2/3.5 P2 zero-round solvability (table)."""

from repro.experiments.e10_p2 import run


def test_bench_e10(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
