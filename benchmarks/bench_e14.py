"""Benchmark E14 — regenerates the large-n log* scaling table."""

from repro.experiments.e14_scale import run


def test_bench_e14(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
