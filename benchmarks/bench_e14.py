"""Benchmark E14 — large-n log* scaling, driven through the sweep runner.

Migrated from a bespoke loop onto :func:`repro.experiments.sweep.run_sweep`:
the grid is declared as cells, computed in one (cached) sweep, and the
log*-flatness and near-linear-wall checks are asserted on the cell records.
A second invocation against the same cache must compute nothing.
"""

from repro.analysis.bounds import log_star
from repro.analysis.sweeps import sweep_result_from_cells
from repro.analysis.tables import fit_exponent
from repro.experiments.sweep import grid, run_sweep_summarized

NS = [1_000, 10_000, 100_000]


def test_bench_e14(benchmark, tmp_path):
    cells = grid("ring", ["linial_vectorized"], NS)

    summary = benchmark.pedantic(
        run_sweep_summarized,
        args=(cells,),
        kwargs={"cache_dir": tmp_path / "cache", "workers": 1},
        rounds=1,
        iterations=1,
    )
    records = [r.data for r in summary.results]
    for rec in records:
        n = rec["family_params"]["n"]
        assert rec["metrics"]["rounds"] <= log_star(n) + 1
        assert rec["valid"]

    sweep_res = sweep_result_from_cells(records, x_param="n", metric="wall_s")
    expo = fit_exponent(sweep_res.xs(), sweep_res.means())
    assert expo <= 1.5, f"wall time scales superlinearly: exponent {expo:.2f}"

    rerun = run_sweep_summarized(cells, cache_dir=tmp_path / "cache", workers=1)
    assert rerun.computed == 0 and rerun.cached == len(cells)

    benchmark.extra_info["experiment"] = "E14 log* scaling (sweep runner)"
    benchmark.extra_info["wall_exponent"] = expo
    benchmark.extra_info["rounds"] = [r["metrics"]["rounds"] for r in records]
