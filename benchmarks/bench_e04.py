"""Benchmark E04 — regenerates arbdefective coloring (figure)."""

from repro.experiments.e04_arbdefective import run


def test_bench_e04(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
