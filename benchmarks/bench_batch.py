"""Batched vs looped throughput for the Linial kernel (`BENCH_batch.json`).

The batching claim behind :mod:`repro.sim.batch` is a throughput claim:
k small instances packed into one block-diagonal
:class:`~repro.sim.batch.BatchCSRGraph` must beat k single-instance
:func:`~repro.sim.vectorized.linial_vectorized` calls by a wide margin,
because at small n the per-call cost (schedule construction with its
prime searches, per-round kernel launches, Python dispatch) dominates
the actual numpy work.  This script measures exactly that — one looped
pass vs one batched pass over the identical instance set, outputs
verified node-for-node equal before timing is trusted — and records the
result:

    python benchmarks/bench_batch.py --out BENCH_batch.json

Each instance starts from random node IDs drawn from a shared
``2**bits`` ID space (the paper's model: Linial's algorithm colors down
from an ID space, not from an n-sized palette), with the space's maximum
ID pinned into every instance so all instances share one memoized
schedule — the same regime the fuzz corpus and sweep grids exercise.
The committed ``BENCH_batch.json`` was produced at the default shape
(256 instances of random 3-regular graphs at n=16 ≤ 256, 20-bit IDs);
the acceptance bar for the batched path is >= 3x looped throughput
there.  ``--min-speedup`` turns the bar into an exit code for CI-style
gating (default 0: record, don't gate — CI hardware varies).

A small smoke version runs under ``pytest benchmarks/ --benchmark-only``
like the other bench files.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import graphs  # noqa: E402
from repro.sim.batch import linial_vectorized_batch  # noqa: E402
from repro.sim.vectorized import linial_vectorized  # noqa: E402


def build_instances(
    instances: int, n: int, degree: int, seed: int = 0, bits: int = 20
) -> tuple[list, list]:
    """k random regular graphs plus per-instance random-ID initial colors.

    IDs are sampled without replacement from ``range(2**bits)`` and the
    space's maximum ID is pinned into every instance, so every instance
    shares the same ``m0 = 2**bits`` and hence one memoized schedule.
    """
    gs = [
        graphs.random_regular(n, degree, seed=seed + i) for i in range(instances)
    ]
    inits = []
    for i, g in enumerate(gs):
        rng = random.Random(seed * 7919 + i)
        ids = rng.sample(range(1 << bits), n)
        ids[0] = (1 << bits) - 1
        inits.append(dict(zip(sorted(g.nodes()), ids)))
    return gs, inits


def run_looped(gs: list, inits: list) -> list:
    return [
        linial_vectorized(g, initial_colors=init) for g, init in zip(gs, inits)
    ]


def run_batched(gs: list, inits: list) -> list:
    return linial_vectorized_batch(gs, initial_colors=inits)


def measure(
    instances: int,
    n: int,
    degree: int,
    seed: int = 0,
    bits: int = 20,
    repeats: int = 3,
) -> dict:
    """Time both paths over the same instance set; best-of-``repeats``.

    Equivalence is asserted before any timing is reported — a fast wrong
    batch is not a result.
    """
    gs, inits = build_instances(instances, n, degree, seed, bits)
    looped = run_looped(gs, inits)
    batched = run_batched(gs, inits)
    for j, ((r1, m1, p1), (r2, m2, p2)) in enumerate(zip(looped, batched)):
        assert r1.assignment == r2.assignment, f"instance {j}: outputs differ"
        assert m1.summary() == m2.summary(), f"instance {j}: metrics differ"
        assert p1 == p2, f"instance {j}: palettes differ"

    looped_s = min(_timed(run_looped, gs, inits) for _ in range(repeats))
    batched_s = min(_timed(run_batched, gs, inits) for _ in range(repeats))
    return {
        "bench": "linial_vectorized batched vs looped",
        "instances": instances,
        "n": n,
        "degree": degree,
        "id_bits": bits,
        "seed": seed,
        "repeats": repeats,
        "total_nodes": instances * n,
        "looped_s": looped_s,
        "batched_s": batched_s,
        "speedup": looped_s / batched_s if batched_s else float("inf"),
        "looped_cells_per_s": instances / looped_s if looped_s else float("inf"),
        "batched_cells_per_s": (
            instances / batched_s if batched_s else float("inf")
        ),
    }


def _timed(fn, gs, inits) -> float:
    t0 = time.perf_counter()
    fn(gs, inits)
    return time.perf_counter() - t0


def test_bench_batch_smoke(benchmark):
    """pytest-benchmark entry: a small batch, equivalence still asserted."""
    gs, inits = build_instances(32, 16, 3, seed=7)
    looped = run_looped(gs, inits)
    batched = benchmark.pedantic(
        run_batched, args=(gs, inits), rounds=1, iterations=1
    )
    for (r1, _, _), (r2, _, _) in zip(looped, batched):
        assert r1.assignment == r2.assignment
    benchmark.extra_info["experiment"] = "batched vs looped Linial (smoke)"
    benchmark.extra_info["instances"] = len(gs)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instances", type=int, default=256,
                        help="batch size k (acceptance shape: >= 256)")
    parser.add_argument("--n", type=int, default=16,
                        help="nodes per instance (acceptance shape: <= 256)")
    parser.add_argument("--degree", type=int, default=3)
    parser.add_argument("--bits", type=int, default=20,
                        help="ID-space width; initial colors are random "
                             "IDs from range(2**bits)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; best-of is reported")
    parser.add_argument("--out", default="BENCH_batch.json",
                        help="where to write the JSON record")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit nonzero below this speedup (0 = no gate)")
    args = parser.parse_args(argv)

    record = measure(
        args.instances,
        args.n,
        args.degree,
        seed=args.seed,
        bits=args.bits,
        repeats=args.repeats,
    )
    Path(args.out).write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    print(
        f"{record['instances']} instances of n={record['n']} "
        f"d={record['degree']} ({record['id_bits']}-bit IDs): "
        f"looped {record['looped_s']:.3f}s "
        f"({record['looped_cells_per_s']:.0f} cells/s) vs batched "
        f"{record['batched_s']:.3f}s ({record['batched_cells_per_s']:.0f} "
        f"cells/s) — {record['speedup']:.1f}x; wrote {args.out}"
    )
    if args.min_speedup and record["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {record['speedup']:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
