"""Benchmark E05 — regenerates Theorem 1.1 OLDC (table)."""

from repro.experiments.e05_oldc import run


def test_bench_e05(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
