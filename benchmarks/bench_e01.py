"""Benchmark E01 — regenerates Lemmas A.1/A.2 existence thresholds (table)."""

from repro.experiments.e01_existence import run


def test_bench_e01(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
