"""Benchmark E02 — [Lin87] Linial substrate, driven through the sweep runner.

Migrated onto :func:`repro.experiments.sweep.run_sweep`: the reference and
vectorized Linial runs are declared as cells of one grid, computed in a
single cached sweep, and the substrate checks (palette O(Delta^2)-ish,
round count log*-flat, Delta+1 endpoint for the full pipeline) are
asserted on the cell records.
"""

from repro.analysis.bounds import log_star
from repro.experiments.sweep import SweepCell, run_sweep_summarized

GRID = [
    SweepCell.make("random_regular", {"n": n, "degree": 8, "seed": 2}, algo)
    for n in (64, 128, 256)
    for algo in ("thm14", "linial_vectorized", "classic_vectorized")
]


def test_bench_e02(benchmark, tmp_path):
    summary = benchmark.pedantic(
        run_sweep_summarized,
        args=(GRID,),
        kwargs={"cache_dir": tmp_path / "cache", "workers": 1},
        rounds=1,
        iterations=1,
    )
    by_algo: dict[str, list[dict]] = {}
    for r in summary.results:
        assert r.data["valid"]
        by_algo.setdefault(r.data["algorithm"], []).append(r.data)

    for rec in by_algo["linial_vectorized"]:
        n = rec["family_params"]["n"]
        assert rec["metrics"]["rounds"] <= log_star(n) + 1
        # Linial lands on an O(Delta^2)-size palette independent of n
        assert rec["colors"] <= (8 * 8) * 4

    # the classic pipeline ends at Delta+1 colors at every n
    assert all(rec["colors"] <= 9 for rec in by_algo["classic_vectorized"])

    benchmark.extra_info["experiment"] = "E02 Linial substrate (sweep runner)"
    benchmark.extra_info["cells"] = summary.total
