"""Benchmark E02 — regenerates [Lin87] Linial substrate (figure)."""

from repro.experiments.e02_linial import run


def test_bench_e02(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
