"""Benchmark E09 — regenerates Theorem 1.4 CONGEST coloring (table)."""

from repro.experiments.e09_congest import run


def test_bench_e09(record_experiment):
    result = record_experiment(run, fast=True)
    assert result.body
