"""Cross-cutting property-based tests (hypothesis).

Metamorphic and invariance properties that no single-module unit test
covers: relabeling-equivariance of distributed algorithms, monotonicity of
solvability in list size, conservation laws of the simulator, and
structural invariants of the decompositions.
"""

import random

import networkx as nx
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ColorSpace
from repro.core.coloring import ColoringResult
from repro.core.instance import (
    ListDefectiveInstance,
    degree_plus_one_instance,
    uniform_instance,
)
from repro.core.validate import (
    validate_arbdefective,
    validate_ldc,
    validate_proper_coloring,
)
from repro.graphs import balanced_orientation, gnp
from repro.algorithms import (
    arbdefective_coloring,
    greedy_list_coloring,
    run_linial,
    solve_ldc_potential,
    solve_list_arbdefective,
)
from repro.sim import Message, SyncNetwork
from repro.sim.node import DistributedAlgorithm


graphs = st.builds(
    lambda n, seed: gnp(n, 0.3, seed=seed),
    st.integers(6, 24),
    st.integers(0, 10_000),
)


class TestRelabelingEquivariance:
    """Shifting all node ids must shift the solution identically for
    algorithms whose only symmetry-breaker is the id/init-coloring."""

    @settings(max_examples=15, deadline=None)
    @given(graphs, st.integers(1, 50))
    def test_linial_equivariant_under_id_shift(self, g, shift):
        res1, _m1, _p1 = run_linial(g)
        shifted = nx.relabel_nodes(g, {v: v + shift for v in g.nodes})
        res2, _m2, _p2 = run_linial(shifted)
        assert {v + shift: c for v, c in res1.assignment.items()} == res2.assignment


class TestListMonotonicity:
    """Adding colors (with any defects) to lists never breaks solvability
    of the sequential constructions."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 2))
    def test_potential_descent_monotone(self, seed, extra_defect):
        rng = random.Random(seed)
        g = gnp(12, 0.4, seed=seed)
        delta = max((d for _, d in g.degree), default=0)
        space = ColorSpace(4 * (delta + 2))
        base = uniform_instance(g, space, range(delta + 1), 0)
        res = solve_ldc_potential(base)
        assert validate_ldc(base, res).ok
        # extend every list by one more color
        bigger = ListDefectiveInstance(
            g,
            space,
            {v: tuple(list(base.lists[v]) + [delta + 1]) for v in g.nodes},
            {
                v: {**base.defects[v], delta + 1: extra_defect}
                for v in g.nodes
            },
        )
        res2 = solve_ldc_potential(bigger)
        assert validate_ldc(bigger, res2).ok


class TestSimulatorConservation:
    """Messages sent == messages received; bits conserved; no message
    crosses a round boundary."""

    class Counter(DistributedAlgorithm):
        def init_state(self, view):
            return {"recv": 0, "sent": 0, "round": 0}

        def send(self, view, state, rnd):
            if state["round"] >= 3:
                return {}
            state["sent"] += len(view.neighbors)
            return {u: Message(rnd, bits=4) for u in view.neighbors}

        def receive(self, view, state, rnd, inbox):
            # every message delivered this round must carry this round's tag
            assert all(m.payload == rnd for m in inbox.values())
            state["recv"] += len(inbox)
            state["round"] += 1

        def is_done(self, view, state):
            return state["round"] >= 3

        def output(self, view, state):
            return (state["sent"], state["recv"])

    @settings(max_examples=15, deadline=None)
    @given(graphs)
    def test_conservation(self, g):
        outputs, metrics = SyncNetwork(g).run(self.Counter())
        total_sent = sum(s for s, _r in outputs.values())
        total_recv = sum(r for _s, r in outputs.values())
        assert total_sent == total_recv == metrics.total_messages
        assert metrics.total_bits == 4 * metrics.total_messages
        assert metrics.rounds == 3


class TestDecompositionInvariants:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    @given(st.integers(0, 10_000))
    def test_arbdefective_class_count(self, seed):
        g = gnp(20, 0.35, seed=seed)
        delta = max((d for _, d in g.degree), default=0)
        if delta == 0:
            return
        res, _m, q = arbdefective_coloring(g, 1, mode="tight")
        assert res.num_colors() <= q
        assert set(res.assignment.values()) <= set(range(q))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_balanced_orientation_total_degree(self, seed):
        g = gnp(18, 0.4, seed=seed)
        ori = balanced_orientation(g)
        # every edge oriented exactly once: out-degrees sum to |E|
        assert sum(ori.out_degree(v) for v in g.nodes) == g.number_of_edges()


class TestEndToEndRandomized:
    """Theorem 1.3 must produce valid colorings on arbitrary random
    (degree+1) list instances — the repository's central contract."""

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(10, 28))
    def test_thm13_degree_plus_one(self, seed, n):
        g = gnp(n, 0.3, seed=seed)
        rng = random.Random(seed + 1)
        delta = max((d for _, d in g.degree), default=0)
        space = ColorSpace(max(2 * (delta + 1), 4))
        inst = degree_plus_one_instance(g, space, rng)
        res, _m, _rep = solve_list_arbdefective(inst)
        validate_ldc(inst, res).raise_if_invalid()
        validate_arbdefective(inst, res).raise_if_invalid()

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_greedy_and_distributed_agree(self, seed):
        g = gnp(16, 0.35, seed=seed)
        inst = degree_plus_one_instance(g)
        seq = greedy_list_coloring(inst)
        dist, _m, _rep = solve_list_arbdefective(inst)
        assert validate_ldc(inst, seq).ok
        assert validate_ldc(inst, dist).ok


class TestValidatorMetamorphic:
    """A proper coloring stays proper under any injective recoloring."""

    @settings(max_examples=15, deadline=None)
    @given(graphs, st.integers(1, 99))
    def test_injective_recolor_preserves_properness(self, g, mult):
        res, _m, _p = run_linial(g)
        assert validate_proper_coloring(g, res).ok
        remapped = ColoringResult(
            {v: c * mult + 1 for v, c in res.assignment.items()}
        )
        assert validate_proper_coloring(g, remapped).ok

    @settings(max_examples=15, deadline=None)
    @given(graphs)
    def test_merging_two_colors_breaks_properness_when_adjacent(self, g):
        if g.number_of_edges() == 0:
            return
        res, _m, _p = run_linial(g)
        u, v = next(iter(g.edges))
        merged = dict(res.assignment)
        merged[u] = merged[v]
        assert not validate_proper_coloring(g, ColoringResult(merged)).ok
