"""Tests for the execution trace recorder."""

from repro.graphs import ring
from repro.sim import SyncNetwork, Trace

from .test_sim import EchoOnce


class TestTrace:
    def run_traced(self, capture=False):
        trace = Trace(capture_payloads=capture)
        net = SyncNetwork(ring(5))
        outputs, metrics = net.run(EchoOnce(), trace=trace)
        return trace, metrics

    def test_counts_match_metrics(self):
        trace, metrics = self.run_traced()
        assert trace.summary()["messages"] == metrics.total_messages
        assert trace.summary()["total_bits"] == metrics.total_bits
        assert trace.rounds == metrics.rounds

    def test_payloads_off_by_default(self):
        trace, _m = self.run_traced(capture=False)
        assert all(m.payload is None for m in trace.messages)

    def test_payloads_captured_when_asked(self):
        trace, _m = self.run_traced(capture=True)
        # EchoOnce sends the sender's id
        assert all(m.payload == m.src for m in trace.messages)

    def test_between_query(self):
        trace, _m = self.run_traced()
        msgs = trace.between(0, 1)
        assert len(msgs) == 1
        assert msgs[0].round == 0
        assert msgs[0].bits == 8

    def test_messages_in_round(self):
        trace, _m = self.run_traced()
        assert len(trace.messages_in_round(0)) == 10  # ring(5): 2 per node
        assert trace.messages_in_round(5) == []

    def test_bits_per_round_and_busiest(self):
        trace, _m = self.run_traced()
        per = trace.bits_per_round()
        assert per == [80]
        assert trace.busiest_round() == 0

    def test_active_per_round(self):
        trace, _m = self.run_traced()
        assert trace.active_per_round == [5]

    def test_empty_trace(self):
        t = Trace()
        assert t.rounds == 0
        assert t.busiest_round() == 0
        assert t.bits_per_round() == []

    def test_bits_per_round_covers_unclosed_final_round(self):
        # messages recorded past the last record_round() call used to be
        # silently dropped from bits_per_round()
        t = Trace()
        t.record(0, 0, 1, 8, None)
        t.record_round(2)
        t.record(1, 1, 0, 16, None)  # round 1 never closed
        t.record(2, 0, 1, 4, None)  # nor round 2
        per = t.bits_per_round()
        assert per == [8, 16, 4]
        assert sum(per) == t.summary()["total_bits"]
        assert t.messages_per_round() == [1, 1, 1]
        assert t.busiest_round() == 1

    def test_negative_round_rejected(self):
        import pytest

        t = Trace()
        t.record(-1, 0, 1, 8, None)
        with pytest.raises(ValueError, match="negative round"):
            t.bits_per_round()

    def test_totals_consistent_with_metrics_on_traced_run(self):
        trace, metrics = self.run_traced()
        assert sum(trace.bits_per_round()) == metrics.total_bits
        assert sum(trace.messages_per_round()) == metrics.total_messages
