"""Each experiment must run in fast mode with every shape check passing."""

import pytest

from repro.experiments import EXPERIMENTS, get_runner, run_all
from repro.experiments.harness import ExperimentResult


@pytest.mark.parametrize("eid", sorted(EXPERIMENTS))
def test_experiment_checks_pass(eid):
    result = get_runner(eid)(fast=True)
    assert isinstance(result, ExperimentResult)
    failing = [k for k, v in result.checks.items() if not v]
    assert not failing, f"{eid} failing checks: {failing}"


@pytest.mark.parametrize("eid", sorted(EXPERIMENTS))
def test_experiment_renders(eid):
    result = get_runner(eid)(fast=True)
    out = result.render()
    assert result.experiment in out
    assert "paper claim" in out
    assert "findings" in out


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        get_runner("E99")


def test_run_all_order():
    results = run_all(fast=True)
    assert len(results) == len(EXPERIMENTS)
    ids = [r.experiment.split()[0] for r in results]
    assert ids == sorted(ids)
