"""Conformance grids: algorithms x graph families, backends x algorithms.

Two tables of truth.  The first is the classic (Delta+1) grid: each
registered algorithm must produce a valid proper coloring within its
advertised palette on each family; failures localize instantly to an
(algorithm, family) cell.  The second is *generated from the
engine-backend registry* (:mod:`repro.sim.backends`): every declared
backend x canonical-algorithm pair is exercised on ring, random-regular,
and gappy-label fixtures — a supported pair must run and satisfy its
semantic oracle, an unsupported pair must say why, and a pair the
backend forgot to declare fails loudly.  Adding a backend or algorithm
to the registry grows this grid automatically; forgetting to register
one shrinks it visibly (and trips the undeclared check).
"""

import random

import pytest

from repro.core import degree_plus_one_instance, validate_proper_coloring
from repro.graphs import (
    blowup,
    clique,
    gnp,
    hub_and_fringe,
    hypercube,
    random_regular,
    random_tree,
    ring,
    star,
    torus,
)

FAMILIES = {
    "ring": lambda: ring(18),
    "clique": lambda: clique(7),
    "star": lambda: star(11),
    "torus": lambda: torus(4, 5),
    "hypercube": lambda: hypercube(4),
    "gnp": lambda: gnp(36, 0.2, seed=91),
    "regular": lambda: random_regular(36, 6, seed=92),
    "hub": lambda: hub_and_fringe(hub_degree=8, fringe_cliques=3, clique_size=3),
    "blowup": lambda: blowup(ring(6), 2),
    "tree": lambda: random_tree(25, seed=93),
}


def _congest(g):
    from repro.algorithms import congest_delta_plus_one

    res, _m, _rep = congest_delta_plus_one(g)
    return res


def _classic(g):
    from repro.algorithms import classic_delta_plus_one

    return classic_delta_plus_one(g)[0]


def _classic_vectorized(g):
    from repro.sim.vectorized import classic_delta_plus_one_vectorized

    return classic_delta_plus_one_vectorized(g)[0]


def _linear(g):
    from repro.algorithms import linear_in_delta_coloring

    return linear_in_delta_coloring(g)[0]


def _randomized(g):
    from repro.algorithms import randomized_list_coloring

    return randomized_list_coloring(degree_plus_one_instance(g), seed=1)[0]


def _mis(g):
    from repro.algorithms.mis import coloring_via_mis

    return coloring_via_mis(g, seed=1)[0]


def _greedy(g):
    from repro.algorithms import greedy_list_coloring

    return greedy_list_coloring(degree_plus_one_instance(g))


def _potential(g):
    from repro.algorithms import solve_ldc_potential

    return solve_ldc_potential(degree_plus_one_instance(g))


def _thm13(g):
    from repro.algorithms import solve_list_arbdefective

    return solve_list_arbdefective(degree_plus_one_instance(g))[0]


ALGORITHMS = {
    "thm14-congest": _congest,
    "thm13": _thm13,
    "classic": _classic,
    "classic-vectorized": _classic_vectorized,
    "linear-in-delta": _linear,
    "randomized": _randomized,
    "mis-product": _mis,
    "greedy-seq": _greedy,
    "potential-seq": _potential,
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_grid(algorithm, family):
    g = FAMILIES[family]()
    res = ALGORITHMS[algorithm](g)
    validate_proper_coloring(g, res).raise_if_invalid()
    delta = max(d for _, d in g.degree)
    assert res.num_colors() <= delta + 1, (
        f"{algorithm} on {family}: {res.num_colors()} colors > Delta+1"
    )


# ----------------------------------------------------------------------
# backend-conformance grid, generated from repro.sim.backends
# ----------------------------------------------------------------------
# The cell space is the registry itself — BACKENDS x ALGORITHMS — so a
# new backend (or a new canonical algorithm) is pulled into the grid the
# moment it is declared, and a missing declaration is a test failure,
# not a silent gap.
from repro.sim.backends import ALGORITHMS as CANONICAL_ALGORITHMS
from repro.sim.backends import BACKENDS


def _gappy_ring(n: int, seed: int = 5):
    """A ring whose labels are non-contiguous and unsorted."""
    import networkx as nx

    rng = random.Random(seed)
    labels = rng.sample(range(3, 60 * n, 7), n)
    return nx.relabel_nodes(ring(n), dict(enumerate(labels)))


BACKEND_FIXTURES = {
    "ring": lambda: ring(14),
    "regular": lambda: random_regular(20, 4, seed=17),
    "gappy": lambda: _gappy_ring(12),
}


def _backend_case(algorithm, g, seed):
    """A differential-harness case for one grid cell.

    List construction mirrors :mod:`repro.fuzz.generator`: ``greedy``
    gets ``deg(v)+1`` colors per list, ``fk24`` only
    ``floor(deg(v)/(defect+1)) + 1`` (its defect budget covers the
    rest), the other pairs use each engine's built-in default input.
    """
    from repro.fuzz.case import FuzzCase

    nodes = sorted(g.nodes())
    edges = [tuple(e) for e in g.edges()]
    degrees = dict(g.degree)
    rng = random.Random(seed)
    defect = 0
    lists = None
    space = None
    if algorithm in ("defective_split", "fk24"):
        defect = 1
    if algorithm in ("greedy", "fk24"):
        space = max(degrees.values(), default=0) + 2
        lists = {}
        for v in nodes:
            if algorithm == "fk24":
                need = degrees[v] // (defect + 1) + 1
            else:
                need = degrees[v] + 1
            lists[v] = sorted(rng.sample(range(space), min(space, need)))
    case = FuzzCase(
        pair=algorithm,
        nodes=nodes,
        edges=edges,
        defect=defect,
        lists=lists,
        space_size=space,
        seed=f"backend-grid:{algorithm}:{seed}",
        note="backend-conformance grid fixture",
    )
    case.check_valid()
    return case


def _cell_pair(backend, algorithm):
    """The :class:`EnginePair` serving one (backend, algorithm) cell."""
    from repro.fuzz import differential as diff

    if backend in ("reference", "vectorized", "batched"):
        return diff.ENGINE_PAIRS[algorithm]
    return diff.pairs_for_backend(backend)[algorithm]


@pytest.mark.parametrize("algorithm", CANONICAL_ALGORITHMS)
@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_backend_grid_declares_every_cell(backend, algorithm):
    """Every backend must declare every canonical algorithm.

    ``supported=False`` with a reason is a declaration; *absence* is the
    forgotten-registration failure mode this grid exists to catch.
    """
    spec = BACKENDS[backend]
    entry = spec.algorithms.get(algorithm)
    if entry is None:
        pytest.fail(
            f"backend {backend!r} declares no entry for {algorithm!r} — "
            "register it in repro.sim.backends (supported=False with a "
            "note is fine)"
        )
    if not entry.supported:
        assert entry.note, (
            f"backend {backend!r} marks {algorithm!r} unsupported without "
            "saying why"
        )


def _supported_cells():
    cells = []
    for backend in sorted(BACKENDS):
        for algorithm in CANONICAL_ALGORITHMS:
            entry = BACKENDS[backend].algorithms.get(algorithm)
            if entry is not None and entry.supported:
                cells.append((backend, algorithm))
    return cells


@pytest.mark.parametrize("fixture", sorted(BACKEND_FIXTURES))
@pytest.mark.parametrize(
    "backend,algorithm",
    _supported_cells(),
    ids=[f"{b}-{a}" for b, a in _supported_cells()],
)
def test_backend_grid_cell_runs_green(backend, algorithm, fixture):
    """Each supported cell runs on each fixture and passes its oracle.

    The engine side under test is the backend's own (reference runner on
    the reference backend, fast runner elsewhere); the semantic contract
    is the pair's differential oracle — proper coloring for classic /
    greedy / linial, defective validity for the split, arbdefective
    validity plus palette bounds for fk24.
    """
    g = BACKEND_FIXTURES[fixture]()
    case = _backend_case(algorithm, g, seed=29)
    if backend == "batched":
        # the batched backend is an execution strategy over the
        # vectorized kernels: drive it through the public batched
        # differential path with a genuine multi-case group
        from repro.fuzz.differential import run_cases_batched

        other = _backend_case(algorithm, BACKEND_FIXTURES["ring"](), seed=31)
        outcomes = run_cases_batched([case, other])
        for out in outcomes:
            assert out.ok, (
                f"batched {algorithm} on {fixture}: {out.failures}"
            )
        return
    pair = _cell_pair(backend, algorithm)
    side = pair.run_reference if backend == "reference" else pair.run_vectorized
    run = side(case)
    assert run.assignment, f"{backend}/{algorithm} on {fixture}: empty output"
    violations = pair.oracle(case, run)
    assert not violations, (
        f"{backend}/{algorithm} on {fixture}: {violations}"
    )
