"""Conformance grid: every (Delta+1)-capable algorithm x every graph family.

One table of truth: each algorithm must produce a valid proper coloring
within its advertised palette on each family.  Failures localize instantly
to an (algorithm, family) cell.
"""

import pytest

from repro.core import degree_plus_one_instance, validate_proper_coloring
from repro.graphs import (
    blowup,
    clique,
    gnp,
    hub_and_fringe,
    hypercube,
    random_regular,
    random_tree,
    ring,
    star,
    torus,
)

FAMILIES = {
    "ring": lambda: ring(18),
    "clique": lambda: clique(7),
    "star": lambda: star(11),
    "torus": lambda: torus(4, 5),
    "hypercube": lambda: hypercube(4),
    "gnp": lambda: gnp(36, 0.2, seed=91),
    "regular": lambda: random_regular(36, 6, seed=92),
    "hub": lambda: hub_and_fringe(hub_degree=8, fringe_cliques=3, clique_size=3),
    "blowup": lambda: blowup(ring(6), 2),
    "tree": lambda: random_tree(25, seed=93),
}


def _congest(g):
    from repro.algorithms import congest_delta_plus_one

    res, _m, _rep = congest_delta_plus_one(g)
    return res


def _classic(g):
    from repro.algorithms import classic_delta_plus_one

    return classic_delta_plus_one(g)[0]


def _classic_vectorized(g):
    from repro.sim.vectorized import classic_delta_plus_one_vectorized

    return classic_delta_plus_one_vectorized(g)[0]


def _linear(g):
    from repro.algorithms import linear_in_delta_coloring

    return linear_in_delta_coloring(g)[0]


def _randomized(g):
    from repro.algorithms import randomized_list_coloring

    return randomized_list_coloring(degree_plus_one_instance(g), seed=1)[0]


def _mis(g):
    from repro.algorithms.mis import coloring_via_mis

    return coloring_via_mis(g, seed=1)[0]


def _greedy(g):
    from repro.algorithms import greedy_list_coloring

    return greedy_list_coloring(degree_plus_one_instance(g))


def _potential(g):
    from repro.algorithms import solve_ldc_potential

    return solve_ldc_potential(degree_plus_one_instance(g))


def _thm13(g):
    from repro.algorithms import solve_list_arbdefective

    return solve_list_arbdefective(degree_plus_one_instance(g))[0]


ALGORITHMS = {
    "thm14-congest": _congest,
    "thm13": _thm13,
    "classic": _classic,
    "classic-vectorized": _classic_vectorized,
    "linear-in-delta": _linear,
    "randomized": _randomized,
    "mis-product": _mis,
    "greedy-seq": _greedy,
    "potential-seq": _potential,
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_grid(algorithm, family):
    g = FAMILIES[family]()
    res = ALGORITHMS[algorithm](g)
    validate_proper_coloring(g, res).raise_if_invalid()
    delta = max(d for _, d in g.degree)
    assert res.num_colors() <= delta + 1, (
        f"{algorithm} on {family}: {res.num_colors()} colors > Delta+1"
    )
