"""Unit + property tests for the conflict combinatorics (Defs 3.1-3.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.conflict import (
    conflict_weight,
    conflicting_members,
    mu_g,
    pairwise_conflict_degree,
    psi_g,
    tau_g_conflict,
)

color_sets = st.lists(st.integers(0, 40), min_size=0, max_size=12).map(
    lambda xs: sorted(set(xs))
)


class TestMuG:
    def test_g_zero_is_membership_count(self):
        assert mu_g(3, [1, 3, 5], 0) == 1
        assert mu_g(2, [1, 3, 5], 0) == 0

    def test_positive_g_window(self):
        assert mu_g(3, [1, 3, 5], 1) == 1  # only 3 within distance 1
        assert mu_g(3, [1, 3, 5], 2) == 3

    def test_negative_g_rejected(self):
        with pytest.raises(ValueError):
            mu_g(0, [1], -1)

    @given(st.integers(0, 40), color_sets, st.integers(0, 5))
    def test_mu_monotone_in_g(self, x, colors, g):
        assert mu_g(x, colors, g) <= mu_g(x, colors, g + 1)


class TestConflictWeight:
    def test_g_zero_equals_intersection(self):
        assert conflict_weight([1, 2, 3], [2, 3, 4], 0) == 2

    def test_symmetric(self):
        a, b = [1, 5, 9], [2, 5, 8]
        for g in (0, 1, 2, 3):
            assert conflict_weight(a, b, g) == conflict_weight(b, a, g)

    def test_positive_g_counts_near_pairs(self):
        assert conflict_weight([0, 10], [1, 11], 1) == 2
        assert conflict_weight([0, 10], [2, 12], 1) == 0

    @given(color_sets, color_sets, st.integers(0, 4))
    def test_weight_symmetry_property(self, a, b, g):
        assert conflict_weight(a, b, g) == conflict_weight(b, a, g)

    @given(color_sets, color_sets, st.integers(0, 3))
    def test_weight_monotone_in_g(self, a, b, g):
        assert conflict_weight(a, b, g) <= conflict_weight(a, b, g + 1)

    @given(color_sets, color_sets)
    def test_weight_bounded_by_sizes(self, a, b):
        assert conflict_weight(a, b, 0) <= min(len(a), len(b))


class TestTauGConflict:
    def test_threshold(self):
        assert tau_g_conflict([1, 2, 3], [1, 2, 3], 3, 0)
        assert not tau_g_conflict([1, 2, 3], [1, 2, 4], 3, 0)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            tau_g_conflict([1], [1], 0, 0)

    @given(color_sets, color_sets, st.integers(1, 6), st.integers(0, 3))
    def test_monotone_in_tau(self, a, b, tau, g):
        if tau_g_conflict(a, b, tau + 1, g):
            assert tau_g_conflict(a, b, tau, g)


class TestPsiG:
    def test_simple_membership(self):
        k1 = [(1, 2), (3, 4)]
        k2 = [(1, 2)]
        # one member of k1 2&0-conflicts with k2
        assert psi_g(k1, k2, tau_prime=1, tau=2)
        assert not psi_g(k1, k2, tau_prime=2, tau=2)

    def test_asymmetry_possible(self):
        k1 = [(1, 2), (1, 2)]  # duplicates do not matter; use distinct sets
        k1 = [(1, 2), (2, 3)]
        k2 = [(1, 2, 3)]
        assert psi_g(k1, k2, tau_prime=2, tau=2)
        # reverse: only one member of k2 can conflict, so tau'=2 fails
        assert not psi_g(k2, k1, tau_prime=2, tau=2)

    def test_invalid_tau_prime(self):
        with pytest.raises(ValueError):
            psi_g([(1,)], [(1,)], 0, 1)

    def test_conflicting_members_indices(self):
        k1 = [(1, 2), (5, 6), (2, 3)]
        k2 = [(1, 2, 3)]
        assert conflicting_members(k1, k2, tau=2) == [0, 2]

    @given(
        st.lists(
            st.lists(st.integers(0, 15), min_size=1, max_size=4).map(tuple),
            min_size=1,
            max_size=4,
        ),
        st.lists(
            st.lists(st.integers(0, 15), min_size=1, max_size=4).map(tuple),
            min_size=1,
            max_size=4,
        ),
        st.integers(1, 3),
        st.integers(1, 3),
    )
    def test_psi_monotone_in_tau_prime(self, k1, k2, tau, tp):
        if psi_g(k1, k2, tp + 1, tau):
            assert psi_g(k1, k2, tp, tau)


class TestPairwiseConflictDegree:
    def test_disjoint_families_zero(self):
        fams = [[(1, 2)], [(3, 4)], [(5, 6)]]
        assert pairwise_conflict_degree(fams, 1, 2) == 0

    def test_identical_families_max(self):
        fams = [[(1, 2)], [(1, 2)], [(1, 2)]]
        assert pairwise_conflict_degree(fams, 1, 2) == 2
