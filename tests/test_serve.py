"""The serving stack: stepper equivalence, scheduler discipline, daemon.

Three layers, tested bottom-up:

* :class:`~repro.sim.batch.LinialBatchStepper` — the round-stepped
  driver must produce per-instance triples bit-identical to
  :func:`~repro.sim.vectorized.linial_vectorized` under *any* batch
  composition: static drain, staggered admission, fault plans on their
  local round clocks, and crash-stop halts that leave siblings intact;
* :class:`~repro.serve.ContinuousBatcher` — the scheduling discipline:
  FIFO admission, eviction the round an instance finishes, freed slots
  refilled from the queue between rounds, crash-halted requests
  resolved as ``halted`` without disturbing batch-mates;
* :class:`~repro.serve.ColoringServer` — end to end over a real TCP
  socket: heavy concurrent traffic serves valid colorings bit-identical
  to the offline batched engine, stats/ping/shutdown work, malformed
  requests answer as errors without killing the daemon.

Everything async runs under ``asyncio.run`` inside ordinary sync tests
(no pytest-asyncio in the environment).
"""

import asyncio

import pytest

from repro.graphs import ring
from repro.obs import LatencyTracker, OccupancyTracker, quantile
from repro.serve import (
    ColoringServer,
    ContinuousBatcher,
    ServeClient,
    ServeConfig,
    ServeRequest,
    ServeResponse,
    fire_traffic,
    synth_requests,
)
from repro.sim import (
    CapabilityError,
    HaltingError,
    LinialBatchStepper,
    linial_vectorized,
    make_batch_instance,
)
from repro.faults import FaultPlan

#: Spread initial colors (node i -> 64*i): forces a non-empty Linial
#: schedule on small graphs, so instances actually occupy rounds.
def spread(g):
    return {v: 64 * i for i, v in enumerate(sorted(g.nodes))}


CRASH = FaultPlan(seed=5, p_crash=1.0, recovery_rounds=None, crash_horizon=1)
DROPPY = FaultPlan(seed=9, p_drop=0.3)


def triple_eq(a, b):
    res_a, met_a, pal_a = a
    res_b, met_b, pal_b = b
    assert res_a.assignment == res_b.assignment
    assert met_a.summary() == met_b.summary()
    assert pal_a == pal_b


# ----------------------------------------------------------------------
# layer 1: the round-stepped driver
# ----------------------------------------------------------------------
class TestStepperEquivalence:
    def graphs(self):
        return [ring(n) for n in (8, 12, 16, 20)]

    def test_static_drain_matches_single_instance(self):
        gs = self.graphs()
        singles = [linial_vectorized(g, initial_colors=spread(g)) for g in gs]
        stepper = LinialBatchStepper(
            [make_batch_instance(g, initial_colors=spread(g)) for g in gs]
        )
        done = stepper.run_to_completion()
        assert len(done) == len(gs)
        by_uid = sorted(done, key=lambda i: i.uid)
        for inst, single in zip(by_uid, singles):
            triple_eq(inst.outcome(), single)

    def test_staggered_admission_is_bit_identical(self):
        # admit one instance every round into a half-drained batch: the
        # composition any instance sees changes every round, the result
        # must not
        gs = self.graphs()
        singles = [linial_vectorized(g, initial_colors=spread(g)) for g in gs]
        stepper = LinialBatchStepper()
        pending = [make_batch_instance(g, initial_colors=spread(g)) for g in gs]
        done = []
        while pending or not stepper.drained:
            if pending:
                stepper.admit(pending.pop(0))
            done.extend(stepper.step().finished)
        for inst, single in zip(sorted(done, key=lambda i: i.uid), singles):
            triple_eq(inst.outcome(), single)

    def test_faulty_instance_uses_local_round_clock(self):
        # a faulty instance admitted at global round 3 must replay the
        # same adversary its standalone run sees at round 0
        g = ring(12)
        single = linial_vectorized(g, initial_colors=spread(g), faults=DROPPY)
        stepper = LinialBatchStepper(
            [make_batch_instance(h, initial_colors=spread(h)) for h in self.graphs()]
        )
        for _ in range(3):
            stepper.step()
        late = stepper.admit(
            make_batch_instance(g, initial_colors=spread(g), faults=DROPPY)
        )
        while not late.finished:
            stepper.step()
        stepper.run_to_completion()
        triple_eq(late.outcome(), single)

    def test_crash_halts_instance_but_not_siblings(self):
        g = ring(12)
        with pytest.raises(HaltingError) as solo:
            linial_vectorized(g, initial_colors=spread(g), faults=CRASH)
        siblings = [
            make_batch_instance(h, initial_colors=spread(h))
            for h in self.graphs()
        ]
        doomed = make_batch_instance(g, initial_colors=spread(g), faults=CRASH)
        stepper = LinialBatchStepper(siblings + [doomed])
        done = stepper.run_to_completion()
        assert doomed in done
        # the halt is the same error the standalone run raises...
        assert isinstance(doomed.outcome(), HaltingError)
        assert str(doomed.outcome()) == str(solo.value)
        # ...and every sibling still finished with its standalone triple
        for sib, g_s in zip(siblings, self.graphs()):
            triple_eq(
                sib.outcome(), linial_vectorized(g_s, initial_colors=spread(g_s))
            )

    def test_empty_schedule_seals_at_admit(self):
        # identity colors on a small ring: m0 = n makes the schedule
        # empty, the instance must finish without occupying a slot
        stepper = LinialBatchStepper()
        inst = stepper.admit(make_batch_instance(ring(8)))
        assert stepper.occupancy == 0
        report = stepper.step()
        assert inst in report.finished
        triple_eq(inst.outcome(), linial_vectorized(ring(8)))

    def test_admitting_finished_instance_rejected(self):
        stepper = LinialBatchStepper()
        inst = stepper.admit(make_batch_instance(ring(8)))
        stepper.step()
        with pytest.raises(ValueError, match="already-finished"):
            stepper.admit(inst)


# ----------------------------------------------------------------------
# layer 2: the continuous-batching scheduler
# ----------------------------------------------------------------------
def request_for(n: int, *, rid: str, faults=None) -> ServeRequest:
    return ServeRequest(
        family="ring",
        family_params={"n": n},
        initial_colors={v: 64 * v for v in range(n)},
        faults=faults,
        request_id=rid,
    )


class TestContinuousBatcher:
    def test_rejects_non_serve_backend(self):
        with pytest.raises(CapabilityError, match="supports_serve"):
            ContinuousBatcher(ServeConfig(backend="reference"))

    def test_fifo_admission_order(self):
        async def scenario():
            batcher = ContinuousBatcher(ServeConfig(max_batch=2))
            futures = [
                batcher.submit(request_for(12, rid=f"r{i}")) for i in range(5)
            ]
            admitted = []
            while batcher.has_work:
                before = {t.request.request_id for t in batcher._resident.values()}
                batcher.tick()
                after = {t.request.request_id for t in batcher._resident.values()}
                admitted.extend(sorted(after - before, key=lambda r: int(r[1:])))
            await asyncio.sleep(0)
            assert admitted == [f"r{i}" for i in range(5)]
            assert all(f.done() for f in futures)

        asyncio.run(scenario())

    def test_eviction_refills_slot_from_queue(self):
        async def scenario():
            # max_batch=1: request 2 can only ever run after request 1's
            # eviction freed the single slot
            batcher = ContinuousBatcher(ServeConfig(max_batch=1))
            f1 = batcher.submit(request_for(8, rid="first"))
            f2 = batcher.submit(request_for(8, rid="second"))
            occupancies = []
            while batcher.has_work:
                batcher.tick()
                occupancies.append(batcher.stepper.occupancy)
            await asyncio.sleep(0)
            assert max(occupancies) <= 1
            assert (await f1).status == "ok"
            assert (await f2).status == "ok"
            # the second request entered strictly after the first left
            assert (await f2).batch["admitted_round"] >= (
                (await f1).batch["admitted_round"]
                + (await f1).batch["rounds_resident"]
            )

        asyncio.run(scenario())

    def test_crash_request_halts_while_siblings_complete(self):
        async def scenario():
            batcher = ContinuousBatcher(ServeConfig(max_batch=8))
            doomed = batcher.submit(
                request_for(12, rid="doomed", faults=CRASH.to_dict())
            )
            healthy = [
                batcher.submit(request_for(10 + 2 * i, rid=f"ok{i}"))
                for i in range(4)
            ]
            while batcher.has_work:
                batcher.tick()
            await asyncio.sleep(0)
            crashed = await doomed
            assert crashed.status == "halted"
            assert crashed.error["type"] == "HaltingError"
            for f in healthy:
                response = await f
                assert response.status == "ok"
                assert response.valid is True
            assert batcher.halted == 1
            assert batcher.served == len(healthy)

        asyncio.run(scenario())

    def test_malformed_request_fails_fast_without_queueing(self):
        async def scenario():
            batcher = ContinuousBatcher(ServeConfig(max_batch=4))
            future = batcher.submit(
                ServeRequest(family="no_such_family", family_params={})
            )
            assert future.done()
            assert batcher.queue_depth == 0
            response = await future
            assert response.status == "error"
            assert "no_such_family" in response.error["message"]

        asyncio.run(scenario())

    def test_stats_track_occupancy_and_latency(self):
        async def scenario():
            batcher = ContinuousBatcher(ServeConfig(max_batch=4))
            futures = [
                batcher.submit(request_for(12, rid=f"s{i}")) for i in range(6)
            ]
            while batcher.has_work:
                batcher.tick()
            await asyncio.gather(*futures)
            stats = batcher.stats()
            assert stats["backend"] == "batched"
            assert stats["served"] == 6
            assert stats["occupancy_stats"]["max_occupancy"] <= 4
            assert stats["latency"]["total"]["count"] == 6
            assert stats["latency"]["total"]["p50_ms"] >= 0

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# layer 3: the daemon over TCP
# ----------------------------------------------------------------------
class TestColoringServer:
    def test_burst_serves_valid_and_bit_identical(self):
        from repro.sim import linial_vectorized_batch

        requests = synth_requests(seed=3, count=24)

        async def scenario():
            server = ColoringServer(ServeConfig(max_batch=8))
            await server.start()
            try:
                return await fire_traffic(
                    "127.0.0.1", server.port, requests, clients=12
                )
            finally:
                await server.stop()

        report = asyncio.run(scenario())
        assert report.status_counts() == {"ok": len(requests)}
        assert all(r.valid is True for r in report.responses)
        offline = linial_vectorized_batch(
            [r.build_graph() for r in requests],
            initial_colors=[r.initial_colors for r in requests],
        )
        for request, (result, metrics, palette) in zip(requests, offline):
            served = report.response_for(request.request_id)
            assert served.assignment() == result.assignment
            assert served.palette == palette
            assert served.rounds == metrics.rounds
            assert served.total_bits == metrics.total_bits

    def test_protocol_aux_ops_and_bad_lines(self):
        async def scenario():
            server = ColoringServer(ServeConfig(max_batch=4))
            await server.start()
            client = ServeClient("127.0.0.1", server.port)
            try:
                assert await client.ping() is True
                # a malformed op answers as an error, connection survives
                reply = await client.request({"op": "transmogrify"})
                assert reply["status"] == "error"
                response = await client.color(request_for(10, rid="after-error"))
                assert response.status == "ok"
                stats = await client.stats()
                assert stats["served"] == 1
            finally:
                await client.close()
                await server.stop()

        asyncio.run(scenario())

    def test_crash_request_over_tcp_keeps_daemon_serving(self):
        async def scenario():
            server = ColoringServer(ServeConfig(max_batch=4))
            await server.start()
            client = ServeClient("127.0.0.1", server.port)
            try:
                crashed = await client.color(
                    request_for(12, rid="doomed", faults=CRASH.to_dict())
                )
                assert crashed.status == "halted"
                healthy = await client.color(request_for(12, rid="healthy"))
                assert healthy.status == "ok" and healthy.valid is True
            finally:
                await client.close()
                await server.stop()

        asyncio.run(scenario())

    def test_shutdown_op_releases_serve_forever(self):
        async def scenario():
            server = ColoringServer(ServeConfig(max_batch=2))
            await server.start()
            waiter = asyncio.create_task(server.serve_forever())
            client = ServeClient("127.0.0.1", server.port)
            await client.shutdown()
            await asyncio.wait_for(waiter, timeout=5)
            await server.stop()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# TrafficReport accounting (regressions for the silent-overwrite /
# inflated-rps / phantom-clients bugs)
# ----------------------------------------------------------------------
class TestTrafficReportAccounting:
    def make_response(self, rid, status="ok"):
        return ServeResponse(status=status, request_id=rid)

    def test_duplicate_request_ids_are_both_kept(self):
        # a daemon answering one id twice used to overwrite the first
        # response in a dict and look indistinguishable from correct
        from repro.serve import TrafficReport

        report = TrafficReport(clients=1, requests=2, wall_seconds=1.0)
        report.responses.extend(
            [self.make_response("dup"), self.make_response("dup", "error")]
        )
        assert report.completed == 2
        assert report.status_counts() == {"ok": 1, "error": 1}
        assert report.by_id() == {"dup": report.responses}
        with pytest.raises(ValueError, match="2 responses"):
            report.response_for("dup")
        with pytest.raises(KeyError):
            report.response_for("never-issued")

    def test_rps_counts_completed_not_issued(self):
        # 10 issued, 4 completed (1 errored): rps must not claim 5/s
        from repro.serve import TrafficReport

        report = TrafficReport(clients=2, requests=10, wall_seconds=2.0)
        report.responses.extend(
            [self.make_response(f"r{i}") for i in range(3)]
            + [self.make_response("r3", "error")]
        )
        assert report.completed == 4
        assert report.completed_ok == 3
        assert report.rps == pytest.approx(2.0)
        assert report.ok_rps == pytest.approx(1.5)

    def test_zero_wall_reports_zero_rates(self):
        from repro.serve import TrafficReport

        report = TrafficReport(clients=0, requests=0, wall_seconds=0.0)
        assert report.rps == 0.0 and report.ok_rps == 0.0

    def test_empty_burst_reports_zero_clients(self):
        # no server needed: an empty request set opens no connections,
        # and the report must say 0 clients, not echo the requested N
        report = asyncio.run(
            fire_traffic("127.0.0.1", 1, [], clients=50)
        )
        assert report.clients == 0
        assert report.requests == 0
        assert report.completed == 0
        assert report.status_counts() == {}

    def test_duplicate_ids_surface_through_fire_traffic(self):
        # end to end: the same request_id issued twice produces two
        # retained responses, and the unique lookup refuses to guess
        requests = [request_for(8, rid="twin"), request_for(8, rid="twin")]

        async def scenario():
            server = ColoringServer(ServeConfig(max_batch=4))
            await server.start()
            try:
                return await fire_traffic(
                    "127.0.0.1", server.port, requests, clients=2
                )
            finally:
                await server.stop()

        report = asyncio.run(scenario())
        assert report.completed == 2
        assert report.status_counts() == {"ok": 2}
        assert len(report.by_id()["twin"]) == 2
        with pytest.raises(ValueError, match="twin"):
            report.response_for("twin")


class TestFreshDaemonStats:
    def test_stats_is_clean_as_first_op(self):
        # a fresh daemon has empty latency/occupancy trackers; their
        # summaries must serialize through JSON and render without
        # KeyErrors before any request has been served
        async def scenario():
            server = ColoringServer(ServeConfig(max_batch=4))
            await server.start()
            client = ServeClient("127.0.0.1", server.port)
            try:
                return await client.stats()
            finally:
                await client.close()
                await server.stop()

        stats = asyncio.run(scenario())
        assert stats["served"] == 0
        assert stats["errors"] == 0
        assert stats["round_index"] == 0
        assert stats["queue_depth"] == 0
        # empty trackers summarize as bare counts — no percentile keys
        for kind in ("queue", "service", "total"):
            assert stats["latency"][kind] == {"count": 0}
        assert stats["occupancy_stats"] == {"rounds": 0}
        # the CLI smoke renderer's access pattern on the fresh tracker
        assert stats["occupancy_stats"].get("max_occupancy", 0) == 0


# ----------------------------------------------------------------------
# protocol + synthetic-traffic plumbing
# ----------------------------------------------------------------------
class TestProtocolRoundTrips:
    def test_request_round_trip(self):
        request = request_for(10, rid="rt", faults=CRASH.to_dict())
        assert ServeRequest.from_dict(request.to_dict()) == request

    def test_request_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            ServeRequest.from_dict({"family": "ring", "grpah": {}})

    def test_response_round_trip(self):
        response = ServeResponse(
            status="ok",
            request_id="x",
            colors={"0": 1, "1": 0},
            palette=4,
            rounds=2,
            total_bits=96,
            valid=True,
            timing={"total_ms": 1.5},
            batch={"admitted_round": 3, "rounds_resident": 2},
        )
        again = ServeResponse.from_dict(response.to_dict())
        assert again == response
        assert again.assignment() == {0: 1, 1: 0}

    def test_response_rejects_foreign_protocol(self):
        with pytest.raises(ValueError, match="protocol"):
            ServeResponse.from_dict({"protocol": 99, "status": "ok"})

    def test_synth_requests_are_pinned(self):
        a = synth_requests(seed=5, count=10)
        b = synth_requests(seed=5, count=10)
        assert a == b
        assert a != synth_requests(seed=6, count=10)
        # every request builds a real graph whose node set matches its
        # spread initial coloring
        for request in a:
            g = request.build_graph()
            assert set(request.initial_colors) == set(g.nodes)


# ----------------------------------------------------------------------
# the serving observability primitives
# ----------------------------------------------------------------------
class TestServingObs:
    def test_quantile_interpolates(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert quantile(samples, 0.0) == 1.0
        assert quantile(samples, 1.0) == 4.0
        assert quantile(samples, 0.5) == 2.5

    def test_quantile_rejects_bad_input(self):
        with pytest.raises(ValueError, match="empty"):
            quantile([], 0.5)
        with pytest.raises(ValueError, match="fraction"):
            quantile([1.0], 1.5)

    def test_latency_tracker_summary(self):
        tracker = LatencyTracker()
        for s in (0.010, 0.020, 0.030):
            tracker.add(s)
        summary = tracker.summary()
        assert summary["count"] == 3
        assert summary["p50_ms"] == pytest.approx(20.0)
        assert summary["max_ms"] == pytest.approx(30.0)
        assert LatencyTracker().summary() == {"count": 0}

    def test_occupancy_tracker_summary(self):
        tracker = OccupancyTracker()
        tracker.on_round(queue_depth=3, occupancy=2)
        tracker.on_round(queue_depth=1, occupancy=4)
        summary = tracker.summary()
        assert summary["rounds"] == 2
        assert summary["max_queue_depth"] == 3
        assert summary["mean_occupancy"] == pytest.approx(3.0)
        assert OccupancyTracker().summary() == {"rounds": 0}
