"""Quality gate: every public symbol carries a docstring.

A reproduction repo lives or dies by its documentation; this test walks
the public API (everything re-exported by the package ``__init__``
modules) and fails on undocumented functions/classes, keeping the
generated docs/API.md free of "(undocumented)" holes.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.graphs",
    "repro.sim",
    "repro.obs",
    "repro.serve",
    "repro.algorithms",
    "repro.analysis",
    "repro.scenarios",
    "repro.io",
    "repro.exceptions",
    "repro.paper_map",
]


def public_symbols():
    out = []
    for dotted in PACKAGES:
        module = importlib.import_module(dotted)
        names = getattr(module, "__all__", None)
        if names is None:
            names = [
                n
                for n, o in vars(module).items()
                if not n.startswith("_")
                and getattr(o, "__module__", "").startswith("repro")
            ]
        for name in names:
            obj = getattr(module, name, None)
            if obj is None or inspect.ismodule(obj):
                continue
            if inspect.isclass(obj) or inspect.isroutine(obj):
                out.append((f"{dotted}.{name}", obj))
    # dedupe by object identity
    seen = set()
    uniq = []
    for label, obj in out:
        if id(obj) not in seen:
            seen.add(id(obj))
            uniq.append((label, obj))
    return uniq


@pytest.mark.parametrize(
    "label,obj", public_symbols(), ids=[label for label, _ in public_symbols()]
)
def test_public_symbol_documented(label, obj):
    doc = inspect.getdoc(obj)
    assert doc and doc.strip(), f"{label} has no docstring"


def test_public_methods_documented_on_key_classes():
    """Core data classes must document each public method."""
    from repro.core import ColoringResult, ColorSpace, EdgeOrientation, ListDefectiveInstance
    from repro.sim import RunMetrics, Trace

    missing = []
    for cls in (ColoringResult, ColorSpace, EdgeOrientation, ListDefectiveInstance, RunMetrics, Trace):
        for name, fn in vars(cls).items():
            if name.startswith("_") or not inspect.isroutine(fn):
                continue
            if not inspect.getdoc(fn):
                missing.append(f"{cls.__name__}.{name}")
    assert not missing, f"undocumented methods: {missing}"
