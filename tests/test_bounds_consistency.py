"""Measured costs vs the theoretical bound formulas (generous constants).

Each theorem's implementation must stay within a constant multiple of its
own bound formula from :mod:`repro.analysis.bounds` on moderate inputs —
tying the formula module to the implementations so neither can silently
drift from the paper.
"""

import math

import pytest

from repro.analysis.bounds import (
    kappa_theorem_1_1,
    log_star,
    theorem_1_1_message_bits,
    theorem_1_4_rounds,
)
from repro.core import degree_plus_one_instance
from repro.graphs import random_regular
from repro.algorithms import congest_delta_plus_one, run_linial, solve_oldc_main

from .test_oldc_basic import make_oldc_instance


class TestLinialBounds:
    @pytest.mark.parametrize("n", [128, 1024, 8192])
    def test_rounds_within_logstar(self, n):
        from repro.graphs import ring

        _res, metrics, _p = run_linial(ring(n))
        assert metrics.rounds <= log_star(n) + 1

    def test_palette_within_constant_of_delta_squared(self):
        g = random_regular(2048, 8, seed=701)
        _res, _m, palette = run_linial(g)
        assert palette <= 8 * 8 * 8  # generous: O(Delta^2) with constant 8


class TestTheorem11Bounds:
    def test_rounds_within_log_beta(self):
        _g, inst, init = make_oldc_instance(n=60, seed=703)
        _res, metrics, _rep = solve_oldc_main(inst, init)
        beta = inst.max_outdegree
        assert metrics.rounds <= 16 * math.log2(max(2, beta)) + 16

    def test_message_bits_within_formula(self):
        _g, inst, init = make_oldc_instance(n=60, seed=705)
        _res, metrics, _rep = solve_oldc_main(inst, init)
        bound = theorem_1_1_message_bits(
            inst.space.size, inst.max_list_size, inst.max_outdegree, inst.n
        )
        assert metrics.max_message_bits <= 4 * bound + 64

    def test_kappa_formula_monotone_grid(self):
        vals = [
            kappa_theorem_1_1(b, c, m)
            for b in (4, 64, 1024)
            for c in (16, 4096)
            for m in (16, 4096)
        ]
        assert all(v > 0 for v in vals)
        assert kappa_theorem_1_1(1024, 4096, 4096) == max(vals)


class TestTheorem14Bounds:
    @pytest.mark.parametrize("delta", [8, 16, 32])
    def test_rounds_within_formula_scaled(self, delta):
        """Measured rounds stay below the Theorem 1.4 formula value.

        The formula's polylog factors are enormous (log^6 log Delta), so at
        laptop scale it upper-bounds the measured pipeline by a wide
        margin; the test pins that ordering (a regression that blew up the
        pipeline 10x would cross it).
        """
        n = max(6 * delta, 64)
        g = random_regular(n, delta, seed=707)
        _res, metrics, _rep = congest_delta_plus_one(g)
        assert metrics.rounds <= theorem_1_4_rounds(delta, n)

    def test_message_bits_within_congest(self):
        g = random_regular(192, 24, seed=709)
        _res, metrics, _rep = congest_delta_plus_one(g)
        assert metrics.compliant_with(192)


class TestCrossAlgorithmOrdering:
    def test_randomized_fewer_rounds_than_deterministic(self):
        """The paper's framing: randomized O(log n) beats the deterministic
        f(Delta) algorithms at moderate Delta — measured ordering."""
        from repro.algorithms import randomized_list_coloring

        g = random_regular(96, 16, seed=711)
        inst = degree_plus_one_instance(g)
        _r1, m_rand = randomized_list_coloring(inst, seed=1)
        _r2, m_det, _rep = congest_delta_plus_one(g)
        assert m_rand.rounds < m_det.rounds
