"""Tests for the documentation tooling and repo-level doc invariants."""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load_gen_api_docs():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", REPO / "tools" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestApiDocGenerator:
    def test_generates_all_packages(self, tmp_path):
        gen = load_gen_api_docs()
        out = tmp_path / "API.md"
        rc = gen.main(["gen_api_docs.py", str(out)])
        assert rc == 0
        text = out.read_text()
        for pkg in gen.PACKAGES:
            assert f"## `{pkg}`" in text

    def test_deterministic(self, tmp_path):
        gen = load_gen_api_docs()
        a, b = tmp_path / "a.md", tmp_path / "b.md"
        gen.main(["x", str(a)])
        gen.main(["x", str(b)])
        assert a.read_text() == b.read_text()

    def test_first_paragraph_helper(self):
        gen = load_gen_api_docs()
        assert gen.first_paragraph(None) == "(undocumented)"
        assert gen.first_paragraph("One.\n\nTwo.") == "One."
        assert gen.first_paragraph("  spread\n  over lines\n\nrest") == (
            "spread over lines"
        )

    def test_committed_docs_fresh_enough(self):
        """docs/API.md must exist and mention the main entry points."""
        text = (REPO / "docs" / "API.md").read_text()
        for needle in (
            "congest_delta_plus_one",
            "solve_oldc_main",
            "solve_list_arbdefective",
            "ListDefectiveInstance",
        ):
            assert needle in text, f"{needle} missing from docs/API.md"


class TestRepoDocs:
    def test_design_lists_all_experiments(self):
        text = (REPO / "DESIGN.md").read_text()
        from repro.experiments import EXPERIMENTS

        for eid in EXPERIMENTS:
            assert eid in text, f"{eid} missing from DESIGN.md"

    def test_experiments_md_covers_ids(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        from repro.experiments import EXPERIMENTS

        for eid in EXPERIMENTS:
            assert f"## {eid}" in text or f"| {eid}" in text, (
                f"{eid} missing from EXPERIMENTS.md"
            )

    def test_readme_quickstart_runs(self):
        """The README quickstart snippet must stay executable."""
        import repro

        g = repro.graphs.gnp(20, 0.3, seed=1)
        coloring, metrics, report = repro.algorithms.congest_delta_plus_one(g)
        inst = repro.degree_plus_one_instance(g)
        assert repro.validate_ldc(inst, coloring)
