"""Tests for the comparison tooling and its CLI subcommand."""

import pytest

from repro.analysis.compare import compare_algorithms, render_comparison
from repro.graphs import random_regular, ring


class TestCompare:
    def test_all_rows_valid(self):
        g = random_regular(24, 4, seed=611)
        rows = compare_algorithms(g)
        assert all(r.valid for r in rows)
        assert len(rows) == len(set(r.algorithm for r in rows))

    def test_sorted_by_rounds(self):
        g = ring(16)
        rows = compare_algorithms(g)
        assert [r.rounds for r in rows] == sorted(r.rounds for r in rows)

    def test_subset_selection(self):
        g = ring(12)
        rows = compare_algorithms(g, names=["classic", "thm14"])
        assert {r.algorithm for r in rows} == {"classic", "thm14"}

    def test_render_contains_all(self):
        g = ring(12)
        rows = compare_algorithms(g, names=["classic", "thm14"])
        out = render_comparison(g, rows)
        assert "classic" in out and "thm14" in out and "Delta=2" in out

    def test_unknown_name_rejected(self):
        g = ring(12)
        with pytest.raises(KeyError):
            compare_algorithms(g, names=["ghost"])

    def test_mis_flagged_non_congest(self):
        # the product-graph MIS ships Theta(Delta log) aggregates: it must
        # show as non-compliant on a dense enough graph
        g = random_regular(48, 8, seed=612)
        rows = compare_algorithms(g, names=["mis", "thm14"])
        by_name = {r.algorithm: r for r in rows}
        assert not by_name["mis"].congest_ok
        assert by_name["thm14"].congest_ok


class TestCompareCLI:
    def test_compare_command(self, capsys):
        from repro.cli import main

        rc = main(["compare", "--family", "ring", "--n", "12",
                   "--algorithms", "classic,thm14"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "scorecard" in out
        assert "thm14" in out
