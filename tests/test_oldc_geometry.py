"""Unit tests for MainOLDC's round geometry and BasicOLDC's layout.

The phase layouts are load-bearing (a node firing one round early sees a
stale neighborhood); these tests pin the arithmetic independently of any
end-to-end run.
"""

from repro.algorithms.oldc_main import MainOLDC


class TestMainOLDCGeometry:
    def test_phase_one_rounds_disjoint_per_class(self):
        h = 5
        seen = set()
        for i in range(1, h + 1):
            t, c = MainOLDC._type_round(i), MainOLDC._cset_round(i)
            assert c == t + 1
            assert t not in seen and c not in seen
            seen.update((t, c))
        assert max(seen) == 2 * h - 1  # phase I occupies rounds 0..2h-1

    def test_phase_two_after_phase_one(self):
        h = 5
        for i in range(1, h + 1):
            fire = MainOLDC._fire_round(i, h)
            assert fire >= 2 * h
            # descending: higher classes fire earlier
            if i < h:
                assert fire > MainOLDC._fire_round(i + 1, h)

    def test_highest_class_fires_first_lowest_last(self):
        h = 7
        assert MainOLDC._fire_round(h, h) == 2 * h
        assert MainOLDC._fire_round(1, h) == 3 * h - 1

    def test_pick_round_precedes_fire_and_follows_types(self):
        """A node picks in receive of fire-1; every type/cset round of every
        class must come strictly before any fire round."""
        h = 4
        last_phase1 = MainOLDC._cset_round(h)
        first_fire = MainOLDC._fire_round(h, h)
        assert last_phase1 < first_fire

    def test_lower_class_announced_before_higher_class_filter(self):
        """Class j < i announces C_u (round 2j-1) before class i builds its
        filtered type (round 2i-2)."""
        h = 6
        for i in range(2, h + 1):
            for j in range(1, i):
                assert MainOLDC._cset_round(j) < MainOLDC._type_round(i)


class TestBasicOLDCGeometry:
    def test_fire_rounds_descend_with_class(self):
        # BasicOLDC: class i fires at 2 + (h - i)
        h = 5
        fires = [2 + (h - i) for i in range(1, h + 1)]
        assert fires == sorted(fires, reverse=True)
        assert min(fires) == 2  # highest class right after the two exchanges
