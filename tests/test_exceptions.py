"""Typed-exception contract tests."""

import pytest

from repro import ConditionViolation, ProtocolError, ReproError, ScheduleError
from repro.core import ColorSpace, uniform_instance
from repro.core.adversarial import same_list_clique
from repro.graphs import clique, ring
from repro.algorithms import solve_arbdefective_euler, solve_ldc_potential, solve_list_arbdefective


class TestHierarchy:
    def test_all_are_repro_errors(self):
        for exc in (ConditionViolation, ProtocolError, ScheduleError):
            assert issubclass(exc, ReproError)

    def test_backward_compatible_bases(self):
        assert issubclass(ConditionViolation, ValueError)
        assert issubclass(ProtocolError, ValueError)
        assert issubclass(ScheduleError, RuntimeError)


class TestRaised:
    def test_eq1_violation_typed(self):
        inst = uniform_instance(clique(7), ColorSpace(3), range(3), 1)
        with pytest.raises(ConditionViolation):
            solve_ldc_potential(inst)

    def test_eq2_violation_typed(self):
        inst = uniform_instance(clique(7), ColorSpace(2), range(2), 1)
        with pytest.raises(ConditionViolation):
            solve_arbdefective_euler(inst)

    def test_congest_precondition_typed(self):
        from repro.algorithms import congest_degree_plus_one

        inst = uniform_instance(clique(5), ColorSpace(3), range(3), 0)
        with pytest.raises(ConditionViolation):
            congest_degree_plus_one(inst)

    def test_schedule_error_typed(self):
        inst = same_list_clique(6, colors=2, defect=0)
        with pytest.raises(ScheduleError):
            solve_list_arbdefective(inst)

    def test_protocol_error_typed(self):
        from repro.sim import DistributedAlgorithm, Message, SyncNetwork

        class Bad(DistributedAlgorithm):
            def init_state(self, view):
                return {}

            def send(self, view, state, rnd):
                return {(view.id + 2) % 5: Message(0)}

            def is_done(self, view, state):
                return False

        with pytest.raises(ProtocolError):
            SyncNetwork(ring(5)).run(Bad())
