"""Tests for the algorithm registry, the engine-backend registry
(:mod:`repro.sim.backends`), and their CLI integration."""

import pytest

from repro.core import validate_proper_coloring
from repro.graphs import gnp, random_regular
from repro.algorithms.registry import algorithm_names, get, run


class TestRegistry:
    def test_names_sorted(self):
        names = algorithm_names()
        assert names == sorted(names)
        assert "thm14" in names and "classic" in names

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get("quantum")

    @pytest.mark.parametrize("name", algorithm_names())
    def test_every_entry_runs_and_is_proper(self, name):
        g = random_regular(24, 4, seed=601)
        res, metrics = run(name, g)
        validate_proper_coloring(g, res).raise_if_invalid()
        assert metrics.rounds >= 0

    @pytest.mark.parametrize("name", algorithm_names())
    def test_palette_guarantee_honored(self, name):
        g = gnp(30, 0.25, seed=602)
        delta = max(d for _, d in g.degree)
        res, _m = run(name, g)
        info = get(name)
        bound = delta + 1 if info.palette == "Delta+1" else 2 * delta + 1
        assert res.num_colors() <= bound

    def test_deterministic_flags_accurate(self):
        g = gnp(24, 0.3, seed=603)
        for name in algorithm_names():
            info = get(name)
            if info.deterministic:
                a = run(name, g)[0].assignment
                b = run(name, g)[0].assignment
                assert a == b, f"{name} flagged deterministic but differs"


class TestBackendRegistry:
    def test_unknown_backend_is_structured_error(self):
        from repro.sim.backends import (
            BackendError,
            UnknownBackendError,
            get_backend,
        )

        with pytest.raises(UnknownBackendError, match="unknown backend"):
            get_backend("quantum")
        # structured, never a bare KeyError
        assert not issubclass(UnknownBackendError, KeyError)
        assert issubclass(UnknownBackendError, BackendError)

    def test_every_backend_declares_every_algorithm(self):
        from repro.sim.backends import ALGORITHMS, BACKENDS

        for spec in BACKENDS.values():
            for algorithm in ALGORITHMS:
                spec.algorithm_support(algorithm)  # must not raise

    def test_require_rejects_unsupported_algorithm(self):
        from repro.sim.backends import CapabilityError, require

        with pytest.raises(CapabilityError, match="does not support algorithm"):
            require("compiled", algorithm="classic")
        assert require("compiled", algorithm="linial").name == "compiled"

    def test_require_rejects_capability_mismatches(self):
        from repro.sim.backends import CapabilityError, require

        with pytest.raises(CapabilityError, match="fault injection"):
            require("compiled", faults=True)
        with pytest.raises(CapabilityError, match="batched execution"):
            require("reference", batch=True)
        assert require("vectorized", faults=True, batch=True).name == "vectorized"

    def test_unavailable_backend_still_resolves(self):
        """Graceful degradation: the compiled backend resolves whether or
        not numba is importable — availability is reporting, not gating."""
        from repro.sim.backends import get_backend, require
        from repro.sim.compiled import NUMBA_AVAILABLE

        spec = require("compiled", algorithm="linial", batch=True)
        assert spec.available is NUMBA_AVAILABLE
        if not spec.available:
            assert "numpy fallback" in (spec.unavailable_reason or "")
        assert get_backend("compiled") is spec

    def test_describe_reports_availability(self):
        from repro.sim.backends import describe
        from repro.sim.compiled import NUMBA_AVAILABLE

        text = describe()
        for name in ("reference", "vectorized", "batched", "compiled"):
            assert f"{name}: " in text
        expected = "available" if NUMBA_AVAILABLE else "unavailable"
        assert f"compiled: {expected}" in text

    def test_sweep_algorithm_ownership(self):
        from repro.sim.backends import (
            UnknownBackendError,
            backend_of_sweep_algorithm,
        )

        assert backend_of_sweep_algorithm("linial_vectorized").name == "vectorized"
        assert backend_of_sweep_algorithm("linial_compiled").name == "compiled"
        assert backend_of_sweep_algorithm("linial").name == "reference"
        with pytest.raises(UnknownBackendError, match="no backend declares"):
            backend_of_sweep_algorithm("linial_quantum")

    def test_batchable_sweep_algorithms_drive_sweep(self):
        from repro.experiments.sweep import BATCHABLE_ALGORITHMS
        from repro.sim.backends import batchable_sweep_algorithms

        derived = batchable_sweep_algorithms()
        assert BATCHABLE_ALGORITHMS == derived
        assert "linial_compiled" in derived

    def test_consistency_report_is_green(self):
        """The cross-module audit: every name list the registry replaced
        (fuzz pairs, batched dispatch, sweep batchables/dispatch, analysis
        pairs, generator space) agrees with the declarations."""
        from repro.sim.backends import consistency_report

        report = consistency_report()
        assert report["problems"] == []
        assert report["ok"] is True

    def test_pairs_for_backend_resolution(self):
        from repro.fuzz import (
            COMPILED_PAIRS,
            ENGINE_PAIRS,
            PARTITIONED_PAIRS,
            pairs_for_backend,
        )
        from repro.sim.backends import CapabilityError, UnknownBackendError

        assert pairs_for_backend("vectorized") is ENGINE_PAIRS
        assert pairs_for_backend("batched") is ENGINE_PAIRS
        assert pairs_for_backend("compiled") is COMPILED_PAIRS
        assert pairs_for_backend("partitioned") is PARTITIONED_PAIRS
        with pytest.raises(CapabilityError, match="baseline"):
            pairs_for_backend("reference")
        with pytest.raises(UnknownBackendError):
            pairs_for_backend("quantum")

    def test_partitioned_backend_capabilities(self):
        from repro.sim.backends import CapabilityError, get_backend, require

        spec = get_backend("partitioned")
        assert spec.bit_identical_to == "vectorized"
        assert require("partitioned", algorithm="linial") is spec
        with pytest.raises(CapabilityError, match="does not support algorithm"):
            require("partitioned", algorithm="classic")
        with pytest.raises(CapabilityError, match="fault injection"):
            require("partitioned", faults=True)
        with pytest.raises(CapabilityError, match="batched execution"):
            require("partitioned", batch=True)

    def test_cli_backends_subcommand(self, capsys):
        from repro.cli import main

        rc = main(["backends"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "registry consistency: OK" in out
        assert "compiled" in out

    def test_cli_fuzz_rejects_unknown_backend(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown backend"):
            main(["fuzz", "--backend", "quantum", "--iterations", "1"])


class TestCLIAlgorithmFlag:
    @pytest.mark.parametrize("name", ["thm14", "classic", "bar16", "linear"])
    def test_color_with_algorithm(self, name, capsys):
        from repro.cli import main

        rc = main(["color", "--family", "ring", "--n", "10", "--algorithm", name])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"algorithm={name}" in out
        assert "valid=True" in out

    def test_invalid_algorithm_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["color", "--family", "ring", "--n", "10", "--algorithm", "nope"])
