"""Tests for the algorithm registry and its CLI integration."""

import pytest

from repro.core import validate_proper_coloring
from repro.graphs import gnp, random_regular
from repro.algorithms.registry import algorithm_names, get, run


class TestRegistry:
    def test_names_sorted(self):
        names = algorithm_names()
        assert names == sorted(names)
        assert "thm14" in names and "classic" in names

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get("quantum")

    @pytest.mark.parametrize("name", algorithm_names())
    def test_every_entry_runs_and_is_proper(self, name):
        g = random_regular(24, 4, seed=601)
        res, metrics = run(name, g)
        validate_proper_coloring(g, res).raise_if_invalid()
        assert metrics.rounds >= 0

    @pytest.mark.parametrize("name", algorithm_names())
    def test_palette_guarantee_honored(self, name):
        g = gnp(30, 0.25, seed=602)
        delta = max(d for _, d in g.degree)
        res, _m = run(name, g)
        info = get(name)
        bound = delta + 1 if info.palette == "Delta+1" else 2 * delta + 1
        assert res.num_colors() <= bound

    def test_deterministic_flags_accurate(self):
        g = gnp(24, 0.3, seed=603)
        for name in algorithm_names():
            info = get(name)
            if info.deterministic:
                a = run(name, g)[0].assignment
                b = run(name, g)[0].assignment
                assert a == b, f"{name} flagged deterministic but differs"


class TestCLIAlgorithmFlag:
    @pytest.mark.parametrize("name", ["thm14", "classic", "bar16", "linear"])
    def test_color_with_algorithm(self, name, capsys):
        from repro.cli import main

        rc = main(["color", "--family", "ring", "--n", "10", "--algorithm", name])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"algorithm={name}" in out
        assert "valid=True" in out

    def test_invalid_algorithm_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["color", "--family", "ring", "--n", "10", "--algorithm", "nope"])
