"""Tests for Corollary 4.1 support and the ablation flags."""

import pytest

from repro.core.validate import validate_generalized_oldc, validate_ldc, validate_oldc
from repro.core.instance import degree_plus_one_instance
from repro.graphs import random_regular
from repro.algorithms.colorspace_reduction import (
    corollary_4_1_p,
    solve_with_corollary_4_1,
)
from repro.algorithms.arblist import solve_list_arbdefective
from repro.algorithms.oldc_basic import solve_oldc_basic
from repro.algorithms.oldc_main import solve_oldc_main

from .test_oldc_basic import make_oldc_instance


class TestCorollary41:
    def test_p_formula_monotone(self):
        assert corollary_4_1_p(4, 2.0) <= corollary_4_1_p(256, 2.0)
        assert corollary_4_1_p(64, 2.0) <= corollary_4_1_p(64, 64.0)

    def test_p_formula_value(self):
        # 2^sqrt(log2(16)*log2(4)) = 2^sqrt(8) ~ 7.1
        assert corollary_4_1_p(16, 4.0) == 7

    def test_p_invalid(self):
        with pytest.raises(ValueError):
            corollary_4_1_p(0, 2.0)
        with pytest.raises(ValueError):
            corollary_4_1_p(4, 0.5)

    def test_solve_valid(self):
        _g, inst, init = make_oldc_instance(n=40, seed=121, slack=40.0)

        def base(instance, init_coloring):
            return solve_oldc_main(instance, init_coloring)

        res, metrics, rep = solve_with_corollary_4_1(inst, init, base, kappa=4.0)
        validate_oldc(inst, res).raise_if_invalid()
        assert rep.p >= 2


class TestAblationFlags:
    def test_congruence_off_still_runs(self):
        _g, inst, init = make_oldc_instance(n=30, seed=123, slack=40.0)
        res, _m, _rep = solve_oldc_basic(
            inst, init, g=1, use_congruence=False
        )
        # output is still a list coloring (validity of g-defects may degrade)
        for v in inst.graph.nodes:
            assert res.assignment[v] in inst.lists[v]

    def test_congruence_on_is_default_and_valid(self):
        _g, inst, init = make_oldc_instance(n=30, seed=123, slack=40.0)
        res, _m, _rep = solve_oldc_basic(inst, init, g=1)
        validate_generalized_oldc(inst, res, g=1).raise_if_invalid()

    def test_decline_off_can_break_validity_or_not(self):
        # With the audit off the output *may* be invalid; with it on the
        # output must always be valid — run both on the same instance.
        g = random_regular(80, 8, seed=125)
        inst = degree_plus_one_instance(g)
        res_on, _m1, rep_on = solve_list_arbdefective(inst, decline_violators=True)
        assert validate_ldc(inst, res_on).ok
        res_off, _m2, rep_off = solve_list_arbdefective(inst, decline_violators=False)
        assert rep_off.declined == 0  # audit disabled records nothing
