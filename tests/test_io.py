"""Serialization round-trip tests (repro.io)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ColorSpace, degree_plus_one_instance, uniform_instance
from repro.core.instance import random_list_defective_instance
from repro.core.validate import validate_ldc
from repro.graphs import gnp, ring
from repro.algorithms import solve_list_arbdefective
from repro.io import (
    coloring_from_dict,
    coloring_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_run,
    save_instance,
    save_run,
)


def instances_equal(a, b) -> bool:
    return (
        a.directed == b.directed
        and sorted(a.graph.nodes) == sorted(b.graph.nodes)
        and sorted(map(tuple, map(sorted, a.graph.edges)))
        == sorted(map(tuple, map(sorted, b.graph.edges)))
        and a.space.size == b.space.size
        and a.space.offset == b.space.offset
        and a.lists == b.lists
        and a.defects == b.defects
    )


class TestInstanceRoundTrip:
    def test_undirected(self):
        inst = uniform_instance(ring(6), ColorSpace(4), range(4), 1)
        back = instance_from_dict(instance_to_dict(inst))
        assert instances_equal(inst, back)

    def test_directed(self):
        inst = uniform_instance(ring(6), ColorSpace(4), range(4), 1).to_oriented()
        back = instance_from_dict(instance_to_dict(inst))
        assert back.directed
        assert instances_equal(inst, back)

    def test_offset_space(self):
        inst = uniform_instance(ring(4), ColorSpace(3, offset=10), range(10, 13), 0)
        back = instance_from_dict(instance_to_dict(inst))
        assert back.space.offset == 10

    def test_file_round_trip(self, tmp_path):
        inst = degree_plus_one_instance(gnp(15, 0.3, seed=3))
        path = tmp_path / "inst.json"
        save_instance(inst, path)
        assert instances_equal(inst, load_instance(path))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_round_trip(self, seed):
        rng = random.Random(seed)
        inst = random_list_defective_instance(
            gnp(10, 0.4, seed=seed), ColorSpace(30), 4, 3, rng
        )
        assert instances_equal(inst, instance_from_dict(instance_to_dict(inst)))


class TestColoringRoundTrip:
    def test_plain(self):
        from repro.core.coloring import ColoringResult

        res = ColoringResult({0: 1, 1: 2})
        back = coloring_from_dict(coloring_to_dict(res))
        assert back.assignment == res.assignment
        assert back.orientation is None

    def test_with_orientation(self):
        from repro.core.coloring import ColoringResult, EdgeOrientation

        ori = EdgeOrientation({(0, 1), (2, 1)})
        res = ColoringResult({0: 1, 1: 2, 2: 1}, ori)
        back = coloring_from_dict(coloring_to_dict(res))
        assert back.orientation.arcs == ori.arcs


class TestRunRecord:
    def test_full_run_round_trip(self, tmp_path):
        g = gnp(15, 0.3, seed=5)
        inst = degree_plus_one_instance(g)
        res, metrics, _rep = solve_list_arbdefective(inst)
        path = tmp_path / "run.json"
        save_run(inst, res, metrics, path, info={"algorithm": "thm13"})
        inst2, res2, record = load_run(path)
        assert instances_equal(inst, inst2)
        assert res2.assignment == res.assignment
        assert record["info"]["algorithm"] == "thm13"
        assert record["metrics"]["rounds"] == metrics.rounds
        # the reloaded solution still validates against the reloaded instance
        validate_ldc(inst2, res2).raise_if_invalid()

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other"}')
        with pytest.raises(ValueError):
            load_run(path)


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        from repro.io import load_graph_edgelist, save_graph_edgelist

        g = gnp(20, 0.2, seed=9)
        path = tmp_path / "g.edges"
        save_graph_edgelist(g, path)
        back = load_graph_edgelist(path)
        assert sorted(back.nodes) == sorted(g.nodes)
        assert sorted(map(tuple, map(sorted, back.edges))) == sorted(
            map(tuple, map(sorted, g.edges))
        )

    def test_isolated_nodes_preserved(self, tmp_path):
        import networkx as nx

        from repro.io import load_graph_edgelist, save_graph_edgelist

        g = nx.Graph()
        g.add_nodes_from(range(5))
        g.add_edge(0, 1)
        path = tmp_path / "g.edges"
        save_graph_edgelist(g, path)
        assert load_graph_edgelist(path).number_of_nodes() == 5

    def test_bad_line_rejected(self, tmp_path):
        from repro.io import load_graph_edgelist

        path = tmp_path / "bad.edges"
        path.write_text("0 1\njunk\n")
        with pytest.raises(ValueError):
            load_graph_edgelist(path)

    def test_cli_graph_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import save_graph_edgelist

        g = ring(12)
        path = tmp_path / "ring.edges"
        save_graph_edgelist(g, path)
        rc = main(["color", "--graph-file", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "n=12" in out and "valid=True" in out
