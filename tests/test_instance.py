"""Unit tests for repro.core.instance."""

import random

import networkx as nx
import pytest

from repro.core import ColorSpace
from repro.core.instance import (
    ListDefectiveInstance,
    PartialColoring,
    degree_plus_one_instance,
    delta_plus_one_instance,
    random_list_defective_instance,
    scaled_budget_instance,
    uniform_instance,
)
from repro.graphs import clique, ring, star


def small_instance():
    g = ring(5)
    return uniform_instance(g, ColorSpace(4), range(4), 1)


class TestConstruction:
    def test_lists_sorted_and_deduped(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        inst = ListDefectiveInstance(
            g,
            ColorSpace(5),
            {0: (3, 1, 3), 1: (0, 2)},
            {0: {1: 0, 3: 1}, 1: {0: 0, 2: 0}},
        )
        assert inst.lists[0] == (1, 3)

    def test_missing_list_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        with pytest.raises(ValueError):
            ListDefectiveInstance(g, ColorSpace(3), {0: (0,)}, {0: {0: 0}})

    def test_defect_keys_must_match_list(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(ValueError):
            ListDefectiveInstance(g, ColorSpace(3), {0: (0, 1)}, {0: {0: 0}})

    def test_color_outside_space_rejected(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(ValueError):
            ListDefectiveInstance(g, ColorSpace(2), {0: (5,)}, {0: {5: 0}})

    def test_negative_defect_rejected(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(ValueError):
            ListDefectiveInstance(g, ColorSpace(2), {0: (1,)}, {0: {1: -1}})


class TestAccessors:
    def test_degrees(self):
        inst = small_instance()
        assert inst.max_degree == 2
        assert inst.degree(0) == 2
        assert not inst.directed

    def test_outdegree_requires_directed(self):
        inst = small_instance()
        with pytest.raises(ValueError):
            inst.outdegree(0)

    def test_oriented_view(self):
        inst = small_instance().to_oriented()
        assert inst.directed
        # bidirecting a ring: every node has outdegree 2
        assert all(inst.outdegree(v) == 2 for v in inst.graph.nodes)
        assert inst.max_outdegree == 2

    def test_outdegree_clamped_to_one(self):
        dg = nx.DiGraph()
        dg.add_edge(0, 1)
        inst = ListDefectiveInstance(
            dg, ColorSpace(2), {0: (0,), 1: (1,)}, {0: {0: 0}, 1: {1: 0}}
        )
        assert inst.outdegree(1) == 1  # sink clamped

    def test_defect_weight(self):
        inst = small_instance()
        # 4 colors, defect 1 each: sum (d+1) = 8, sum (d+1)^2 = 16
        assert inst.defect_weight(0, 1.0) == 8
        assert inst.defect_weight(0, 2.0) == 16

    def test_max_list_size(self):
        inst = small_instance()
        assert inst.max_list_size == 4


class TestTransformations:
    def test_restrict_nodes(self):
        inst = small_instance()
        sub = inst.restrict([0, 1, 2])
        assert sorted(sub.graph.nodes) == [0, 1, 2]
        assert sub.graph.number_of_edges() == 2

    def test_restrict_colors(self):
        inst = small_instance()
        sub = inst.restrict(keep_color=lambda v, x: x % 2 == 0)
        assert sub.lists[0] == (0, 2)
        assert set(sub.defects[0]) == {0, 2}

    def test_copy_is_deep_enough(self):
        inst = small_instance()
        cp = inst.copy()
        cp.defects[0][0] = 99
        assert inst.defects[0][0] == 1


class TestBuilders:
    def test_delta_plus_one(self):
        inst = delta_plus_one_instance(star(6))
        assert inst.space.size == 6  # Delta = 5
        assert all(len(inst.lists[v]) == 6 for v in inst.graph.nodes)
        assert all(d == 0 for dv in inst.defects.values() for d in dv.values())

    def test_degree_plus_one_default_prefix(self):
        inst = degree_plus_one_instance(ring(6))
        assert all(inst.lists[v] == (0, 1, 2) for v in inst.graph.nodes)

    def test_degree_plus_one_random_lists(self):
        rng = random.Random(0)
        inst = degree_plus_one_instance(ring(6), ColorSpace(20), rng)
        assert all(len(inst.lists[v]) == 3 for v in inst.graph.nodes)
        assert any(max(inst.lists[v]) > 2 for v in inst.graph.nodes)

    def test_degree_plus_one_space_too_small(self):
        with pytest.raises(ValueError):
            degree_plus_one_instance(clique(5), ColorSpace(3))

    def test_random_list_instance(self):
        rng = random.Random(1)
        inst = random_list_defective_instance(ring(8), ColorSpace(30), 5, 2, rng)
        assert all(len(inst.lists[v]) == 5 for v in inst.graph.nodes)
        assert all(0 <= d <= 2 for dv in inst.defects.values() for d in dv.values())

    def test_random_list_too_big(self):
        with pytest.raises(ValueError):
            random_list_defective_instance(
                ring(4), ColorSpace(3), 5, 1, random.Random(0)
            )

    def test_scaled_budget_meets_target(self):
        rng = random.Random(2)
        g = ring(10)
        inst = scaled_budget_instance(g, ColorSpace(200), 2.0, 10.0, 3, rng)
        for v in g.nodes:
            assert inst.defect_weight(v, 2.0) >= 10.0 * g.degree(v) ** 2

    def test_scaled_budget_space_too_small(self):
        rng = random.Random(3)
        with pytest.raises(ValueError):
            scaled_budget_instance(clique(10), ColorSpace(5), 2.0, 50.0, 0, rng)


class TestPartialColoring:
    def test_assign_updates_counts(self):
        inst = small_instance()
        pc = PartialColoring(inst)
        pc.assign(0, 2)
        assert pc.colored(0)
        assert pc.a(1, 2) == 1 and pc.a(4, 2) == 1
        assert pc.a(2, 2) == 0

    def test_double_assign_rejected(self):
        pc = PartialColoring(small_instance())
        pc.assign(0, 1)
        with pytest.raises(ValueError):
            pc.assign(0, 2)

    def test_orientation_conflict_rejected(self):
        pc = PartialColoring(small_instance())
        pc.orient(0, 1)
        with pytest.raises(ValueError):
            pc.orient(1, 0)
        assert pc.out_neighbors(0) == [1]

    def test_uncolored_nodes(self):
        pc = PartialColoring(small_instance())
        pc.assign(3, 0)
        assert pc.uncolored_nodes() == [0, 1, 2, 4]
