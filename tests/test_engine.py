"""Tests for the CSR execution layer (repro.sim.engine)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import gnp, ring, star
from repro.sim.engine import (
    CSRGraph,
    collision_counts,
    equal_neighbor_counts,
    poly_digits,
    poly_eval_grid,
    ragged_lists,
    synthesized_metrics,
)
from repro.sim.metrics import congest_bandwidth


class TestCSRConstruction:
    def test_matches_networkx_adjacency(self):
        g = gnp(40, 0.2, seed=11)
        csr = CSRGraph.from_networkx(g)
        assert csr.n == 40
        assert csr.num_directed_edges == 2 * g.number_of_edges()
        for i, v in enumerate(csr.nodes):
            neigh = sorted(csr.nodes[j] for j in csr.neighbors_of(i))
            assert neigh == sorted(g.neighbors(v))

    def test_non_contiguous_labels(self):
        g = nx.Graph()
        g.add_edges_from([(10, 3), (3, 7), (7, 10)])
        csr = CSRGraph.from_networkx(g)
        assert csr.nodes == (3, 7, 10)
        assert csr.index == {3: 0, 7: 1, 10: 2}
        assert sorted(csr.degrees.tolist()) == [2, 2, 2]

    def test_src_expansion_consistent_with_indptr(self):
        csr = CSRGraph.from_networkx(star(6))
        for k in range(csr.num_directed_edges):
            i = csr.src[k]
            assert csr.indptr[i] <= k < csr.indptr[i + 1]

    def test_edgeless_and_empty(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        csr = CSRGraph.from_networkx(g)
        assert csr.num_directed_edges == 0
        assert csr.degrees.tolist() == [0, 0, 0, 0]
        empty = CSRGraph.from_networkx(nx.Graph())
        assert empty.n == 0

    def test_directed_graph_rejected(self):
        dg = nx.DiGraph()
        dg.add_edge(0, 1)
        with pytest.raises(ValueError, match="undirected"):
            CSRGraph.from_networkx(dg)

    def test_gather_scatter_roundtrip(self):
        g = ring(12)
        csr = CSRGraph.from_networkx(g)
        values = {v: (v * 7) % 5 for v in g.nodes}
        dense = csr.gather(values)
        assert csr.scatter(dense) == values


class TestKernels:
    def test_equal_neighbor_counts_brute_force(self):
        g = gnp(30, 0.3, seed=5)
        csr = CSRGraph.from_networkx(g)
        colors = np.array([v % 3 for v in csr.nodes], dtype=np.int64)
        counts = equal_neighbor_counts(csr, colors)
        for i, v in enumerate(csr.nodes):
            expect = sum(1 for u in g.neighbors(v) if u % 3 == v % 3)
            assert counts[i] == expect
        assert counts.dtype == np.int64

    def test_collision_counts_matches_per_point_scan(self):
        g = gnp(25, 0.3, seed=6)
        csr = CSRGraph.from_networkx(g)
        q = 5
        evals = np.array(
            [[(3 * x + v) % q for v in range(csr.n)] for x in range(q)],
            dtype=np.int64,
        )
        hits = collision_counts(csr, evals)
        assert hits.dtype == np.int64
        for x in range(q):
            assert np.array_equal(hits[x], equal_neighbor_counts(csr, evals[x]))

    def test_collision_counts_integer_on_2pow20_directed_edges(self):
        # Regression for the silent float64 accumulation: a ring with 2^19
        # undirected edges has exactly 2^20 directed edge slots; the counts
        # must come out of integer bincounts and equal the float-weighted
        # formulation exactly.
        g = ring(2**19)
        csr = CSRGraph.from_networkx(g)
        assert csr.num_directed_edges == 2**20
        colors = np.arange(csr.n, dtype=np.int64)
        digits = poly_digits(colors, q=23, degree=4)
        evals = poly_eval_grid(digits, q=23)
        hits = collision_counts(csr, evals)
        assert hits.dtype == np.int64
        matches = evals[:, csr.src] == evals[:, csr.indices]
        for x in (0, 11, 22):
            via_weights = np.bincount(
                csr.src, weights=matches[x], minlength=csr.n
            )
            assert np.array_equal(hits[x], via_weights.astype(np.int64))

    def test_poly_grid_matches_reference_machinery(self):
        from repro.algorithms.linial import poly_coeffs, poly_eval

        q, deg = 7, 2
        colors = np.arange(q ** (deg + 1), dtype=np.int64)
        digits = poly_digits(colors, q, deg)
        evals = poly_eval_grid(digits, q)
        for c in (0, 5, 48, 100, 342):
            coeffs = poly_coeffs(int(c), q, deg)
            assert tuple(digits[c]) == coeffs
            for x in range(q):
                assert evals[x, c] == poly_eval(coeffs, x, q)


class TestHelpers:
    def test_synthesized_metrics_budget(self):
        m = synthesized_metrics(1000)
        assert m.bandwidth_limit == congest_bandwidth(1000)
        assert m.rounds == 0

    def test_ragged_lists(self):
        g = nx.Graph()
        g.add_nodes_from([2, 5, 9])
        csr = CSRGraph.from_networkx(g)
        indptr, values = ragged_lists(
            csr, {2: [4, 1], 5: [], 9: [7, 7, 0]}
        )
        assert indptr.tolist() == [0, 2, 2, 5]
        assert values.tolist() == [4, 1, 7, 7, 0]


# ----------------------------------------------------------------------
# property-based round trips on adversarial label sets
# ----------------------------------------------------------------------
def _graph_from(labels, edge_picks):
    """Graph whose nodes are ``labels`` verbatim (unsorted, gappy)."""
    g = nx.Graph()
    g.add_nodes_from(labels)
    n = len(labels)
    for a, b in edge_picks:
        u, v = labels[a % n], labels[b % n]
        if u != v:
            g.add_edge(u, v)
    return g


_labels = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=30,
    unique=True,
).map(list)
_edge_picks = st.lists(
    st.tuples(st.integers(0, 100), st.integers(0, 100)), max_size=60
)


class TestRoundTripProperties:
    """gather/scatter and ragged_lists must be exact inverses for *any*
    label set — non-contiguous, unsorted, and gappy included."""

    @given(labels=_labels, edge_picks=_edge_picks)
    @settings(max_examples=60, deadline=None)
    def test_gather_scatter_round_trip(self, labels, edge_picks):
        csr = CSRGraph.from_networkx(_graph_from(labels, edge_picks))
        mapping = {v: (v * 7 + 3) % 101 for v in labels}
        dense = csr.gather(mapping)
        assert csr.scatter(dense) == mapping

    @given(labels=_labels, edge_picks=_edge_picks)
    @settings(max_examples=60, deadline=None)
    def test_scatter_gather_round_trip(self, labels, edge_picks):
        csr = CSRGraph.from_networkx(_graph_from(labels, edge_picks))
        dense = np.arange(csr.n, dtype=np.int64) * 13 % 29
        assert np.array_equal(csr.gather(csr.scatter(dense)), dense)

    @given(labels=_labels, edge_picks=_edge_picks, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_ragged_lists_round_trip(self, labels, edge_picks, data):
        csr = CSRGraph.from_networkx(_graph_from(labels, edge_picks))
        lists = {
            v: data.draw(
                st.lists(st.integers(0, 50), max_size=6), label=f"list[{v}]"
            )
            for v in labels
        }
        indptr, values = ragged_lists(csr, lists)
        assert indptr[0] == 0 and indptr[-1] == len(values)
        assert np.all(np.diff(indptr) >= 0)
        for i, v in enumerate(csr.nodes):
            segment = values[indptr[i] : indptr[i + 1]].tolist()
            assert segment == list(lists[v])  # preference order preserved
