"""Property-based suites for the algorithm modules (hypothesis).

Deeper randomized coverage of invariants the deterministic unit tests
sample only at fixed points: schedule algebra, defect accounting across
random parameters, reduction partitioning, and decomposition structure.
"""

import math
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ColorSpace
from repro.core.validate import (
    validate_arbdefective_plain,
    validate_defective_coloring,
)
from repro.graphs import gnp
from repro.algorithms.linial import defective_schedule, linial_schedule
from repro.algorithms.oldc_basic import gamma_class, single_defect_restriction
from repro.algorithms.colorspace_reduction import corollary_4_1_p, corollary_4_2_p

slow = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.data_too_large]
)


class TestScheduleProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 10**7), st.integers(1, 64))
    def test_proper_schedule_invariants(self, m, delta):
        sched = linial_schedule(m, delta)
        cur = m
        for step in sched:
            # representability + collision budget + strict progress
            assert step.q ** (step.deg + 1) >= cur
            assert step.q > step.deg * delta
            assert step.out_colors < cur
            assert step.budget == 0
            cur = step.out_colors

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 10**6), st.integers(2, 48), st.integers(1, 16))
    def test_defective_schedule_invariants(self, m, delta, defect):
        sched = defective_schedule(m, delta, defect)
        assert sum(s.budget for s in sched) <= defect
        cur = m
        for step in sched:
            assert step.q ** (step.deg + 1) >= cur
            if step.budget == 0:
                assert step.q > step.deg * delta
            else:
                assert (step.deg * delta) // step.q <= step.budget
            assert step.out_colors < cur
            cur = step.out_colors

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 10**6), st.integers(2, 48), st.integers(1, 16))
    def test_defective_never_worse_than_proper(self, m, delta, defect):
        proper = linial_schedule(m, delta)
        defective = defective_schedule(m, delta, defect)
        p_final = proper[-1].out_colors if proper else m
        d_final = defective[-1].out_colors if defective else m
        assert d_final <= p_final


class TestGammaClassProperties:
    @given(st.integers(1, 10**6), st.integers(0, 10**6), st.integers(1, 40))
    def test_gamma_class_defining_inequality(self, beta, d, h):
        i = gamma_class(beta, d, h)
        assert 1 <= i <= h
        # unclamped: 2^i >= 2 beta/(d+1) and i minimal
        if i < h:
            assert 2**i >= 2 * beta / (d + 1)
        if i > 1:
            assert 2 ** (i - 1) < 2 * beta / (d + 1)

    @given(
        st.lists(st.tuples(st.integers(0, 200), st.integers(0, 31)), min_size=1, max_size=20),
        st.integers(1, 64),
    )
    def test_single_defect_restriction_properties(self, pairs, beta):
        colors = tuple(sorted({c for c, _ in pairs}))
        if not colors:
            return
        defects = {}
        for c, d in pairs:
            defects.setdefault(c, d)
        defects = {c: defects[c] for c in colors}
        kept, common = single_defect_restriction(colors, defects, beta)
        assert set(kept) <= set(colors)
        assert kept
        # the common defect never exceeds any kept color's true defect
        assert all(common <= defects[c] for c in kept)


class TestReductionParameters:
    @given(st.integers(2, 10**6), st.integers(1, 8))
    def test_cor_4_2_p_covers(self, size, r):
        p = corollary_4_2_p(size, r)
        assert p**r >= size
        assert 2 <= p <= size

    @given(st.integers(1, 10**6), st.floats(1.0, 10**6))
    def test_cor_4_1_p_bounds(self, beta, kappa):
        p = corollary_4_1_p(beta, kappa)
        assert p >= 2
        # p = 2^sqrt(log beta log kappa) (rounded): bounded by the product
        bound = 2.0 ** (
            math.sqrt(
                max(1.0, math.log2(max(2, beta)))
                * max(1.0, math.log2(max(2.0, kappa)))
            )
        )
        assert p <= 2 * bound + 1


class TestDefectAccountingRandomized:
    @slow
    @given(st.integers(0, 10_000), st.integers(1, 6))
    def test_defective_coloring_defect_bound(self, seed, d):
        from repro.algorithms.defective import run_defective_coloring

        g = gnp(40, 0.3, seed=seed)
        res, _m, _p = run_defective_coloring(g, d, validate=False)
        validate_defective_coloring(g, res, d).raise_if_invalid()

    @slow
    @given(st.integers(0, 10_000), st.integers(0, 4))
    def test_arbdefective_coloring_bound(self, seed, d):
        from repro.algorithms.arbdefective import arbdefective_coloring

        g = gnp(30, 0.3, seed=seed)
        if max((deg for _, deg in g.degree), default=0) == 0:
            return
        res, _m, _q = arbdefective_coloring(g, d, mode="tight", validate=False)
        validate_arbdefective_plain(g, res, d).raise_if_invalid()

    @slow
    @given(st.integers(0, 10_000))
    def test_mt20_respects_lists(self, seed):
        from repro.graphs import random_low_outdegree_digraph
        from repro.algorithms.linial import run_linial
        from repro.algorithms.mt20 import mt20_list_coloring
        from repro.core import ListDefectiveInstance

        rng = random.Random(seed)
        g = gnp(20, 0.3, seed=seed)
        dg = random_low_outdegree_digraph(g, seed=seed + 1)
        beta = max(max(1, dg.out_degree(v)) for v in dg.nodes)
        space = ColorSpace(12 * beta * beta + 64)
        lists = {
            v: tuple(
                sorted(
                    rng.sample(
                        range(space.size),
                        3 * max(1, dg.out_degree(v)) ** 2 + 3,
                    )
                )
            )
            for v in dg.nodes
        }
        defects = {v: {x: 0 for x in lists[v]} for v in dg.nodes}
        inst = ListDefectiveInstance(dg, space, lists, defects)
        pre, _m, _p = run_linial(g)
        res, metrics, _rep = mt20_list_coloring(inst, pre.assignment)
        assert metrics.rounds == 2
        for v in dg.nodes:
            assert res.assignment[v] in lists[v]


class TestRegistryEnumeration:
    """The algorithm universe is *derived*, never hand-listed.

    Three sources must agree: the presentation registry
    (:mod:`repro.algorithms.registry`), the differential engine pairs
    (:mod:`repro.fuzz.differential`), and the canonical algorithm set of
    the backend registry (:mod:`repro.sim.backends`).  A family added to
    one but forgotten in another fails here, not in a user's run.
    """

    def test_names_enumerate_the_registry(self):
        from repro.algorithms.registry import REGISTRY, algorithm_names

        assert algorithm_names() == sorted(REGISTRY)
        assert len(set(REGISTRY)) == len(REGISTRY)

    def test_engine_pairs_match_canonical_backend_algorithms(self):
        from repro.fuzz.differential import ENGINE_PAIRS
        from repro.sim.backends import ALGORITHMS

        assert set(ENGINE_PAIRS) == set(ALGORITHMS)

    def test_claimed_engine_pairs_are_registered(self):
        from repro.algorithms.registry import REGISTRY
        from repro.fuzz.differential import ENGINE_PAIRS

        for name, info in REGISTRY.items():
            if info.engine_pair is not None:
                assert info.engine_pair in ENGINE_PAIRS, (
                    f"registry entry {name!r} claims engine pair "
                    f"{info.engine_pair!r}, which the differential "
                    "harness does not register"
                )

    def test_core_families_have_registry_presence(self):
        from repro.algorithms.registry import REGISTRY

        claimed = {
            info.engine_pair
            for info in REGISTRY.values()
            if info.engine_pair is not None
        }
        assert {"classic", "fk24", "greedy"} <= claimed

    def test_every_registry_entry_declares_complete_metadata(self):
        from repro.algorithms.registry import REGISTRY

        for name, info in REGISTRY.items():
            assert info.name == name
            assert info.reference
            assert info.palette
            assert callable(info.runner)
