"""Trace-level verification of the paper's message encodings.

The theorems' message bounds rest on specific encodings argued in the
proofs (send a palette color as an index, a candidate set as an index into
``K_v``, a list as ``min{|C|, Lambda log|C|}`` bits...).  These tests open
full traces and check the *declared* per-message sizes match those
encodings exactly — the accounting the experiments report is only as good
as these declarations.
"""


from repro.core import ColorSpace, degree_plus_one_instance
from repro.graphs import gnp, ring
from repro.sim import SyncNetwork, Trace
from repro.sim.message import color_list_bits, index_bits, int_bits


class TestLinialEncoding:
    def test_every_message_is_one_initial_palette_color(self):
        from repro.algorithms.linial import LinialColoringAlgorithm, linial_schedule

        g = ring(300)
        m0 = 300
        sched = linial_schedule(m0, 2)
        trace = Trace()
        net = SyncNetwork(g)
        net.run(
            LinialColoringAlgorithm(),
            {v: {"color": v} for v in g.nodes},
            shared={"schedule": sched, "m0": m0},
            max_rounds=len(sched) + 1,
            trace=trace,
        )
        expected = int_bits(m0 - 1)
        assert trace.messages, "no messages traced"
        assert all(m.bits == expected for m in trace.messages)
        # every active node messages every neighbor every round
        assert len(trace.messages) == len(sched) * 2 * g.number_of_edges()


class TestScheduledReductionEncoding:
    def test_announcements_are_palette_indices_sent_once(self):
        from repro.algorithms.reduction import ScheduledListColoring

        g = gnp(30, 0.25, seed=51)
        inst = degree_plus_one_instance(g)
        from repro.algorithms.linial import run_linial

        pre, _m, _p = run_linial(g)
        trace = Trace()
        net = SyncNetwork(g)
        net.run(
            ScheduledListColoring(),
            {
                v: {"schedule_color": pre.assignment[v], "palette": inst.lists[v]}
                for v in g.nodes
            },
            shared={
                "num_classes": max(pre.assignment.values()) + 1,
                "space_size": inst.space.size,
            },
            max_rounds=max(pre.assignment.values()) + 3,
            trace=trace,
        )
        expected = index_bits(inst.space.size)
        assert all(m.bits == expected for m in trace.messages)
        # exactly one announcement per node per neighbor
        per_sender: dict[int, int] = {}
        for m in trace.messages:
            per_sender[m.src] = per_sender.get(m.src, 0) + 1
        assert per_sender == {v: g.degree(v) for v in g.nodes if g.degree(v)}


class TestOLDCEncoding:
    def test_round_zero_carries_type_round_one_carries_index(self):
        from repro.algorithms.oldc_basic import BasicOLDC
        from repro.algorithms.mt_selection import FamilyOracle
        from repro.graphs import random_low_outdegree_digraph
        from repro.algorithms.linial import run_linial
        import random

        base = gnp(24, 0.25, seed=53)
        dg = random_low_outdegree_digraph(base, seed=54)
        rng = random.Random(55)
        space = ColorSpace(300)
        lists = {
            v: tuple(sorted(rng.sample(range(300), 40))) for v in dg.nodes
        }
        pre, _m, _p = run_linial(base)
        inputs = {
            v: {
                "colors": lists[v],
                "defect": 1,
                "init_color": pre.assignment[v],
                "gamma_class": 1,
                "k": 6,
            }
            for v in dg.nodes
        }
        trace = Trace()
        net = SyncNetwork(dg)
        net.run(
            BasicOLDC(),
            inputs,
            shared={
                "h": 1,
                "tau": 3,
                "g": 0,
                "oracle": FamilyOracle(k_prime=8, seed=0),
                "space_size": space.size,
                "m": max(pre.assignment.values()) + 1,
                "beta": max(max(1, dg.out_degree(v)) for v in dg.nodes),
            },
            max_rounds=6,
            trace=trace,
        )
        round0 = trace.messages_in_round(0)
        round1 = trace.messages_in_round(1)
        assert round0 and round1
        # type messages: list encoding dominates and varies with list size;
        # they must be >= the list-encoding floor and uniform per sender
        floor = min(color_list_bits(1, space.size), space.size)
        assert all(m.bits >= floor for m in round0)
        # C-announcements: an index into K_v (k' = 8 -> 3 bits)
        assert all(m.bits == index_bits(8) for m in round1)


class TestModelIndependence:
    def test_local_vs_congest_same_output(self):
        """The model flag only changes accounting, never behavior."""
        from repro.algorithms.linial import run_linial

        g = gnp(40, 0.3, seed=57)
        a, ma, _p1 = run_linial(g, model="LOCAL")
        b, mb, _p2 = run_linial(g, model="CONGEST")
        assert a.assignment == b.assignment
        assert ma.rounds == mb.rounds
        assert ma.bandwidth_limit is None and mb.bandwidth_limit is not None

    def test_thm13_local_vs_congest(self):
        from repro.algorithms import solve_list_arbdefective

        g = gnp(25, 0.3, seed=59)
        inst = degree_plus_one_instance(g)
        a, _ma, _ra = solve_list_arbdefective(inst, model="LOCAL")
        b, _mb, _rb = solve_list_arbdefective(inst, model="CONGEST")
        assert a.assignment == b.assignment
