"""Sweep-runner batching (:func:`repro.experiments.sweep.compute_cells_batched`).

The sweep's batched default path has to be invisible in the artifact:
records must match :func:`compute_cell`'s field for field (only the
clock fields may differ), a poison cell must quarantine exactly itself
with the same ``status: "failed"`` record the per-cell path would have
produced, and the cache must keep its contract — cached cells are
served, not repacked into a batch.
"""

import pytest

from repro.experiments import sweep as sweep_mod
from repro.experiments.sweep import (
    BATCHABLE_ALGORITHMS,
    SweepCell,
    _compute_batch,
    compute_cell,
    compute_cells_batched,
    load_cached_detailed,
    run_sweep,
)

CLOCK_FIELDS = {
    "wall_s",
    "timings",
    "phase_s",
    "started_at",
    "finished_at",
    "batched_with",
}


def strip_clock(record):
    """Deep-copy a record with every timing/batching-provenance field
    removed (those legitimately differ between execution strategies)."""
    if isinstance(record, dict):
        return {
            key: strip_clock(value)
            for key, value in record.items()
            if key not in CLOCK_FIELDS
        }
    if isinstance(record, list):
        return [strip_clock(item) for item in record]
    return record


def cells_for(algorithm, count=3):
    out = []
    for i in range(count):
        algo_params = {}
        if algorithm == "defective_split":
            algo_params = {"defect": 1}
        elif algorithm == "linial_faulty_vectorized":
            algo_params = {"faults": {"seed": 3, "p_drop": 0.2}}
        out.append(
            SweepCell.make(
                "random_regular",
                {"n": 24 + 6 * i, "degree": 3, "seed": 50 + i},
                algorithm,
                algo_params,
            )
        )
    return out


def crash_stop_cell():
    """A cell whose run halts: crash-stop faults (no recovery) on a graph
    large enough that the Linial schedule has a real round to crash in."""
    return SweepCell.make(
        "random_regular",
        {"n": 900, "degree": 14, "seed": 5},
        "linial_faulty_vectorized",
        {
            "faults": {
                "seed": 5,
                "p_crash": 0.8,
                "crash_horizon": 4,
                "recovery_rounds": None,
            }
        },
    )


class TestBatchedRecordsMatchPerCell:
    @pytest.mark.parametrize("algorithm", BATCHABLE_ALGORITHMS)
    def test_record_equality_modulo_clock(self, algorithm):
        cells = cells_for(algorithm)
        batched = compute_cells_batched(cells)
        for cell, record in zip(cells, batched):
            assert strip_clock(record) == strip_clock(compute_cell(cell))

    def test_batched_wall_attribution(self):
        """Batched cells report the *actual* batch wall time (shared by
        every record of the group) plus the group size — not a fabricated
        per-cell split; per-cell records carry ``batched_with == 1``."""
        cells = cells_for("linial_vectorized")
        records = compute_cells_batched(cells)
        assert len({r["wall_s"] for r in records}) == 1
        assert all(r["batched_with"] == len(cells) for r in records)
        assert compute_cell(cells[0])["batched_with"] == 1

    def test_mixed_algorithms_rejected(self):
        cells = cells_for("linial_vectorized") + cells_for("greedy_vectorized")
        with pytest.raises(ValueError, match="one algorithm"):
            compute_cells_batched(cells)

    def test_unbatchable_algorithm_rejected(self):
        cell = SweepCell.make(
            "random_regular",
            {"n": 24, "degree": 3, "seed": 1},
            "linial_reference",
        )
        with pytest.raises(ValueError, match="no batched path"):
            compute_cells_batched([cell, cell])


class TestPoisonCellQuarantine:
    def test_poison_cell_fails_alone_with_per_cell_error(self):
        """The crash-stop cell lands ``status: "failed"`` with the exact
        error the per-cell path reports; siblings in the same batch land
        ``ok`` with unchanged records."""
        poison = crash_stop_cell()
        siblings = cells_for("linial_faulty_vectorized")
        cells = [siblings[0], poison, siblings[1], siblings[2]]
        records = compute_cells_batched(cells)

        statuses = [r["status"] for r in records]
        assert statuses == ["ok", "failed", "ok", "ok"]

        try:
            compute_cell(poison)
        except Exception as exc:  # noqa: BLE001 - exact-message contract
            solo_type = type(exc).__name__
            solo_msg = str(exc)
        else:
            pytest.fail("poison cell unexpectedly succeeded per-cell")
        assert records[1]["error"]["type"] == solo_type
        assert records[1]["error"]["message"] == solo_msg

        for cell, record in zip(
            [siblings[0], siblings[1], siblings[2]],
            [records[0], records[2], records[3]],
        ):
            assert strip_clock(record) == strip_clock(compute_cell(cell))

    def test_quarantine_persists_in_cache(self, tmp_path):
        """Through the worker entry point with a cache: the poison cell
        checkpoints as a ``failed`` record, siblings as hits."""
        poison = crash_stop_cell()
        siblings = cells_for("linial_faulty_vectorized")
        cells = [poison, *siblings]
        _compute_batch([c.spec() for c in cells], cache_dir=str(tmp_path))
        _, status = load_cached_detailed(tmp_path, poison)
        assert status == "failed"
        for cell in siblings:
            _, status = load_cached_detailed(tmp_path, cell)
            assert status == "hit"


class TestCacheExcludesFromPacking:
    def test_cached_cells_never_repacked(self, tmp_path, monkeypatch):
        """Pre-cached cells are served from disk; only the uncached
        remainder reaches the batched computation."""
        cells = cells_for("linial_vectorized", count=4)
        run_sweep(cells[:2], cache_dir=tmp_path, workers=1)

        seen = []
        real = sweep_mod.compute_cells_batched

        def spy(batch_cells):
            seen.append([sweep_mod.cell_key(c) for c in batch_cells])
            return real(batch_cells)

        monkeypatch.setattr(sweep_mod, "compute_cells_batched", spy)
        records = _compute_batch(
            [c.spec() for c in cells], cache_dir=str(tmp_path)
        )
        assert [r["status"] for r in records] == ["ok"] * 4
        packed = {key for group in seen for key in group}
        assert packed == {sweep_mod.cell_key(c) for c in cells[2:]}

    def test_single_uncached_cell_skips_batching(self, tmp_path, monkeypatch):
        """A lone uncached cell takes the per-cell loop (batching one
        instance buys nothing)."""
        cells = cells_for("linial_vectorized", count=3)
        run_sweep(cells[:2], cache_dir=tmp_path, workers=1)
        monkeypatch.setattr(
            sweep_mod,
            "compute_cells_batched",
            lambda _: pytest.fail("batched path used for a single cell"),
        )
        records = _compute_batch(
            [c.spec() for c in cells], cache_dir=str(tmp_path)
        )
        assert [r["status"] for r in records] == ["ok"] * 3

    def test_batched_and_looped_sweeps_share_cache_entries(self, tmp_path):
        """A sweep computed batched then reloaded from cache equals the
        records the per-cell path computes for the same cells."""
        cells = cells_for("classic_vectorized")
        first = [r.data for r in run_sweep(cells, cache_dir=tmp_path, workers=1)]
        again = [r.data for r in run_sweep(cells, cache_dir=tmp_path, workers=1)]
        assert [strip_clock(r) for r in first] == [strip_clock(r) for r in again]
        for cell, record in zip(cells, first):
            assert strip_clock(record) == strip_clock(compute_cell(cell))
