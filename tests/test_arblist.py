"""Tests for the Theorem 1.3 transformation (list arbdefective coloring)."""

import math
import random

import pytest

from repro.core import ColorSpace
from repro.core.instance import (
    degree_plus_one_instance,
    random_list_defective_instance,
    uniform_instance,
)
from repro.core.validate import validate_arbdefective, validate_ldc
from repro.graphs import clique, gnp, hub_and_fringe, random_regular, ring, star
from repro.algorithms.arblist import solve_list_arbdefective


class TestDegreePlusOne:
    @pytest.mark.parametrize(
        "g",
        [ring(20), clique(8), star(12), gnp(40, 0.2, seed=5), random_regular(40, 8, seed=6)],
        ids=["ring", "clique", "star", "gnp", "regular"],
    )
    def test_families_proper(self, g):
        inst = degree_plus_one_instance(g)
        res, metrics, report = solve_list_arbdefective(inst)
        # zero-defect arbdefective == proper coloring
        validate_arbdefective(inst, res).raise_if_invalid()
        validate_ldc(inst, res).raise_if_invalid()

    def test_random_lists(self):
        g = gnp(40, 0.25, seed=7)
        delta = max(d for _, d in g.degree)
        inst = degree_plus_one_instance(g, ColorSpace(4 * delta), random.Random(8))
        res, _m, _rep = solve_list_arbdefective(inst)
        validate_ldc(inst, res).raise_if_invalid()


class TestArbdefectiveInstances:
    @pytest.mark.parametrize("d", [1, 2, 4])
    def test_uniform_defect(self, d):
        delta = 16
        g = random_regular(80, delta, seed=9)
        q = math.floor(delta / (d + 1)) + 1
        inst = uniform_instance(g, ColorSpace(q), range(q), d)
        res, _m, _rep = solve_list_arbdefective(inst)
        validate_arbdefective(inst, res).raise_if_invalid()

    def test_mixed_defects(self):
        # random per-color defects with sum (d+1) > deg guaranteed
        g = gnp(30, 0.25, seed=10)
        delta = max(d for _, d in g.degree)
        inst = random_list_defective_instance(
            g, ColorSpace(8 * delta + 16), delta + 1, 2, random.Random(11)
        )
        res, _m, _rep = solve_list_arbdefective(inst)
        validate_arbdefective(inst, res).raise_if_invalid()

    def test_heterogeneous_degrees(self):
        g = hub_and_fringe(hub_degree=12, fringe_cliques=4, clique_size=4)
        inst = degree_plus_one_instance(g)
        res, _m, _rep = solve_list_arbdefective(inst)
        validate_ldc(inst, res).raise_if_invalid()


class TestMechanics:
    def test_directed_rejected(self):
        inst = uniform_instance(ring(5), ColorSpace(3), range(3), 0).to_oriented()
        with pytest.raises(ValueError):
            solve_list_arbdefective(inst)

    def test_stages_logarithmic(self):
        g = random_regular(80, 16, seed=12)
        inst = degree_plus_one_instance(g)
        _res, _m, rep = solve_list_arbdefective(inst)
        assert rep.stages <= 2 * 16 .bit_length() + 8

    def test_orientation_covers_graph(self):
        g = gnp(30, 0.3, seed=13)
        inst = degree_plus_one_instance(g)
        res, _m, _rep = solve_list_arbdefective(inst)
        assert res.orientation.covers(g)

    def test_metrics_accumulate(self):
        g = ring(20)
        inst = degree_plus_one_instance(g)
        _res, metrics, rep = solve_list_arbdefective(inst)
        assert metrics.rounds > 0
        assert metrics.total_bits > 0

    def test_single_node(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node(0)
        inst = degree_plus_one_instance(g)
        res, _m, _rep = solve_list_arbdefective(inst)
        assert res.assignment[0] in inst.lists[0]

    def test_deterministic(self):
        g = gnp(25, 0.3, seed=14)
        inst = degree_plus_one_instance(g)
        a = solve_list_arbdefective(inst)[0].assignment
        b = solve_list_arbdefective(inst)[0].assignment
        assert a == b

    def test_custom_kappa(self):
        g = random_regular(40, 8, seed=15)
        inst = degree_plus_one_instance(g)
        res, _m, _rep = solve_list_arbdefective(inst, kappa=20.0)
        validate_ldc(inst, res).raise_if_invalid()
