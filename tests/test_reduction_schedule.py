"""Tests for the schedule-based color reduction and classic pipeline."""

import pytest

from repro.core import ColorSpace
from repro.core.instance import degree_plus_one_instance, uniform_instance
from repro.core.validate import validate_ldc, validate_proper_coloring
from repro.graphs import clique, gnp, ring, star
from repro.algorithms.linial import run_linial
from repro.algorithms.reduction import (
    classic_delta_plus_one,
    reduce_to_list_coloring,
)


class TestScheduleReduction:
    def test_ring_reduces_to_three_colors(self):
        g = ring(9)
        inst = degree_plus_one_instance(g)
        pre, _m, _p = run_linial(g)
        res, metrics = reduce_to_list_coloring(inst, pre.assignment)
        assert validate_ldc(inst, res).ok
        assert res.num_colors() <= 3

    def test_rounds_bounded_by_classes(self):
        g = ring(9)
        inst = degree_plus_one_instance(g)
        pre, _m, _p = run_linial(g)
        _res, metrics = reduce_to_list_coloring(inst, pre.assignment)
        assert metrics.rounds <= max(pre.assignment.values()) + 3

    def test_improper_schedule_rejected(self):
        g = ring(4)
        inst = degree_plus_one_instance(g)
        with pytest.raises(ValueError):
            reduce_to_list_coloring(inst, {v: 0 for v in g.nodes})

    def test_small_lists_rejected(self):
        g = clique(4)
        inst = uniform_instance(g, ColorSpace(2), range(2), 0)
        with pytest.raises(ValueError):
            reduce_to_list_coloring(inst, {v: v for v in g.nodes})

    def test_directed_rejected(self):
        g = ring(4)
        inst = degree_plus_one_instance(g).to_oriented()
        with pytest.raises(ValueError):
            reduce_to_list_coloring(inst, {v: v for v in range(4)})

    def test_arbitrary_lists(self):
        import random

        g = gnp(25, 0.3, seed=2)
        delta = max(d for _, d in g.degree)
        inst = degree_plus_one_instance(
            g, ColorSpace(5 * (delta + 1)), random.Random(0)
        )
        pre, _m, _p = run_linial(g)
        res, _metrics = reduce_to_list_coloring(inst, pre.assignment)
        assert validate_ldc(inst, res).ok


class TestClassicPipeline:
    @pytest.mark.parametrize(
        "g", [ring(30), clique(7), star(10), gnp(40, 0.2, seed=9)],
        ids=["ring", "clique", "star", "gnp"],
    )
    def test_delta_plus_one_on_families(self, g):
        res, metrics = classic_delta_plus_one(g)
        validate_proper_coloring(g, res).raise_if_invalid()
        delta = max(d for _, d in g.degree)
        assert res.num_colors() <= delta + 1

    def test_congest_messages(self):
        g = gnp(60, 0.15, seed=11)
        _res, metrics = classic_delta_plus_one(g)
        assert metrics.bandwidth_limit is not None
        assert metrics.bandwidth_violations == 0
