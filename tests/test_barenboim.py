"""Tests for the [Bar16]-style (1+eps)Delta coloring."""

import pytest

from repro.core import validate_proper_coloring
from repro.graphs import clique, gnp, random_regular, ring, star
from repro.algorithms.barenboim import barenboim_coloring


class TestBarenboim:
    @pytest.mark.parametrize(
        "g",
        [ring(20), clique(8), star(12), gnp(40, 0.2, seed=61), random_regular(48, 8, seed=62)],
        ids=["ring", "clique", "star", "gnp", "regular"],
    )
    def test_families_proper(self, g):
        res, _m, rep = barenboim_coloring(g)
        validate_proper_coloring(g, res).raise_if_invalid()
        assert rep.valid

    def test_palette_bound(self):
        g = random_regular(48, 8, seed=63)
        res, _m, rep = barenboim_coloring(g, palette_factor=1.5)
        assert rep.palette == 13  # ceil(1.5*8)+1
        assert all(0 <= c < rep.palette for c in res.assignment.values())

    def test_bigger_palette_not_slower(self):
        g = random_regular(96, 16, seed=64)
        _r1, m_small, _rep1 = barenboim_coloring(g, palette_factor=1.25)
        _r2, m_big, _rep2 = barenboim_coloring(g, palette_factor=3.0)
        assert m_big.rounds <= m_small.rounds

    def test_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            barenboim_coloring(ring(6), palette_factor=1.0)

    def test_empty_degree_graph(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(3))
        res, _m, _rep = barenboim_coloring(g)
        assert set(res.assignment) == {0, 1, 2}

    def test_deterministic(self):
        g = gnp(30, 0.3, seed=65)
        a = barenboim_coloring(g)[0].assignment
        b = barenboim_coloring(g)[0].assignment
        assert a == b

    def test_report_accounting(self):
        g = random_regular(48, 8, seed=66)
        _res, _m, rep = barenboim_coloring(g)
        assert rep.classes >= 1
        assert rep.mt20_runs <= rep.classes
        assert rep.arbdefect >= 1
