"""Equivalence tests: vectorized Linial engine vs the reference simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.bounds import log_star
from repro.core.validate import validate_defective_coloring, validate_proper_coloring
from repro.graphs import clique, gnp, hypercube, random_regular, ring, star, torus
from repro.algorithms.linial import run_linial
from repro.sim.vectorized import linial_vectorized


class TestEquivalence:
    @pytest.mark.parametrize(
        "g",
        [
            ring(80),
            clique(9),
            star(15),
            hypercube(4),
            torus(6, 6),
            gnp(60, 0.2, seed=7),
            random_regular(80, 6, seed=8),
        ],
        ids=["ring", "clique", "star", "hypercube", "torus", "gnp", "regular"],
    )
    def test_identical_output_and_metrics(self, g):
        ref, m_ref, p_ref = run_linial(g)
        vec, m_vec, p_vec = linial_vectorized(g)
        assert ref.assignment == vec.assignment
        assert m_ref.summary() == m_vec.summary()
        assert p_ref == p_vec

    def test_identical_with_custom_initial_coloring(self):
        g = ring(60)
        init = {v: (v % 3) * 211 + v for v in g.nodes}
        ref, _mr, _pr = run_linial(g, initial_colors=init)
        vec, _mv, _pv = linial_vectorized(g, initial_colors=init)
        assert ref.assignment == vec.assignment

    @pytest.mark.parametrize("defect", [1, 3, 5])
    def test_identical_defective(self, defect):
        g = random_regular(400, 8, seed=9)
        ref, m_ref, p_ref = run_linial(g, defect=defect)
        vec, m_vec, p_vec = linial_vectorized(g, defect=defect)
        assert ref.assignment == vec.assignment
        assert m_ref.summary() == m_vec.summary()
        assert validate_defective_coloring(g, vec, defect).ok

    @settings(max_examples=12, deadline=None)
    @given(st.integers(6, 40), st.integers(0, 10_000))
    def test_identical_random_graphs(self, n, seed):
        g = gnp(n, 0.3, seed=seed)
        ref, m_ref, _pr = run_linial(g)
        vec, m_vec, _pv = linial_vectorized(g)
        assert ref.assignment == vec.assignment
        assert m_ref.summary() == m_vec.summary()


class TestScale:
    def test_large_ring_logstar_rounds(self):
        g = ring(60_000)
        res, metrics, palette = linial_vectorized(g)
        assert metrics.rounds <= log_star(60_000) + 1
        assert palette <= 25

    def test_large_ring_proper_sampled(self):
        g = ring(20_000)
        res, _m, _p = linial_vectorized(g)
        validate_proper_coloring(g, res).raise_if_invalid()

    def test_empty_and_trivial_graphs(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(3))
        res, metrics, _p = linial_vectorized(g)
        assert set(res.assignment) == {0, 1, 2}


class TestClassicPipelineVectorized:
    @pytest.mark.parametrize(
        "g",
        [ring(60), gnp(50, 0.2, seed=3), random_regular(80, 8, seed=4), star(12)],
        ids=["ring", "gnp", "regular", "star"],
    )
    def test_identical_to_reference(self, g):
        from repro.algorithms.reduction import classic_delta_plus_one
        from repro.sim.vectorized import classic_delta_plus_one_vectorized

        ref, m_ref = classic_delta_plus_one(g)
        vec, m_vec = classic_delta_plus_one_vectorized(g)
        assert ref.assignment == vec.assignment
        assert m_ref.summary() == m_vec.summary()

    def test_large_scale_delta_plus_one(self):
        from repro.sim.vectorized import classic_delta_plus_one_vectorized

        g = random_regular(30_000, 6, seed=5)
        res, metrics = classic_delta_plus_one_vectorized(g)
        assert res.num_colors() <= 7
        # spot-check properness on a sample of edges
        import itertools

        for u, v in itertools.islice(iter(g.edges), 5000):
            assert res.assignment[u] != res.assignment[v]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(6, 30), st.integers(0, 10_000))
    def test_random_graphs_identical(self, n, seed):
        from repro.algorithms.reduction import classic_delta_plus_one
        from repro.sim.vectorized import classic_delta_plus_one_vectorized

        g = gnp(n, 0.3, seed=seed)
        if max((d for _, d in g.degree), default=0) == 0:
            return
        ref, m_ref = classic_delta_plus_one(g)
        vec, m_vec = classic_delta_plus_one_vectorized(g)
        assert ref.assignment == vec.assignment
        assert m_ref.summary() == m_vec.summary()
