"""Equivalence tests: vectorized Linial engine vs the reference simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.bounds import log_star
from repro.core.validate import validate_defective_coloring, validate_proper_coloring
from repro.graphs import clique, gnp, hypercube, random_regular, ring, star, torus
from repro.algorithms.linial import run_linial
from repro.sim.vectorized import linial_vectorized


class TestEquivalence:
    @pytest.mark.parametrize(
        "g",
        [
            ring(80),
            clique(9),
            star(15),
            hypercube(4),
            torus(6, 6),
            gnp(60, 0.2, seed=7),
            random_regular(80, 6, seed=8),
        ],
        ids=["ring", "clique", "star", "hypercube", "torus", "gnp", "regular"],
    )
    def test_identical_output_and_metrics(self, g):
        ref, m_ref, p_ref = run_linial(g)
        vec, m_vec, p_vec = linial_vectorized(g)
        assert ref.assignment == vec.assignment
        assert m_ref.summary() == m_vec.summary()
        assert p_ref == p_vec

    def test_identical_with_custom_initial_coloring(self):
        g = ring(60)
        init = {v: (v % 3) * 211 + v for v in g.nodes}
        ref, _mr, _pr = run_linial(g, initial_colors=init)
        vec, _mv, _pv = linial_vectorized(g, initial_colors=init)
        assert ref.assignment == vec.assignment

    @pytest.mark.parametrize("defect", [1, 3, 5])
    def test_identical_defective(self, defect):
        g = random_regular(400, 8, seed=9)
        ref, m_ref, p_ref = run_linial(g, defect=defect)
        vec, m_vec, p_vec = linial_vectorized(g, defect=defect)
        assert ref.assignment == vec.assignment
        assert m_ref.summary() == m_vec.summary()
        assert validate_defective_coloring(g, vec, defect).ok

    @settings(max_examples=12, deadline=None)
    @given(st.integers(6, 40), st.integers(0, 10_000))
    def test_identical_random_graphs(self, n, seed):
        g = gnp(n, 0.3, seed=seed)
        ref, m_ref, _pr = run_linial(g)
        vec, m_vec, _pv = linial_vectorized(g)
        assert ref.assignment == vec.assignment
        assert m_ref.summary() == m_vec.summary()


class TestScale:
    def test_large_ring_logstar_rounds(self):
        g = ring(60_000)
        res, metrics, palette = linial_vectorized(g)
        assert metrics.rounds <= log_star(60_000) + 1
        assert palette <= 25

    def test_large_ring_proper_sampled(self):
        g = ring(20_000)
        res, _m, _p = linial_vectorized(g)
        validate_proper_coloring(g, res).raise_if_invalid()

    def test_empty_and_trivial_graphs(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(3))
        res, metrics, _p = linial_vectorized(g)
        assert set(res.assignment) == {0, 1, 2}


class TestDirectedRejected:
    def test_linial_vectorized_rejects_digraph(self):
        import networkx as nx

        dg = nx.DiGraph()
        dg.add_edges_from([(0, 1), (1, 2)])
        with pytest.raises(ValueError, match="undirected"):
            linial_vectorized(dg)

    def test_edge_arrays_rejects_digraph(self):
        import networkx as nx

        from repro.sim.vectorized import _edge_arrays

        dg = nx.DiGraph()
        dg.add_edge(0, 1)
        with pytest.raises(ValueError, match="undirected"):
            _edge_arrays(dg)


class TestGreedyVectorized:
    @pytest.mark.parametrize(
        "g",
        [ring(50), clique(8), star(11), gnp(40, 0.25, seed=2),
         random_regular(60, 6, seed=3)],
        ids=["ring", "clique", "star", "gnp", "regular"],
    )
    def test_identical_to_reference_greedy(self, g):
        import random

        from repro.algorithms.greedy import greedy_list_coloring
        from repro.core.instance import degree_plus_one_instance
        from repro.sim.vectorized import greedy_list_vectorized

        inst = degree_plus_one_instance(g, rng=random.Random(7))
        ref = greedy_list_coloring(inst)
        vec = greedy_list_vectorized(inst)
        assert ref.assignment == vec.assignment

    def test_custom_order_matches_reference(self):
        import random

        from repro.algorithms.greedy import (
            greedy_list_coloring,
            sequential_color_order_by_degree,
        )
        from repro.core.instance import degree_plus_one_instance
        from repro.sim.vectorized import greedy_list_vectorized

        g = gnp(45, 0.2, seed=9)
        inst = degree_plus_one_instance(g, rng=random.Random(1))
        order = sequential_color_order_by_degree(g)
        ref = greedy_list_coloring(inst, order=order)
        vec = greedy_list_vectorized(inst, order=order)
        assert ref.assignment == vec.assignment

    def test_default_order_is_sorted_labels_on_shuffled_graph(self):
        # Regression for the dense-position default: on a graph whose node
        # labels are non-contiguous and inserted unsorted, the vectorized
        # default processing order must still be sorted *labels* (the
        # reference default), not raw CSR row positions.
        import random

        import networkx as nx

        from repro.algorithms.greedy import greedy_list_coloring
        from repro.core.instance import degree_plus_one_instance
        from repro.sim.vectorized import greedy_list_vectorized

        rng = random.Random(13)
        base = gnp(30, 0.25, seed=13)
        labels = rng.sample(range(500), base.number_of_nodes())
        g = nx.relabel_nodes(base, dict(zip(sorted(base.nodes), labels)))
        shuffled = nx.Graph()
        order = list(g.nodes)
        rng.shuffle(order)
        shuffled.add_nodes_from(order)
        shuffled.add_edges_from(g.edges)

        inst = degree_plus_one_instance(shuffled, rng=random.Random(4))
        ref = greedy_list_coloring(inst)
        vec = greedy_list_vectorized(inst)
        assert ref.assignment == vec.assignment
        # and the default really is the sorted-label schedule
        explicit = greedy_list_vectorized(inst, order=sorted(shuffled.nodes))
        assert vec.assignment == explicit.assignment

    def test_rejects_nonzero_defects(self):
        from repro.core.colorspace import ColorSpace
        from repro.core.instance import uniform_instance
        from repro.sim.vectorized import greedy_list_vectorized

        g = ring(10)
        inst = uniform_instance(g, ColorSpace(3), [0, 1, 2], defect=1)
        with pytest.raises(ValueError, match="zero-defect"):
            greedy_list_vectorized(inst)

    def test_large_instance_proper(self):
        from repro.core.instance import delta_plus_one_instance
        from repro.sim.vectorized import greedy_list_vectorized

        g = random_regular(20_000, 6, seed=12)
        res = greedy_list_vectorized(delta_plus_one_instance(g))
        validate_proper_coloring(g, res).raise_if_invalid()


class TestDefectiveSplitVectorized:
    @pytest.mark.parametrize("defect", [1, 2, 4])
    def test_identical_to_reference_partition(self, defect):
        from repro.algorithms.defective import defective_class_partition
        from repro.sim.vectorized import defective_split_vectorized

        g = random_regular(120, 8, seed=6)
        ref_classes, ref_m, ref_p = defective_class_partition(g, defect)
        vec_classes, vec_m, vec_p = defective_split_vectorized(g, defect)
        assert ref_classes == vec_classes
        assert ref_m.summary() == vec_m.summary()
        assert ref_p == vec_p

    def test_classes_have_bounded_internal_degree_at_scale(self):
        from repro.sim.vectorized import defective_split_vectorized

        g = random_regular(20_000, 10, seed=2)
        classes, _m, _p = defective_split_vectorized(g, defect=3)
        # vectorized validation already ran; spot-check a node by hand
        v = next(iter(classes))
        same = sum(1 for u in g.neighbors(v) if classes[u] == classes[v])
        assert same <= 3

    def test_negative_defect_rejected(self):
        from repro.sim.vectorized import defective_split_vectorized

        with pytest.raises(ValueError):
            defective_split_vectorized(ring(10), defect=-1)

    def test_builds_csr_exactly_once(self, monkeypatch):
        # Regression: the split used to rebuild a second CSRGraph just to
        # validate, so the validation could silently diverge from the graph
        # the run actually used.  One build, threaded everywhere.
        from repro.sim import vectorized as vec_mod
        from repro.sim.engine import CSRGraph

        real = CSRGraph.from_networkx
        calls = []

        def counting(graph):
            calls.append(graph)
            return real(graph)

        # vectorized.py imports the same class object, so one patch covers it
        monkeypatch.setattr(CSRGraph, "from_networkx", staticmethod(counting))
        g = random_regular(60, 6, seed=5)
        classes, metrics, palette = vec_mod.defective_split_vectorized(g, defect=2)
        assert len(calls) == 1
        assert set(classes) == set(g.nodes)

    def test_finalize_counts_match_run_csr(self):
        from repro.obs import RunRecorder
        from repro.sim.vectorized import defective_split_vectorized

        g = gnp(50, 0.15, seed=8)
        rec = RunRecorder(engine="vectorized")
        defective_split_vectorized(g, defect=1, recorder=rec)
        assert rec.record is not None
        assert rec.record.n == g.number_of_nodes()
        assert rec.record.m == g.number_of_edges()


class TestClassicPipelineVectorized:
    @pytest.mark.parametrize(
        "g",
        [ring(60), gnp(50, 0.2, seed=3), random_regular(80, 8, seed=4), star(12)],
        ids=["ring", "gnp", "regular", "star"],
    )
    def test_identical_to_reference(self, g):
        from repro.algorithms.reduction import classic_delta_plus_one
        from repro.sim.vectorized import classic_delta_plus_one_vectorized

        ref, m_ref = classic_delta_plus_one(g)
        vec, m_vec = classic_delta_plus_one_vectorized(g)
        assert ref.assignment == vec.assignment
        assert m_ref.summary() == m_vec.summary()

    def test_large_scale_delta_plus_one(self):
        from repro.sim.vectorized import classic_delta_plus_one_vectorized

        g = random_regular(30_000, 6, seed=5)
        res, metrics = classic_delta_plus_one_vectorized(g)
        assert res.num_colors() <= 7
        # spot-check properness on a sample of edges
        import itertools

        for u, v in itertools.islice(iter(g.edges), 5000):
            assert res.assignment[u] != res.assignment[v]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(6, 30), st.integers(0, 10_000))
    def test_random_graphs_identical(self, n, seed):
        from repro.algorithms.reduction import classic_delta_plus_one
        from repro.sim.vectorized import classic_delta_plus_one_vectorized

        g = gnp(n, 0.3, seed=seed)
        if max((d for _, d in g.degree), default=0) == 0:
            return
        ref, m_ref = classic_delta_plus_one(g)
        vec, m_vec = classic_delta_plus_one_vectorized(g)
        assert ref.assignment == vec.assignment
        assert m_ref.summary() == m_vec.summary()
