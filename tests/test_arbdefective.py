"""Tests for the schedule-based arbdefective coloring."""

import math

import pytest

from repro.core.validate import validate_arbdefective_plain
from repro.graphs import clique, gnp, random_regular, ring, star
from repro.algorithms.arbdefective import arbdefective_coloring


class TestTightMode:
    @pytest.mark.parametrize("d", [0, 1, 2, 4])
    def test_regular_graph(self, d):
        g = random_regular(40, 8, seed=1)
        res, metrics, q = arbdefective_coloring(g, d, mode="tight")
        assert q == math.floor(8 / (d + 1)) + 1
        # validation happens inside; double check independently
        assert validate_arbdefective_plain(g, res, d).ok

    def test_zero_arbdefect_is_proper_partition(self):
        g = ring(12)
        res, _m, q = arbdefective_coloring(g, 0, mode="tight")
        assert q == 3
        # with d=0 every edge must be bichromatic or oriented toward the
        # earlier; validator confirms 0 same-color out-neighbors
        assert validate_arbdefective_plain(g, res, 0).ok

    def test_clique_single_color(self):
        # K_6 with arbdefect 5 needs only floor(5/6)+1 = 1 color
        g = clique(6)
        res, _m, q = arbdefective_coloring(g, 5, mode="tight")
        assert q == 1
        assert validate_arbdefective_plain(g, res, 5).ok

    def test_orientation_covers(self):
        g = gnp(30, 0.3, seed=2)
        res, _m, _q = arbdefective_coloring(g, 2, mode="tight")
        assert res.orientation.covers(g)


class TestFastMode:
    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_regular_graph(self, d):
        g = random_regular(60, 12, seed=3)
        res, metrics, q = arbdefective_coloring(g, d, mode="fast")
        assert validate_arbdefective_plain(g, res, d).ok

    def test_fast_uses_more_colors(self):
        g = random_regular(60, 12, seed=3)
        _r1, _m1, q_tight = arbdefective_coloring(g, 4, mode="tight")
        _r2, _m2, q_fast = arbdefective_coloring(g, 4, mode="fast")
        assert q_fast >= q_tight

    def test_fast_shorter_schedule_large_graph(self):
        g = random_regular(600, 12, seed=4)
        _r1, m_tight, _q1 = arbdefective_coloring(g, 6, mode="tight")
        _r2, m_fast, _q2 = arbdefective_coloring(g, 6, mode="fast")
        assert m_fast.rounds <= m_tight.rounds


class TestParameters:
    def test_explicit_palette(self):
        g = ring(10)
        res, _m, q = arbdefective_coloring(g, 1, colors=5, mode="tight")
        assert q == 5
        assert all(c < 5 for c in res.assignment.values())

    def test_too_small_palette_rejected(self):
        g = clique(9)
        with pytest.raises(ValueError):
            arbdefective_coloring(g, 1, colors=2, mode="tight")

    def test_negative_defect_rejected(self):
        with pytest.raises(ValueError):
            arbdefective_coloring(ring(5), -1)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            arbdefective_coloring(ring(5), 1, mode="warp")

    def test_star_hub(self):
        g = star(15)
        res, _m, q = arbdefective_coloring(g, 2, mode="tight")
        assert validate_arbdefective_plain(g, res, 2).ok
