"""Tests for Luby's MIS and the MIS -> coloring reduction."""

import pytest

from repro.core import validate_proper_coloring
from repro.graphs import clique, gnp, path, random_regular, ring, star
from repro.algorithms.mis import (
    coloring_via_mis,
    is_maximal_independent_set,
    luby_mis,
    product_graph,
)


class TestLubyMIS:
    @pytest.mark.parametrize(
        "g",
        [ring(20), clique(8), star(12), path(15), gnp(40, 0.2, seed=81)],
        ids=["ring", "clique", "star", "path", "gnp"],
    )
    def test_maximal_independent(self, g):
        mis, metrics = luby_mis(g, seed=1)
        assert is_maximal_independent_set(g, mis)

    def test_clique_picks_exactly_one(self):
        mis, _m = luby_mis(clique(9), seed=2)
        assert len(mis) == 1

    def test_empty_graph_all_in(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(5))
        mis, _m = luby_mis(g, seed=3)
        assert mis == set(range(5))

    def test_rounds_logarithmic_in_practice(self):
        g = random_regular(300, 8, seed=82)
        _mis, metrics = luby_mis(g, seed=4)
        assert metrics.rounds <= 40

    def test_seed_deterministic(self):
        g = gnp(30, 0.3, seed=83)
        assert luby_mis(g, seed=5)[0] == luby_mis(g, seed=5)[0]

    def test_checker_rejects_non_independent(self):
        g = path(3)
        assert not is_maximal_independent_set(g, {0, 1})

    def test_checker_rejects_non_maximal(self):
        g = path(5)
        assert not is_maximal_independent_set(g, {0})


class TestProductGraph:
    def test_copy_cliques(self):
        pg = product_graph(path(2), 3)
        # node copies of each vertex form K_3
        for v in (0, 1):
            for a in range(3):
                for b in range(a + 1, 3):
                    assert pg.has_edge(v * 3 + a, v * 3 + b)

    def test_cross_edges_same_color_only(self):
        pg = product_graph(path(2), 3)
        assert pg.has_edge(0 * 3 + 1, 1 * 3 + 1)
        assert not pg.has_edge(0 * 3 + 1, 1 * 3 + 2)

    def test_sizes(self):
        g = ring(5)
        pg = product_graph(g, 3)
        assert pg.number_of_nodes() == 15
        assert pg.number_of_edges() == 5 * 3 + 5 * 3  # cliques + cross


class TestColoringViaMIS:
    @pytest.mark.parametrize(
        "g",
        [ring(12), clique(6), star(9), gnp(20, 0.3, seed=84)],
        ids=["ring", "clique", "star", "gnp"],
    )
    def test_proper_delta_plus_one(self, g):
        res, metrics = coloring_via_mis(g, seed=1)
        validate_proper_coloring(g, res).raise_if_invalid()
        delta = max(d for _, d in g.degree)
        assert res.num_colors() <= delta + 1
        assert set(res.assignment) == set(g.nodes)

    def test_metrics_synthesized(self):
        g = ring(12)
        _res, metrics = coloring_via_mis(g, seed=2)
        assert metrics.rounds > 0
        assert metrics.total_messages == metrics.rounds * 2 * g.number_of_edges()
