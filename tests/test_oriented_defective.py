"""Tests for the oriented defective coloring ([Kuh09] digraph variant)."""

import networkx as nx
import pytest

from repro.core import ColorSpace, uniform_instance, validate_oldc
from repro.graphs import gnp, random_low_outdegree_digraph, ring
from repro.algorithms.oriented_defective import run_oriented_defective
from repro.algorithms.linial import run_linial


def validate_oriented(dg, result, defect):
    """Check the out-defect bound directly."""
    worst = 0
    for v in dg.nodes:
        same = sum(
            1 for u in dg.successors(v) if result.assignment[u] == result.assignment[v]
        )
        worst = max(worst, same)
    return worst <= defect, worst


class TestOrientedDefective:
    def digraph(self, n=400, p=0.05, seed=31):
        g = gnp(n, p, seed=seed)
        return random_low_outdegree_digraph(g, seed=seed + 1)

    def test_proper_oriented(self):
        dg = self.digraph()
        res, metrics, palette = run_oriented_defective(dg, defect=0)
        ok, worst = validate_oriented(dg, res, 0)
        assert ok, f"worst out-defect {worst}"

    @pytest.mark.parametrize("d", [1, 2, 4])
    def test_defective_oriented(self, d):
        dg = self.digraph()
        res, _m, palette = run_oriented_defective(dg, defect=d)
        ok, worst = validate_oriented(dg, res, d)
        assert ok, f"worst out-defect {worst} > {d}"

    def test_palette_beats_undirected_linial(self):
        # beta ~ Delta/2 on balanced orientations: the oriented palette is
        # strictly smaller than the undirected O(Delta^2) one
        g = gnp(4000, 0.004, seed=33)
        dg = random_low_outdegree_digraph(g, seed=34)
        _res_u, _m_u, pal_u = run_linial(g)
        _res_o, _m_o, pal_o = run_oriented_defective(dg, defect=0)
        assert pal_o <= pal_u

    def test_oldc_validator_agrees(self):
        dg = self.digraph(n=120, p=0.1, seed=35)
        res, _m, palette = run_oriented_defective(dg, defect=1)
        space = ColorSpace(max(palette, max(res.assignment.values()) + 1))
        inst = uniform_instance(
            nx.DiGraph(dg), space, range(space.size), 1
        )
        validate_oldc(inst, res).raise_if_invalid()

    def test_requires_digraph(self):
        with pytest.raises(ValueError):
            run_oriented_defective(ring(5))

    def test_negative_defect_rejected(self):
        dg = nx.DiGraph([(0, 1)])
        with pytest.raises(ValueError):
            run_oriented_defective(dg, defect=-1)

    def test_sink_only_graph_trivial(self):
        dg = nx.DiGraph()
        dg.add_nodes_from(range(4))
        res, metrics, _p = run_oriented_defective(dg)
        assert set(res.assignment) == set(range(4))
