"""Failure injection: corrupt correct outputs and assert detection.

An algorithm bug that slips through would have to fool the validators too;
these tests establish that each validator actually has teeth by mutating
known-good outputs in every interesting way (wrong color, out-of-list
color, flipped orientation, dropped node) and asserting rejection.
"""

import random

import pytest

from repro.core import ColorSpace
from repro.core.coloring import ColoringResult, EdgeOrientation
from repro.core.instance import degree_plus_one_instance, uniform_instance
from repro.core.validate import (
    validate_arbdefective,
    validate_ldc,
    validate_oldc,
    validate_proper_coloring,
)
from repro.graphs import gnp, random_regular
from repro.algorithms import (
    congest_delta_plus_one,
    run_linial,
    solve_list_arbdefective,
    solve_oldc_main,
)

from .test_oldc_basic import make_oldc_instance


@pytest.fixture(scope="module")
def good_proper():
    g = random_regular(40, 6, seed=201)
    res, _m, _rep = congest_delta_plus_one(g)
    return g, res


@pytest.fixture(scope="module")
def good_oldc():
    _g, inst, init = make_oldc_instance(n=40, seed=203)
    res, _m, _rep = solve_oldc_main(inst, init)
    return inst, res


@pytest.fixture(scope="module")
def good_arbdefective():
    g = gnp(30, 0.25, seed=205)
    delta = max(d for _, d in g.degree)
    inst = uniform_instance(g, ColorSpace(delta + 1), range(delta + 1), 1)
    res, _m, _rep = solve_list_arbdefective(inst)
    return inst, res


def _copy_assignment(res):
    return dict(res.assignment)


class TestProperColoringInjection:
    def test_clone_neighbor_color_detected(self, good_proper):
        g, res = good_proper
        bad = _copy_assignment(res)
        u, v = next(iter(g.edges))
        bad[u] = bad[v]
        assert not validate_proper_coloring(g, ColoringResult(bad)).ok

    def test_dropped_node_detected(self, good_proper):
        g, res = good_proper
        bad = _copy_assignment(res)
        bad.pop(next(iter(g.nodes)))
        assert not validate_proper_coloring(g, ColoringResult(bad)).ok

    def test_untouched_passes(self, good_proper):
        g, res = good_proper
        assert validate_proper_coloring(g, res).ok


class TestLDCInjection:
    def test_out_of_list_color_detected(self, good_proper):
        g, res = good_proper
        inst = degree_plus_one_instance(g)
        bad = _copy_assignment(res)
        v = next(iter(g.nodes))
        bad[v] = inst.space.size - 1 if bad[v] != inst.space.size - 1 else 0
        # either the color is outside the list or it creates a conflict;
        # check the validator reports when outside the list
        if bad[v] not in inst.lists[v]:
            assert not validate_ldc(inst, ColoringResult(bad)).ok

    def test_defect_overflow_detected(self, good_proper):
        g, res = good_proper
        inst = degree_plus_one_instance(g)
        bad = _copy_assignment(res)
        v = next(iter(g.nodes))
        u = next(iter(g.neighbors(v)))
        bad[v] = bad[u]
        assert not validate_ldc(inst, ColoringResult(bad)).ok


class TestOLDCInjection:
    def test_random_single_mutations_detected_or_benign(self, good_oldc):
        inst, res = good_oldc
        rng = random.Random(7)
        flagged = 0
        trials = 20
        for _ in range(trials):
            bad = _copy_assignment(res)
            v = rng.choice(sorted(inst.graph.nodes))
            bad[v] = rng.randrange(inst.space.size)
            rep = validate_oldc(inst, ColoringResult(bad))
            if bad[v] not in inst.lists[v]:
                assert not rep.ok
                flagged += 1
        assert flagged > 0  # random colors do hit outside the list

    def test_swap_between_nonadjacent_can_break_lists(self, good_oldc):
        inst, res = good_oldc
        nodes = sorted(inst.graph.nodes)
        bad = _copy_assignment(res)
        a, b = nodes[0], nodes[-1]
        bad[a], bad[b] = bad[b], bad[a]
        rep = validate_oldc(inst, ColoringResult(bad))
        # swapped colors are usually not on each other's lists
        if bad[a] not in inst.lists[a] or bad[b] not in inst.lists[b]:
            assert not rep.ok


class TestArbdefectiveInjection:
    def test_orientation_flip_detected(self, good_arbdefective):
        inst, res = good_arbdefective
        # find an edge whose flip increases someone's out-defect
        ori = res.orientation
        for u, v in inst.graph.edges:
            if res.assignment[u] != res.assignment[v]:
                continue
            src, dst = (u, v) if ori.points_from(u, v) else (v, u)
            flipped = EdgeOrientation(set(ori.arcs))
            flipped.arcs.discard((src, dst))
            flipped.arcs.add((dst, src))
            rep = validate_arbdefective(
                inst, ColoringResult(dict(res.assignment), flipped)
            )
            # flipping a monochromatic edge moves defect to the other
            # endpoint; at defect budget 1 this may or may not overflow —
            # at minimum the validator must keep functioning
            assert rep.max_defect_allowed >= 0
            return

    def test_removed_arc_detected(self, good_arbdefective):
        inst, res = good_arbdefective
        broken = EdgeOrientation(set(res.orientation.arcs))
        broken.arcs.pop()
        rep = validate_arbdefective(
            inst, ColoringResult(dict(res.assignment), broken)
        )
        assert not rep.ok

    def test_missing_orientation_detected(self, good_arbdefective):
        inst, res = good_arbdefective
        rep = validate_arbdefective(inst, ColoringResult(dict(res.assignment)))
        assert not rep.ok


class TestAlgorithmPreconditionFaults:
    def test_linial_with_improper_initial_coloring_caught_by_validator(self):
        g = random_regular(30, 4, seed=207)
        # all-zero "proper" coloring is not proper; Linial's collision
        # avoidance cannot fix identical polynomials
        res, _m, _p = run_linial(g, initial_colors={v: 0 for v in g.nodes})
        rep = validate_proper_coloring(g, res)
        assert not rep.ok
