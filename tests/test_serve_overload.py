"""Overload hardening: admission control, deadlines, retries, degradation.

The graceful-degradation contract from :mod:`repro.serve`, tested at
every layer it touches:

* protocol — the ``rejected``/``timeout`` statuses, ``deadline_ms`` and
  ``retry_after_ms`` fields survive the wire round trip;
* scheduler — a bounded queue sheds per policy in O(1) *without*
  building the shed request's graph, deadlines resolve as ``timeout``
  at the queue, at admission, and mid-run (with the resident evicted),
  admitted siblings stay bit-identical to the offline engine, a dead
  scheduler loop fails every pending future with a structured error,
  and :meth:`~repro.serve.ContinuousBatcher.drain` never strands an
  awaiter;
* client — per-op wall-clock timeouts, seeded-deterministic
  exponential backoff honoring the server's ``retry_after_ms`` hint,
  and a traffic generator that survives mid-burst connection loss;
* daemon — oversized protocol lines answer with an error naming the
  limit instead of silently killing the connection.

Everything async runs under ``asyncio.run`` inside ordinary sync tests
(no pytest-asyncio in the environment).
"""

import asyncio

import pytest

from repro.serve import (
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    ColoringServer,
    ContinuousBatcher,
    RetryPolicy,
    ServeClient,
    ServeConfig,
    ServeRequest,
    ServeResponse,
    decode_line,
    encode_line,
    fire_traffic,
    rejected_response,
    synth_requests,
    timeout_response,
)
from repro.sim import linial_vectorized


def request_for(n: int, *, rid: str, deadline_ms=None) -> ServeRequest:
    return ServeRequest(
        family="ring",
        family_params={"n": n},
        initial_colors={v: 64 * v for v in range(n)},
        request_id=rid,
        deadline_ms=deadline_ms,
    )


async def drain_batcher(batcher: ContinuousBatcher) -> None:
    """Tick until idle, then let resolved futures' callbacks run."""
    while batcher.has_work:
        batcher.tick()
    await asyncio.sleep(0)


# ----------------------------------------------------------------------
# protocol: the overload vocabulary survives the wire
# ----------------------------------------------------------------------
class TestOverloadProtocol:
    def test_rejected_response_round_trip(self):
        resp = rejected_response("r1", retry_after_ms=12.5, reason="full")
        back = ServeResponse.from_dict(decode_line(encode_line(resp.to_dict())))
        assert back.status == STATUS_REJECTED
        assert back.request_id == "r1"
        assert back.retry_after_ms == 12.5
        assert back.error["type"] == "Rejected"
        assert "full" in back.error["message"]

    def test_timeout_response_round_trip(self):
        resp = timeout_response(
            "r2", deadline_ms=40.0, where="running",
            timing={"queue_ms": 1.0}, batch={"admitted_round": 3},
        )
        back = ServeResponse.from_dict(decode_line(encode_line(resp.to_dict())))
        assert back.status == STATUS_TIMEOUT
        assert back.error["type"] == "DeadlineExceeded"
        assert "running" in back.error["message"]
        assert back.timing == {"queue_ms": 1.0}
        assert back.batch == {"admitted_round": 3}

    def test_request_deadline_round_trip(self):
        req = request_for(8, rid="d", deadline_ms=250.0)
        back = ServeRequest.from_dict(decode_line(encode_line(req.to_dict())))
        assert back.deadline_ms == 250.0
        assert back == req

    def test_request_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            request_for(8, rid="bad", deadline_ms=0.0)


# ----------------------------------------------------------------------
# scheduler: bounded admission and shed policies
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_full_queue_sheds_newest_and_admitted_stay_bit_identical(self):
        async def scenario():
            batcher = ContinuousBatcher(
                ServeConfig(max_batch=1, max_queue=1)
            )
            futures = [batcher.submit(request_for(8, rid="r0"))]
            batcher.tick()  # r0 leaves the queue for the batch slot
            futures.append(batcher.submit(request_for(12, rid="r1")))
            futures += [
                batcher.submit(request_for(8 + 4 * i, rid=f"r{i}"))
                for i in range(2, 5)
            ]
            # r0 runs, r1 holds the single queue slot: r2-r4 shed
            # immediately (tail drop), before any graph work
            await asyncio.sleep(0)
            for f in futures[2:]:
                resp = f.result()
                assert resp.status == STATUS_REJECTED
                assert resp.retry_after_ms >= batcher.config.retry_after_floor_ms
            assert not futures[1].done()
            await drain_batcher(batcher)
            for i in (0, 1):
                resp = futures[i].result()
                assert resp.status == "ok"
                req = request_for(8 + 4 * i, rid=f"r{i}")
                result, metrics, palette = linial_vectorized(
                    req.build_graph(), initial_colors=req.initial_colors
                )
                assert resp.assignment() == result.assignment
                assert resp.palette == palette
                assert resp.rounds == metrics.rounds
            assert batcher.rejected == 3
            assert batcher.stats()["outcomes"]["counts"][STATUS_REJECTED] == 3

        asyncio.run(scenario())

    def test_shed_policy_oldest_drops_queue_head(self):
        async def scenario():
            batcher = ContinuousBatcher(
                ServeConfig(max_batch=1, max_queue=1, shed_policy="oldest")
            )
            futures = [
                batcher.submit(request_for(8, rid=f"r{i}")) for i in range(3)
            ]
            await asyncio.sleep(0)
            # drop-head, no tick yet: each arrival on the full one-slot
            # queue evicts the queue head — r1 bumps r0, r2 bumps r1 —
            # so under sustained overload "oldest" keeps the freshest
            for f in futures[:2]:
                resp = f.result()
                assert resp.status == STATUS_REJECTED
                assert "oldest" in resp.error["message"]
            assert not futures[2].done()
            await drain_batcher(batcher)
            assert futures[2].result().status == "ok"
            assert batcher.rejected == 2

        asyncio.run(scenario())

    def test_shed_path_never_builds_the_graph(self):
        async def scenario():
            batcher = ContinuousBatcher(
                ServeConfig(max_batch=1, max_queue=1)
            )
            batcher.submit(request_for(8, rid="a"))
            batcher.submit(request_for(8, rid="b"))
            # malformed family: would raise at materialization — but a
            # full queue must turn it away un-inspected, as rejected
            bogus = ServeRequest(family="no-such-family", request_id="c")
            resp = (await asyncio.gather(batcher.submit(bogus)))[0]
            assert resp.status == STATUS_REJECTED
            assert batcher.errors == 0
            await drain_batcher(batcher)

        asyncio.run(scenario())

    def test_draining_batcher_rejects_new_work(self):
        async def scenario():
            batcher = ContinuousBatcher(ServeConfig(max_batch=2))
            task = asyncio.create_task(batcher.run())
            first = await batcher.submit(request_for(8, rid="before"))
            assert first.status == "ok"
            report = await batcher.drain(0.5)
            resp = await batcher.submit(request_for(8, rid="after"))
            assert resp.status == STATUS_REJECTED
            assert "draining" in resp.error["message"]
            assert report == {"pending_at_drain": 0, "abandoned": 0}
            batcher.stop()
            await task

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# scheduler: deadlines at the queue, at admission, and mid-run
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_in_queue_resolves_timeout(self):
        async def scenario():
            batcher = ContinuousBatcher(ServeConfig(max_batch=1))
            slow = batcher.submit(request_for(16, rid="slow"))
            doomed = batcher.submit(
                request_for(16, rid="doomed", deadline_ms=100.0)
            )
            # force the deterministic path: expire the queued ticket
            # directly instead of sleeping the wall clock
            queued = next(
                t for t in batcher._queue
                if t.request.request_id == "doomed"
            )
            queued.deadline = 0.0
            await drain_batcher(batcher)
            assert slow.result().status == "ok"
            resp = doomed.result()
            assert resp.status == STATUS_TIMEOUT
            assert resp.error["type"] == "DeadlineExceeded"
            assert "admission" in resp.error["message"] or "queue" in (
                resp.error["message"]
            )
            assert batcher.timed_out == 1

        asyncio.run(scenario())

    def test_expired_mid_run_evicts_resident(self):
        async def scenario():
            batcher = ContinuousBatcher(ServeConfig(max_batch=2))
            doomed = batcher.submit(
                request_for(24, rid="doomed", deadline_ms=60_000.0)
            )
            sibling = batcher.submit(request_for(24, rid="sibling"))
            batcher.tick()  # both admitted, neither finished yet
            assert len(batcher._resident) == 2
            ticket = next(
                t for t in batcher._resident.values()
                if t.request.request_id == "doomed"
            )
            # expire it and run the between-rounds sweep directly: every
            # ring needs exactly two rounds, so another full tick would
            # finish the instance first (finish beats a same-round
            # deadline by design — asserted separately below)
            ticket.deadline = 0.0
            batcher._evict_expired_residents()
            await asyncio.sleep(0)
            resp = doomed.result()
            assert resp.status == STATUS_TIMEOUT
            assert "running" in resp.error["message"]
            assert resp.batch == {"admitted_round": 0}
            # the doomed instance left the stepper, not just the books
            assert batcher.stepper.occupancy == 1
            await drain_batcher(batcher)
            # eviction must not perturb the surviving sibling
            sib = sibling.result()
            assert sib.status == "ok"
            req = request_for(24, rid="sibling")
            result, _, palette = linial_vectorized(
                req.build_graph(), initial_colors=req.initial_colors
            )
            assert sib.assignment() == result.assignment
            assert sib.palette == palette

        asyncio.run(scenario())

    def test_finish_beats_same_round_deadline(self):
        async def scenario():
            batcher = ContinuousBatcher(ServeConfig(max_batch=1))
            future = batcher.submit(
                request_for(8, rid="close-call", deadline_ms=60_000.0)
            )
            await drain_batcher(batcher)
            assert future.result().status == "ok"
            assert batcher.timed_out == 0

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# scheduler: the no-hanging-awaiters contract
# ----------------------------------------------------------------------
class TestGracefulDegradation:
    def test_scheduler_crash_fails_pending_futures(self):
        async def scenario():
            batcher = ContinuousBatcher(ServeConfig(max_batch=1))
            batcher.tick = lambda: (_ for _ in ()).throw(
                RuntimeError("kernel exploded")
            )
            task = asyncio.create_task(batcher.run())
            resp = await batcher.submit(request_for(8, rid="victim"))
            assert resp.status == "error"
            assert resp.error["type"] == "SchedulerCrashed"
            assert "kernel exploded" in resp.error["message"]
            with pytest.raises(RuntimeError, match="kernel exploded"):
                await task
            # the crash is sticky: later submissions fail fast
            late = await batcher.submit(request_for(8, rid="late"))
            assert late.status == "error"
            assert late.error["type"] == "SchedulerCrashed"
            assert batcher.stats()["crashed"] == "RuntimeError"

        asyncio.run(scenario())

    def test_drain_timeout_fails_leftover_work(self):
        async def scenario():
            batcher = ContinuousBatcher(ServeConfig(max_batch=1))
            # no run() loop: queued work can never finish, so the drain
            # deadline must fire and fail it with a structured error
            future = batcher.submit(request_for(8, rid="stuck"))
            report = await batcher.drain(0.05)
            assert report == {"pending_at_drain": 1, "abandoned": 1}
            resp = future.result()
            assert resp.status == "error"
            assert resp.error["type"] == "DrainTimeout"
            assert not batcher.has_work

        asyncio.run(scenario())

    def test_daemon_stop_reaps_crashed_scheduler(self):
        async def scenario():
            server = ColoringServer(ServeConfig(max_batch=1))
            await server.start()
            server.batcher.tick = lambda: (_ for _ in ()).throw(
                ValueError("chaos")
            )
            client = ServeClient("127.0.0.1", server.port, timeout=10.0)
            resp = await client.color(request_for(8, rid="r"))
            assert resp.status == "error"
            assert resp.error["type"] == "SchedulerCrashed"
            await client.close()
            await asyncio.wait_for(server.stop(), timeout=10.0)
            assert isinstance(server.scheduler_error, ValueError)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# client: timeouts, seeded backoff, surviving a mid-burst disconnect
# ----------------------------------------------------------------------
class TestClientResilience:
    def test_retry_policy_is_seed_deterministic(self):
        policy = RetryPolicy(attempts=5, seed=7)
        a = [policy.delay_ms(i, policy.rng()) for i in range(4)]
        b = [policy.delay_ms(i, RetryPolicy(attempts=5, seed=7).rng())
             for i in range(4)]
        assert a == b
        assert [
            policy.delay_ms(i, RetryPolicy(attempts=5, seed=8).rng())
            for i in range(4)
        ] != a

    def test_retry_delay_honors_server_hint(self):
        policy = RetryPolicy(attempts=3, base_ms=1.0, jitter=0.0, seed=0)
        rng = policy.rng()
        assert policy.delay_ms(0, rng, retry_after_ms=500.0) >= 500.0
        assert policy.delay_ms(0, rng) == 1.0

    def test_client_timeout_on_mute_daemon(self):
        async def scenario():
            async def mute(reader, writer):
                try:
                    await reader.readline()
                    await asyncio.sleep(3600)
                except asyncio.CancelledError:
                    pass
                finally:
                    writer.close()

            server = await asyncio.start_server(mute, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            client = ServeClient("127.0.0.1", port, timeout=0.2)
            with pytest.raises(asyncio.TimeoutError):
                await client.color(request_for(8, rid="hang"))
            await client.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_retrying_clients_recover_from_shed(self):
        async def scenario():
            server = ColoringServer(ServeConfig(max_batch=1, max_queue=1))
            await server.start()
            requests = synth_requests(3, 12)
            report = await fire_traffic(
                "127.0.0.1",
                server.port,
                requests,
                clients=6,
                timeout=30.0,
                retry_policy=RetryPolicy(
                    attempts=40, base_ms=5.0, max_ms=50.0, seed=1
                ),
            )
            await server.stop()
            assert report.status_counts() == {"ok": len(requests)}
            assert report.retries > 0
            # ... and the daemon's books saw the shedding happen
            assert server.batcher.rejected > 0

        asyncio.run(scenario())

    def test_fire_traffic_survives_mid_burst_disconnect(self):
        async def scenario():
            victim_rid = None

            async def flaky(reader, writer):
                nonlocal victim_rid
                try:
                    while True:
                        line = await reader.readline()
                        if not line:
                            break
                        payload = decode_line(line)
                        rid = (payload.get("request") or {}).get("request_id")
                        if rid == victim_rid:
                            # hard drop, mid-burst, reply never sent
                            writer.close()
                            return
                        writer.write(
                            encode_line(
                                ServeResponse(
                                    status="ok", request_id=rid, valid=True
                                ).to_dict()
                            )
                        )
                        await writer.drain()
                except ConnectionResetError:
                    pass
                finally:
                    writer.close()

            server = await asyncio.start_server(
                flaky, host="127.0.0.1", port=0
            )
            port = server.sockets[0].getsockname()[1]
            requests = [request_for(8, rid=f"r{i}") for i in range(12)]
            # round-robin deal: client 1 serves r1, r5, r9 — dropping on
            # r5 kills that client mid-slice, after one success
            victim_rid = "r5"
            report = await fire_traffic(
                "127.0.0.1", port, requests, clients=4, timeout=5.0
            )
            server.close()
            await server.wait_closed()
            assert report.failed_clients == 1
            (err,) = report.errors
            assert err["client"] == 1
            assert err["completed"] == 1  # r1 landed before the drop
            assert err["type"] in (
                "IncompleteReadError", "ConnectionResetError",
                "ConnectionError", "BrokenPipeError",
            )
            # the three surviving clients finished every request
            survivors = {"r0", "r4", "r8", "r2", "r6", "r10", "r3", "r7",
                         "r11", "r1"}
            got = {r.request_id for r in report.responses}
            assert got == survivors
            assert len(report.latencies) == len(report.responses)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# daemon: oversized lines answer, then close deliberately
# ----------------------------------------------------------------------
class TestOversizedLines:
    def test_oversized_line_gets_error_naming_limit(self):
        async def scenario():
            server = ColoringServer(
                ServeConfig(max_batch=2), max_line_bytes=1024
            )
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b'{"op": "color", "pad": "' + b"x" * 4096 + b'"}\n')
            await writer.drain()
            reply = ServeResponse.from_dict(
                decode_line(await asyncio.wait_for(reader.readline(), 10))
            )
            assert reply.status == "error"
            assert "1024" in reply.error["message"]
            # the daemon closed the unrecoverable connection...
            assert await asyncio.wait_for(reader.read(), 10) == b""
            writer.close()
            # ... but kept itself alive for everyone else
            client = ServeClient("127.0.0.1", server.port, timeout=10.0)
            resp = await client.color(request_for(8, rid="after"))
            assert resp.status == "ok"
            await client.close()
            await server.stop()

        asyncio.run(scenario())
