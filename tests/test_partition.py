"""The partitioned backend: partitioner invariants, bit-identity, death.

Three layers, tested bottom-up:

* :func:`~repro.sim.partition.partition_arrays` — the pure partitioner:
  for every strategy/shard-count, owned sets partition ``0..n-1``,
  ghosts are exactly the foreign endpoints of cut edges, send lists
  mirror ghost lists pairwise, and the per-shard local CSRs re-assemble
  into the global adjacency;
* :func:`~repro.sim.partition.run_partitioned_linial` — the equivalence
  contract: bit-identical ``(coloring, metrics, palette)`` to
  :func:`~repro.sim.vectorized.linial_vectorized` for shard counts
  1/2/8, on clean and on gappy-unsorted-label graphs, with
  :func:`~repro.obs.compare_round_accounting` agreeing round-for-round
  (the ``exchange`` column is partitioned-only and deliberately not
  compared), plus corpus replay through ``PARTITIONED_PAIRS`` on
  2/4/8 shards;
* failure semantics — a shard worker SIGKILLed mid-round surfaces as a
  structured :class:`~repro.sim.partition.PartitionWorkerError` naming
  the shard and exit code, never as a hang (the barrier timeout plus
  the parent's exitcode poll are the two watchdogs under test).

Worker tests use the ``fork`` start method for speed (a spawn worker
re-imports the package per process); one test pins that ``spawn`` —
the honest-RSS default used by the benchmark — works too.
"""

import numpy as np
import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fuzz import PARTITIONED_PAIRS, load_corpus, run_case
from repro.obs import (
    ENGINE_PARTITIONED,
    ENGINE_VECTORIZED,
    RunRecorder,
    compare_round_accounting,
)
from repro.sim.engine import CSRGraph
from repro.sim.partition import (
    PARTITION_STRATEGIES,
    GraphPartition,
    PartitionWorkerError,
    partition_arrays,
    partition_graph,
    run_partitioned_dense,
    run_partitioned_linial,
)
from repro.sim.vectorized import linial_vectorized
from tests.test_fuzz_corpus import CORPUS_DIR


def spread(g):
    """Spread initial colors: forces a non-empty multi-round schedule."""
    return {v: 64 * i for i, v in enumerate(sorted(g.nodes))}


def gappy_ring(n: int, stride: int = 977) -> nx.Graph:
    """A ring whose labels are gappy and deliberately unsorted."""
    labels = [(i * stride) % (n * stride + 13) + 5 for i in range(n)]
    g = nx.Graph()
    g.add_nodes_from(labels)
    for i in range(n):
        g.add_edge(labels[i], labels[(i + 1) % n])
    return g


# ----------------------------------------------------------------------
# layer 1: the pure partitioner
# ----------------------------------------------------------------------
def check_partition_invariants(csr: CSRGraph, part: GraphPartition) -> None:
    n = csr.n
    # owned sets partition 0..n-1
    owned_all = np.concatenate([p.owned for p in part.plans]) if n else (
        np.empty(0, dtype=np.int64)
    )
    assert sorted(owned_all.tolist()) == list(range(n))
    assert np.array_equal(part.owner[owned_all], np.repeat(
        np.arange(part.shards), [p.n_owned for p in part.plans]
    ))
    total_cut = 0
    for plan in part.plans:
        # ghosts: sorted, foreign-owned, disjoint from owned
        assert np.array_equal(plan.ghosts, np.unique(plan.ghosts))
        assert not np.intersect1d(plan.owned, plan.ghosts).size
        assert np.all(part.owner[plan.ghosts] != plan.shard)
        # every ghost is an endpoint of at least one local edge, and the
        # local CSR re-assembles into the exact global neighbor lists
        local_ids = np.concatenate([plan.owned, plan.ghosts])
        seen_ghost_slots = set()
        for li, v in enumerate(plan.owned):
            lo, hi = plan.indptr[li], plan.indptr[li + 1]
            nbrs_local = plan.indices[lo:hi]
            nbrs_global = local_ids[nbrs_local]
            lo_g, hi_g = csr.indptr[v], csr.indptr[v + 1]
            assert np.array_equal(nbrs_global, csr.indices[lo_g:hi_g])
            seen_ghost_slots.update(
                int(x) for x in nbrs_local[nbrs_local >= plan.n_owned]
            )
        assert seen_ghost_slots == set(
            range(plan.n_owned, plan.n_owned + plan.n_ghost)
        )
        # ghost rows of the local CSR are empty
        assert np.all(
            np.diff(plan.indptr[plan.n_owned:]) == 0
        )
        total_cut += plan.cut_directed_edges
    assert total_cut == part.cut_directed_edges
    assert part.cut_directed_edges <= csr.num_directed_edges
    # send lists mirror ghost lists pairwise: what s sends to t is
    # exactly the slice of t's ghosts that s owns
    for s, plan in enumerate(part.plans):
        for t, sent in plan.send_to.items():
            assert t != s
            assert np.all(part.owner[sent] == s)
            ghosts_t = part.plans[t].ghosts
            expected = ghosts_t[part.owner[ghosts_t] == s]
            assert np.array_equal(sent, expected)
    # and nothing is sent that no shard wants
    for t, plan in enumerate(part.plans):
        received = [
            other.send_to[t]
            for other in part.plans
            if t in other.send_to
        ]
        got = np.sort(np.concatenate(received)) if received else np.empty(
            0, dtype=np.int64
        )
        assert np.array_equal(got, plan.ghosts)


class TestPartitioner:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("shards", [1, 2, 3, 8])
    def test_invariants_on_regular_graph(self, strategy, shards):
        g = nx.random_regular_graph(3, 24, seed=7)
        csr, part = partition_graph(g, shards, strategy=strategy, seed=3)
        check_partition_invariants(csr, part)

    def test_single_shard_has_no_cut(self):
        g = nx.random_regular_graph(3, 16, seed=1)
        csr, part = partition_graph(g, 1)
        assert part.cut_directed_edges == 0
        assert part.total_ghosts == 0
        assert part.exchange_bytes_per_round == 0
        assert part.exchange_row() == {
            "bytes": 0,
            "ghosts": 0,
            "cut_directed_edges": 0,
        }

    def test_more_shards_than_nodes_is_legal(self):
        g = nx.path_graph(3)
        csr, part = partition_graph(g, 8)
        check_partition_invariants(csr, part)
        assert sum(p.n_owned for p in part.plans) == 3
        assert sum(p.n_owned == 0 for p in part.plans) == 5

    def test_empty_graph(self):
        part = partition_arrays(
            0, np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64), 4
        )
        assert part.cut_edge_fraction == 0.0
        assert part.ghost_fraction == 0.0

    def test_bad_arguments_raise(self):
        g = nx.path_graph(4)
        with pytest.raises(ValueError, match="shards"):
            partition_graph(g, 0)
        with pytest.raises(ValueError, match="strategy"):
            partition_graph(g, 2, strategy="metis")

    def test_hash_strategy_is_seed_deterministic(self):
        g = nx.random_regular_graph(3, 30, seed=2)
        _, a = partition_graph(g, 4, strategy="hash", seed=11)
        _, b = partition_graph(g, 4, strategy="hash", seed=11)
        _, c = partition_graph(g, 4, strategy="hash", seed=12)
        assert np.array_equal(a.owner, b.owner)
        assert not np.array_equal(a.owner, c.owner)

    @given(
        n=st.integers(0, 20),
        shards=st.integers(1, 5),
        strategy=st.sampled_from(PARTITION_STRATEGIES),
        graph_seed=st.integers(0, 100),
        part_seed=st.integers(0, 100),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_invariants_hold_everywhere(
        self, n, shards, strategy, graph_seed, part_seed
    ):
        g = nx.gnp_random_graph(n, 0.3, seed=graph_seed)
        csr, part = partition_graph(g, shards, strategy=strategy, seed=part_seed)
        check_partition_invariants(csr, part)


# ----------------------------------------------------------------------
# layer 2: bit-identity to the vectorized engine
# ----------------------------------------------------------------------
def run_both(g, *, shards, strategy="contiguous", defect=0, initial=None):
    rec_p = RunRecorder(engine=ENGINE_PARTITIONED)
    res_p, met_p, pal_p = run_partitioned_linial(
        g,
        initial_colors=initial,
        defect=defect,
        recorder=rec_p,
        shards=shards,
        strategy=strategy,
        mp_context="fork",
    )
    rec_v = RunRecorder(engine=ENGINE_VECTORIZED)
    res_v, met_v, pal_v = linial_vectorized(
        g, initial_colors=initial, defect=defect, recorder=rec_v
    )
    assert res_p.assignment == res_v.assignment
    assert pal_p == pal_v
    assert met_p.summary() == met_v.summary()
    accounting = compare_round_accounting(rec_p.record, rec_v.record)
    assert accounting["accounting_equal"], accounting
    assert accounting["rounds_equal"], accounting
    return rec_p


class TestBitIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_shard_count_invariance(self, shards):
        g = nx.random_regular_graph(3, 40, seed=5)
        run_both(g, shards=shards, initial=spread(g))

    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_gappy_unsorted_labels(self, shards):
        g = gappy_ring(23)
        run_both(g, shards=shards, initial=spread(g))

    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_strategy_invariance(self, strategy):
        g = nx.random_regular_graph(4, 30, seed=9)
        run_both(g, shards=3, strategy=strategy, initial=spread(g))

    def test_defective_schedule(self):
        g = nx.random_regular_graph(4, 26, seed=4)
        run_both(g, shards=2, defect=1, initial=spread(g))

    def test_exchange_column_recorded(self):
        g = nx.random_regular_graph(3, 40, seed=5)
        rec = run_both(g, shards=2, initial=spread(g))
        rows = rec.record.rows
        assert rows, "spread colors must force a non-empty schedule"
        for row in rows:
            assert set(row.exchange) == {
                "bytes",
                "ghosts",
                "cut_directed_edges",
            }
            assert row.exchange["bytes"] == 8 * row.exchange["ghosts"]

    def test_empty_schedule_short_circuits(self):
        # identity colors on a tiny graph: nothing to reduce, no workers
        g = nx.path_graph(3)
        stats_sink = []
        res, met, pal = run_partitioned_linial(
            g, shards=2, mp_context="fork", stats_out=stats_sink
        )
        assert met.rounds == 0
        assert res.assignment == {0: 0, 1: 1, 2: 2}
        assert stats_sink[0].rounds == 0
        # no workers ran: placeholder per-shard stats, no round walls
        assert all(s.round_walls == [] for s in stats_sink[0].shard_stats)

    def test_spawn_context_matches_too(self):
        # one spawn cell (the benchmark default); fork everywhere else
        # for speed
        g = nx.random_regular_graph(3, 20, seed=8)
        res_s, _, _ = run_partitioned_linial(
            g, initial_colors=spread(g), shards=2, mp_context="spawn"
        )
        res_v, _, _ = linial_vectorized(g, initial_colors=spread(g))
        assert res_s.assignment == res_v.assignment


class TestCorpusReplay:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_linial_corpus_replays_partitioned(self, shards):
        import dataclasses

        from repro.fuzz.differential import EngineRun

        def partitioned_fast(case):
            rec = RunRecorder(engine=ENGINE_PARTITIONED)
            result, metrics, palette = run_partitioned_linial(
                case.graph(),
                initial_colors=case.initial_colors,
                defect=case.defect,
                recorder=rec,
                shards=shards,
                mp_context="fork",
            )
            return EngineRun(
                dict(result.assignment), metrics, rec.record, palette
            )

        pairs = {
            name: dataclasses.replace(pair, run_vectorized=partitioned_fast)
            for name, pair in PARTITIONED_PAIRS.items()
        }
        replayed = 0
        for path, case in load_corpus(CORPUS_DIR):
            if case.pair not in pairs or case.fault is not None:
                continue
            outcome = run_case(case, pairs)
            assert outcome.ok, f"{path.name} diverged:\n{outcome.describe()}"
            replayed += 1
        assert replayed > 0, "corpus has no linial no-fault cases to replay"


# ----------------------------------------------------------------------
# layer 3: failure semantics
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_sigkilled_worker_raises_structured_error(self):
        g = nx.random_regular_graph(3, 24, seed=6)
        csr = CSRGraph.from_networkx(g)
        colors = csr.gather(spread(g))
        with pytest.raises(PartitionWorkerError) as err:
            run_partitioned_dense(
                csr.n,
                csr.indptr,
                csr.indices,
                colors,
                [(17, 3), (7, 3)],
                shards=2,
                mp_context="fork",
                barrier_timeout=10.0,
                _crash={1: 0},  # shard 1 SIGKILLs itself in round 0
            )
        assert err.value.shard == 1
        assert err.value.exitcode == -9
        assert "killed by signal 9" in str(err.value)

    def test_surviving_shards_are_reaped(self):
        # after the error, no orphan worker processes may linger
        import multiprocessing

        g = nx.random_regular_graph(3, 24, seed=6)
        csr = CSRGraph.from_networkx(g)
        colors = csr.gather(spread(g))
        before = set(multiprocessing.active_children())
        with pytest.raises(PartitionWorkerError):
            run_partitioned_dense(
                csr.n,
                csr.indptr,
                csr.indices,
                colors,
                [(17, 3), (7, 3)],
                shards=3,
                mp_context="fork",
                barrier_timeout=10.0,
                _crash={2: 1},
            )
        leaked = [
            p for p in multiprocessing.active_children() if p not in before
        ]
        for p in leaked:
            p.join(timeout=10.0)
        assert all(not p.is_alive() for p in leaked)
