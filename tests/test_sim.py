"""Unit tests for the synchronous simulator (messages, metrics, network)."""

import pytest
from hypothesis import given, strategies as st

from repro.graphs import path, ring
from repro.sim import (
    DistributedAlgorithm,
    HaltingError,
    Message,
    SyncNetwork,
    color_list_bits,
    congest_bandwidth,
    estimate_bits,
    index_bits,
    int_bits,
)
from repro.sim.metrics import RunMetrics


class TestMessageBits:
    def test_int_bits(self):
        assert int_bits(0) == 1
        assert int_bits(1) == 1
        assert int_bits(255) == 8
        with pytest.raises(ValueError):
            int_bits(-1)

    def test_index_bits(self):
        assert index_bits(1) == 1
        assert index_bits(2) == 1
        assert index_bits(1024) == 10
        with pytest.raises(ValueError):
            index_bits(0)

    def test_color_list_bits_takes_min(self):
        # small space: characteristic vector wins
        assert color_list_bits(10, 16) == 16
        # big space: explicit colors win
        assert color_list_bits(3, 2**20) == 60

    def test_estimate_bits_structures(self):
        assert estimate_bits(None) == 1
        assert estimate_bits(True) == 1
        assert estimate_bits(0.5) == 64
        assert estimate_bits("ab") == 16
        assert estimate_bits([1, 2]) > estimate_bits([1])
        assert estimate_bits({1: 2}) >= estimate_bits(1) + estimate_bits(2)
        with pytest.raises(TypeError):
            estimate_bits(object())

    def test_declared_bits_win(self):
        assert Message("x" * 100, bits=7).size_bits() == 7
        with pytest.raises(ValueError):
            Message(0, bits=0).size_bits()

    @given(st.integers(0, 10**9))
    def test_int_bits_sufficient(self, x):
        assert 2 ** int_bits(x) > x or x <= 1


class TestMetrics:
    def test_observe_round(self):
        m = RunMetrics(bandwidth_limit=8)
        m.observe_round([4, 10, 2])
        assert m.rounds == 1
        assert m.total_messages == 3
        assert m.total_bits == 16
        assert m.max_message_bits == 10
        assert m.bandwidth_violations == 1
        assert not m.congest_compliant

    def test_merge_sequential(self):
        a = RunMetrics(bandwidth_limit=100)
        a.observe_round([5])
        b = RunMetrics(bandwidth_limit=100)
        b.observe_round([7])
        b.observe_round([3])
        c = a.merge_sequential(b)
        assert c.rounds == 3
        assert c.total_bits == 15
        assert c.max_message_bits == 7
        assert c.congest_compliant

    def test_congest_bandwidth_scales(self):
        assert congest_bandwidth(2) == 32
        assert congest_bandwidth(1024) == 32 * 10
        assert congest_bandwidth(1, factor=5) == 5

    def test_summary_keys(self):
        m = RunMetrics()
        s = m.summary()
        assert set(s) >= {"rounds", "total_bits", "max_message_bits"}


class EchoOnce(DistributedAlgorithm):
    """Each node sends its id once; halts after hearing all neighbors."""

    def init_state(self, view):
        return {"heard": {}, "sent": False}

    def send(self, view, state, rnd):
        if not state["sent"]:
            state["sent"] = True
            return {u: Message(view.id, bits=8) for u in view.neighbors}
        return {}

    def receive(self, view, state, rnd, inbox):
        for u, m in inbox.items():
            state["heard"][u] = m.payload

    def is_done(self, view, state):
        return len(state["heard"]) == len(view.neighbors)

    def output(self, view, state):
        return dict(state["heard"])


class TestNetwork:
    def test_echo_delivers_everything(self):
        g = ring(6)
        net = SyncNetwork(g)
        outputs, metrics = net.run(EchoOnce())
        assert metrics.rounds == 1
        assert metrics.total_messages == 12
        for v in g.nodes:
            assert outputs[v] == {u: u for u in g.neighbors(v)}

    def test_congest_budget_recorded(self):
        net = SyncNetwork(ring(6), model="CONGEST", bandwidth=4)
        _out, metrics = net.run(EchoOnce())
        assert metrics.bandwidth_limit == 4
        assert metrics.bandwidth_violations == 12

    def test_local_has_no_budget(self):
        net = SyncNetwork(ring(6), model="LOCAL")
        _out, metrics = net.run(EchoOnce())
        assert metrics.bandwidth_limit is None

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            SyncNetwork(ring(4), model="WEIRD")

    def test_non_neighbor_send_rejected(self):
        class Bad(DistributedAlgorithm):
            def init_state(self, view):
                return {"done": False}

            def send(self, view, state, rnd):
                return {(view.id + 3) % view.globals["n"]: Message(0)}

            def is_done(self, view, state):
                return state["done"]

        with pytest.raises(ValueError):
            SyncNetwork(ring(8)).run(Bad())

    def test_non_message_rejected(self):
        class Bad(DistributedAlgorithm):
            def init_state(self, view):
                return {}

            def send(self, view, state, rnd):
                return {view.neighbors[0]: 42}

            def is_done(self, view, state):
                return False

        with pytest.raises(TypeError):
            SyncNetwork(ring(4)).run(Bad())

    def test_halting_error(self):
        class Forever(DistributedAlgorithm):
            def is_done(self, view, state):
                return False

        with pytest.raises(HaltingError):
            SyncNetwork(path(3)).run(Forever(), max_rounds=5)

    def test_directed_views(self):
        import networkx as nx

        dg = nx.DiGraph()
        dg.add_edge(0, 1)

        class Views(DistributedAlgorithm):
            def init_state(self, view):
                return {
                    "out": view.out_neighbors,
                    "in": view.in_neighbors,
                    "n": view.neighbors,
                }

            def output(self, view, state):
                return state

        out, _m = SyncNetwork(dg).run(Views())
        assert out[0]["out"] == (1,) and out[0]["in"] == ()
        assert out[1]["out"] == () and out[1]["in"] == (0,)
        assert out[0]["n"] == (1,) and out[1]["n"] == (0,)

    def test_messages_flow_both_ways_on_directed_edges(self):
        import networkx as nx

        dg = nx.DiGraph()
        dg.add_edge(0, 1)
        out, _m = SyncNetwork(dg).run(EchoOnce())
        assert out[0] == {1: 1}
        assert out[1] == {0: 0}

    def test_determinism(self):
        g = ring(8)
        o1, m1 = SyncNetwork(g).run(EchoOnce())
        o2, m2 = SyncNetwork(g).run(EchoOnce())
        assert o1 == o2
        assert m1.summary() == m2.summary()

    def test_run_phases_accumulates(self):
        g = ring(5)
        net = SyncNetwork(g)
        outs, metrics = net.run_phases([(EchoOnce(), {}), (EchoOnce(), {})])
        assert len(outs) == 2
        assert metrics.rounds == 2

    def test_round_hook_called(self):
        seen = []
        SyncNetwork(ring(4)).run(
            EchoOnce(), round_hook=lambda rnd, states: seen.append(rnd)
        )
        assert seen == [0]

    def test_inputs_and_shared_visible(self):
        class Reader(DistributedAlgorithm):
            def init_state(self, view):
                return {"x": view.inputs["x"], "g": view.globals["k"]}

            def output(self, view, state):
                return (state["x"], state["g"])

        out, _m = SyncNetwork(path(2)).run(
            Reader(), inputs={0: {"x": 1}, 1: {"x": 2}}, shared={"k": 9}
        )
        assert out == {0: (1, 9), 1: (2, 9)}


class TestMessageConstructionValidation:
    def test_invalid_declared_bits_fail_at_construction(self):
        with pytest.raises(ValueError, match="bit size"):
            Message("payload", bits=0)
        with pytest.raises(ValueError, match="bit size"):
            Message("payload", bits=-3)

    def test_valid_declarations_still_work(self):
        assert Message("x", bits=1).size_bits() == 1
        assert Message("x", bits=17).size_bits() == 17
        assert Message(None).size_bits() == 1  # estimated, not declared


class TestRunPhasesObservability:
    def test_trace_threads_through_phases(self):
        from repro.sim import Trace

        g = ring(5)
        trace = Trace()
        net = SyncNetwork(g)
        outs, metrics = net.run_phases(
            [(EchoOnce(), {}), (EchoOnce(), {})], trace=trace
        )
        # every message of both phases is recorded: 2 phases x 1 round x 2m
        assert len(outs) == 2
        assert trace.rounds == metrics.rounds == 2
        assert len(trace.messages) == metrics.total_messages == 2 * 2 * 5
        assert sum(m.bits for m in trace.messages) == metrics.total_bits

    def test_round_hook_threads_through_phases(self):
        seen = []
        SyncNetwork(ring(4)).run_phases(
            [(EchoOnce(), {}), (EchoOnce(), {})],
            round_hook=lambda rnd, states: seen.append(rnd),
        )
        # hook fires in each phase; round index restarts per phase
        assert seen == [0, 0]


class TestMetricsEquivalence:
    def test_uniform_round_equals_observe_round(self):
        a, b = RunMetrics(bandwidth_limit=16), RunMetrics(bandwidth_limit=16)
        for count, bits in [(5, 8), (0, 8), (3, 32), (1, 1)]:
            a.observe_uniform_round(count, bits)
            b.observe_round([bits] * count)
        assert a.summary() == b.summary()
        assert a.per_round_max_bits == b.per_round_max_bits

    def test_empty_round_equivalence(self):
        a, b = RunMetrics(), RunMetrics()
        a.observe_uniform_round(0, 999)
        b.observe_round([])
        assert a.summary() == b.summary()
        assert a.per_round_max_bits == b.per_round_max_bits == [0]

    def test_violation_counting_matches(self):
        a, b = RunMetrics(bandwidth_limit=4), RunMetrics(bandwidth_limit=4)
        a.observe_uniform_round(3, 9)
        b.observe_round([9, 9, 9])
        assert a.bandwidth_violations == b.bandwidth_violations == 3

    def test_merge_sequential_preserves_bandwidth_limit(self):
        a = RunMetrics(bandwidth_limit=128)
        a.observe_uniform_round(2, 8)
        b = RunMetrics(bandwidth_limit=64)
        b.observe_uniform_round(1, 200)
        # conflicting non-None limits must be resolved explicitly
        with pytest.raises(ValueError, match="conflicting bandwidth limits"):
            a.merge_sequential(b)
        merged = a.merge_sequential(b, bandwidth_limit=128)
        assert merged.bandwidth_limit == 128
        assert merged.rounds == 2
        assert merged.bandwidth_violations == 1
        # merging with a limitless phase keeps the budget (either side)
        c = RunMetrics()
        assert a.merge_sequential(c).bandwidth_limit == 128
        assert c.merge_sequential(a).bandwidth_limit == 128
        # equal limits merge without the keyword
        d = RunMetrics(bandwidth_limit=128)
        d.observe_uniform_round(1, 8)
        assert a.merge_sequential(d).bandwidth_limit == 128

    def test_merge_sequential_concatenates_per_round_lists(self):
        a = RunMetrics(bandwidth_limit=128)
        a.observe_uniform_round(2, 8)
        b = RunMetrics(bandwidth_limit=128)
        b.observe_round([16, 4])
        merged = a.merge_sequential(b)
        assert merged.per_round_messages == [2, 2]
        assert merged.per_round_bits == [16, 20]
        assert merged.per_round_max_bits == [8, 16]
        assert merged.per_round_complete

    def test_observe_uniform_round_zero_count(self):
        m = RunMetrics()
        m.observe_uniform_round(0, 7)
        assert m.rounds == 1
        assert m.total_messages == 0
        assert m.total_bits == 0
        assert m.per_round_messages == [0]
        assert m.per_round_bits == [0]
        assert m.per_round_max_bits == [0]
        assert m.max_message_bits == 0
        assert m.per_round_complete
