"""Unit + property tests for the paper's conditions (Eqs 1, 2, 11, 12)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ColorSpace
from repro.core.conditions import (
    ConditionAudit,
    arbdefective_exists_condition,
    condition_slack,
    degree_plus_one_condition,
    ldc_exists_condition,
    power_condition,
    theorem_1_1_condition,
)
from repro.core.instance import uniform_instance, random_list_defective_instance
from repro.graphs import clique, ring


class TestEq1Eq2:
    def test_clique_threshold_exact(self):
        # K_5, defect 1, c colors: Eq.(1) iff 2c > 4
        assert not ldc_exists_condition(uniform_instance(clique(5), ColorSpace(2), range(2), 1))
        assert ldc_exists_condition(uniform_instance(clique(5), ColorSpace(3), range(3), 1))

    def test_arbdefective_threshold_exact(self):
        # K_7, defect 1, c colors: Eq.(2) iff 3c > 6
        assert not arbdefective_exists_condition(
            uniform_instance(clique(7), ColorSpace(2), range(2), 1)
        )
        assert arbdefective_exists_condition(
            uniform_instance(clique(7), ColorSpace(3), range(3), 1)
        )

    def test_eq2_weaker_than_eq1(self):
        # any instance meeting Eq.(1) also meets Eq.(2)
        inst = uniform_instance(clique(6), ColorSpace(3), range(3), 1)
        assert ldc_exists_condition(inst)
        assert arbdefective_exists_condition(inst)

    def test_degree_plus_one_alias(self):
        inst = uniform_instance(ring(5), ColorSpace(3), range(3), 0)
        assert degree_plus_one_condition(inst) == ldc_exists_condition(inst)

    @settings(max_examples=30)
    @given(st.integers(3, 8), st.integers(1, 8), st.integers(0, 3))
    def test_eq1_formula(self, n, c, d):
        inst = uniform_instance(clique(n), ColorSpace(c), range(c), d)
        assert ldc_exists_condition(inst) == (c * (d + 1) > n - 1)

    @settings(max_examples=30)
    @given(st.integers(3, 8), st.integers(1, 8), st.integers(0, 3))
    def test_eq2_formula(self, n, c, d):
        inst = uniform_instance(clique(n), ColorSpace(c), range(c), d)
        assert arbdefective_exists_condition(inst) == (c * (2 * d + 1) > n - 1)


class TestPowerCondition:
    def test_nu_zero_reduces_to_sum(self):
        inst = uniform_instance(ring(6), ColorSpace(4), range(4), 0)
        # sum (d+1) = 4, deg = 2: 4 >= 2 * kappa iff kappa <= 2
        assert power_condition(inst, 0.0, 2.0, oriented=False)
        assert not power_condition(inst, 0.0, 2.1, oriented=False)

    def test_nu_one_quadratic(self):
        inst = uniform_instance(ring(6), ColorSpace(9), range(9), 0)
        # sum (d+1)^2 = 9, deg^2 = 4: kappa threshold 2.25
        assert power_condition(inst, 1.0, 2.25, oriented=False)
        assert not power_condition(inst, 1.0, 2.3, oriented=False)

    def test_oriented_uses_outdegree(self):
        inst = uniform_instance(ring(6), ColorSpace(4), range(4), 0).to_oriented()
        assert power_condition(inst, 0.0, 2.0, oriented=True)

    def test_invalid_params(self):
        inst = uniform_instance(ring(4), ColorSpace(2), range(2), 0)
        with pytest.raises(ValueError):
            power_condition(inst, -0.5, 1.0, oriented=False)
        with pytest.raises(ValueError):
            power_condition(inst, 1.0, 0.0, oriented=False)

    def test_theorem_1_1_condition_is_nu1(self):
        inst = uniform_instance(ring(6), ColorSpace(9), range(9), 0).to_oriented()
        assert theorem_1_1_condition(inst, alpha=1.0, kappa=2.25)
        assert not theorem_1_1_condition(inst, alpha=1.5, kappa=2.25)


class TestSlack:
    def test_slack_is_threshold(self):
        inst = uniform_instance(ring(6), ColorSpace(9), range(9), 0)
        s = condition_slack(inst, 1.0, oriented=False)
        assert s == pytest.approx(2.25)
        assert power_condition(inst, 1.0, s, oriented=False)
        assert not power_condition(inst, 1.0, s * 1.01, oriented=False)

    @settings(max_examples=20)
    @given(st.integers(0, 1000))
    def test_slack_consistency_random(self, seed):
        rng = random.Random(seed)
        inst = random_list_defective_instance(ring(8), ColorSpace(40), 6, 3, rng)
        for nu in (0.0, 0.5, 1.0):
            s = condition_slack(inst, nu, oriented=False)
            assert power_condition(inst, nu, s * 0.999, oriented=False)
            assert not power_condition(inst, nu, s * 1.001, oriented=False)


class TestAudit:
    def test_audit_fields(self):
        inst = uniform_instance(ring(5), ColorSpace(3), range(3), 0)
        audit = ConditionAudit.of(inst)
        assert audit.eq1_ldc_exists
        assert audit.eq2_arbdefective_exists
        assert audit.slack_nu0 == pytest.approx(1.5)
        assert audit.slack_nu1 == pytest.approx(0.75)
