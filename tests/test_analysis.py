"""Tests for the bound formulas and table/figure formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.bounds import (
    DEFAULT_SCALE,
    ParamScale,
    beg18_arbdefective_rounds,
    fhk_congest_rounds,
    fhk_local_rounds,
    gk21_rounds,
    is_prime,
    kappa_theorem_1_1,
    kuhn09_defective_colors,
    linial_colors,
    log_star,
    smallest_prime_above,
    tau_paper,
    tau_prime_paper,
    theorem_1_1_message_bits,
    theorem_1_4_rounds,
)
from repro.analysis.tables import ascii_series, fit_exponent, format_table


class TestNumberTheory:
    def test_is_prime(self):
        primes = [2, 3, 5, 7, 11, 13, 97]
        comps = [0, 1, 4, 9, 91, 100]
        assert all(is_prime(p) for p in primes)
        assert not any(is_prime(c) for c in comps)

    def test_smallest_prime_above(self):
        assert smallest_prime_above(1) == 2
        assert smallest_prime_above(2) == 3
        assert smallest_prime_above(10) == 11
        assert smallest_prime_above(13) == 17

    @given(st.integers(0, 2000))
    def test_prime_above_is_prime_and_greater(self, x):
        p = smallest_prime_above(x)
        assert p > x and is_prime(p)


class TestLogStar:
    def test_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2**65536 if False else 10**100) == 5

    @given(st.integers(2, 10**9))
    def test_monotone(self, n):
        assert log_star(n) <= log_star(2 * n)
        assert log_star(n) >= 1


class TestPaperFormulas:
    def test_tau_eq4(self):
        # tau = ceil(8h + 2 loglog|C| + 2 loglog m + 16)
        t = tau_paper(h=2, space_size=2**16, m=2**16)
        assert t == math.ceil(16 + 2 * 4 + 2 * 4 + 16)

    def test_tau_prime_power_of_two(self):
        tp = tau_prime_paper(h=2, space_size=256, m=256)
        assert tp & (tp - 1) == 0  # power of two

    def test_tau_monotone_in_h(self):
        assert tau_paper(3, 64, 64) > tau_paper(1, 64, 64)

    def test_tau_invalid(self):
        with pytest.raises(ValueError):
            tau_paper(0, 4, 4)

    def test_kappa_monotone_in_beta(self):
        assert kappa_theorem_1_1(64, 100, 100) >= kappa_theorem_1_1(8, 100, 100)

    def test_message_bits_formula_min(self):
        # tiny space: |C| term wins over Lambda log |C|
        small = theorem_1_1_message_bits(8, 100, 16, 64)
        assert small <= 8 + math.log2(16) + math.log2(64) + 2

    def test_theorem_1_4_shape(self):
        # sqrt * polylog growth: quadrupling Delta scales the bound by
        # 2 (sqrt) times modest polylog factors — far below the 16x of a
        # quadratic bound at large Delta
        a = theorem_1_4_rounds(2**10, 10**6)
        b = theorem_1_4_rounds(2**12, 10**6)
        assert 1.5 <= b / a <= 6.0

    def test_reference_formulas_positive(self):
        assert beg18_arbdefective_rounds(64, 3, 1000) > 0
        assert gk21_rounds(64, 1000) > 0
        assert fhk_local_rounds(64, 1000) > 0
        assert fhk_congest_rounds(64, 1000) >= fhk_local_rounds(64, 1000)

    def test_linial_and_kuhn09_palettes(self):
        assert linial_colors(8) == smallest_prime_above(16) ** 2
        assert kuhn09_defective_colors(16, 4) < linial_colors(16)

    def test_param_scale_with(self):
        s = DEFAULT_SCALE.with_(tau=5)
        assert s.tau == 5 and s.k_prime == DEFAULT_SCALE.k_prime
        assert isinstance(s, ParamScale)


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [33, True]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "yes" in out
        assert "2.50" in out

    def test_format_large_floats(self):
        out = format_table(["x"], [[123456.0], [0.0001]])
        assert "1.23e+05" in out
        assert "0.0001" in out

    def test_ascii_series_contains_markers(self):
        out = ascii_series([1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "*" in out and "o" in out
        assert "legend" in out

    def test_ascii_series_empty(self):
        assert ascii_series([], {}) == "(no data)"

    def test_ascii_series_logy(self):
        out = ascii_series([1, 2], {"a": [1, 1000]}, logy=True)
        assert "log scale" in out

    def test_fit_exponent_exact(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        assert fit_exponent(xs, [x**2 for x in xs]) == pytest.approx(2.0)
        assert fit_exponent(xs, [math.sqrt(x) for x in xs]) == pytest.approx(0.5)

    def test_fit_exponent_degenerate(self):
        with pytest.raises(ValueError):
            fit_exponent([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_exponent([2.0, 2.0], [1.0, 4.0])
