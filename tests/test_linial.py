"""Tests for Linial's algorithm, schedules, and the defective variant."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.bounds import log_star
from repro.core.validate import (
    validate_defective_coloring,
    validate_proper_coloring,
)
from repro.graphs import clique, gnp, hypercube, random_regular, random_tree, ring, star, torus
from repro.algorithms.linial import (
    LinialStep,
    defective_schedule,
    linial_schedule,
    poly_coeffs,
    poly_eval,
    run_linial,
)


class TestPolynomials:
    def test_coeffs_roundtrip(self):
        for color in range(27):
            c = poly_coeffs(color, 3, 2)
            val = sum(a * 3**i for i, a in enumerate(c))
            assert val == color

    def test_coeffs_out_of_range(self):
        with pytest.raises(ValueError):
            poly_coeffs(27, 3, 2)
        with pytest.raises(ValueError):
            poly_coeffs(-1, 3, 2)

    def test_eval(self):
        # p(x) = 1 + 2x over F_5
        assert poly_eval((1, 2), 0, 5) == 1
        assert poly_eval((1, 2), 3, 5) == 2

    @given(st.integers(0, 124), st.integers(0, 4))
    def test_distinct_colors_distinct_polys(self, color, x):
        # base-5 digits are injective, so distinct colors differ somewhere
        other = (color + 1) % 125
        assert poly_coeffs(color, 5, 2) != poly_coeffs(other, 5, 2)


class TestSchedules:
    def test_proper_schedule_strictly_shrinks(self):
        sched = linial_schedule(10_000, 8)
        sizes = [s.out_colors for s in sched]
        assert sizes == sorted(sizes, reverse=True)
        assert all(a > b for a, b in zip([10_000] + sizes, sizes))

    def test_proper_schedule_reaches_delta_squared(self):
        sched = linial_schedule(10**6, 8)
        assert sched[-1].out_colors <= 16 * 8 * 8

    def test_schedule_length_log_star(self):
        sched = linial_schedule(10**9, 16)
        assert len(sched) <= 3 * log_star(10**9)

    def test_small_m_empty_schedule(self):
        assert linial_schedule(10, 8) == []

    def test_proper_steps_have_zero_budget(self):
        assert all(s.budget == 0 for s in linial_schedule(10**5, 6))

    def test_defective_schedule_budget_bounded(self):
        sched = defective_schedule(10**5, 16, defect=5)
        assert sum(s.budget for s in sched) <= 5
        assert sched[-1].out_colors <= linial_schedule(10**5, 16)[-1].out_colors

    def test_defective_schedule_shrinks_more(self):
        proper = linial_schedule(10**5, 16)[-1].out_colors
        defective = defective_schedule(10**5, 16, defect=8)[-1].out_colors
        assert defective < proper

    def test_linial_step_out_colors(self):
        assert LinialStep(7, 2, 0).out_colors == 49


class TestRunLinial:
    @pytest.mark.parametrize(
        "g",
        [
            ring(50),
            clique(8),
            star(12),
            random_tree(40, seed=1),
            hypercube(4),
            torus(5, 5),
            gnp(40, 0.2, seed=3),
            random_regular(40, 4, seed=4),
        ],
        ids=["ring", "clique", "star", "tree", "hypercube", "torus", "gnp", "regular"],
    )
    def test_proper_on_families(self, g):
        res, metrics, palette = run_linial(g)
        validate_proper_coloring(g, res).raise_if_invalid()
        assert all(0 <= c < max(palette, g.number_of_nodes()) for c in res.assignment.values())

    def test_rounds_track_log_star(self):
        g = ring(2000)
        _res, metrics, _p = run_linial(g)
        assert metrics.rounds <= 2 * log_star(2000)

    def test_message_bits_are_id_sized(self):
        g = ring(200)
        _res, metrics, _p = run_linial(g)
        assert metrics.max_message_bits <= 8  # log2(200) = 7.6

    def test_custom_initial_coloring(self):
        g = ring(12)
        init = {v: (v % 3) * 100 + v for v in g.nodes}  # proper, sparse ids
        res, _m, _p = run_linial(g, initial_colors=init)
        assert validate_proper_coloring(g, res).ok

    def test_defective_run_validates(self):
        g = random_regular(600, 8, seed=5)
        res, metrics, palette = run_linial(g, defect=4)
        assert validate_defective_coloring(g, res, 4).ok
        proper_palette = run_linial(g)[2]
        assert palette <= proper_palette

    def test_defect_zero_equals_proper(self):
        g = ring(100)
        a = run_linial(g)[0].assignment
        b = run_linial(g, defect=0)[0].assignment
        assert a == b

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_random_gnp_proper(self, seed):
        g = gnp(30, 0.25, seed=seed)
        res, _m, _p = run_linial(g)
        assert validate_proper_coloring(g, res).ok
