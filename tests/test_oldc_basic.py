"""Tests for the basic OLDC algorithm (Lemma 3.6)."""

import random

import pytest

from repro.core import ColorSpace, ListDefectiveInstance
from repro.core.instance import scaled_budget_instance, uniform_instance
from repro.core.validate import validate_generalized_oldc, validate_oldc
from repro.graphs import gnp, random_low_outdegree_digraph, ring
from repro.algorithms.linial import run_linial
from repro.algorithms.oldc_basic import (
    gamma_class,
    single_defect_restriction,
    solve_oldc_basic,
)


def make_oldc_instance(n=50, p=0.15, seed=7, slack=30.0, max_defect=3):
    rng = random.Random(seed)
    g = gnp(n, p, seed=seed + 1)
    dg = random_low_outdegree_digraph(g, seed=seed + 2)
    outdeg = {v: max(1, dg.out_degree(v)) for v in dg.nodes}
    beta = max(outdeg.values())
    space = ColorSpace(int(slack * beta * beta) + 128)
    und = scaled_budget_instance(
        g, space, 2.0, slack, max_defect, rng, directed_outdegrees=outdeg
    )
    inst = ListDefectiveInstance(dg, space, und.lists, und.defects)
    pre, _m, _p = run_linial(g)
    return g, inst, pre.assignment


class TestGammaClass:
    def test_formula(self):
        # smallest i with 2^i >= 2 * beta / (d+1)
        assert gamma_class(beta_v=8, d_v=0, h=10) == 4
        assert gamma_class(beta_v=8, d_v=3, h=10) == 2
        assert gamma_class(beta_v=8, d_v=7, h=10) == 1

    def test_clamped_to_h(self):
        assert gamma_class(beta_v=1000, d_v=0, h=3) == 3

    def test_min_one(self):
        assert gamma_class(beta_v=1, d_v=100, h=5) == 1

    def test_factor_four(self):
        assert gamma_class(beta_v=8, d_v=0, h=10, factor=4) == 5


class TestSingleDefectRestriction:
    def test_uniform_defects_kept(self):
        colors = (0, 1, 2)
        defects = {0: 1, 1: 1, 2: 1}
        kept, d = single_defect_restriction(colors, defects, beta_v=4)
        assert kept == (0, 1, 2)
        assert d == 1

    def test_picks_heaviest_bucket(self):
        # one color with defect 7 (weight 64 after rounding) vs three with 0
        colors = (0, 1, 2, 3)
        defects = {0: 7, 1: 0, 2: 0, 3: 0}
        kept, d = single_defect_restriction(colors, defects, beta_v=8)
        assert kept == (0,)
        assert d == 7

    def test_rounding_down_is_conservative(self):
        colors = (0,)
        defects = {0: 6}  # d+1 = 7 -> rounded to 4 -> d = 3
        kept, d = single_defect_restriction(colors, defects, beta_v=8)
        assert d == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            single_defect_restriction((), {}, 1)


class TestSolveBasic:
    def test_valid_on_random_digraph(self):
        _g, inst, init = make_oldc_instance()
        res, metrics, report = solve_oldc_basic(inst, init)
        validate_oldc(inst, res).raise_if_invalid()
        assert report.guarantee_met

    def test_rounds_are_h_plus_constant(self):
        _g, inst, init = make_oldc_instance()
        _res, metrics, report = solve_oldc_basic(inst, init)
        assert metrics.rounds <= report.h + 4

    def test_requires_directed(self):
        inst = uniform_instance(ring(5), ColorSpace(3), range(3), 0)
        with pytest.raises(ValueError):
            solve_oldc_basic(inst, {v: v for v in range(5)})

    def test_negative_g_rejected(self):
        _g, inst, init = make_oldc_instance()
        with pytest.raises(ValueError):
            solve_oldc_basic(inst, init, g=-1)

    def test_generalized_g_positive(self):
        _g, inst, init = make_oldc_instance(slack=40.0)
        res, _metrics, _report = solve_oldc_basic(inst, init, g=2)
        validate_generalized_oldc(inst, res, g=2).raise_if_invalid()

    def test_deterministic(self):
        _g, inst, init = make_oldc_instance()
        a = solve_oldc_basic(inst, init)[0].assignment
        b = solve_oldc_basic(inst, init)[0].assignment
        assert a == b

    def test_forced_classes_respected(self):
        _g, inst, init = make_oldc_instance()
        forced = {v: 2 for v in inst.graph.nodes}
        _res, _metrics, report = solve_oldc_basic(inst, init, gamma_classes=forced)
        assert report.h == 2

    def test_report_f_values_bound_defects(self):
        # the structural guarantee: realized defect <= f (self-audited)
        _g, inst, init = make_oldc_instance()
        res, _metrics, report = solve_oldc_basic(inst, init)
        for v in inst.graph.nodes:
            x = res.assignment[v]
            realized = sum(
                1
                for u in inst.graph.successors(v)
                if res.assignment.get(u) == x
            )
            assert realized <= report.per_node_f[v]

    def test_bidirected_ldc_instance(self):
        # an undirected LDC instance via bidirection (paper's equivalence)
        rng = random.Random(3)
        g = gnp(30, 0.2, seed=4)
        delta = max(d for _, d in g.degree)
        space = ColorSpace(40 * delta * delta + 100)
        und = scaled_budget_instance(g, space, 2.0, 35.0, 2, rng)
        inst = und.to_oriented()
        pre, _m, _p = run_linial(g)
        res, _metrics, _report = solve_oldc_basic(inst, pre.assignment)
        validate_oldc(inst, res).raise_if_invalid()
