"""Crash-mid-write battery for every on-disk artifact store.

Three stores persist JSON artifacts — the fuzz corpus
(:mod:`repro.fuzz.corpus`), the observability JSONL emitters
(:mod:`repro.obs.record`), and the sweep cache
(:mod:`repro.experiments.sweep`) — and all three must survive a process
dying mid-write.  The contract under test, per store:

* **writes are atomic** — payloads land through
  :func:`repro.atomic.atomic_write_text`: a *uniquely named* sibling
  temp file (pid + random token, so concurrent writers of the same
  destination can never share a staging path) plus ``os.replace``, so a
  crash leaves either the previous content or no entry, never a
  truncated file (simulated here by failing the replace and by planting
  orphaned ``.tmp`` files); a failed publish cleans up its own staging
  file, and litter from writers that died *before* cleanup is swept —
  age-gated — by :func:`repro.atomic.sweep_stale_tmp` on store loads;
* **reads are crash-tolerant** — a truncated/corrupt entry is
  quarantined as ``*.corrupt`` (or, for an append-mode JSONL, a torn
  *trailing* line is skipped with a warning) while the rest of the
  store stays readable; corruption *not* attributable to a torn write
  (a malformed line mid-file) still fails loudly.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.sweep import (
    SweepCell,
    cell_key,
    corrupt_cache_files,
    load_cached,
    load_cached_detailed,
    store_cached,
)
from repro.fuzz import (
    corrupt_corpus_files,
    load_case,
    load_corpus,
    save_case,
)
from repro.obs import (
    ENGINE_VECTORIZED,
    RunRecord,
    append_jsonl,
    read_jsonl,
    write_jsonl,
)
from repro.sim.metrics import RunMetrics

CORPUS_DIR = Path(__file__).parent / "corpus"


def make_record(rounds: int = 2) -> RunRecord:
    metrics = RunMetrics(bandwidth_limit=64)
    for _ in range(rounds):
        metrics.observe_uniform_round(4, 8)
    return RunRecord.from_metrics(
        metrics, engine=ENGINE_VECTORIZED, algorithm="demo", n=4, m=4
    )


def pinned_case():
    return load_case(sorted(CORPUS_DIR.glob("*.json"))[0])


class TestCorpusAtomicWrites:
    def test_save_leaves_no_tmp_sibling(self, tmp_path):
        path = save_case(pinned_case(), tmp_path)
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []
        load_case(path)  # parses back

    def test_failed_replace_preserves_previous_entry(self, tmp_path, monkeypatch):
        case = pinned_case()
        path = save_case(case, tmp_path)
        before = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("simulated crash at publish")

        monkeypatch.setattr("repro.atomic.os.replace", exploding_replace)
        with pytest.raises(OSError):
            save_case(case, tmp_path)
        # the destination is untouched, and the failed publish cleaned
        # up its own staging file instead of leaving litter
        assert path.read_text() == before
        assert list(tmp_path.glob("*.tmp")) == []

    def test_orphaned_tmp_is_invisible_to_replay(self, tmp_path):
        path = save_case(pinned_case(), tmp_path)
        (tmp_path / (path.name + ".tmp")).write_text('{"truncat')
        entries = load_corpus(tmp_path)
        assert [p for p, _ in entries] == [path]


class TestCorpusQuarantine:
    def test_truncated_entry_quarantined_with_warning(self, tmp_path):
        good = save_case(pinned_case(), tmp_path)
        bad = tmp_path / "vectorized-deadbeef0000.json"
        bad.write_text('{"pair": "linial", "graph"')  # torn mid-write
        with pytest.warns(UserWarning, match="quarantined"):
            entries = load_corpus(tmp_path)
        # the readable entry still replays; the torn one is set aside
        assert [p for p, _ in entries] == [good]
        assert not bad.exists()
        quarantined = corrupt_corpus_files(tmp_path)
        assert quarantined == [bad.with_name(bad.name + ".corrupt")]
        assert quarantined[0].read_text().startswith('{"pair"')

    def test_schema_invalid_entry_quarantined(self, tmp_path):
        bad = tmp_path / "linial-000000000000.json"
        bad.write_text(json.dumps({"pair": "no_such_pair"}))
        with pytest.warns(UserWarning, match="quarantined"):
            assert load_corpus(tmp_path) == []
        assert corrupt_corpus_files(tmp_path) != []

    def test_quarantine_is_idempotent_across_replays(self, tmp_path):
        (tmp_path / "linial-111111111111.json").write_text("{")
        with pytest.warns(UserWarning):
            load_corpus(tmp_path)
        # second replay: nothing left to quarantine, no warning
        assert load_corpus(tmp_path) == []
        assert len(corrupt_corpus_files(tmp_path)) == 1


class TestJsonlAtomicWrites:
    def test_write_jsonl_leaves_no_tmp_sibling(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        write_jsonl([make_record(), make_record(3)], path)
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(read_jsonl(path)) == 2

    def test_failed_replace_preserves_previous_file(self, tmp_path, monkeypatch):
        path = tmp_path / "runs.jsonl"
        write_jsonl([make_record()], path)
        before = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("simulated crash at publish")

        monkeypatch.setattr("repro.atomic.os.replace", exploding_replace)
        with pytest.raises(OSError):
            write_jsonl([make_record(), make_record()], path)
        assert path.read_text() == before
        assert len(read_jsonl(path)) == 1
        assert list(tmp_path.glob("*.tmp")) == []


class TestJsonlTornTail:
    def test_trailing_partial_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_jsonl(make_record(), path)
        append_jsonl(make_record(3), path)
        with open(path, "a") as fh:
            fh.write('{"schema": 2, "engine": "vect')  # interrupted append
        with pytest.warns(UserWarning, match="partial trailing line"):
            records = read_jsonl(path)
        assert len(records) == 2
        assert [r.summary["rounds"] for r in records] == [2, 3]

    def test_midfile_corruption_still_raises(self, tmp_path):
        # only a *trailing* torn line is excusable as an interrupted
        # append; garbage mid-file means something else went wrong and
        # must not be silently dropped
        path = tmp_path / "runs.jsonl"
        append_jsonl(make_record(), path)
        with open(path, "a") as fh:
            fh.write('{"torn mid\n')
        append_jsonl(make_record(), path)
        with pytest.raises(ValueError, match="malformed JSONL at line 2"):
            read_jsonl(path)

    def test_blank_lines_do_not_count_as_torn(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_jsonl(make_record(), path)
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert len(read_jsonl(path)) == 1


class TestAtomicHelper:
    """The shared publisher in :mod:`repro.atomic` directly."""

    def test_staging_paths_are_unique_per_call(self, tmp_path):
        from repro.atomic import _staging_path

        dest = tmp_path / "cell.json"
        staged = {_staging_path(dest).name for _ in range(32)}
        # the old scheme (`path.with_suffix(".tmp")`) collapsed every
        # writer of one destination onto a single staging file; unique
        # names are what make concurrent same-destination publishes safe
        assert len(staged) == 32
        assert all(name.startswith("cell.json.") for name in staged)
        assert all(name.endswith(".tmp") for name in staged)

    def test_atomic_write_creates_parents_and_publishes(self, tmp_path):
        from repro.atomic import atomic_write_text

        dest = tmp_path / "nested" / "deep" / "out.json"
        assert atomic_write_text(dest, '{"ok": true}') == dest
        assert json.loads(dest.read_text()) == {"ok": True}
        assert list(dest.parent.glob("*.tmp")) == []

    def test_sweep_stale_tmp_is_age_gated(self, tmp_path):
        import os

        from repro.atomic import STALE_TMP_AGE_S, sweep_stale_tmp

        fresh = tmp_path / "live.json.1234.abcd1234.tmp"
        fresh.write_text("in flight")
        stale = tmp_path / "dead.json.5678.deadbeef.tmp"
        stale.write_text("orphaned")
        old = stale.stat().st_mtime - (STALE_TMP_AGE_S + 60)
        os.utime(stale, (old, old))
        removed = sweep_stale_tmp(tmp_path)
        # only the hour-old orphan goes; a live writer's staging file
        # (fresh mtime) must survive the sweep
        assert removed == [stale]
        assert fresh.exists() and not stale.exists()

    def test_sweep_missing_directory_is_a_noop(self, tmp_path):
        from repro.atomic import sweep_stale_tmp

        assert sweep_stale_tmp(tmp_path / "never_created") == []

    def test_concurrent_same_destination_publishes_both_complete(self, tmp_path):
        # the torn-publish regression: N threads all writing the same
        # destination; under the shared-staging-path scheme these could
        # interleave write/replace and publish a torn file
        import threading

        from repro.atomic import atomic_write_text

        dest = tmp_path / "contended.json"
        payloads = [json.dumps({"writer": i, "pad": "x" * 4096}) for i in range(8)]
        threads = [
            threading.Thread(target=atomic_write_text, args=(dest, p))
            for p in payloads
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # whichever writer won, the published file is one *complete*
        # payload, and no staging litter remains
        assert dest.read_text() in payloads
        assert list(tmp_path.glob("*.tmp")) == []


class TestStaleTmpSweepOnLoad:
    def test_run_sweep_reclaims_stale_cache_staging(self, tmp_path):
        import os

        from repro.atomic import STALE_TMP_AGE_S
        from repro.experiments.sweep import run_sweep

        stale = tmp_path / "orphan.json.999.cafef00d.tmp"
        stale.write_text('{"torn')
        old = stale.stat().st_mtime - (STALE_TMP_AGE_S + 60)
        os.utime(stale, (old, old))
        cell = SweepCell.make("ring", {"n": 6}, "linial_vectorized", {})
        run_sweep([cell], cache_dir=tmp_path, workers=1)
        assert not stale.exists()
        assert load_cached(tmp_path, cell) is not None

    def test_load_corpus_reclaims_stale_staging(self, tmp_path):
        import os

        from repro.atomic import STALE_TMP_AGE_S

        good = save_case(pinned_case(), tmp_path)
        stale = tmp_path / (good.name + ".999.cafef00d.tmp")
        stale.write_text('{"torn')
        old = stale.stat().st_mtime - (STALE_TMP_AGE_S + 60)
        os.utime(stale, (old, old))
        entries = load_corpus(tmp_path)
        assert [p for p, _ in entries] == [good]
        assert not stale.exists()


class TestSweepCacheCrashSafety:
    def make_cell(self):
        return SweepCell.make("ring", {"n": 6}, "linial_vectorized", {})

    def make_cell_record(self, cell):
        from repro.experiments.sweep import SWEEP_CACHE_SCHEMA

        return {
            "schema": SWEEP_CACHE_SCHEMA,
            "key": cell_key(cell),
            "status": "ok",
            "algorithm": cell.algorithm,
        }

    def test_store_leaves_no_tmp_sibling(self, tmp_path):
        cell = self.make_cell()
        store_cached(tmp_path, self.make_cell_record(cell))
        assert list(tmp_path.glob("*.tmp")) == []

    def test_corrupt_cell_quarantined_and_recomputable(self, tmp_path):
        cell = self.make_cell()
        path = store_cached(tmp_path, self.make_cell_record(cell))
        path.write_text('{"schema": ')  # torn write from a dead worker
        record, status = load_cached_detailed(tmp_path, cell)
        assert (record, status) == (None, "corrupt")
        assert not path.exists()
        assert corrupt_cache_files(tmp_path) == [
            path.with_name(path.name + ".corrupt")
        ]
        # the slot now reads as a miss, so the cell recomputes fresh
        assert load_cached(tmp_path, cell) is None
