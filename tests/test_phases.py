"""Tests for the phase-attribution log."""

from repro.core import degree_plus_one_instance
from repro.graphs import random_regular
from repro.sim import PhaseLog, RunMetrics
from repro.algorithms import solve_list_arbdefective


class TestPhaseLogUnit:
    def test_add_and_aggregate(self):
        log = PhaseLog()
        m1 = RunMetrics()
        m1.observe_uniform_round(4, 8)
        log.add("a", m1)
        log.add("a", m1)
        log.add_raw("b", 1, 2, 6)
        agg = log.by_label()
        assert agg["a"].rounds == 2
        assert agg["a"].bits == 64
        assert agg["b"].messages == 2
        assert log.total_rounds == 3

    def test_dominant_phase(self):
        log = PhaseLog()
        log.add_raw("x", 5, 0, 0)
        log.add_raw("y", 9, 0, 0)
        assert log.dominant_phase() == "y"
        assert PhaseLog().dominant_phase() is None

    def test_render(self):
        log = PhaseLog()
        log.add_raw("x", 5, 1, 10)
        out = log.render()
        assert "x" in out and "rounds" in out


class TestPhaseLogIntegration:
    def test_thm13_breakdown_accounts_for_every_round(self):
        g = random_regular(96, 16, seed=3)
        inst = degree_plus_one_instance(g)
        _res, metrics, rep = solve_list_arbdefective(inst)
        assert rep.phases.total_rounds == metrics.rounds
        labels = set(rep.phases.by_label())
        assert {"linial", "arbdefective-decomposition", "inner-oldc"} <= labels

    def test_bits_breakdown_sums(self):
        g = random_regular(64, 8, seed=4)
        inst = degree_plus_one_instance(g)
        _res, metrics, rep = solve_list_arbdefective(inst)
        assert sum(e.bits for e in rep.phases.entries) == metrics.total_bits
