"""Moderate stress tests: larger graphs, denser parameter grids.

Bounded to keep the default suite fast (~30 s added), these catch
problems that only appear past toy scale: deeper Theorem 1.3 recursions,
multi-stage decline/sweep interactions, heavy-tailed degree mixes, and
the vectorized engine at real sizes.
"""

import random


from repro.core import (
    ColorSpace,
    degree_plus_one_instance,
    validate_arbdefective,
    validate_ldc,
    validate_proper_coloring,
)
from repro.core.instance import random_list_defective_instance
from repro.graphs import blowup, gnp, hub_and_fringe, random_regular, ring
from repro.algorithms import (
    congest_delta_plus_one,
    linear_in_delta_coloring,
    solve_list_arbdefective,
)


class TestCongestAtScale:
    def test_delta_48(self):
        g = random_regular(288, 48, seed=501)
        res, metrics, rep = congest_delta_plus_one(g)
        assert rep.valid
        assert res.num_colors() <= 49
        assert metrics.compliant_with(288)

    def test_heavy_tailed_degrees(self):
        # hub degree 60 against degree-4 fringe nodes
        g = hub_and_fringe(hub_degree=60, fringe_cliques=20, clique_size=4)
        res, _m, rep = congest_delta_plus_one(g)
        assert rep.valid
        validate_proper_coloring(g, res).raise_if_invalid()

    def test_blowup_structure(self):
        g = blowup(ring(20), 5)  # 100 nodes, 10-regular, dense local cliques
        res, _m, rep = congest_delta_plus_one(g)
        assert rep.valid


class TestThm13AtScale:
    def test_mixed_defects_400_nodes(self):
        g = gnp(400, 0.03, seed=503)
        delta = max(d for _, d in g.degree)
        inst = random_list_defective_instance(
            g, ColorSpace(8 * delta + 32), delta + 1, 2, random.Random(504)
        )
        res, _m, rep = solve_list_arbdefective(inst)
        validate_arbdefective(inst, res).raise_if_invalid()

    def test_repeated_seeds_stable(self):
        g = random_regular(120, 20, seed=505)
        inst = degree_plus_one_instance(g)
        outcomes = set()
        for _ in range(3):
            res, _m, _rep = solve_list_arbdefective(inst)
            validate_ldc(inst, res).raise_if_invalid()
            outcomes.add(tuple(sorted(res.assignment.items())))
        assert len(outcomes) == 1  # deterministic across repetitions


class TestLinearInDeltaAtScale:
    def test_delta_40(self):
        g = random_regular(240, 40, seed=507)
        res, _m, rep = linear_in_delta_coloring(g)
        validate_proper_coloring(g, res).raise_if_invalid()
        assert res.num_colors() <= 41
        assert rep.levels >= 2


class TestVectorizedAtScale:
    def test_quarter_million_ring(self):
        from repro.sim.vectorized import linial_vectorized

        g = ring(250_000)
        res, metrics, palette = linial_vectorized(g)
        assert metrics.rounds <= 3
        assert palette <= 25
        # properness spot check around the wrap-around seam
        for v in list(range(12)) + list(range(249_990, 250_000)):
            u = (v + 1) % 250_000
            assert res.assignment[v] != res.assignment[u]

    def test_regular_100k(self):
        from repro.sim.vectorized import classic_delta_plus_one_vectorized

        g = random_regular(100_000, 4, seed=509)
        res, metrics = classic_delta_plus_one_vectorized(g)
        assert res.num_colors() <= 5
