"""Tests for the sequential solvers (Lemmas A.1/A.2 + folklore greedy)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ColorSpace
from repro.core.conditions import (
    arbdefective_exists_condition,
    ldc_exists_condition,
)
from repro.core.instance import (
    random_list_defective_instance,
    uniform_instance,
)
from repro.core.validate import validate_arbdefective, validate_ldc
from repro.graphs import clique, gnp, ring, star
from repro.algorithms.greedy import (
    greedy_list_coloring,
    sequential_color_order_by_degree,
    solve_arbdefective_euler,
    solve_ldc_potential,
)


class TestGreedyListColoring:
    def test_degree_plus_one_always_works(self):
        g = clique(6)
        inst = uniform_instance(g, ColorSpace(6), range(6), 0)
        res = greedy_list_coloring(inst)
        assert validate_ldc(inst, res).ok
        assert res.num_colors() == 6

    def test_respects_defects(self):
        g = ring(6)
        inst = uniform_instance(g, ColorSpace(2), range(2), 1)
        res = greedy_list_coloring(inst)
        assert validate_ldc(inst, res).ok

    def test_custom_order(self):
        g = star(5)
        inst = uniform_instance(g, ColorSpace(5), range(5), 0)
        order = sequential_color_order_by_degree(g)
        res = greedy_list_coloring(inst, order)
        assert validate_ldc(inst, res).ok

    def test_stuck_raises(self):
        # proper 1-coloring of an edge is impossible
        import networkx as nx

        g = nx.Graph()
        g.add_edge(0, 1)
        inst = uniform_instance(g, ColorSpace(1), [0], 0)
        with pytest.raises(ValueError):
            greedy_list_coloring(inst)

    def test_degeneracy_order_property(self):
        # star graphs are 1-degenerate: in the smallest-last order every
        # node has at most one earlier neighbor
        g = star(5)
        order = sequential_color_order_by_degree(g)
        pos = {v: i for i, v in enumerate(order)}
        for v in g.nodes:
            earlier = sum(1 for u in g.neighbors(v) if pos[u] < pos[v])
            assert earlier <= 1


class TestPotentialDescent:
    def test_clique_at_threshold(self):
        # K_7, d=1: Eq (1) needs 2c > 6 => c = 4
        inst = uniform_instance(clique(7), ColorSpace(4), range(4), 1)
        res = solve_ldc_potential(inst)
        assert validate_ldc(inst, res).ok

    def test_condition_enforced(self):
        inst = uniform_instance(clique(7), ColorSpace(3), range(3), 1)
        with pytest.raises(ValueError):
            solve_ldc_potential(inst)

    def test_below_threshold_unchecked_diverges(self):
        inst = uniform_instance(clique(7), ColorSpace(3), range(3), 1)
        with pytest.raises(ValueError):
            solve_ldc_potential(inst, require_condition=False)

    def test_directed_rejected(self):
        inst = uniform_instance(ring(4), ColorSpace(3), range(3), 0).to_oriented()
        with pytest.raises(ValueError):
            solve_ldc_potential(inst)

    def test_huge_defects_trivial(self):
        inst = uniform_instance(clique(5), ColorSpace(1), [0], 10)
        res = solve_ldc_potential(inst)
        assert validate_ldc(inst, res).ok

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_instances_meeting_eq1(self, seed):
        rng = random.Random(seed)
        g = gnp(12, 0.4, seed=seed)
        # lists of size Delta+1 with defects 0..2 always satisfy Eq. (1)
        delta = max((d for _, d in g.degree), default=0)
        inst = random_list_defective_instance(
            g, ColorSpace(4 * (delta + 1)), delta + 1, 2, rng
        )
        assert ldc_exists_condition(inst)
        res = solve_ldc_potential(inst)
        assert validate_ldc(inst, res).ok


class TestEulerArbdefective:
    def test_clique_at_threshold(self):
        # K_7, d=1: Eq (2) needs 3c > 6 => c = 3
        inst = uniform_instance(clique(7), ColorSpace(3), range(3), 1)
        res = solve_arbdefective_euler(inst)
        assert validate_arbdefective(inst, res).ok

    def test_condition_enforced(self):
        inst = uniform_instance(clique(7), ColorSpace(2), range(2), 1)
        with pytest.raises(ValueError):
            solve_arbdefective_euler(inst)

    def test_single_color_high_defect(self):
        # K_5 with one color and arbdefect 2: 1 * 5 > 4
        inst = uniform_instance(clique(5), ColorSpace(1), [0], 2)
        res = solve_arbdefective_euler(inst)
        assert validate_arbdefective(inst, res).ok

    def test_orientation_covers_all_edges(self):
        inst = uniform_instance(clique(6), ColorSpace(3), range(3), 1)
        res = solve_arbdefective_euler(inst)
        assert res.orientation is not None
        assert res.orientation.covers(inst.graph)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_instances_meeting_eq2(self, seed):
        rng = random.Random(seed)
        g = gnp(10, 0.5, seed=seed)
        delta = max((d for _, d in g.degree), default=0)
        inst = random_list_defective_instance(
            g, ColorSpace(4 * (delta + 1)), delta + 1, 2, rng
        )
        assert arbdefective_exists_condition(inst)
        res = solve_arbdefective_euler(inst)
        assert validate_arbdefective(inst, res).ok
