"""Tests for Theorem 1.2's recursive color space reduction."""

import pytest

from repro.core.validate import validate_oldc
from repro.algorithms.colorspace_reduction import (
    corollary_4_2_p,
    solve_with_reduction,
)
from repro.algorithms.oldc_main import solve_oldc_main

from .test_oldc_basic import make_oldc_instance


def base_solver(instance, init_coloring):
    return solve_oldc_main(instance, init_coloring)


class TestCorollaryP:
    def test_p_flattens_in_r_levels(self):
        for size in (64, 100, 1000):
            for r in (1, 2, 3, 4):
                p = corollary_4_2_p(size, r)
                assert p**r >= size
                assert 2 <= p <= size

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            corollary_4_2_p(64, 0)


class TestReduction:
    def test_valid_output(self):
        _g, inst, init = make_oldc_instance(n=40, seed=71, slack=40.0)
        res, metrics, report = solve_with_reduction(
            inst, init, base_solver, p=corollary_4_2_p(inst.space.size, 2)
        )
        validate_oldc(inst, res).raise_if_invalid()
        assert report.levels >= 2

    def test_message_bits_shrink(self):
        _g, inst, init = make_oldc_instance(n=40, seed=73, slack=40.0)
        _r1, m1, _rep1 = base_solver(inst, init)
        p = corollary_4_2_p(inst.space.size, 3)
        _r2, m2, _rep2 = solve_with_reduction(inst, init, base_solver, p=p)
        assert m2.max_message_bits < m1.max_message_bits

    def test_rounds_grow_with_depth(self):
        _g, inst, init = make_oldc_instance(n=40, seed=79, slack=40.0)
        _r1, m1, _rep1 = base_solver(inst, init)
        p = corollary_4_2_p(inst.space.size, 3)
        _r2, m2, _rep2 = solve_with_reduction(inst, init, base_solver, p=p)
        assert m2.rounds >= m1.rounds

    def test_colors_stay_in_chosen_subspace(self):
        _g, inst, init = make_oldc_instance(n=30, seed=83, slack=40.0)
        p = corollary_4_2_p(inst.space.size, 2)
        res, _m, _rep = solve_with_reduction(inst, init, base_solver, p=p)
        for v, x in res.assignment.items():
            assert x in inst.lists[v]

    def test_p_bounds(self):
        _g, inst, init = make_oldc_instance(n=20, seed=89)
        with pytest.raises(ValueError):
            solve_with_reduction(inst, init, base_solver, p=1)
        with pytest.raises(ValueError):
            solve_with_reduction(inst, init, base_solver, p=inst.space.size + 1)

    def test_undirected_rejected(self):
        from repro.core import ColorSpace
        from repro.core.instance import uniform_instance
        from repro.graphs import ring

        inst = uniform_instance(ring(5), ColorSpace(6), range(6), 1)
        with pytest.raises(ValueError):
            solve_with_reduction(
                inst, {v: v for v in range(5)}, base_solver, p=2
            )

    def test_p_equal_space_is_direct_solve(self):
        _g, inst, init = make_oldc_instance(n=20, seed=97)
        res, _m, rep = solve_with_reduction(
            inst, init, base_solver, p=inst.space.size
        )
        assert rep.levels == 1
        validate_oldc(inst, res).raise_if_invalid()


class TestNuSweep:
    """Theorem 1.2 is parameterized by nu; exercise nu != 1."""

    @pytest.mark.parametrize("nu", [0.0, 0.5, 2.0])
    def test_reduction_valid_across_nu(self, nu):
        _g, inst, init = make_oldc_instance(n=30, seed=131, slack=40.0)
        p = corollary_4_2_p(inst.space.size, 2)
        res, _m, _rep = solve_with_reduction(
            inst, init, base_solver, p=p, nu=nu
        )
        validate_oldc(inst, res).raise_if_invalid()

    def test_nu_zero_budgets_linear(self):
        """With nu = 0 the part budgets are the plain defect sums."""
        from repro.core import ColorSpace, uniform_instance
        from repro.graphs import ring

        inst = uniform_instance(ring(6), ColorSpace(8), range(8), 1).to_oriented()
        # sum over part of (d+1)^1 with 4 colors/part * 2 each = 8; budget
        # floor(8 / 1) - 1 = 7 under kappa_inner = 1
        import math

        weight = sum(
            (inst.defects[0][x] + 1)
            for x in inst.lists[0]
            if inst.space.subspace_of(x, 2) == 0
        )
        assert math.floor(weight) - 1 == 7


class TestParallelMerge:
    def test_rounds_take_max_bits_sum(self):
        from repro.algorithms.colorspace_reduction import _parallel_merge
        from repro.sim.metrics import RunMetrics

        a = RunMetrics(bandwidth_limit=64)
        a.observe_uniform_round(2, 8)
        a.observe_uniform_round(2, 8)
        b = RunMetrics(bandwidth_limit=64)
        b.observe_uniform_round(5, 16)
        merged = _parallel_merge([a, b])
        assert merged.rounds == 2  # max
        assert merged.total_bits == 2 * 2 * 8 + 5 * 16  # sum
        assert merged.max_message_bits == 16

    def test_empty(self):
        from repro.algorithms.colorspace_reduction import _parallel_merge

        assert _parallel_merge([]).rounds == 0
