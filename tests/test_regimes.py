"""Tests for the regime map (repro.analysis.regimes)."""


import pytest

from repro.analysis.regimes import (
    cell,
    gap_interval,
    map_grid,
    thm14_wins_somewhere_in_gap,
    winner,
)


class TestCells:
    def test_small_delta_fhk_wins(self):
        # Delta well below log n: the big messages fit, FHK's sqrt wins
        assert winner(8, 2**20) == "FHK"

    def test_gap_thm14_wins(self):
        # Delta between log n and log^2 n
        n = 2**16  # log n = 16, log^2 n = 256
        assert winner(64, n) == "Thm1.4"

    def test_large_delta_gk21_wins(self):
        n = 2**10  # log^2 n = 100 << Delta
        assert winner(4096, n) == "GK21"

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cell(0, 100)
        with pytest.raises(ValueError):
            cell(4, 1)


class TestGap:
    def test_interval_values(self):
        lo, hi = gap_interval(2**16)
        assert lo == pytest.approx(16.0)
        assert hi == pytest.approx(256.0)

    def test_thm14_wins_in_gap_for_large_n(self):
        for n in (2**14, 2**18, 2**24):
            assert thm14_wins_somewhere_in_gap(n)

    def test_monotone_structure_along_delta(self):
        """Sweeping Delta upward at fixed n, the winner sequence is
        FHK* -> Thm1.4* -> GK21* (each regime an interval)."""
        n = 2**18
        seq = [winner(d, n) for d in (4, 8, 16, 64, 256, 1024, 8192, 2**15)]
        # strip consecutive duplicates
        compact = [seq[0]] + [b for a, b in zip(seq, seq[1:]) if b != a]
        assert compact in (
            ["FHK", "Thm1.4", "GK21"],
            ["FHK", "Thm1.4"],
            ["Thm1.4", "GK21"],
        ), compact


class TestGrid:
    def test_grid_shape(self):
        grid = map_grid([8, 64], [2**10, 2**20])
        assert len(grid) == 4
        assert all(c.winner in ("FHK", "GK21", "Thm1.4") for c in grid.values())
