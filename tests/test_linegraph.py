"""Tests for line graphs and edge coloring."""

import networkx as nx
import pytest

from repro.core.coloring import ColoringResult
from repro.graphs import (
    clique,
    edge_coloring_from_line,
    edge_degree_plus_one_instance,
    gnp,
    line_graph,
    path,
    random_regular,
    ring,
    star,
    validate_edge_coloring,
)
from repro.algorithms import congest_degree_plus_one, greedy_list_coloring


class TestLineGraph:
    def test_path_line_is_path(self):
        lg, edge_of = line_graph(path(4))
        assert lg.number_of_nodes() == 3
        assert lg.number_of_edges() == 2
        assert set(edge_of.values()) == {(0, 1), (1, 2), (2, 3)}

    def test_ring_line_is_ring(self):
        lg, _ = line_graph(ring(6))
        assert lg.number_of_nodes() == 6
        assert all(d == 2 for _, d in lg.degree)

    def test_star_line_is_clique(self):
        lg, _ = line_graph(star(5))
        assert lg.number_of_nodes() == 4
        assert lg.number_of_edges() == 6  # K_4

    def test_clique_line_degree(self):
        # L(K_n) is (2n-4)-regular
        lg, _ = line_graph(clique(5))
        assert all(d == 6 for _, d in lg.degree)

    def test_directed_rejected(self):
        with pytest.raises(ValueError):
            line_graph(nx.DiGraph([(0, 1)]))

    def test_matches_networkx(self):
        g = gnp(15, 0.3, seed=51)
        lg, _ = line_graph(g)
        ref = nx.line_graph(g)
        assert lg.number_of_nodes() == ref.number_of_nodes()
        assert lg.number_of_edges() == ref.number_of_edges()


class TestEdgeColoring:
    def test_instance_palette_sizes(self):
        g = star(6)
        inst, edge_of = edge_degree_plus_one_instance(g)
        # all 5 star edges are pairwise adjacent: lists of size 5
        assert all(len(inst.lists[i]) == 5 for i in inst.graph.nodes)

    def test_validate_edge_coloring_positive(self):
        g = path(3)
        ok = validate_edge_coloring(g, {(0, 1): 0, (1, 2): 1})
        assert ok.ok

    def test_validate_edge_coloring_negative(self):
        g = path(3)
        bad = validate_edge_coloring(g, {(0, 1): 0, (1, 2): 0})
        assert not bad.ok

    def test_validate_missing_edge(self):
        g = path(3)
        assert not validate_edge_coloring(g, {(0, 1): 0}).ok

    @pytest.mark.parametrize(
        "g", [ring(10), star(8), clique(6), random_regular(24, 4, seed=52)],
        ids=["ring", "star", "clique", "regular"],
    )
    def test_congest_edge_coloring_families(self, g):
        inst, edge_of = edge_degree_plus_one_instance(g)
        res, _m, rep = congest_degree_plus_one(inst)
        assert rep.valid
        edge_colors = edge_coloring_from_line(res, edge_of)
        validate_edge_coloring(g, edge_colors).raise_if_invalid()
        delta = max(d for _, d in g.degree)
        assert len(set(edge_colors.values())) <= 2 * delta - 1

    def test_greedy_edge_coloring(self):
        g = gnp(20, 0.3, seed=53)
        inst, edge_of = edge_degree_plus_one_instance(g)
        res = greedy_list_coloring(inst)
        edge_colors = edge_coloring_from_line(
            ColoringResult(res.assignment), edge_of
        )
        validate_edge_coloring(g, edge_colors).raise_if_invalid()
