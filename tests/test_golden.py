"""Golden regression tests: determinism locked across the pipelines.

Each golden file in tests/golden/ records a full run of a deterministic
pipeline (see tools/gen_golden.py).  These tests re-run the pipeline and
assert the coloring and metric summary are *bit-identical* — any drift in
algorithm behavior, tie-breaking, schedules, or message accounting fails
here first.  Regenerate intentionally with ``python tools/gen_golden.py``.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
GOLDEN = REPO / "tests" / "golden"


def load_cases():
    spec = importlib.util.spec_from_file_location(
        "gen_golden", REPO / "tools" / "gen_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return dict(module.cases())


CASES = load_cases()


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_case(name):
    path = GOLDEN / f"{name}.json"
    assert path.exists(), (
        f"missing golden file {path.name}; run `python tools/gen_golden.py`"
    )
    record = json.loads(path.read_text())
    inst, res, metrics, _info = CASES[name]()
    from repro.io import coloring_to_dict, instance_to_dict

    assert instance_to_dict(inst) == record["instance"], "input drift"
    assert coloring_to_dict(res) == record["coloring"], "output drift"
    assert metrics.summary() == record["metrics"], "metric drift"


def test_golden_records_validate():
    """Every stored solution must still validate against its instance."""
    from repro.io import load_run
    from repro.core.validate import validate_ldc

    for path in sorted(GOLDEN.glob("*.json")):
        inst, res, _record = load_run(path)
        if all(d == 0 for dv in inst.defects.values() for d in dv.values()):
            validate_ldc(inst, res).raise_if_invalid()
