"""Tests for dynamic repair of list defective colorings."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ColorSpace, uniform_instance, validate_ldc
from repro.exceptions import ConditionViolation
from repro.graphs import gnp, ring
from repro.algorithms import solve_ldc_potential
from repro.algorithms.dynamic import DynamicColoring


def make_dynamic(n=20, p=0.2, seed=801, extra_colors=3, defect=1):
    """A valid starting point with some color slack for future insertions."""
    g = gnp(n, p, seed=seed)
    delta = max((d for _, d in g.degree), default=0)
    c = delta + 1 + extra_colors
    inst = uniform_instance(g, ColorSpace(c + 4), range(c), defect)
    base = solve_ldc_potential(inst)
    return DynamicColoring(inst, base), g


class TestBasics:
    def test_initial_invariant(self):
        dyn, _g = make_dynamic()
        assert dyn.check()

    def test_invalid_initial_rejected(self):
        g = ring(4)
        inst = uniform_instance(g, ColorSpace(3), range(3), 0)
        from repro.core.coloring import ColoringResult

        with pytest.raises(ValueError):
            DynamicColoring(inst, ColoringResult({v: 0 for v in g.nodes}))

    def test_directed_rejected(self):
        inst = uniform_instance(ring(4), ColorSpace(3), range(3), 0).to_oriented()
        from repro.core.coloring import ColoringResult

        with pytest.raises(ValueError):
            DynamicColoring(inst, ColoringResult({v: v % 3 for v in range(4)}))


class TestUpdates:
    def test_deletion_free(self):
        dyn, g = make_dynamic()
        e = next(iter(g.edges))
        report = dyn.update(delete=[e])
        assert report.recolored_nodes == 0
        assert dyn.check()

    def test_insertion_repairs_locally(self):
        dyn, g = make_dynamic(seed=803)
        non_edges = [
            (u, v)
            for u in g.nodes
            for v in g.nodes
            if u < v and not g.has_edge(u, v)
        ]
        before = dict(dyn.colors)
        report = dyn.update(insert=non_edges[:3])
        assert dyn.check()
        untouched = set(before) - set(report.recolor_log)
        assert all(dyn.colors[v] == before[v] for v in untouched)

    def test_many_sequential_batches(self):
        dyn, g = make_dynamic(n=24, seed=805)
        rng = random.Random(806)
        nodes = sorted(g.nodes)
        for _ in range(15):
            u, v = rng.sample(nodes, 2)
            if dyn.instance.graph.has_edge(u, v):
                dyn.update(delete=[(u, v)])
            else:
                try:
                    dyn.update(insert=[(u, v)])
                except ConditionViolation:
                    continue  # budget exhausted for this node; skip
            assert dyn.check()

    def test_eq1_guard(self):
        # zero extra colors: inserting an edge at a max-degree node breaks Eq. (1)
        g = ring(6)
        inst = uniform_instance(g, ColorSpace(3), range(3), 0)
        base = solve_ldc_potential(inst)
        dyn = DynamicColoring(inst, base)
        with pytest.raises(ConditionViolation):
            dyn.update(insert=[(0, 3)])  # degree rises to 3, list stays 3

    def test_self_loop_rejected(self):
        dyn, _g = make_dynamic()
        with pytest.raises(ValueError):
            dyn.update(insert=[(1, 1)])

    def test_metrics_accumulate(self):
        dyn, g = make_dynamic(seed=807)
        non_edges = [
            (u, v)
            for u in g.nodes
            for v in g.nodes
            if u < v and not g.has_edge(u, v)
        ]
        dyn.update(insert=non_edges[:4])
        if dyn.metrics.rounds:
            assert dyn.metrics.total_messages == dyn.metrics.rounds


class TestRandomizedChurn:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    @given(st.integers(0, 10_000))
    def test_invariant_under_random_churn(self, seed):
        dyn, g = make_dynamic(n=16, p=0.25, seed=seed % 997, extra_colors=4)
        rng = random.Random(seed)
        nodes = sorted(g.nodes)
        for _ in range(8):
            u, v = rng.sample(nodes, 2)
            try:
                if dyn.instance.graph.has_edge(u, v):
                    dyn.update(delete=[(u, v)])
                else:
                    dyn.update(insert=[(u, v)])
            except ConditionViolation:
                continue
            assert dyn.check()
        final = dyn.coloring()
        validate_ldc(dyn.instance, final).raise_if_invalid()
