"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_color_regular(self, capsys):
        rc = main(["color", "--family", "random_regular", "--n", "24", "--degree", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "valid=True" in out
        assert "Delta=4" in out

    def test_color_ring_with_show(self, capsys):
        rc = main(["color", "--family", "ring", "--n", "12", "--show", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "node 0: color" in out

    def test_edge_color(self, capsys):
        rc = main(["edge-color", "--family", "ring", "--n", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "edge_colors=" in out and "valid=True" in out

    def test_experiment(self, capsys):
        rc = main(["experiment", "E01"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "E01 existence" in out

    def test_families_listing(self, capsys):
        rc = main(["families"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "random_regular(n: 'int', degree: 'int', seed: 'int')" in out
        assert "ring(n: 'int')" in out

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["color", "--family", "mystery", "--n", "5"])

    def test_missing_required_param(self):
        with pytest.raises(SystemExit):
            main(["color", "--family", "random_regular", "--n", "24"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "E99"])

    def test_gnp_needs_p(self, capsys):
        rc = main(["color", "--family", "gnp", "--n", "20", "--p", "0.3"])
        assert rc == 0

    def test_hub_family_flags(self, capsys):
        rc = main(
            [
                "color",
                "--family",
                "hub_and_fringe",
                "--hub-degree",
                "6",
                "--fringe-cliques",
                "3",
                "--clique-size",
                "3",
            ]
        )
        assert rc == 0


class TestPartitionRunCommand:
    def test_smoke_is_equivalence_checked(self, capsys, tmp_path):
        import json

        out = tmp_path / "partition.json"
        rc = main(
            [
                "partition-run",
                "--smoke",
                "--n", "200",
                "--mp-context", "fork",
                "--output", str(out),
            ]
        )
        captured = capsys.readouterr().out
        assert rc == 0
        assert "bit-identical" in captured
        payload = json.loads(out.read_text())
        assert payload["valid"] is True
        assert payload["check"]["assignment_equal"] is True
        assert payload["check"]["accounting"]["accounting_equal"] is True
        assert payload["stats"]["shards"] == 2
        assert set(payload["exchange"]) == {
            "bytes",
            "ghosts",
            "cut_directed_edges",
        }

    def test_explicit_graph_and_shards(self, capsys):
        rc = main(
            [
                "partition-run",
                "--family", "ring",
                "--n", "64",
                "--shards", "4",
                "--strategy", "hash",
                "--mp-context", "fork",
                "--check",
            ]
        )
        assert rc == 0
        assert "shards=4" in capsys.readouterr().out

    def test_bad_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["partition-run", "--smoke", "--strategy", "metis"])


class TestFuzzCommand:
    def test_fuzz_smoke(self, capsys):
        rc = main(
            ["fuzz", "--seed", "0", "--iterations", "3",
             "--corpus", "", "--failure-dir", ""]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "differential trials" in out
        assert "0 failure(s)" in out

    def test_fuzz_replays_shipped_corpus(self, capsys):
        rc = main(
            ["fuzz", "--seed", "0", "--iterations", "1",
             "--corpus", "tests/corpus", "--failure-dir", ""]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "corpus replay:" in out and "0 regression(s)" in out

    def test_fuzz_pair_subset(self, capsys):
        rc = main(
            ["fuzz", "--seed", "1", "--iterations", "2",
             "--pairs", "greedy,linial", "--corpus", "", "--failure-dir", ""]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "greedy=2" in out and "linial=2" in out

    def test_fuzz_unknown_pair_rejected(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--pairs", "nope", "--corpus", ""])
