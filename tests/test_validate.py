"""Unit tests for all validators (each has pass and fail cases)."""

import networkx as nx
import pytest

from repro.core import ColorSpace
from repro.core.coloring import ColoringResult, EdgeOrientation
from repro.core.instance import ListDefectiveInstance, uniform_instance
from repro.core.validate import (
    validate_arbdefective,
    validate_arbdefective_plain,
    validate_defective_coloring,
    validate_generalized_oldc,
    validate_ldc,
    validate_oldc,
    validate_proper_coloring,
)
from repro.graphs import path, ring


def triangle_instance(defect=0, colors=3):
    g = nx.complete_graph(3)
    return uniform_instance(g, ColorSpace(colors), range(colors), defect)


class TestProper:
    def test_valid(self):
        g = path(3)
        rep = validate_proper_coloring(g, ColoringResult({0: 0, 1: 1, 2: 0}))
        assert rep.ok

    def test_monochromatic_edge(self):
        g = path(3)
        rep = validate_proper_coloring(g, ColoringResult({0: 0, 1: 0, 2: 1}))
        assert not rep.ok
        assert "monochromatic" in rep.violations[0]

    def test_uncolored_node(self):
        g = path(2)
        rep = validate_proper_coloring(g, ColoringResult({0: 0}))
        assert not rep.ok


class TestLDC:
    def test_defect_respected(self):
        inst = triangle_instance(defect=1, colors=2)
        rep = validate_ldc(inst, ColoringResult({0: 0, 1: 0, 2: 1}))
        assert rep.ok
        assert rep.max_defect_seen == 1

    def test_defect_exceeded(self):
        inst = triangle_instance(defect=0, colors=2)
        rep = validate_ldc(inst, ColoringResult({0: 0, 1: 0, 2: 1}))
        assert not rep.ok

    def test_color_outside_list(self):
        inst = triangle_instance(defect=2, colors=2)
        rep = validate_ldc(inst, ColoringResult({0: 5, 1: 0, 2: 1}))
        assert not rep.ok
        assert any("not in its list" in v for v in rep.violations)

    def test_raise_if_invalid(self):
        inst = triangle_instance(defect=0, colors=2)
        rep = validate_ldc(inst, ColoringResult({0: 0, 1: 0, 2: 1}))
        with pytest.raises(AssertionError):
            rep.raise_if_invalid()

    def test_bool_protocol(self):
        inst = triangle_instance(defect=1, colors=2)
        assert bool(validate_ldc(inst, ColoringResult({0: 0, 1: 0, 2: 1})))


class TestOLDC:
    def dg_path(self):
        dg = nx.DiGraph()
        dg.add_edge(0, 1)
        dg.add_edge(1, 2)
        return ListDefectiveInstance(
            dg,
            ColorSpace(2),
            {v: (0, 1) for v in dg.nodes},
            {v: {0: 0, 1: 0} for v in dg.nodes},
        )

    def test_requires_directed(self):
        inst = triangle_instance()
        with pytest.raises(ValueError):
            validate_oldc(inst, ColoringResult({0: 0, 1: 1, 2: 2}))

    def test_out_neighbors_only(self):
        inst = self.dg_path()
        # 1 -> 2 share a color: node 1 violates; 0 -> 1 differ
        rep = validate_oldc(inst, ColoringResult({0: 0, 1: 1, 2: 1}))
        assert not rep.ok
        # but 0 and 2 sharing is fine (no arc between them)
        rep2 = validate_oldc(inst, ColoringResult({0: 1, 1: 0, 2: 1}))
        assert rep2.ok

    def test_defect_budget_on_out_edges(self):
        dg = nx.DiGraph()
        dg.add_edge(0, 1)
        dg.add_edge(0, 2)
        inst = ListDefectiveInstance(
            dg,
            ColorSpace(2),
            {v: (0,) for v in dg.nodes},
            {0: {0: 1}, 1: {0: 0}, 2: {0: 0}},
        )
        rep = validate_oldc(inst, ColoringResult({0: 0, 1: 0, 2: 0}))
        assert not rep.ok  # node 0 has two same-colored out-neighbors > 1


class TestArbdefective:
    def test_orientation_required(self):
        inst = triangle_instance(defect=1, colors=2)
        rep = validate_arbdefective(inst, ColoringResult({0: 0, 1: 0, 2: 1}))
        assert not rep.ok
        assert "no edge orientation" in rep.violations[0]

    def test_unoriented_edge_detected(self):
        inst = triangle_instance(defect=1, colors=2)
        ori = EdgeOrientation()
        ori.orient(0, 1)
        rep = validate_arbdefective(inst, ColoringResult({0: 0, 1: 0, 2: 1}, ori))
        assert not rep.ok

    def test_valid_orientation_splits_defect(self):
        inst = triangle_instance(defect=1, colors=1)
        # all same color on a triangle: orient cyclically, each node has
        # exactly one same-colored out-neighbor
        ori = EdgeOrientation()
        ori.orient(0, 1)
        ori.orient(1, 2)
        ori.orient(2, 0)
        rep = validate_arbdefective(inst, ColoringResult({0: 0, 1: 0, 2: 0}, ori))
        assert rep.ok

    def test_bad_orientation_fails(self):
        inst = triangle_instance(defect=1, colors=1)
        ori = EdgeOrientation()
        ori.orient(0, 1)
        ori.orient(0, 2)
        ori.orient(1, 2)
        rep = validate_arbdefective(inst, ColoringResult({0: 0, 1: 0, 2: 0}, ori))
        assert not rep.ok  # node 0 has two same-colored out-neighbors

    def test_rejects_directed_instance(self):
        inst = triangle_instance().to_oriented()
        with pytest.raises(ValueError):
            validate_arbdefective(inst, ColoringResult({}))


class TestDefectivePlain:
    def test_valid(self):
        g = ring(4)
        res = ColoringResult({0: 0, 1: 0, 2: 1, 3: 1})
        assert validate_defective_coloring(g, res, defect=1).ok

    def test_exceeded(self):
        g = ring(4)
        res = ColoringResult({v: 0 for v in g.nodes})
        rep = validate_defective_coloring(g, res, defect=1)
        assert not rep.ok
        assert rep.max_defect_seen == 2


class TestArbdefectivePlain:
    def test_valid_cycle_orientation(self):
        g = ring(3)
        ori = EdgeOrientation()
        ori.orient(0, 1)
        ori.orient(1, 2)
        ori.orient(2, 0)
        res = ColoringResult({0: 0, 1: 0, 2: 0}, ori)
        assert validate_arbdefective_plain(g, res, arbdefect=1).ok
        assert not validate_arbdefective_plain(g, res, arbdefect=0).ok


class TestGeneralizedOLDC:
    def make(self, g_param):
        dg = nx.DiGraph()
        dg.add_edge(0, 1)
        return (
            ListDefectiveInstance(
                dg,
                ColorSpace(10),
                {0: (0, 5), 1: (2, 7)},
                {0: {0: 0, 5: 0}, 1: {2: 0, 7: 0}},
            ),
            g_param,
        )

    def test_g_zero_matches_oldc(self):
        inst, _ = self.make(0)
        res = ColoringResult({0: 0, 1: 2})
        assert validate_generalized_oldc(inst, res, 0).ok

    def test_g_window_violation(self):
        inst, _ = self.make(2)
        res = ColoringResult({0: 0, 1: 2})  # |0 - 2| <= 2 counts
        assert not validate_generalized_oldc(inst, res, 2).ok

    def test_g_window_ok_when_far(self):
        inst, _ = self.make(2)
        res = ColoringResult({0: 5, 1: 2})
        assert validate_generalized_oldc(inst, res, 2).ok

    def test_negative_g_rejected(self):
        inst, _ = self.make(0)
        with pytest.raises(ValueError):
            validate_generalized_oldc(inst, ColoringResult({0: 0, 1: 2}), -1)
