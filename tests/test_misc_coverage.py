"""Edge-case coverage for corners the focused suites don't reach."""

import pytest

import networkx as nx

from repro.core import ColorSpace
from repro.core.coloring import ColoringResult, EdgeOrientation, orientation_from_priority
from repro.core.instance import uniform_instance
from repro.graphs import path, ring
from repro.sim import Message, SyncNetwork
from repro.sim.metrics import RunMetrics
from repro.sim.node import DistributedAlgorithm, HaltingError


class TestOrientationFromPriority:
    def test_orients_high_to_low(self):
        g = path(3)
        ori = orientation_from_priority(g, {0: 5.0, 1: 3.0, 2: 7.0})
        assert ori.points_from(0, 1)
        assert ori.points_from(2, 1)

    def test_tie_breaks_by_id(self):
        g = path(2)
        ori = orientation_from_priority(g, {0: 1.0, 1: 1.0})
        assert ori.points_from(1, 0)

    def test_acyclic(self):
        g = ring(7)
        ori = orientation_from_priority(g, {v: float(v % 3) for v in g.nodes})
        dg = ori.as_digraph(g)
        assert nx.is_directed_acyclic_graph(dg)


class TestColoringResultHelpers:
    def test_color_classes(self):
        res = ColoringResult({0: 1, 1: 1, 2: 2})
        classes = res.color_classes()
        assert sorted(classes[1]) == [0, 1]
        assert classes[2] == [2]

    def test_is_total(self):
        res = ColoringResult({0: 1})
        assert res.is_total([0])
        assert not res.is_total([0, 1])

    def test_orientation_out_neighbors(self):
        ori = EdgeOrientation({(0, 1), (0, 2), (3, 0)})
        assert sorted(ori.out_neighbors(0)) == [1, 2]
        assert ori.out_degree(0) == 2
        assert ori.out_degree(3) == 1


class TestHaltingErrorDetails:
    def test_lists_unfinished_nodes(self):
        class Forever(DistributedAlgorithm):
            def is_done(self, view, state):
                return view.id == 0  # only node 0 halts

        with pytest.raises(HaltingError) as err:
            SyncNetwork(path(3)).run(Forever(), max_rounds=3)
        assert 0 not in err.value.unfinished
        assert set(err.value.unfinished) == {1, 2}
        assert "3 rounds" in str(err.value)


class TestMetricsEdges:
    def test_observe_uniform_matches_observe(self):
        a = RunMetrics(bandwidth_limit=5)
        a.observe_round([7, 7, 7])
        b = RunMetrics(bandwidth_limit=5)
        b.observe_uniform_round(3, 7)
        assert a.summary() == b.summary()
        assert a.per_round_max_bits == b.per_round_max_bits

    def test_observe_uniform_empty_round(self):
        m = RunMetrics()
        m.observe_uniform_round(0, 99)
        assert m.rounds == 1
        assert m.total_messages == 0
        assert m.max_message_bits == 0

    def test_compliant_with_factor(self):
        m = RunMetrics()
        m.observe_uniform_round(1, 100)
        assert not m.compliant_with(4, factor=8)  # budget 16
        assert m.compliant_with(4, factor=64)

    def test_merge_keeps_limit(self):
        a = RunMetrics(bandwidth_limit=10)
        b = RunMetrics(bandwidth_limit=10)
        merged = a.merge_sequential(b)
        assert merged.bandwidth_limit == 10


class TestHarnessRegistry:
    def test_get_runner_case_insensitive(self):
        from repro.experiments import get_runner

        assert get_runner("e01") is get_runner("E01")

    def test_result_render_shows_failures(self):
        from repro.experiments.harness import ExperimentResult

        r = ExperimentResult(
            experiment="X",
            kind="table",
            paper_claim="c",
            body="b",
            findings="f",
            checks={"good": True, "bad": False},
        )
        out = r.render()
        assert "bad=FAIL" in out and "good=PASS" in out
        assert not r.all_checks_pass


class TestInstanceDirectedDegrees:
    def test_directed_degree_counts_union(self):
        dg = nx.DiGraph()
        dg.add_edge(0, 1)
        dg.add_edge(2, 0)
        inst = uniform_instance(ring(3), ColorSpace(3), range(3), 0)
        oriented = uniform_instance(ring(3), ColorSpace(3), range(3), 0).to_oriented()
        # bidirected ring: degree == undirected degree
        for v in oriented.graph.nodes:
            assert oriented.degree(v) == inst.degree(v)


class TestArbListErrorPath:
    def test_infeasible_instance_raises(self):
        # sum (d+1) <= deg on a clique: the sweep's pigeonhole must fail
        # loudly rather than emit an invalid coloring
        from repro.core.adversarial import same_list_clique
        from repro.algorithms import solve_list_arbdefective

        inst = same_list_clique(6, colors=2, defect=0)  # 2 < 5 = deg
        with pytest.raises(RuntimeError):
            solve_list_arbdefective(inst)


class TestMessagePayloadKinds:
    def test_frozenset_estimate(self):
        assert Message(frozenset({1, 2})).size_bits() > 0

    def test_negative_declared_rejected(self):
        with pytest.raises(ValueError):
            Message(1, bits=-3).size_bits()


class TestTableFormatting:
    def test_fmt_bool_and_float(self):
        from repro.analysis.tables import format_table

        out = format_table(["a"], [[False], [0.001]])
        assert "no" in out
        assert "0.001" in out.replace(" ", "")
