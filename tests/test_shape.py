"""Tests for the shape-statistics utilities."""


import pytest
from hypothesis import given, strategies as st

from repro.analysis.shape import (
    PowerLawFit,
    crossover,
    exponent_spread,
    extrapolated_crossover,
    fit_power_law,
)


class TestPowerLawFit:
    def test_exact_quadratic(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        fit = fit_power_law(xs, [3 * x**2 for x in xs])
        assert fit.exponent == pytest.approx(2.0)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = PowerLawFit(0.5, 2.0, 1.0)
        assert fit.predict(16.0) == pytest.approx(8.0)

    def test_noisy_r2_below_one(self):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0]
        ys = [1.0, 4.5, 15.0, 70.0, 250.0]
        fit = fit_power_law(xs, ys)
        assert 0.9 < fit.r_squared < 1.0

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])

    @given(
        st.floats(0.2, 3.0),
        st.floats(0.5, 10.0),
    )
    def test_roundtrip(self, exponent, prefactor):
        xs = [1.0, 2.0, 5.0, 11.0, 23.0]
        ys = [prefactor * x**exponent for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(exponent, rel=1e-6)


class TestExponentSpread:
    def test_clean_data_tight_spread(self):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0]
        ys = [x**1.5 for x in xs]
        lo, hi = exponent_spread(xs, ys)
        assert lo == pytest.approx(1.5)
        assert hi == pytest.approx(1.5)

    def test_outlier_widens_spread(self):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0]
        ys = [x**1.5 for x in xs]
        ys[-1] *= 10
        lo, hi = exponent_spread(xs, ys)
        assert hi - lo > 0.2

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            exponent_spread([1.0, 2.0], [1.0, 2.0])


class TestCrossover:
    def test_simple_crossing(self):
        xs = [1.0, 2.0, 3.0]
        a = [10.0, 5.0, 1.0]
        b = [3.0, 3.0, 3.0]
        x = crossover(xs, a, b)
        assert 2.0 < x < 3.0

    def test_no_crossing(self):
        xs = [1.0, 2.0]
        assert crossover(xs, [5.0, 6.0], [1.0, 1.0]) is None

    def test_trivial_crossing_at_start(self):
        xs = [1.0, 2.0]
        assert crossover(xs, [1.0, 1.0], [5.0, 5.0]) == 1.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            crossover([1.0], [1.0, 2.0], [1.0])

    def test_unsorted_xs(self):
        with pytest.raises(ValueError):
            crossover([2.0, 1.0], [1.0, 2.0], [1.0, 2.0])

    def test_exact_hit(self):
        xs = [1.0, 2.0, 3.0]
        assert crossover(xs, [3.0, 2.0, 1.0], [3.0, 2.0, 1.0]) == 1.0


class TestExtrapolatedCrossover:
    def test_sqrt_vs_linear(self):
        # 10*sqrt(x) overtakes x at x = 100
        sqrt_fit = PowerLawFit(0.5, 10.0, 1.0)
        lin_fit = PowerLawFit(1.0, 1.0, 1.0)
        x = extrapolated_crossover(sqrt_fit, lin_fit)
        assert x == pytest.approx(100.0)

    def test_parallel_none(self):
        a = PowerLawFit(1.0, 2.0, 1.0)
        b = PowerLawFit(1.0, 3.0, 1.0)
        assert extrapolated_crossover(a, b) is None

    def test_paper_prediction_sanity(self):
        """The Thm 1.3 vs [BEG18] crossover from measured E08-like fits
        lies far beyond the sweep — the paper's polylog story."""
        thm = PowerLawFit(0.95, 20.0, 1.0)  # ~measured
        beg = PowerLawFit(1.0, 0.6, 1.0)  # Delta/2 + log*
        x = extrapolated_crossover(thm, beg)
        assert x is not None and x > 10**6
