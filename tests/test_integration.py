"""End-to-end integration tests across module boundaries.

These exercise the full pipelines the paper composes — Linial precoloring
-> gamma-class assignment -> OLDC -> Theorem 1.3 staging -> Theorem 1.4 —
on several graph families, validating every intermediate output with the
independent validators and checking the metric accounting adds up.
"""

import random

import pytest

from repro.core import ColorSpace, ListDefectiveInstance
from repro.core.conditions import ConditionAudit, ldc_exists_condition
from repro.core.instance import (
    degree_plus_one_instance,
    scaled_budget_instance,
    uniform_instance,
)
from repro.core.validate import (
    validate_arbdefective,
    validate_ldc,
    validate_oldc,
    validate_proper_coloring,
)
from repro.graphs import (
    blowup,
    gnp,
    hub_and_fringe,
    hypercube,
    random_low_outdegree_digraph,
    random_regular,
    ring,
    torus,
)
from repro.algorithms import (
    arbdefective_coloring,
    congest_delta_plus_one,
    greedy_list_coloring,
    run_defective_coloring,
    run_linial,
    solve_ldc_potential,
    solve_list_arbdefective,
    solve_oldc_basic,
    solve_oldc_main,
)


FAMILIES = {
    "torus": torus(6, 6),
    "hypercube": hypercube(5),
    "blowup-ring": blowup(ring(8), 3),
    "hub": hub_and_fringe(hub_degree=10, fringe_cliques=4, clique_size=3),
    "gnp": gnp(50, 0.15, seed=101),
}


@pytest.mark.parametrize("name", sorted(FAMILIES))
def test_full_congest_pipeline(name):
    g = FAMILIES[name]
    res, metrics, rep = congest_delta_plus_one(g)
    assert rep.valid
    validate_proper_coloring(g, res).raise_if_invalid()
    assert metrics.compliant_with(g.number_of_nodes())
    delta = max(d for _, d in g.degree)
    assert res.num_colors() <= delta + 1


@pytest.mark.parametrize("name", sorted(FAMILIES))
def test_oldc_pipeline_on_families(name):
    g = FAMILIES[name]
    rng = random.Random(hash(name) % 2**31)
    dg = random_low_outdegree_digraph(g, seed=7)
    outdeg = {v: max(1, dg.out_degree(v)) for v in dg.nodes}
    beta = max(outdeg.values())
    space = ColorSpace(35 * beta * beta + 128)
    und = scaled_budget_instance(
        g, space, 2.0, 35.0, 2, rng, directed_outdegrees=outdeg
    )
    inst = ListDefectiveInstance(dg, space, und.lists, und.defects)
    pre, m_pre, _pal = run_linial(g)
    validate_proper_coloring(g, pre).raise_if_invalid()
    res, m_main, _rep = solve_oldc_main(inst, pre.assignment)
    validate_oldc(inst, res).raise_if_invalid()
    total = m_pre.merge_sequential(m_main)
    assert total.rounds == m_pre.rounds + m_main.rounds


def test_distributed_vs_sequential_agree_on_feasibility():
    """Where the sequential solver works (Eq. 1), Theorem 1.3's distributed
    output is valid for the *same* instance — two independent code paths."""
    g = gnp(30, 0.25, seed=103)
    delta = max(d for _, d in g.degree)
    q = delta + 1
    inst = uniform_instance(g, ColorSpace(q), range(q), 0)
    assert ldc_exists_condition(inst)
    seq = solve_ldc_potential(inst)
    validate_ldc(inst, seq).raise_if_invalid()
    dist, _m, _rep = solve_list_arbdefective(inst)
    validate_ldc(inst, dist).raise_if_invalid()


def test_defective_decomposition_feeds_schedule():
    """Kuh09 classes really decompose the graph into low-degree parts."""
    g = random_regular(600, 12, seed=104)
    res, _m, _pal = run_defective_coloring(g, defect=4)
    for cls, members in res.color_classes().items():
        sub = g.subgraph(members)
        assert max((d for _, d in sub.degree), default=0) <= 4


def test_arbdefective_feeds_oldc():
    """The Theorem 1.3 wiring: class digraphs have outdegree <= arbdefect."""
    g = random_regular(60, 10, seed=105)
    res, _m, q = arbdefective_coloring(g, 3, mode="fast")
    ori = res.orientation
    for cls, members in res.color_classes().items():
        sub = g.subgraph(members)
        for v in members:
            out_same = sum(
                1 for u in sub.neighbors(v) if ori.points_from(v, u)
            )
            assert out_same <= 3


def test_greedy_matches_distributed_color_count_budget():
    g = ring(24)
    inst = degree_plus_one_instance(g)
    seq = greedy_list_coloring(inst)
    dist, _m, _rep = congest_delta_plus_one(g)
    assert seq.num_colors() <= 3
    assert dist.num_colors() <= 3


def test_condition_audit_on_pipeline_instance():
    g = gnp(30, 0.2, seed=106)
    inst = degree_plus_one_instance(g)
    audit = ConditionAudit.of(inst)
    assert audit.eq1_ldc_exists and audit.eq2_arbdefective_exists
    assert audit.slack_nu0 >= 1.0


def test_basic_and_main_oldc_agree_on_validity():
    """Both OLDC algorithms must solve the same instance (different
    round/message profiles, same contract)."""
    rng = random.Random(107)
    g = gnp(40, 0.15, seed=108)
    dg = random_low_outdegree_digraph(g, seed=109)
    outdeg = {v: max(1, dg.out_degree(v)) for v in dg.nodes}
    beta = max(outdeg.values())
    space = ColorSpace(35 * beta * beta + 128)
    und = scaled_budget_instance(
        g, space, 2.0, 35.0, 3, rng, directed_outdegrees=outdeg
    )
    inst = ListDefectiveInstance(dg, space, und.lists, und.defects)
    pre, _m, _p = run_linial(g)
    res_b, m_b, _rb = solve_oldc_basic(inst, pre.assignment)
    res_m, m_m, _rm = solve_oldc_main(inst, pre.assignment)
    validate_oldc(inst, res_b).raise_if_invalid()
    validate_oldc(inst, res_m).raise_if_invalid()


def test_theorem_1_3_general_lists_end_to_end():
    """Arbitrary defect mix meeting sum (d+1) > deg, validated fully."""
    rng = random.Random(110)
    g = hub_and_fringe(hub_degree=8, fringe_cliques=3, clique_size=4)
    space = ColorSpace(64)
    lists = {}
    defects = {}
    for v in g.nodes:
        deg = g.degree(v)
        colors = sorted(rng.sample(range(64), deg + 1))
        lists[v] = tuple(colors)
        defects[v] = {x: rng.randint(0, 1) for x in colors}
    inst = ListDefectiveInstance(g, space, lists, defects)
    assert ldc_exists_condition(inst)
    res, _m, _rep = solve_list_arbdefective(inst)
    validate_arbdefective(inst, res).raise_if_invalid()
