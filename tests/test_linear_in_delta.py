"""Tests for the [BE09/Kuh09] linear-in-Delta (Delta+1)-coloring."""

import pytest

from repro.core import validate_proper_coloring
from repro.graphs import clique, gnp, hub_and_fringe, random_regular, ring, star, torus
from repro.algorithms.linear_in_delta import linear_in_delta_coloring


class TestLinearInDelta:
    @pytest.mark.parametrize(
        "g",
        [
            ring(24),
            clique(9),
            star(14),
            torus(5, 6),
            gnp(50, 0.2, seed=71),
            random_regular(64, 12, seed=72),
            hub_and_fringe(hub_degree=10, fringe_cliques=4, clique_size=3),
        ],
        ids=["ring", "clique", "star", "torus", "gnp", "regular", "hub"],
    )
    def test_families_proper_and_delta_plus_one(self, g):
        res, _m, _rep = linear_in_delta_coloring(g)
        validate_proper_coloring(g, res).raise_if_invalid()
        delta = max(d for _, d in g.degree)
        assert res.num_colors() <= delta + 1
        assert all(0 <= c <= delta for c in res.assignment.values())

    def test_recursion_depth_logarithmic(self):
        g = random_regular(128, 32, seed=73)
        _res, _m, rep = linear_in_delta_coloring(g)
        assert rep.levels <= 32 .bit_length() + 1

    def test_base_case_only_for_small_delta(self):
        g = ring(20)
        _res, _m, rep = linear_in_delta_coloring(g)
        assert rep.levels == 1
        assert rep.palettes_before_reduce == []

    def test_deterministic(self):
        g = gnp(40, 0.25, seed=74)
        a = linear_in_delta_coloring(g)[0].assignment
        b = linear_in_delta_coloring(g)[0].assignment
        assert a == b

    def test_metrics_accumulate(self):
        g = random_regular(64, 12, seed=75)
        _res, m, rep = linear_in_delta_coloring(g)
        assert m.rounds >= sum(rep.reduce_rounds)
        assert m.total_messages > 0

    def test_isolated_nodes(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(4))
        res, _m, _rep = linear_in_delta_coloring(g)
        assert all(c == 0 for c in res.assignment.values())
