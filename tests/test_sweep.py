"""Tests for the parallel sweep runner and its on-disk cache."""

import json

import pytest

from repro.cli import main as cli_main
from repro.experiments.sweep import (
    SweepCell,
    cell_key,
    compute_cell,
    grid,
    partition_cells,
    run_sweep,
    run_sweep_summarized,
)


def small_cells():
    return grid(
        "random_regular",
        ["linial_vectorized", "classic_vectorized", "greedy_vectorized"],
        [48, 72],
        seeds=[0],
        extra_family_params={"degree": 4},
    )


class TestCells:
    def test_key_is_stable_and_param_order_independent(self):
        a = SweepCell.make("ring", {"n": 10}, "linial_vectorized", {"defect": 1})
        b = SweepCell.make("ring", {"n": 10}, "linial_vectorized", {"defect": 1})
        assert cell_key(a) == cell_key(b)
        c = SweepCell(
            family="ring",
            family_params=(("n", 10),),
            algorithm="linial_vectorized",
            algo_params=(("defect", 1),),
        )
        assert cell_key(c) == cell_key(a)

    def test_key_separates_specs(self):
        base = SweepCell.make("ring", {"n": 10}, "linial_vectorized")
        keys = {
            cell_key(base),
            cell_key(SweepCell.make("ring", {"n": 11}, "linial_vectorized")),
            cell_key(SweepCell.make("ring", {"n": 10}, "classic_vectorized")),
            cell_key(SweepCell.make("path", {"n": 10}, "linial_vectorized")),
        }
        assert len(keys) == 4

    def test_compute_cell_record_shape(self):
        rec = compute_cell(SweepCell.make("ring", {"n": 30}, "linial_vectorized"))
        assert rec["n"] == 30 and rec["m"] == 30 and rec["delta"] == 2
        assert rec["valid"] is True
        assert rec["metrics"]["rounds"] >= 1
        assert rec["key"] == cell_key(
            SweepCell.make("ring", {"n": 30}, "linial_vectorized")
        )

    def test_reference_algorithms_run_too(self):
        rec = compute_cell(
            SweepCell.make("random_regular", {"n": 24, "degree": 3, "seed": 1}, "thm14")
        )
        assert rec["valid"] is True and rec["metrics"] is not None

    def test_defective_split_validates_against_its_defect(self):
        rec = compute_cell(
            SweepCell.make(
                "random_regular",
                {"n": 48, "degree": 6, "seed": 3},
                "defective_split",
                {"defect": 2},
            )
        )
        assert rec["valid"] is True and rec["palette"] is not None


class TestPartitioning:
    def test_deterministic_round_robin(self):
        cells = small_cells()
        p1 = partition_cells(cells, 3)
        p2 = partition_cells(list(reversed(cells)), 3)
        assert p1 == p2  # order of input never changes the assignment
        flat = [c for batch in p1 for c in batch]
        assert sorted(map(cell_key, flat)) == sorted(map(cell_key, cells))

    def test_more_workers_than_cells(self):
        cells = small_cells()[:2]
        parts = partition_cells(cells, 5)
        assert sum(len(p) for p in parts) == 2

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            partition_cells(small_cells(), 0)


class TestRunSweep:
    def test_second_invocation_skips_cached_cells(self, tmp_path):
        cells = small_cells()
        first = run_sweep_summarized(cells, cache_dir=tmp_path, workers=1)
        assert first.computed == len(cells) and first.cached == 0
        second = run_sweep_summarized(cells, cache_dir=tmp_path, workers=1)
        assert second.computed == 0 and second.cached == len(cells)
        # cached records are byte-identical reads of what was stored
        for a, b in zip(first.results, second.results):
            assert a.data == b.data

    def test_partial_cache_only_computes_missing(self, tmp_path):
        cells = small_cells()
        run_sweep(cells[:3], cache_dir=tmp_path, workers=1)
        summary = run_sweep_summarized(cells, cache_dir=tmp_path, workers=1)
        assert summary.cached == 3
        assert summary.computed == len(cells) - 3

    def test_recompute_overrides_cache(self, tmp_path):
        cells = small_cells()[:2]
        run_sweep(cells, cache_dir=tmp_path, workers=1)
        summary = run_sweep_summarized(
            cells, cache_dir=tmp_path, workers=1, recompute=True
        )
        assert summary.computed == 2 and summary.cached == 0

    def test_results_in_caller_order(self, tmp_path):
        cells = small_cells()
        results = run_sweep(cells, cache_dir=tmp_path, workers=1)
        assert [r.cell for r in results] == cells

    def test_parallel_equals_inline(self, tmp_path):
        def strip_clock(data):
            # wall-clock and batching-provenance fields legitimately
            # differ between runs / worker counts
            out = {
                k: v
                for k, v in data.items()
                if k not in ("wall_s", "timings", "batched_with")
            }
            if out.get("run_record") is not None:
                out["run_record"] = {
                    k: v for k, v in out["run_record"].items() if k != "timings"
                }
            return out

        cells = small_cells()
        inline = run_sweep(cells, cache_dir=None, workers=1)
        parallel = run_sweep(cells, cache_dir=None, workers=2)
        for a, b in zip(inline, parallel):
            assert strip_clock(a.data) == strip_clock(b.data)

    def test_no_cache_dir_always_computes(self):
        cells = small_cells()[:2]
        s1 = run_sweep_summarized(cells, cache_dir=None, workers=1)
        s2 = run_sweep_summarized(cells, cache_dir=None, workers=1)
        assert s1.computed == 2 and s2.computed == 2

    def test_duplicate_cells_computed_once(self, tmp_path):
        cell = SweepCell.make("ring", {"n": 24}, "linial_vectorized")
        results = run_sweep([cell, cell], cache_dir=tmp_path, workers=1)
        assert len(results) == 1


class TestCacheSchema:
    def test_records_carry_current_schema(self, tmp_path):
        from repro.experiments.sweep import SWEEP_CACHE_SCHEMA, load_cached

        cell = SweepCell.make("ring", {"n": 24}, "linial_vectorized")
        run_sweep([cell], cache_dir=tmp_path, workers=1)
        cached = load_cached(tmp_path, cell)
        assert cached is not None
        assert cached["schema"] == SWEEP_CACHE_SCHEMA

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        from repro.experiments.sweep import SWEEP_CACHE_SCHEMA, load_cached

        cell = SweepCell.make("ring", {"n": 24}, "linial_vectorized")
        run_sweep([cell], cache_dir=tmp_path, workers=1)
        path = tmp_path / f"{cell_key(cell)}.json"
        record = json.loads(path.read_text())
        record["schema"] = SWEEP_CACHE_SCHEMA + 1  # simulate a code bump
        path.write_text(json.dumps(record))
        assert load_cached(tmp_path, cell) is None
        # the sweep recomputes (and rewrites) rather than serving stale data
        summary = run_sweep_summarized([cell], cache_dir=tmp_path, workers=1)
        assert summary.computed == 1 and summary.cached == 0
        assert load_cached(tmp_path, cell) is not None

    def test_pre_versioning_record_is_a_miss(self, tmp_path):
        from repro.experiments.sweep import load_cached

        cell = SweepCell.make("ring", {"n": 24}, "linial_vectorized")
        run_sweep([cell], cache_dir=tmp_path, workers=1)
        path = tmp_path / f"{cell_key(cell)}.json"
        record = json.loads(path.read_text())
        del record["schema"]  # records from before the field existed
        path.write_text(json.dumps(record))
        assert load_cached(tmp_path, cell) is None

    def test_run_record_attached_for_observable_paths(self, tmp_path):
        from repro.obs import OBS_SCHEMA_VERSION

        rec = compute_cell(SweepCell.make("ring", {"n": 24}, "linial_vectorized"))
        assert rec["run_record"] is not None
        assert rec["run_record"]["schema"] == OBS_SCHEMA_VERSION
        assert rec["run_record"]["engine"] == "vectorized"
        assert set(rec["timings"]) >= {"csr_build", "rounds"}
        # registry-only algorithms attach no record
        rec = compute_cell(
            SweepCell.make("random_regular", {"n": 24, "degree": 3, "seed": 1}, "thm14")
        )
        assert rec["run_record"] is None and rec["timings"] == {}


class TestAnalysisBridge:
    def test_sweep_result_from_cells(self, tmp_path):
        from repro.analysis.sweeps import sweep_result_from_cells

        cells = grid("ring", ["linial_vectorized"], [32, 64], seeds=[0])
        records = [r.data for r in run_sweep(cells, cache_dir=tmp_path, workers=1)]
        res = sweep_result_from_cells(records, x_param="n", metric="rounds")
        assert res.xs() == [32.0, 64.0]
        assert res.complete()
        colors = sweep_result_from_cells(records, x_param="n", metric="colors")
        assert all(p.samples for p in colors.points)


class TestCLI:
    def test_sweep_command_caches_across_invocations(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--family", "ring",
            "--n", "40,80",
            "--algorithms", "linial_vectorized,classic_vectorized",
            "--cache-dir", str(tmp_path / "cache"),
            "--workers", "1",
            "--output", str(tmp_path / "sweep.json"),
        ]
        assert cli_main(argv) == 0
        out1 = capsys.readouterr().out
        assert "4 cells (4 computed, 0 cached)" in out1
        assert cli_main(argv) == 0
        out2 = capsys.readouterr().out
        assert "4 cells (0 computed, 4 cached)" in out2
        payload = json.loads((tmp_path / "sweep.json").read_text())
        assert payload["cached"] == 4 and len(payload["cells"]) == 4
        assert all(c["valid"] for c in payload["cells"])
