"""Unit + property tests for graph generators and orientations."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coloring import EdgeOrientation
from repro.graphs import (
    balanced_orientation,
    bidirect,
    blowup,
    clique,
    disjoint_cliques,
    family,
    gnp,
    hub_and_fringe,
    hypercube,
    max_degree,
    max_outdegree,
    orientation_by_id,
    path,
    random_low_outdegree_digraph,
    random_regular,
    random_tree,
    ring,
    star,
    torus,
)


class TestGenerators:
    def test_ring(self):
        g = ring(7)
        assert g.number_of_nodes() == 7
        assert all(d == 2 for _, d in g.degree)
        with pytest.raises(ValueError):
            ring(2)

    def test_path(self):
        g = path(5)
        assert g.number_of_edges() == 4

    def test_clique(self):
        g = clique(6)
        assert g.number_of_edges() == 15
        assert max_degree(g) == 5

    def test_star(self):
        g = star(8)
        assert max_degree(g) == 7
        assert sorted(d for _, d in g.degree).count(1) == 7

    def test_random_regular_degree(self):
        g = random_regular(20, 4, seed=0)
        assert all(d == 4 for _, d in g.degree)
        assert sorted(g.nodes) == list(range(20))

    def test_random_regular_parity(self):
        with pytest.raises(ValueError):
            random_regular(5, 3, seed=0)
        with pytest.raises(ValueError):
            random_regular(4, 4, seed=0)

    def test_gnp_bounds(self):
        g = gnp(30, 0.2, seed=1)
        assert g.number_of_nodes() == 30
        with pytest.raises(ValueError):
            gnp(5, 1.5, seed=0)

    def test_gnp_deterministic(self):
        assert sorted(gnp(20, 0.3, seed=5).edges) == sorted(gnp(20, 0.3, seed=5).edges)

    def test_random_tree(self):
        g = random_tree(15, seed=2)
        assert nx.is_tree(g)
        assert random_tree(1, seed=0).number_of_nodes() == 1

    def test_hypercube(self):
        g = hypercube(4)
        assert g.number_of_nodes() == 16
        assert all(d == 4 for _, d in g.degree)

    def test_torus(self):
        g = torus(4, 5)
        assert g.number_of_nodes() == 20
        assert all(d == 4 for _, d in g.degree)

    def test_hub_and_fringe(self):
        g = hub_and_fringe(hub_degree=6, fringe_cliques=3, clique_size=3)
        assert g.degree(0) == 6
        with pytest.raises(ValueError):
            hub_and_fringe(hub_degree=10, fringe_cliques=1, clique_size=2)

    def test_blowup_scales_degree(self):
        g = blowup(ring(4), 3)
        assert g.number_of_nodes() == 12
        assert all(d == 6 for _, d in g.degree)

    def test_disjoint_cliques(self):
        g = disjoint_cliques(3, 4)
        assert g.number_of_nodes() == 12
        assert nx.number_connected_components(g) == 3

    def test_family_dispatch(self):
        g = family("ring", n=5)
        assert g.number_of_nodes() == 5
        with pytest.raises(KeyError):
            family("nope")


class TestBalancedOrientation:
    def check_balanced(self, g):
        ori = balanced_orientation(g)
        assert ori.covers(g)
        for v in g.nodes:
            assert ori.out_degree(v) <= -(-g.degree(v) // 2), (
                f"node {v}: out {ori.out_degree(v)} > ceil({g.degree(v)}/2)"
            )

    def test_ring(self):
        self.check_balanced(ring(9))

    def test_clique_even(self):
        self.check_balanced(clique(6))

    def test_clique_odd(self):
        self.check_balanced(clique(7))

    def test_star(self):
        self.check_balanced(star(9))

    def test_disconnected(self):
        self.check_balanced(disjoint_cliques(3, 4))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(4, 24), st.integers(0, 10_000))
    def test_random_graphs_balanced(self, n, seed):
        g = gnp(n, 0.4, seed=seed)
        self.check_balanced(g)


class TestOtherOrientations:
    def test_by_id_acyclic(self):
        g = clique(5)
        ori = orientation_by_id(g)
        dg = ori.as_digraph(g)
        assert nx.is_directed_acyclic_graph(dg)

    def test_bidirect(self):
        dg = bidirect(ring(4))
        assert dg.number_of_edges() == 8
        assert max_outdegree(dg) == 2

    def test_max_outdegree_clamp(self):
        dg = nx.DiGraph()
        dg.add_node(0)
        assert max_outdegree(dg) == 1

    def test_random_low_outdegree(self):
        g = gnp(25, 0.3, seed=4)
        dg = random_low_outdegree_digraph(g, seed=9)
        assert dg.to_undirected().number_of_edges() == g.number_of_edges()
        for v in dg.nodes:
            assert dg.out_degree(v) <= -(-g.degree(v) // 2)

    def test_random_low_outdegree_deterministic(self):
        g = gnp(20, 0.3, seed=4)
        a = sorted(random_low_outdegree_digraph(g, seed=9).edges)
        b = sorted(random_low_outdegree_digraph(g, seed=9).edges)
        assert a == b

    def test_edge_orientation_api(self):
        ori = EdgeOrientation()
        ori.orient(0, 1)
        assert ori.points_from(0, 1)
        assert not ori.points_from(1, 0)
        assert ori.is_oriented(1, 0)
        with pytest.raises(ValueError):
            ori.orient(1, 0)
        assert len(ori) == 1

    def test_as_digraph_requires_cover(self):
        g = path(3)
        ori = EdgeOrientation()
        ori.orient(0, 1)
        with pytest.raises(ValueError):
            ori.as_digraph(g)
