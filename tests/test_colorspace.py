"""Unit tests for repro.core.colorspace."""

import pytest
from hypothesis import given, strategies as st

from repro.core.colorspace import (
    ColorSpace,
    best_congruence_class,
    congruence_class,
    round_to_congruence,
)


class TestColorSpace:
    def test_basic_membership(self):
        cs = ColorSpace(5)
        assert list(cs) == [0, 1, 2, 3, 4]
        assert 0 in cs and 4 in cs
        assert 5 not in cs and -1 not in cs
        assert len(cs) == 5

    def test_offset_membership(self):
        cs = ColorSpace(3, offset=10)
        assert list(cs) == [10, 11, 12]
        assert 9 not in cs and 13 not in cs
        assert cs.max_color == 12

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            ColorSpace(0)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            ColorSpace(3, offset=-1)

    def test_bits_per_color(self):
        assert ColorSpace(1).bits_per_color() == 1
        assert ColorSpace(2).bits_per_color() == 1
        assert ColorSpace(256).bits_per_color() == 8
        assert ColorSpace(257).bits_per_color() == 9

    def test_partition_even(self):
        parts = ColorSpace(12).partition(4)
        assert [len(p) for p in parts] == [3, 3, 3, 3]
        assert parts[0].offset == 0 and parts[3].offset == 9

    def test_partition_uneven(self):
        parts = ColorSpace(10).partition(3)
        assert [len(p) for p in parts] == [4, 3, 3]
        covered = [c for p in parts for c in p]
        assert covered == list(range(10))

    def test_partition_bounds(self):
        cs = ColorSpace(5)
        with pytest.raises(ValueError):
            cs.partition(0)
        with pytest.raises(ValueError):
            cs.partition(6)
        assert len(cs.partition(5)) == 5

    def test_subspace_of_matches_partition(self):
        cs = ColorSpace(10)
        parts = cs.partition(3)
        for color in cs:
            i = cs.subspace_of(color, 3)
            assert color in parts[i]

    def test_subspace_of_outside_raises(self):
        with pytest.raises(ValueError):
            ColorSpace(5).subspace_of(7, 2)

    @given(st.integers(2, 60), st.integers(2, 10))
    def test_partition_covers_disjointly(self, size, parts):
        parts = min(parts, size)
        cs = ColorSpace(size)
        pieces = cs.partition(parts)
        seen = []
        for p in pieces:
            seen.extend(p)
        assert seen == list(range(size))

    @given(st.integers(2, 60), st.integers(2, 10), st.integers(0, 59))
    def test_subspace_of_consistent(self, size, parts, color):
        parts = min(parts, size)
        color = color % size
        cs = ColorSpace(size)
        i = cs.subspace_of(color, parts)
        assert color in cs.partition(parts)[i]


class TestCongruence:
    def test_congruence_class_filters(self):
        assert congruence_class(range(10), 0, 3) == [0, 3, 6, 9]
        assert congruence_class(range(10), 2, 3) == [2, 5, 8]

    def test_congruence_modulus_one(self):
        assert congruence_class([5, 7], 0, 1) == [5, 7]

    def test_congruence_invalid_modulus(self):
        with pytest.raises(ValueError):
            congruence_class([1], 0, 0)

    def test_best_congruence_class_picks_largest(self):
        a, lst = best_congruence_class([0, 3, 6, 1, 4], 3)
        assert a == 0
        assert lst == [0, 3, 6]

    def test_best_congruence_tie_prefers_smaller_residue(self):
        a, lst = best_congruence_class([0, 3, 1, 4], 3)
        assert a == 0
        assert lst == [0, 3]

    def test_best_congruence_modulus_one_keeps_all(self):
        a, lst = best_congruence_class([4, 2, 9], 1)
        assert a == 0
        assert lst == [2, 4, 9]

    def test_best_congruence_empty(self):
        a, lst = best_congruence_class([], 3)
        assert lst == []

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=40), st.integers(1, 9))
    def test_best_class_pigeonhole(self, colors, modulus):
        _a, lst = best_congruence_class(colors, modulus)
        distinct = len(set(colors))
        assert len(set(lst)) * modulus >= distinct

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=40), st.integers(2, 9))
    def test_best_class_members_congruent(self, colors, modulus):
        a, lst = best_congruence_class(colors, modulus)
        assert all(x % modulus == a for x in lst)


class TestRounding:
    def test_round_to_same_class_is_identity(self):
        assert round_to_congruence(7, 7 % 5, 5) == 7

    def test_round_nearest(self):
        # colors congruent to 0 mod 5 around 7: 5 and 10; 5 is nearer
        assert round_to_congruence(7, 0, 5) == 5
        assert round_to_congruence(8, 0, 5) == 10

    def test_round_clamps_at_zero(self):
        assert round_to_congruence(1, 4, 5) == 4

    @given(st.integers(0, 500), st.integers(0, 8), st.integers(1, 9))
    def test_round_result_congruent_and_close(self, color, b, modulus):
        b = b % modulus
        r = round_to_congruence(color, b, modulus)
        assert r % modulus == b
        assert abs(r - color) <= modulus
        assert r >= 0
