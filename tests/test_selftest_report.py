"""Tests for the selftest pass and the report writers."""


from repro.selftest import selftest
from repro.analysis.report import (
    render_markdown,
    render_text,
    write_markdown_report,
    write_text_report,
)
from repro.experiments.harness import ExperimentResult


def fake_results():
    return [
        ExperimentResult(
            experiment="E99 fake",
            kind="table",
            paper_claim="claim",
            body="col\n---\n1",
            findings="finding text",
            checks={"a": True},
        ),
        ExperimentResult(
            experiment="E98 broken",
            kind="figure",
            paper_claim="claim2",
            body="body2",
            findings="finding2",
            checks={"b": False},
        ),
    ]


class TestSelftest:
    def test_clean_repository_passes(self):
        assert selftest() == []


class TestReportWriters:
    def test_markdown_structure(self):
        md = render_markdown(fake_results())
        assert "# Experiment record" in md
        assert "| E99 fake | table | PASS |" in md
        assert "| E98 broken | figure | FAIL |" in md
        assert "```text" in md
        assert "failing: b" in md

    def test_text_concatenates(self):
        txt = render_text(fake_results())
        assert "E99 fake" in txt and "E98 broken" in txt
        assert "=" * 90 in txt

    def test_file_writers(self, tmp_path):
        write_markdown_report(fake_results(), tmp_path / "r.md")
        write_text_report(fake_results(), tmp_path / "r.txt")
        assert (tmp_path / "r.md").read_text().startswith("# Experiment record")
        assert "paper claim" in (tmp_path / "r.txt").read_text()

    def test_cli_selftest(self, capsys):
        from repro.cli import main

        rc = main(["selftest"])
        assert rc == 0
        assert "all checks passed" in capsys.readouterr().out
