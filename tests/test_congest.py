"""Tests for the Theorem 1.4 CONGEST pipeline."""

import random

import pytest

from repro.core import ColorSpace
from repro.core.instance import degree_plus_one_instance, uniform_instance
from repro.core.validate import validate_ldc
from repro.graphs import clique, gnp, random_regular, ring, torus
from repro.algorithms.congest_coloring import (
    congest_degree_plus_one,
    congest_delta_plus_one,
    reduced_oldc_solver,
)


class TestDeltaPlusOne:
    @pytest.mark.parametrize(
        "g",
        [ring(30), clique(9), torus(5, 6), gnp(50, 0.2, seed=21), random_regular(60, 10, seed=22)],
        ids=["ring", "clique", "torus", "gnp", "regular"],
    )
    def test_families(self, g):
        res, metrics, rep = congest_delta_plus_one(g)
        assert rep.valid
        delta = max(d for _, d in g.degree)
        assert res.num_colors() <= delta + 1

    def test_congest_compliant_small_space(self):
        g = random_regular(60, 10, seed=23)
        _res, metrics, _rep = congest_delta_plus_one(g)
        assert metrics.compliant_with(g.number_of_nodes())


class TestDegreePlusOne:
    def test_random_lists_poly_delta_space(self):
        g = random_regular(60, 10, seed=24)
        inst = degree_plus_one_instance(g, ColorSpace(100), random.Random(25))
        res, _m, rep = congest_degree_plus_one(inst, reduction_r=2)
        assert rep.valid
        validate_ldc(inst, res).raise_if_invalid()

    def test_reduction_shrinks_messages(self):
        g = random_regular(60, 12, seed=26)
        inst = degree_plus_one_instance(g, ColorSpace(144), random.Random(27))
        _r0, m0, _rep0 = congest_degree_plus_one(inst, reduction_r=0)
        _r2, m2, _rep2 = congest_degree_plus_one(inst, reduction_r=2)
        assert m2.max_message_bits <= m0.max_message_bits

    def test_rejects_directed(self):
        inst = uniform_instance(ring(5), ColorSpace(3), range(3), 0).to_oriented()
        with pytest.raises(ValueError):
            congest_degree_plus_one(inst)

    def test_rejects_nonzero_defects(self):
        inst = uniform_instance(ring(5), ColorSpace(3), range(3), 1)
        with pytest.raises(ValueError):
            congest_degree_plus_one(inst)

    def test_rejects_short_lists(self):
        inst = uniform_instance(clique(5), ColorSpace(3), range(3), 0)
        with pytest.raises(ValueError):
            congest_degree_plus_one(inst)

    def test_novalidate_mode_reports(self):
        g = ring(12)
        inst = degree_plus_one_instance(g)
        res, _m, rep = congest_degree_plus_one(inst, validate=False)
        assert rep.valid  # still audited, just not raising


class TestReducedSolver:
    def test_r_zero_is_plain_solver(self):
        from .test_oldc_basic import make_oldc_instance

        _g, inst, init = make_oldc_instance(n=30, seed=29)
        solver = reduced_oldc_solver(reduction_r=0)
        res, _m, _rep = solver(inst, init)
        from repro.core.validate import validate_oldc

        validate_oldc(inst, res).raise_if_invalid()

    def test_r_two_valid(self):
        from .test_oldc_basic import make_oldc_instance

        _g, inst, init = make_oldc_instance(n=30, seed=33, slack=40.0)
        solver = reduced_oldc_solver(reduction_r=2)
        res, _m, _rep = solver(inst, init)
        from repro.core.validate import validate_oldc

        validate_oldc(inst, res).raise_if_invalid()
