"""Tests for the baseline algorithms."""

import random

import pytest

from repro.core import ColorSpace
from repro.core.instance import degree_plus_one_instance, uniform_instance
from repro.core.validate import validate_ldc
from repro.graphs import clique, gnp, random_regular, ring
from repro.algorithms.baselines import (
    list_exchange_coloring,
    randomized_list_coloring,
)
from repro.sim.message import color_list_bits


class TestRandomized:
    @pytest.mark.parametrize(
        "g", [ring(20), clique(8), gnp(40, 0.2, seed=31)],
        ids=["ring", "clique", "gnp"],
    )
    def test_valid_coloring(self, g):
        inst = degree_plus_one_instance(g)
        res, metrics = randomized_list_coloring(inst, seed=1)
        validate_ldc(inst, res).raise_if_invalid()

    def test_random_lists(self):
        g = gnp(30, 0.25, seed=32)
        delta = max(d for _, d in g.degree)
        inst = degree_plus_one_instance(g, ColorSpace(4 * delta), random.Random(33))
        res, _m = randomized_list_coloring(inst, seed=2)
        validate_ldc(inst, res).raise_if_invalid()

    def test_rounds_logarithmic_in_practice(self):
        g = random_regular(200, 10, seed=34)
        inst = degree_plus_one_instance(g)
        _res, metrics = randomized_list_coloring(inst, seed=3)
        assert metrics.rounds <= 40  # ~log n w.h.p.; generous cap

    def test_small_messages(self):
        g = random_regular(100, 10, seed=35)
        inst = degree_plus_one_instance(g)
        _res, metrics = randomized_list_coloring(inst, seed=4)
        assert metrics.max_message_bits <= 16

    def test_seed_changes_outcome(self):
        g = gnp(30, 0.3, seed=36)
        inst = degree_plus_one_instance(g)
        a = randomized_list_coloring(inst, seed=1)[0].assignment
        b = randomized_list_coloring(inst, seed=2)[0].assignment
        assert a != b

    def test_same_seed_deterministic(self):
        g = gnp(30, 0.3, seed=36)
        inst = degree_plus_one_instance(g)
        a = randomized_list_coloring(inst, seed=5)[0].assignment
        b = randomized_list_coloring(inst, seed=5)[0].assignment
        assert a == b

    def test_directed_rejected(self):
        inst = uniform_instance(ring(5), ColorSpace(3), range(3), 0).to_oriented()
        with pytest.raises(ValueError):
            randomized_list_coloring(inst)


class TestListExchange:
    def test_valid_coloring(self):
        g = gnp(30, 0.25, seed=37)
        inst = degree_plus_one_instance(g)
        res, _m = list_exchange_coloring(inst, seed=1)
        validate_ldc(inst, res).raise_if_invalid()

    def test_big_message_profile(self):
        g = random_regular(60, 12, seed=38)
        inst = degree_plus_one_instance(g, ColorSpace(144), random.Random(39))
        _res, metrics = list_exchange_coloring(inst, seed=2)
        expected = color_list_bits(13, 144)
        assert metrics.max_message_bits >= expected

    def test_bigger_than_randomized(self):
        g = random_regular(60, 12, seed=38)
        inst = degree_plus_one_instance(g, ColorSpace(144), random.Random(39))
        _r1, m_small = randomized_list_coloring(inst, seed=2)
        _r2, m_big = list_exchange_coloring(inst, seed=2)
        assert m_big.max_message_bits > m_small.max_message_bits
