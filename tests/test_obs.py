"""Tests for the observability layer (repro.obs).

Covers the RunRecord schema and its JSONL round-trip, the recorder
integration of both engines, and the standing cross-engine equivalence
check: reference and vectorized runs of the same sweep cell must emit
identical per-round message counts and bit totals.
"""

import pytest

from repro.experiments.sweep import SweepCell, compute_cell, run_sweep
from repro.graphs import ring
from repro.obs import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    OBS_SCHEMA_VERSION,
    Profiler,
    RoundRow,
    RunRecord,
    RunRecorder,
    append_jsonl,
    compare_round_accounting,
    read_jsonl,
    write_jsonl,
)
from repro.sim import SyncNetwork, linial_vectorized
from repro.sim.metrics import RunMetrics


def make_metrics(rounds=3, count=4, bits=8):
    m = RunMetrics(bandwidth_limit=64)
    for _ in range(rounds):
        m.observe_uniform_round(count, bits)
    return m


class TestProfiler:
    def test_phases_accumulate(self):
        p = Profiler()
        with p.phase("a"):
            pass
        with p.phase("a"):
            pass
        p.add("b", 1.5)
        assert set(p.timings) == {"a", "b"}
        assert p.timings["a"] >= 0
        assert p.timings["b"] == 1.5
        assert p.total() == pytest.approx(p.timings["a"] + 1.5)

    def test_exception_still_recorded(self):
        p = Profiler()
        with pytest.raises(RuntimeError):
            with p.phase("x"):
                raise RuntimeError("boom")
        assert "x" in p.timings


class TestRunRecord:
    def test_from_metrics_builds_rows(self):
        rec = RunRecord.from_metrics(
            make_metrics(),
            engine=ENGINE_VECTORIZED,
            algorithm="demo",
            n=10,
            m=20,
            active_per_round=[10, 8],
            palette=5,
        )
        assert len(rec.rows) == 3
        assert rec.rows[0] == RoundRow(0, 4, 32, 8, active=10)
        assert rec.rows[2].active is None  # shorter activity sequence
        assert rec.summary["total_bits"] == 96
        assert rec.palette == 5

    def test_incomplete_metrics_yield_summary_only(self):
        m = RunMetrics(rounds=2, total_messages=5, total_bits=40)
        rec = RunRecord.from_metrics(
            m, engine=ENGINE_REFERENCE, algorithm="merged", n=4, m=4
        )
        assert rec.rows == []
        assert rec.summary["rounds"] == 2

    def test_check_consistent_raises_on_drift(self):
        rec = RunRecord.from_metrics(
            make_metrics(), engine=ENGINE_VECTORIZED, algorithm="demo", n=4, m=4
        )
        rec.summary["total_bits"] += 1
        with pytest.raises(ValueError, match="inconsistent RunRecord"):
            rec.check_consistent()

    def test_dict_roundtrip(self):
        rec = RunRecord.from_metrics(
            make_metrics(),
            engine=ENGINE_VECTORIZED,
            algorithm="demo",
            n=10,
            m=20,
            uncolored_per_round=[5, 3, 0],
            timings={"rounds": 0.25},
        )
        again = RunRecord.from_dict(rec.to_dict())
        assert again == rec

    def test_exchange_column_roundtrips(self):
        # schema v3: the partitioned backend's per-round exchange column
        row = {"bytes": 1112, "ghosts": 139, "cut_directed_edges": 164}
        rec = RunRecord.from_metrics(
            make_metrics(),
            engine=ENGINE_VECTORIZED,
            algorithm="demo",
            n=10,
            m=20,
            exchange_per_round=[row, row, None],
        )
        assert rec.rows[0].exchange == row
        assert rec.rows[2].exchange is None
        again = RunRecord.from_dict(rec.to_dict())
        assert again == rec
        assert again.rows[1].exchange == row

    def test_compare_ignores_exchange_column(self):
        # exchange is engine-optional (partitioned-only): two records
        # that differ only there must still compare as equal accounting
        row = {"bytes": 64, "ghosts": 8, "cut_directed_edges": 12}
        with_exchange = RunRecord.from_metrics(
            make_metrics(),
            engine=ENGINE_VECTORIZED,
            algorithm="demo",
            n=4,
            m=4,
            exchange_per_round=[row, row, row],
        )
        without = RunRecord.from_metrics(
            make_metrics(),
            engine=ENGINE_REFERENCE,
            algorithm="demo",
            n=4,
            m=4,
        )
        verdict = compare_round_accounting(with_exchange, without)
        assert verdict["accounting_equal"] and verdict["rounds_equal"]

    def test_foreign_schema_rejected(self):
        data = RunRecord.from_metrics(
            make_metrics(), engine=ENGINE_VECTORIZED, algorithm="demo", n=4, m=4
        ).to_dict()
        data["schema"] = OBS_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            RunRecord.from_dict(data)


class TestJsonl:
    def records(self):
        return [
            RunRecord.from_metrics(
                make_metrics(rounds=r),
                engine=ENGINE_VECTORIZED,
                algorithm=f"demo{r}",
                n=4,
                m=4,
            )
            for r in (1, 2)
        ]

    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        write_jsonl(self.records(), path)
        loaded = read_jsonl(path)
        assert loaded == self.records()
        assert len(path.read_text().splitlines()) == 2

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        for rec in self.records():
            append_jsonl(rec, path)
        assert [r.algorithm for r in read_jsonl(path)] == ["demo1", "demo2"]


class TestRecorderIntegration:
    def test_sync_network_finalizes_record(self, tmp_path):
        from .test_sim import EchoOnce

        path = tmp_path / "runs.jsonl"
        recorder = RunRecorder(engine=ENGINE_REFERENCE, jsonl_path=path)
        net = SyncNetwork(ring(6), model="CONGEST")
        _outputs, metrics = net.run(EchoOnce(), recorder=recorder)
        rec = recorder.record
        assert rec is not None
        assert rec.engine == ENGINE_REFERENCE
        assert rec.n == 6 and rec.m == 6
        assert len(rec.rows) == metrics.rounds
        assert sum(r.messages for r in rec.rows) == metrics.total_messages
        assert all(r.active is not None for r in rec.rows)
        assert read_jsonl(path) == [rec]

    def test_vectorized_path_finalizes_record(self):
        recorder = RunRecorder(engine=ENGINE_VECTORIZED)
        _res, metrics, palette = linial_vectorized(ring(12), recorder=recorder)
        rec = recorder.record
        assert rec is not None
        assert rec.palette == palette
        assert len(rec.rows) == metrics.rounds
        assert sum(r.total_bits for r in rec.rows) == metrics.total_bits
        assert {"csr_build", "schedule", "rounds"} <= set(rec.timings)

    def test_compare_detects_mismatch(self):
        a = RunRecord.from_metrics(
            make_metrics(rounds=2),
            engine=ENGINE_REFERENCE,
            algorithm="a",
            n=4,
            m=4,
        )
        b = RunRecord.from_metrics(
            make_metrics(rounds=2, bits=9),
            engine=ENGINE_VECTORIZED,
            algorithm="b",
            n=4,
            m=4,
        )
        verdict = compare_round_accounting(a, b)
        assert not verdict["accounting_equal"]
        assert verdict["first_mismatch"] == 0
        assert verdict["mismatched_rounds"] == 2
        assert verdict["rounds_equal"]
        same = compare_round_accounting(a, a)
        assert same["accounting_equal"] and same["totals_equal"]


# the standing cross-engine check: same cell, identical per-round accounting
EQUIVALENCE_CELLS = [
    ("linial", "linial_vectorized"),
    ("greedy", "greedy_vectorized"),
    ("classic", "classic_vectorized"),
]


class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("reference,vectorized", EQUIVALENCE_CELLS)
    def test_ring_cell(self, reference, vectorized):
        self.check_cell("ring", {"n": 30}, reference, vectorized)

    @pytest.mark.parametrize("reference,vectorized", EQUIVALENCE_CELLS)
    def test_random_regular_cell(self, reference, vectorized):
        # large enough that Linial's schedule is non-trivial (rounds >= 1)
        self.check_cell(
            "random_regular",
            {"n": 150, "degree": 5, "seed": 1},
            reference,
            vectorized,
        )

    def check_cell(self, family, family_params, reference, vectorized):
        ref = compute_cell(SweepCell.make(family, family_params, reference))
        vec = compute_cell(SweepCell.make(family, family_params, vectorized))
        ra = RunRecord.from_dict(ref["run_record"])
        rb = RunRecord.from_dict(vec["run_record"])
        assert ra.engine == ENGINE_REFERENCE and rb.engine == ENGINE_VECTORIZED
        verdict = compare_round_accounting(ra, rb)
        assert verdict["accounting_equal"], verdict
        assert verdict["rounds_equal"] and verdict["totals_equal"]
        assert ref["metrics"]["total_bits"] == vec["metrics"]["total_bits"]
        assert ref["metrics"]["rounds"] == vec["metrics"]["rounds"]

    def test_linial_pair_has_traffic(self):
        # guard against the equivalence passing vacuously (0 rounds)
        rec = compute_cell(
            SweepCell.make(
                "random_regular", {"n": 150, "degree": 5, "seed": 1}, "linial"
            )
        )
        assert rec["metrics"]["rounds"] >= 1
        assert rec["metrics"]["total_messages"] > 0


class TestReportRendering:
    def sweep_cache(self, tmp_path):
        cells = [
            SweepCell.make("ring", {"n": 30}, alg)
            for pair in EQUIVALENCE_CELLS
            for alg in pair
        ]
        run_sweep(cells, cache_dir=tmp_path, workers=1)
        return tmp_path

    def test_report_renders_from_cache_dir(self, tmp_path):
        from repro.analysis.report import (
            load_cache_run_records,
            pair_cross_engine,
            render_obs_report,
        )

        cache = self.sweep_cache(tmp_path)
        records = load_cache_run_records(cache)
        assert len(records) == 6
        pairs = pair_cross_engine(records)
        assert len(pairs) == 3
        text = render_obs_report(records)
        assert "cross-engine equivalence" in text
        assert "EQUAL" in text and "MISMATCH" not in text
        assert "round  messages  total_bits" in text

    def test_render_flags_mismatch(self):
        from repro.analysis.report import render_engine_comparison

        a = RunRecord.from_metrics(
            make_metrics(rounds=2),
            engine=ENGINE_REFERENCE,
            algorithm="linial",
            n=4,
            m=4,
        )
        b = RunRecord.from_metrics(
            make_metrics(rounds=2, count=5),
            engine=ENGINE_VECTORIZED,
            algorithm="linial_vectorized",
            n=4,
            m=4,
        )
        text = render_engine_comparison(a, b)
        assert "MISMATCH" in text
        assert "first mismatch at round 0" in text

    def test_cli_report_cache_dir(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        cache = self.sweep_cache(tmp_path)
        assert cli_main(["report", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "cross-engine equivalence" in out
        assert "EQUAL" in out

    def test_cli_report_runs_jsonl(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = tmp_path / "runs.jsonl"
        recorder = RunRecorder(engine=ENGINE_VECTORIZED, jsonl_path=path)
        linial_vectorized(ring(12), recorder=recorder)
        assert cli_main(["report", "--runs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "linial_vectorized" in out

    def test_cli_report_empty_sources_fail(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["report", "--cache-dir", str(tmp_path)]) == 1
        assert "(no run records)" in capsys.readouterr().out
