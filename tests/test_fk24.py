"""The [FK24] engine battery: validity oracles, tri-engine equality, faults.

Three layers of pinning for the simple iterative list-defective coloring
(arXiv 2405.04648, Section 3):

* **Semantic oracles** — on twelve graph families and under hypothesis-
  driven random instances, the output is a valid list arbdefective
  coloring (list membership + per-color defect budget, validated by
  :func:`repro.core.validate.validate_arbdefective`) within the declared
  palette.
* **Tri-engine equality** — reference, vectorized, and batched runs of
  the same instance agree on assignments, orientation priorities,
  metrics, palette, *and* per-round observability rows
  (:func:`repro.obs.compare_round_accounting`).
* **Fault battery** — drop / corrupt / crash plans produce identical
  outcomes on both engines, including the case where the adversary
  livelocks the protocol: both sides must raise the same
  :class:`~repro.sim.node.HaltingError` (rounds and unfinished set).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms.fk24 import (
    fk24_list_size,
    fk24_lists,
    fk24_round_budget,
    run_fk24,
)
from repro.core import ColorSpace
from repro.core.instance import ListDefectiveInstance
from repro.core.validate import validate_arbdefective
from repro.faults import FaultPlan
from repro.graphs import (
    blowup,
    clique,
    disjoint_cliques,
    gnp,
    hub_and_fringe,
    hypercube,
    path,
    random_regular,
    random_tree,
    ring,
    star,
    torus,
)
from repro.obs import RunRecorder, compare_round_accounting
from repro.sim.batch import fk24_vectorized_batch
from repro.sim.node import HaltingError
from repro.sim.vectorized import fk24_vectorized

FAMILIES = {
    "ring": lambda: ring(16),
    "path": lambda: path(15),
    "star": lambda: star(9),
    "clique": lambda: clique(7),
    "torus": lambda: torus(4, 4),
    "hypercube": lambda: hypercube(4),
    "gnp": lambda: gnp(24, 0.2, seed=3),
    "regular": lambda: random_regular(24, 4, seed=4),
    "tree": lambda: random_tree(20, seed=5),
    "blowup": lambda: blowup(ring(5), 2),
    "hub": lambda: hub_and_fringe(hub_degree=6, fringe_cliques=2, clique_size=3),
    "cliques": lambda: disjoint_cliques(3, 4),
}


def _instance(g, lists, space, defect):
    return ListDefectiveInstance(
        g,
        ColorSpace(space),
        {v: tuple(lists[v]) for v in g.nodes},
        {v: {x: defect for x in lists[v]} for v in g.nodes},
    )


def _assert_valid(g, lists, space, defect, result, palette):
    report = validate_arbdefective(_instance(g, lists, space, defect), result)
    assert report.ok, report.violations
    assert palette == space
    assert all(0 <= c < space for c in result.assignment.values())
    assert set(result.assignment) == set(g.nodes)


# ----------------------------------------------------------------------
# semantic oracles
# ----------------------------------------------------------------------
@pytest.mark.parametrize("defect", [0, 1, 2])
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_family_grid_is_valid_arbdefective(family, defect):
    g = FAMILIES[family]()
    lists, space = fk24_lists(g, defect=defect, slack=1, seed=9)
    result, _metrics, palette = run_fk24(
        g, lists=lists, space_size=space, defect=defect
    )
    _assert_valid(g, lists, space, defect, result, palette)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_family_grid_vectorized_matches_reference(family):
    g = FAMILIES[family]()
    lists, space = fk24_lists(g, defect=1, slack=1, seed=9)
    ref, _m1, _p1 = run_fk24(g, lists=lists, space_size=space, defect=1)
    vec, _m2, _p2 = fk24_vectorized(g, lists=lists, space_size=space, defect=1)
    assert ref.assignment == vec.assignment


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.data_too_large],
)
@given(
    n=st.integers(2, 28),
    p=st.floats(0.05, 0.6),
    defect=st.integers(0, 3),
    slack=st.integers(0, 2),
    seed=st.integers(0, 10**6),
)
def test_random_instances_satisfy_both_oracles(n, p, defect, slack, seed):
    """List-validity and defect-budget oracles on random instances.

    Lists are the minimal ``floor(deg/(d+1)) + 1`` size plus ``slack``,
    drawn from a shuffled color space — the regime where both the list
    membership and the budget constraint actually bind.
    """
    g = gnp(n, p, seed=seed % 997)
    lists, space = fk24_lists(g, defect=defect, slack=slack, seed=seed)
    result, _metrics, palette = run_fk24(
        g, lists=lists, space_size=space, defect=defect
    )
    _assert_valid(g, lists, space, defect, result, palette)
    # list membership, stated directly as well (not only via the report)
    for v, c in result.assignment.items():
        assert c in lists[v]


@settings(max_examples=50, deadline=None)
@given(deg=st.integers(0, 500), defect=st.integers(0, 20))
def test_list_size_bound(deg, defect):
    size = fk24_list_size(deg, defect)
    assert size == deg // (defect + 1) + 1
    assert size >= 1
    # more defect budget never needs longer lists
    assert fk24_list_size(deg, defect + 1) <= size


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 20),
    defect=st.integers(0, 3),
    seed=st.integers(0, 10**6),
)
def test_generated_lists_meet_the_size_floor(n, defect, seed):
    g = gnp(n, 0.4, seed=seed % 997)
    lists, space = fk24_lists(g, defect=defect, seed=seed)
    degrees = dict(g.degree)
    for v, lst in lists.items():
        assert len(lst) == len(set(lst))
        assert len(lst) >= fk24_list_size(degrees[v], defect)
        assert all(0 <= x < space for x in lst)
    budget = fk24_round_budget(lists.values(), g.number_of_nodes())
    assert budget == sum(len(lst) for lst in lists.values()) + 2 * n + 4


# ----------------------------------------------------------------------
# tri-engine equality, down to per-round obs rows
# ----------------------------------------------------------------------
def _accounting_equal(ref_record, vec_record):
    report = compare_round_accounting(ref_record, vec_record)
    return (
        report["rounds_equal"]
        and report["accounting_equal"]
        and report["faults_equal"]
        and report["totals_equal"]
    ), report


@pytest.mark.parametrize("family", ["ring", "gnp", "regular", "hub"])
def test_tri_engine_equality(family):
    g = FAMILIES[family]()
    lists, space = fk24_lists(g, defect=1, slack=1, seed=23)

    ref_rec, vec_rec = RunRecorder(), RunRecorder()
    ref_adopt, vec_adopt = {}, {}
    ref, ref_m, ref_p = run_fk24(
        g, lists=lists, space_size=space, defect=1,
        recorder=ref_rec, adoption_out=ref_adopt,
    )
    vec, vec_m, vec_p = fk24_vectorized(
        g, lists=lists, space_size=space, defect=1,
        recorder=vec_rec, adoption_out=vec_adopt,
    )
    assert ref.assignment == vec.assignment
    assert ref_adopt == vec_adopt
    assert ref_p == vec_p
    assert ref_m.summary() == vec_m.summary()
    equal, report = _accounting_equal(ref_rec.record, vec_rec.record)
    assert equal, report

    # batched twin: the same instance inside a heterogeneous group
    other = FAMILIES["path"]()
    other_lists, other_space = fk24_lists(other, defect=2, slack=0, seed=24)
    batch_recs = [RunRecorder(), RunRecorder()]
    (b_res, b_m, b_p), _other = fk24_vectorized_batch(
        [g, other],
        lists=[lists, other_lists],
        space_size=[space, other_space],
        defect=[1, 2],
        recorders=batch_recs,
    )
    assert b_res.assignment == ref.assignment
    assert b_p == ref_p
    assert b_m.summary() == ref_m.summary()
    equal, report = _accounting_equal(ref_rec.record, batch_recs[0].record)
    assert equal, report


def test_orientation_priorities_match_adoption_rounds():
    g = FAMILIES["gnp"]()
    lists, space = fk24_lists(g, defect=2, slack=1, seed=31)
    adoption = {}
    result, _m, _p = run_fk24(
        g, lists=lists, space_size=space, defect=2, adoption_out=adoption
    )
    assert set(adoption) == set(g.nodes)
    ori = result.orientation
    assert ori is not None
    for u, v in g.edges:
        assert ori.is_oriented(u, v)
        if result.assignment[u] == result.assignment[v]:
            # monochromatic edges point from later adopters to earlier
            src = u if ori.points_from(u, v) else v
            dst = v if src == u else u
            assert (adoption[src], src) > (adoption[dst], dst) or (
                adoption[src] == adoption[dst] and src > dst
            )


# ----------------------------------------------------------------------
# fault battery: both engines, identical outcome — success or halt
# ----------------------------------------------------------------------
FAULT_PLANS = {
    "drop": FaultPlan(seed=11, p_drop=0.25),
    "corrupt": FaultPlan(seed=12, p_corrupt=0.2, corrupt_space=40),
    "crash-recover": FaultPlan(
        seed=13, p_crash=0.1, crash_horizon=6, recovery_rounds=2
    ),
    "crash-stop": FaultPlan(
        seed=14, p_crash=0.6, crash_horizon=2, recovery_rounds=None
    ),
    "mixed": FaultPlan(
        seed=15, p_drop=0.15, p_corrupt=0.1, corrupt_space=25,
        p_crash=0.05, crash_horizon=4, recovery_rounds=3,
    ),
}


def _run_faulty(runner, g, lists, space, plan):
    recorder = RunRecorder()
    adoption = {}
    try:
        result, metrics, palette = runner(
            g, lists=lists, space_size=space, defect=1,
            recorder=recorder, faults=plan, adoption_out=adoption,
        )
    except HaltingError as exc:
        halt = (int(exc.rounds), tuple(sorted(exc.unfinished)))
        return {"halt": halt, "record": recorder.record}
    return {
        "halt": None,
        "assignment": result.assignment,
        "adoption": adoption,
        "palette": palette,
        "summary": metrics.summary(),
        "record": recorder.record,
    }


@pytest.mark.parametrize("family", ["ring", "gnp", "regular"])
@pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
def test_fault_battery_engines_agree(plan_name, family):
    g = FAMILIES[family]()
    plan = FAULT_PLANS[plan_name]
    lists, space = fk24_lists(g, defect=1, slack=1, seed=37)
    ref = _run_faulty(run_fk24, g, lists, space, plan)
    vec = _run_faulty(fk24_vectorized, g, lists, space, plan)
    assert ref["halt"] == vec["halt"]
    if ref["halt"] is None:
        assert ref["assignment"] == vec["assignment"]
        assert ref["adoption"] == vec["adoption"]
        assert ref["palette"] == vec["palette"]
        assert ref["summary"] == vec["summary"]
    equal, report = _accounting_equal(ref["record"], vec["record"])
    assert equal, report


def test_crash_stop_livelock_halts_both_engines_identically():
    """A crash-stop majority must livelock fk24 on *both* engines.

    Crashed nodes never announce, so their neighbors' knowledge stops
    growing and the round budget runs out: the reference simulator and
    the vectorized kernel must raise the same
    :class:`~repro.sim.node.HaltingError` — same round count, same
    unfinished set.
    """
    g = FAMILIES["regular"]()
    plan = FaultPlan(seed=99, p_crash=0.9, crash_horizon=1, recovery_rounds=None)
    lists, space = fk24_lists(g, defect=1, seed=41)
    ref = _run_faulty(run_fk24, g, lists, space, plan)
    vec = _run_faulty(fk24_vectorized, g, lists, space, plan)
    assert ref["halt"] is not None, "plan did not livelock the protocol"
    assert ref["halt"] == vec["halt"]
    equal, report = _accounting_equal(ref["record"], vec["record"])
    assert equal, report

    # the batched engine reports the same halt as a HaltingError result
    outs = fk24_vectorized_batch(
        [g],
        lists=[lists],
        space_size=[space],
        defect=[1],
        faults=[plan],
        return_exceptions=True,
    )
    assert isinstance(outs[0], HaltingError)
    assert (int(outs[0].rounds), tuple(sorted(outs[0].unfinished))) == ref["halt"]


def test_faulty_batch_matches_per_instance_runs():
    gs = [FAMILIES["ring"](), FAMILIES["gnp"]()]
    plans = [FAULT_PLANS["drop"], FAULT_PLANS["corrupt"]]
    cfgs = [fk24_lists(g, defect=1, slack=1, seed=43 + i) for i, g in enumerate(gs)]
    singles = [
        _run_faulty(fk24_vectorized, g, lists, space, plan)
        for g, (lists, space), plan in zip(gs, cfgs, plans)
    ]
    recs = [RunRecorder(), RunRecorder()]
    outs = fk24_vectorized_batch(
        gs,
        lists=[c[0] for c in cfgs],
        space_size=[c[1] for c in cfgs],
        defect=[1, 1],
        faults=plans,
        recorders=recs,
        return_exceptions=True,
    )
    for single, out, rec in zip(singles, outs, recs):
        if single["halt"] is not None:
            assert isinstance(out, HaltingError)
            assert (int(out.rounds), tuple(sorted(out.unfinished))) == single["halt"]
        else:
            res, metrics, palette = out
            assert res.assignment == single["assignment"]
            assert palette == single["palette"]
            assert metrics.summary() == single["summary"]
        equal, report = _accounting_equal(single["record"], rec.record)
        assert equal, report
