"""Algorithms under adversarial instances (core.adversarial builders)."""

import random

import pytest

from repro.core.adversarial import (
    concentrated_subspace_instance,
    crown_conflict_instance,
    minimal_budget_instance,
    same_list_clique,
    skewed_defect_instance,
)
from repro.core.conditions import ldc_exists_condition
from repro.core.validate import validate_arbdefective, validate_ldc, validate_oldc
from repro.graphs import gnp, ring
from repro.algorithms import (
    run_linial,
    solve_ldc_potential,
    solve_list_arbdefective,
    solve_with_reduction,
    solve_oldc_main,
)


class TestSameListClique:
    def test_boundary_infeasible(self):
        # c(d+1) == n-1: Eq (1) fails
        inst = same_list_clique(9, colors=4, defect=1)
        assert not ldc_exists_condition(inst)

    def test_one_above_boundary_solved(self):
        inst = same_list_clique(9, colors=5, defect=1)
        assert ldc_exists_condition(inst)
        res = solve_ldc_potential(inst)
        validate_ldc(inst, res).raise_if_invalid()


class TestConcentratedSubspace:
    def test_reduction_survives_concentration(self):
        rng = random.Random(3)
        g = gnp(30, 0.2, seed=4)
        from repro.graphs import random_low_outdegree_digraph
        from repro.core.instance import ListDefectiveInstance

        dg = random_low_outdegree_digraph(g, seed=5)
        beta = max(max(1, dg.out_degree(v)) for v in dg.nodes)
        # list density ~50% of the populated part: concentrated but within
        # the solver's measured feasibility frontier (see E07)
        und = concentrated_subspace_instance(
            g,
            parts=4,
            part_index=2,
            list_size=30 * beta * beta,
            defect=2,
            space_size=4 * 60 * beta * beta,
            rng=rng,
        )
        inst = ListDefectiveInstance(dg, und.space, und.lists, und.defects)
        pre, _m, _p = run_linial(g)

        def base(instance, init):
            return solve_oldc_main(instance, init)

        res, _metrics, rep = solve_with_reduction(inst, pre.assignment, base, p=4)
        validate_oldc(inst, res).raise_if_invalid()
        # every node must have landed in the one populated part
        assert rep.levels >= 2

    def test_list_size_bound(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            concentrated_subspace_instance(
                ring(5), parts=4, part_index=0, list_size=100,
                defect=0, space_size=40, rng=rng,
            )


class TestSkewedDefects:
    def test_thm13_on_skew(self):
        g = gnp(24, 0.3, seed=7)
        delta = max(d for _, d in g.degree)
        inst = skewed_defect_instance(g, heavy_defect=delta, zero_colors=2)
        assert ldc_exists_condition(inst)
        res, _m, _rep = solve_list_arbdefective(inst)
        validate_arbdefective(inst, res).raise_if_invalid()

    def test_sequential_on_skew(self):
        g = ring(10)
        inst = skewed_defect_instance(g, heavy_defect=2, zero_colors=1)
        res = solve_ldc_potential(inst)
        validate_ldc(inst, res).raise_if_invalid()


class TestCrown:
    def test_two_colors_suffice(self):
        inst = crown_conflict_instance(side=6, list_size=2)
        # feasible: 2-color by side — the sequential greedy in side order
        from repro.algorithms import greedy_list_coloring

        order = sorted(inst.graph.nodes)
        res = greedy_list_coloring(inst, order)
        validate_ldc(inst, res).raise_if_invalid()

    def test_thm13_crown_with_enough_colors(self):
        # (degree+1) lists: side+1 colors shared by everyone
        inst = crown_conflict_instance(side=5, list_size=6)
        res, _m, _rep = solve_list_arbdefective(inst)
        validate_ldc(inst, res).raise_if_invalid()


class TestMinimalBudget:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_zero_slack_instances_solved(self, seed):
        rng = random.Random(seed)
        g = gnp(20, 0.3, seed=seed)
        inst = minimal_budget_instance(g, rng)
        # exactly deg+1 budget: Eq (1) holds with zero slack
        assert ldc_exists_condition(inst)
        for v in g.nodes:
            assert sum(d + 1 for d in inst.defects[v].values()) == g.degree(v) + 1
        res, _m, _rep = solve_list_arbdefective(inst)
        validate_arbdefective(inst, res).raise_if_invalid()

    def test_sequential_on_zero_slack(self):
        rng = random.Random(11)
        g = gnp(16, 0.4, seed=11)
        inst = minimal_budget_instance(g, rng)
        res = solve_ldc_potential(inst)
        validate_ldc(inst, res).raise_if_invalid()
