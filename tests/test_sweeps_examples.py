"""Tests for the sweep utility and the runnable-example deliverable.

The example scripts are a stated deliverable; `TestExamplesRun` executes
each one in a subprocess so a regression in any public API they touch
fails the suite, not just a user's afternoon.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.sweeps import sweep

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


class TestSweep:
    def test_collects_samples_per_seed(self):
        result = sweep([1, 2, 4], lambda x, seed: x * 10 + seed, seeds=[0, 1])
        assert result.complete()
        assert result.points[0].samples == [10.0, 11.0]
        assert result.points[2].mean == pytest.approx(40.5)
        assert result.points[1].lo == 20.0 and result.points[1].hi == 21.0

    def test_errors_captured_not_raised(self):
        def flaky(x, seed):
            if x == 2:
                raise RuntimeError("boom")
            return x

        result = sweep([1, 2, 3], flaky)
        assert not result.complete()
        assert result.points[1].errors == ["RuntimeError: boom"]
        assert result.points[0].ok and result.points[2].ok

    def test_fit_through_means(self):
        result = sweep([1, 2, 4, 8], lambda x, s: 3 * x**2)
        fit = result.fit()
        assert fit.exponent == pytest.approx(2.0)
        assert fit.prefactor == pytest.approx(3.0)

    def test_fit_skips_failed_points(self):
        def partial(x, seed):
            if x == 2:
                raise ValueError("no")
            return x**0.5

        result = sweep([1, 2, 4, 16], partial)
        fit = result.fit()
        assert fit.exponent == pytest.approx(0.5, abs=0.01)

    def test_real_pipeline_sweep(self):
        from repro.algorithms import congest_delta_plus_one
        from repro.graphs import random_regular

        def rounds_at(delta, seed):
            g = random_regular(max(6 * int(delta), 64), int(delta), seed=seed)
            _res, metrics, _rep = congest_delta_plus_one(g)
            return metrics.rounds

        result = sweep([4, 8, 16], rounds_at, seeds=[71])
        assert result.complete()
        assert result.means() == sorted(result.means())  # rounds grow


def _example_ids():
    return [p.stem for p in EXAMPLES]


class TestExamplesRun:
    def test_all_examples_present(self):
        assert len(EXAMPLES) >= 10

    @pytest.mark.parametrize("stem", _example_ids())
    def test_example_runs_clean(self, stem):
        path = REPO / "examples" / f"{stem}.py"
        proc = subprocess.run(
            [sys.executable, str(path)],
            capture_output=True,
            text=True,
            timeout=600,
            cwd=REPO,
        )
        assert proc.returncode == 0, (
            f"{stem} failed:\n{proc.stdout[-800:]}\n{proc.stderr[-800:]}"
        )
        assert proc.stdout.strip(), f"{stem} printed nothing"
        for bad in ("valid=False", "valid: False", "FAILED"):
            assert bad not in proc.stdout, f"{stem} reported invalid output"
