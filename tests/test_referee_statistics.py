"""Tests for the referee wrapper and coloring statistics."""

import pytest

from repro.core import ColorSpace, degree_plus_one_instance, uniform_instance
from repro.core.coloring import ColoringResult
from repro.core.statistics import (
    balance,
    budget_use,
    color_histogram,
    defect_histogram,
    monochromatic_edges,
)
from repro.graphs import gnp, ring, random_regular
from repro.sim import DistributedAlgorithm, Message, SyncNetwork
from repro.sim.referee import RefereeViolation, RefereedAlgorithm


class TestRefereeOnRealAlgorithms:
    """Our own DistributedAlgorithm classes must satisfy the protocol."""

    def test_linial_refereed(self):
        from repro.algorithms.linial import (
            LinialColoringAlgorithm,
            linial_schedule,
        )

        g = ring(400)
        sched = linial_schedule(400, 2)
        net = SyncNetwork(g)
        inputs = {v: {"color": v} for v in g.nodes}
        net.run(
            RefereedAlgorithm(LinialColoringAlgorithm()),
            inputs,
            shared={"schedule": sched, "m0": 400},
            max_rounds=len(sched) + 1,
        )

    def test_randomized_refereed(self):
        from repro.algorithms.baselines import RandomizedListColoring

        g = gnp(30, 0.3, seed=41)
        inst = degree_plus_one_instance(g)
        net = SyncNetwork(g)
        inputs = {v: {"palette": inst.lists[v], "seed": 7} for v in g.nodes}
        net.run(
            RefereedAlgorithm(RandomizedListColoring()),
            inputs,
            shared={"space_size": inst.space.size},
        )

    def test_mis_refereed(self):
        from repro.algorithms.mis import LubyMIS

        g = gnp(30, 0.3, seed=43)
        net = SyncNetwork(g)
        net.run(
            RefereedAlgorithm(LubyMIS()),
            {v: {"seed": 3} for v in g.nodes},
        )


class TestRefereeCatchesBadBehavior:
    def test_unhalting_node_flagged(self):
        class Flaky(DistributedAlgorithm):
            def init_state(self, view):
                return {"r": 0}

            def is_done(self, view, state):
                state["r"] += 1
                return state["r"] % 2 == 1  # oscillates

        # The simulator stops polling a node once it halts, so drive the
        # referee directly to observe the oscillation.
        from repro.sim.node import NodeView

        algo = RefereedAlgorithm(Flaky())
        view = NodeView(0, (), (), (), {}, {})
        state = algo.init_state(view)
        assert algo.is_done(view, state)  # r=1: done
        with pytest.raises(RefereeViolation):
            algo.is_done(view, state)  # r=2: un-halts

    def test_send_after_done_flagged(self):
        class Chatty(DistributedAlgorithm):
            def init_state(self, view):
                return {}

            def send(self, view, state, rnd):
                return {view.neighbors[0]: Message(0, bits=1)}

            def is_done(self, view, state):
                return True

        # done at init, but the simulator never calls send for inactive
        # nodes — drive the referee directly to pin the contract
        algo = RefereedAlgorithm(Chatty())
        from repro.sim.node import NodeView

        view = NodeView(0, (1,), (1,), (1,), {}, {})
        algo.init_state(view)
        assert algo.is_done(view, {})
        with pytest.raises(RefereeViolation):
            algo.send(view, {}, 0)

    def test_negative_round_flagged(self):
        class Quiet(DistributedAlgorithm):
            def init_state(self, view):
                return {}

            def is_done(self, view, state):
                return False

        from repro.sim.node import NodeView

        algo = RefereedAlgorithm(Quiet())
        view = NodeView(0, (1,), (1,), (1,), {}, {})
        algo.init_state(view)
        with pytest.raises(RefereeViolation, match="negative round"):
            algo.send(view, {}, -1)

    def test_nonpositive_size_message_flagged(self):
        # Message(bits=...) rejects declared sizes < 1 at construction, but
        # an undeclared empty-string payload estimates to 0 bits — the audit
        # must catch it at send time.
        class Whisper(DistributedAlgorithm):
            def init_state(self, view):
                return {}

            def send(self, view, state, rnd):
                return {view.neighbors[0]: Message("")}

            def is_done(self, view, state):
                return False

        from repro.sim.node import NodeView

        algo = RefereedAlgorithm(Whisper())
        view = NodeView(0, (1,), (1,), (1,), {}, {})
        algo.init_state(view)
        with pytest.raises(RefereeViolation, match="non-positive-size"):
            algo.send(view, {}, 0)

    def test_size_audit_runs_on_done_branch_too(self):
        # A done node emitting a zero-size message must surface the size
        # violation even though sent-after-done would also fire: the audit
        # is ordered before the done check so neither masks the other.
        class DoneWhisper(DistributedAlgorithm):
            def init_state(self, view):
                return {}

            def send(self, view, state, rnd):
                return {view.neighbors[0]: Message("")}

            def is_done(self, view, state):
                return True

        from repro.sim.node import NodeView

        algo = RefereedAlgorithm(DoneWhisper())
        view = NodeView(0, (1,), (1,), (1,), {}, {})
        algo.init_state(view)
        assert algo.is_done(view, {})
        with pytest.raises(RefereeViolation, match="non-positive-size"):
            algo.send(view, {}, 0)


class TestStatistics:
    def make(self):
        g = ring(6)
        inst = uniform_instance(g, ColorSpace(3), range(3), 1)
        res = ColoringResult({0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2})
        return g, inst, res

    def test_color_histogram(self):
        _g, _inst, res = self.make()
        assert color_histogram(res) == {0: 2, 1: 2, 2: 2}

    def test_balance_perfect(self):
        _g, _inst, res = self.make()
        assert balance(res) == pytest.approx(1.0)
        assert balance(ColoringResult({})) == 1.0

    def test_defect_histogram(self):
        g, inst, res = self.make()
        hist = defect_histogram(inst, res)
        # adjacent pairs share colors: nodes 0-1, 2-3, 4-5 each see 1
        assert hist == {1: 6}

    def test_budget_use(self):
        g, inst, res = self.make()
        use = budget_use(inst, res)
        assert use.total_budget == 6
        assert use.total_realized == 6
        assert use.utilization == pytest.approx(1.0)
        assert use.max_realized == 1

    def test_monochromatic_edges(self):
        g, _inst, res = self.make()
        assert monochromatic_edges(g, res) == 3

    def test_on_real_run(self):
        from repro.algorithms import congest_delta_plus_one

        g = random_regular(48, 6, seed=45)
        res, _m, _rep = congest_delta_plus_one(g)
        inst = degree_plus_one_instance(g)
        assert monochromatic_edges(g, res) == 0
        use = budget_use(inst, res)
        assert use.total_realized == 0  # proper coloring spends no budget
        assert balance(res) >= 1.0
