"""Tests for the main OLDC algorithm (Theorem 1.1 / Lemmas 3.7-3.8)."""


import pytest

from repro.analysis.bounds import theorem_1_1_message_bits
from repro.core.validate import validate_oldc
from repro.algorithms.oldc_main import _bucket_lists, _pow2_ceil, _pow2_floor, solve_oldc_main

from .test_oldc_basic import make_oldc_instance


class TestHelpers:
    def test_pow2_floor(self):
        assert _pow2_floor(1) == 1
        assert _pow2_floor(7) == 4
        assert _pow2_floor(8) == 8

    def test_pow2_ceil(self):
        assert _pow2_ceil(1) == 1
        assert _pow2_ceil(5) == 8
        assert _pow2_ceil(8) == 8

    def test_bucket_lists_groups_by_defect(self):
        _g, inst, _init = make_oldc_instance(n=20, seed=31)
        v = next(iter(inst.graph.nodes))
        buckets, common = _bucket_lists(inst, v, h=8)
        assert set(x for cols in buckets.values() for x in cols) == set(inst.lists[v])
        for mu, cols in buckets.items():
            assert mu in common
            # common defect is the min rounded defect of the bucket
            assert all(common[mu] <= inst.defects[v][x] for x in cols)


class TestSolveMain:
    def test_valid_on_random_digraph(self):
        _g, inst, init = make_oldc_instance(seed=11)
        res, metrics, report = solve_oldc_main(inst, init)
        validate_oldc(inst, res).raise_if_invalid()
        assert report.guarantee_met

    def test_rounds_o_log_beta(self):
        _g, inst, init = make_oldc_instance(seed=13)
        _res, metrics, report = solve_oldc_main(inst, init)
        beta = inst.max_outdegree
        # aux run (O(h') rounds) + main run (3h + O(1)); h = O(log beta)
        assert metrics.rounds <= 12 * max(1, beta).bit_length() + 16

    def test_message_bits_within_formula(self):
        _g, inst, init = make_oldc_instance(seed=17)
        _res, metrics, _report = solve_oldc_main(inst, init)
        bound = theorem_1_1_message_bits(
            inst.space.size, inst.max_list_size, inst.max_outdegree, inst.n
        )
        assert metrics.max_message_bits <= 4 * bound + 64

    def test_requires_directed(self):
        from repro.core import ColorSpace
        from repro.core.instance import uniform_instance
        from repro.graphs import ring

        inst = uniform_instance(ring(5), ColorSpace(3), range(3), 0)
        with pytest.raises(ValueError):
            solve_oldc_main(inst, {v: v for v in range(5)})

    def test_deterministic(self):
        _g, inst, init = make_oldc_instance(seed=19)
        a = solve_oldc_main(inst, init)[0].assignment
        b = solve_oldc_main(inst, init)[0].assignment
        assert a == b

    def test_report_classes_assigned(self):
        _g, inst, init = make_oldc_instance(seed=23)
        _res, _metrics, report = solve_oldc_main(inst, init)
        assert set(report.class_of) == set(inst.graph.nodes)
        assert all(1 <= i <= report.h for i in report.class_of.values())

    def test_zero_defect_instance_case_ii(self):
        # a uniform zero-defect instance puts every node in Case II
        import random

        from repro.core import ColorSpace, ListDefectiveInstance
        from repro.graphs import gnp, random_low_outdegree_digraph
        from repro.algorithms.linial import run_linial

        g = gnp(40, 0.15, seed=41)
        dg = random_low_outdegree_digraph(g, seed=42)
        beta = max(max(1, dg.out_degree(v)) for v in dg.nodes)
        size = 40 * beta * beta + 64
        rng = random.Random(43)
        space = ColorSpace(size)
        lists = {
            v: tuple(sorted(rng.sample(range(size), 30 * beta * beta)))
            for v in dg.nodes
        }
        defects = {v: {x: 0 for x in lists[v]} for v in dg.nodes}
        inst = ListDefectiveInstance(dg, space, lists, defects)
        pre, _m, _p = run_linial(g)
        res, _metrics, report = solve_oldc_main(inst, pre.assignment)
        assert report.case_ii_nodes == inst.n
        validate_oldc(inst, res).raise_if_invalid()

    def test_empty_graph(self):
        import networkx as nx

        from repro.core import ColorSpace, ListDefectiveInstance

        inst = ListDefectiveInstance(nx.DiGraph(), ColorSpace(4), {}, {})
        res, metrics, _report = solve_oldc_main(inst, {})
        assert res.assignment == {}
        assert metrics.rounds == 0
