"""Targeted coverage of Lemma 3.8's Case I (all lambda_{v,mu} < 1/4).

Case I fires only when a node's defect-weight is spread over at least
five buckets, none holding a quarter of the total — uniform-defect
instances never get there.  These tests build such instances explicitly
and check both the bookkeeping (some nodes really are in Case I) and the
end-to-end validity of the Theorem 1.1 run on them.
"""

import random

import pytest

from repro.core import ColorSpace, ListDefectiveInstance
from repro.core.validate import validate_oldc
from repro.graphs import gnp, random_low_outdegree_digraph
from repro.algorithms.linial import run_linial
from repro.algorithms.oldc_main import solve_oldc_main


def spread_defect_instance(n=40, seed=217):
    """Every node's budget is split evenly over its full bucket range
    (d+1 in {1, 2, ..., beta_hat_v}), so high-outdegree nodes (beta_hat >=
    16, i.e. >= 5 buckets) have every lambda ~ 1/#buckets < 1/4 — Case I.

    A dense G(n, 1/2) digraph guarantees such nodes exist."""
    rng = random.Random(seed)
    g = gnp(n, 0.5, seed=seed + 1)
    dg = random_low_outdegree_digraph(g, seed=seed + 2)
    beta = max(max(1, dg.out_degree(v)) for v in dg.nodes)
    space = ColorSpace(80 * beta * beta + 4096)
    colors_pool = list(space.colors())
    lists, defects = {}, {}
    for v in dg.nodes:
        bv = max(1, dg.out_degree(v))
        beta_hat = 1 << max(0, (bv - 1).bit_length())
        target = 10.0 * bv * bv  # per-bucket weight
        lst, dv = [], {}
        cursor = 0
        pool = rng.sample(colors_pool, len(colors_pool))
        dp1 = 1
        while dp1 <= beta_hat:
            count = max(1, int(target / (dp1 * dp1)))
            for _ in range(count):
                x = pool[cursor]
                cursor += 1
                lst.append(x)
                dv[x] = dp1 - 1
            dp1 *= 2
        lists[v] = tuple(sorted(lst))
        defects[v] = dv
    inst = ListDefectiveInstance(dg, space, lists, defects)
    pre, _m, _p = run_linial(g)
    return g, inst, pre.assignment


class TestCaseI:
    def test_case_i_actually_fires(self):
        _g, inst, init = spread_defect_instance()
        _res, _m, rep = solve_oldc_main(inst, init)
        assert rep.case_ii_nodes < inst.n, (
            "instance was meant to exercise Case I but every node "
            "fell into Case II"
        )

    def test_case_i_output_valid(self):
        _g, inst, init = spread_defect_instance()
        res, _m, _rep = solve_oldc_main(inst, init)
        validate_oldc(inst, res).raise_if_invalid()

    def test_case_i_deterministic(self):
        _g, inst, init = spread_defect_instance()
        a = solve_oldc_main(inst, init)[0].assignment
        b = solve_oldc_main(inst, init)[0].assignment
        assert a == b

    @pytest.mark.parametrize("seed", [300, 301, 302])
    def test_case_i_across_seeds(self, seed):
        _g, inst, init = spread_defect_instance(seed=seed)
        res, _m, rep = solve_oldc_main(inst, init)
        validate_oldc(inst, res).raise_if_invalid()

    def test_classes_cover_full_range(self):
        """Case I nodes should land in varied gamma-classes (the whole
        point of the f_v(mu) = mu - r + 2 map)."""
        _g, inst, init = spread_defect_instance(n=60, seed=219)
        _res, _m, rep = solve_oldc_main(inst, init)
        distinct = set(rep.class_of.values())
        assert len(distinct) >= 2
