"""Tests for the domain scenarios (repro.scenarios)."""

import pytest

from repro.graphs import gnp, hub_and_fringe, torus
from repro.scenarios import FrequencyConfig, TDMAConfig
from repro.scenarios.frequency import plan
from repro.scenarios.tdma import build_instance as tdma_instance, schedule


class TestTDMA:
    def test_torus_schedule_valid(self):
        result = schedule(torus(6, 6), TDMAConfig(seed=5))
        assert result.valid
        assert result.max_interferers <= 1
        assert result.slots_used >= 3  # 4-regular torus needs >= 3 slots

    def test_capture_disabled_means_zero_interferers(self):
        cfg = TDMAConfig(capture_every=0, seed=6)
        result = schedule(torus(5, 5), cfg)
        assert result.valid
        assert result.max_interferers == 0

    def test_busiest_slot_consistent(self):
        result = schedule(torus(5, 5), TDMAConfig(seed=7))
        slot, count = result.busiest_slot
        assert len(result.radios_in_slot(slot)) == count
        assert count >= 1

    def test_frame_too_short_rejected(self):
        cfg = TDMAConfig(frame_slots=4, seed=8)
        with pytest.raises(ValueError):
            schedule(torus(5, 5), cfg)

    def test_instance_defect_pattern(self):
        cfg = TDMAConfig(capture_every=3, capture_defect=2, seed=9)
        inst = tdma_instance(torus(4, 4), cfg)
        for v in inst.graph.nodes:
            for s, d in inst.defects[v].items():
                assert d == (2 if s % 3 == 0 else 0)

    def test_deterministic(self):
        a = schedule(torus(5, 5), TDMAConfig(seed=10)).slots
        b = schedule(torus(5, 5), TDMAConfig(seed=10)).slots
        assert a == b


class TestFrequency:
    def topo(self):
        return hub_and_fringe(hub_degree=12, fringe_cliques=4, clique_size=4)

    def test_distributed_plan_valid(self):
        result = plan(self.topo(), hubs={0}, config=FrequencyConfig(seed=11))
        assert result.valid
        assert result.hub_co_channel <= FrequencyConfig().hub_defect

    def test_sequential_plan_valid(self):
        result = plan(
            self.topo(), hubs={0}, config=FrequencyConfig(seed=12), sequential=True
        )
        assert result.valid
        assert result.metrics.rounds == 0  # sequential: no communication

    def test_audit_reports_conditions(self):
        result = plan(self.topo(), hubs={0}, config=FrequencyConfig(seed=13))
        assert result.audit.eq1_ldc_exists
        assert result.audit.eq2_arbdefective_exists

    def test_hub_budget_scales_with_degree(self):
        # a hub of degree 30 with defect 5 needs at least 5 channels
        from repro.scenarios.frequency import build_instance

        g = hub_and_fringe(hub_degree=30, fringe_cliques=10, clique_size=3)
        inst = build_instance(g, {0}, FrequencyConfig(seed=14))
        assert len(inst.lists[0]) >= -(-31 // 6)

    def test_no_hubs_degenerates_to_list_coloring(self):
        g = gnp(20, 0.25, seed=15)
        result = plan(g, hubs=set(), config=FrequencyConfig(seed=16))
        assert result.valid


class TestTimetable:
    def enrollments(self, seed=21):
        from repro.scenarios import random_enrollments

        return random_enrollments(students=60, exams=15, per_student=3, seed=seed)

    def test_conflict_graph_structure(self):
        from repro.scenarios import conflict_graph

        enr = {0: [1, 2], 1: [2, 3], 2: [4]}
        g = conflict_graph(enr)
        assert g.has_edge(1, 2) and g.has_edge(2, 3)
        assert not g.has_edge(1, 3)
        assert 4 in g.nodes and g.degree(4) == 0

    def test_schedule_valid(self):
        from repro.scenarios import TimetableConfig, timetable

        tt = timetable(self.enrollments(), TimetableConfig(slots=24, seed=22))
        assert tt.valid
        assert tt.max_clashes <= 1
        assert sum(tt.per_slot_load.values()) == len(tt.slot_of)

    def test_big_exams_get_zero_defect(self):
        from repro.scenarios import TimetableConfig, conflict_graph
        from repro.scenarios.timetable import build_instance

        g = conflict_graph(self.enrollments())
        inst = build_instance(g, TimetableConfig(slots=24, seed=23))
        degrees = sorted(d for _, d in g.degree)
        cutoff = degrees[int(0.8 * len(degrees))]
        for exam in g.nodes:
            expected = 0 if g.degree(exam) >= cutoff else 1
            assert all(d == expected for d in inst.defects[exam].values())

    def test_too_few_slots_rejected(self):
        from repro.scenarios import TimetableConfig, timetable

        with pytest.raises(ValueError):
            timetable(self.enrollments(), TimetableConfig(slots=3, seed=24))

    def test_enrollments_deterministic(self):
        from repro.scenarios import random_enrollments

        a = random_enrollments(20, 8, 3, seed=5)
        b = random_enrollments(20, 8, 3, seed=5)
        assert a == b
