"""The differential fuzz harness: generator, runner, shrinker, corpus.

The mutation tests are the subsystem's own acceptance criteria: a
deliberately injected engine divergence must be *caught* by
``run_case``, *shrunk* to a tiny instance, and *serialized* into a
corpus entry that replays green once the (injected) bug is gone.
"""

import dataclasses
import json

import pytest

from repro.fuzz import (
    ENGINE_PAIRS,
    FuzzCase,
    case_filename,
    fuzz_run,
    generate_case,
    load_case,
    load_corpus,
    pair_names,
    replay_corpus,
    run_case,
    save_case,
    shrink_case,
)
from repro.fuzz.differential import EngineRun
from repro.fuzz.generator import GENERATABLE_PAIRS
from repro.fuzz.shrink import default_predicate


class TestGenerator:
    def test_deterministic(self):
        for seed in ("0:0:linial", "3:9:greedy", 42):
            a, b = generate_case(seed), generate_case(seed)
            assert a.to_dict() == b.to_dict()

    def test_seeds_diversify(self):
        dicts = {json.dumps(generate_case(s).to_dict(), sort_keys=True)
                 for s in range(20)}
        assert len(dicts) > 10

    def test_cases_valid_across_pairs_and_seeds(self):
        for pair in pair_names():
            for seed in range(15):
                case = generate_case(f"{seed}:0:{pair}", pair=pair)
                case.check_valid()  # raises on inconsistency
                assert case.pair == pair
                assert case.n >= 1

    def test_covers_unsorted_noncontiguous_labels(self):
        shuffled = 0
        for seed in range(40):
            case = generate_case(f"lbl:{seed}", pair="linial")
            labels = case.nodes
            if sorted(labels) != list(range(len(labels))):
                shuffled += 1
        assert shuffled > 10  # label regimes beyond 0..n-1 are actually hit

    def test_generatable_pairs_match_registry(self):
        assert set(GENERATABLE_PAIRS) == set(ENGINE_PAIRS)

    def test_unknown_pair_rejected(self):
        with pytest.raises(ValueError, match="unknown pair"):
            generate_case(0, pair="nope")


class TestDifferentialGreen:
    """The real engines pass the differential check across the space."""

    @pytest.mark.parametrize("pair", sorted(ENGINE_PAIRS))
    def test_pairs_green_on_seed_range(self, pair):
        for seed in range(6):
            case = generate_case(f"green:{seed}:{pair}", pair=pair)
            outcome = run_case(case)
            assert outcome.ok, outcome.describe()

    def test_accounting_populated_for_recorded_pairs(self):
        case = generate_case("acct:0", pair="linial")
        outcome = run_case(case)
        assert outcome.accounting is not None
        assert outcome.accounting["accounting_equal"]
        assert outcome.reference.record.engine == "reference"
        assert outcome.vectorized.record.engine == "vectorized"

    def test_unknown_pair_rejected(self):
        case = generate_case("x:0", pair="linial").replace(pair="bogus")
        with pytest.raises(KeyError, match="bogus"):
            run_case(case)


def _broken_registry(pair_name, mutate):
    """Registry with one pair's vectorized side wrapped by ``mutate``."""
    real = ENGINE_PAIRS[pair_name]

    def broken(case):
        return mutate(case, real.run_vectorized(case))

    return {**ENGINE_PAIRS, pair_name: dataclasses.replace(real, run_vectorized=broken)}


def _perturb_max_label(case, run: EngineRun) -> EngineRun:
    victim = max(run.assignment)
    run.assignment[victim] += 1
    return run


class TestInjectedDivergence:
    """Mutation testing: the harness must catch what we deliberately break."""

    def test_output_perturbation_caught_shrunk_and_pinned(self, tmp_path):
        broken = _broken_registry("linial", _perturb_max_label)
        report = fuzz_run(
            seed=11,
            iterations=3,
            pair_names=["linial"],
            corpus_dir=tmp_path,
            pairs=broken,
            max_failures=1,
        )
        assert not report.ok and len(report.failures) == 1
        failure = report.failures[0]
        assert any("outputs differ" in f for f in failure.outcome.failures)
        # shrunk to a tiny witness, still failing on the broken engines
        assert failure.shrunk is not None and failure.shrunk.n <= 12
        assert not failure.shrunk_outcome.ok
        # serialized into the corpus, and the pinned entry replays green
        # against the *real* engines (the regression-pin workflow)
        assert failure.saved_to is not None and failure.saved_to.exists()
        replayed = replay_corpus(tmp_path)
        assert len(replayed) == 1
        assert replayed[0][1].ok, replayed[0][1].describe()

    def test_order_bug_in_greedy_caught(self):
        """A processing-order bug (reversed greedy) — subtle, input-dependent."""
        from repro.sim.vectorized import greedy_list_vectorized

        def reversed_greedy(case, _run):
            inst = case.instance()
            res = greedy_list_vectorized(
                inst, order=sorted(inst.graph.nodes, reverse=True)
            )
            return EngineRun(dict(res.assignment))

        broken = _broken_registry("greedy", reversed_greedy)
        report = fuzz_run(
            seed=0,
            iterations=25,
            pair_names=["greedy"],
            pairs=broken,
            shrink=False,
            max_failures=1,
        )
        assert not report.ok, "fuzzer failed to flush out a reversed-order greedy"

    def test_metrics_divergence_caught(self):
        """Accounting bugs (not just outputs) trip the harness too."""

        def drop_a_message(case, run: EngineRun) -> EngineRun:
            run.metrics.total_messages -= 1
            if run.metrics.per_round_messages:
                run.metrics.per_round_messages[0] -= 1
            run.record = None  # a record would fail its own consistency check
            return run

        broken = _broken_registry("classic", drop_a_message)
        for seed in range(5):
            case = generate_case(f"m:{seed}", pair="classic")
            if case.m == 0:
                continue
            outcome = run_case(case, pairs=broken)
            assert not outcome.ok
            assert any("metrics summaries differ" in f for f in outcome.failures)
            break
        else:  # pragma: no cover
            pytest.fail("no case with edges generated")

    def test_oracle_catches_shared_bug(self):
        """Both engines agreeing on a *wrong* answer is still a failure."""

        def clobber(case, run: EngineRun) -> EngineRun:
            run.assignment = {v: 0 for v in run.assignment}
            return run

        real = ENGINE_PAIRS["greedy"]
        broken_pair = dataclasses.replace(
            real,
            run_reference=lambda c: clobber(c, real.run_reference(c)),
            run_vectorized=lambda c: clobber(c, real.run_vectorized(c)),
        )
        registry = {**ENGINE_PAIRS, "greedy": broken_pair}
        for seed in range(6):
            case = generate_case(f"o:{seed}", pair="greedy")
            if case.m == 0:
                continue
            outcome = run_case(case, pairs=registry)
            assert not outcome.ok
            assert any(f.startswith("oracle:") for f in outcome.failures)
            break
        else:  # pragma: no cover
            pytest.fail("no case with edges generated")


class TestShrinker:
    def test_shrinks_to_minimal_witness(self):
        broken = _broken_registry("linial", _perturb_max_label)
        case = generate_case("s:0", pair="linial")
        assert not run_case(case, pairs=broken).ok
        shrunk = shrink_case(case, predicate=default_predicate(pairs=broken))
        shrunk.check_valid()
        assert shrunk.n <= 3  # unconditional perturbation pins on ~1 node
        assert not run_case(shrunk, pairs=broken).ok

    def test_respects_attempt_budget(self):
        calls = []

        def pred(candidate):
            calls.append(1)
            return True  # "always still failing" — worst case for the budget

        case = generate_case("s:1", pair="classic")
        shrink_case(case, predicate=pred, max_attempts=17)
        assert len(calls) <= 17

    def test_preserves_greedy_list_validity(self):
        case = generate_case("s:2", pair="greedy")
        # force shrinking pressure with a predicate that accepts everything
        shrunk = shrink_case(case, predicate=lambda c: True, max_attempts=200)
        shrunk.check_valid()
        assert shrunk.n >= 1

    def test_returns_original_when_failure_needs_everything(self):
        case = generate_case("s:3", pair="linial")
        shrunk = shrink_case(case, predicate=lambda c: False, max_attempts=100)
        assert shrunk.nodes == case.nodes and shrunk.edges == case.edges


class TestCorpusSerialization:
    def test_round_trip(self, tmp_path):
        for pair in pair_names():
            case = generate_case(f"rt:{pair}", pair=pair)
            path = save_case(case, tmp_path)
            loaded = load_case(path)
            assert loaded.to_dict() == case.to_dict()

    def test_filenames_stable_and_content_addressed(self, tmp_path):
        case = generate_case("fn:0", pair="greedy")
        assert case_filename(case) == case_filename(case.replace(note="renamed"))
        p1 = save_case(case, tmp_path)
        p2 = save_case(case.replace(note="again"), tmp_path)
        assert p1 == p2  # idempotent pinning
        assert len(load_corpus(tmp_path)) == 1

    def test_foreign_schema_rejected(self, tmp_path):
        case = generate_case("fs:0", pair="classic")
        payload = case.to_dict()
        payload["schema"] = 99
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema"):
            load_case(path)

    def test_invalid_case_rejected_on_load(self, tmp_path):
        case = generate_case("iv:0", pair="linial")
        payload = case.to_dict()
        payload["edges"].append([10**9, 10**9 + 1])  # unknown endpoints
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_case(path)

    def test_missing_corpus_dir_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []
        assert replay_corpus(tmp_path / "nope") == []


class TestFuzzRun:
    def test_green_report_counts(self):
        report = fuzz_run(seed=2, iterations=2)
        assert report.ok
        assert report.cases_run == 2 * len(ENGINE_PAIRS)
        assert set(report.per_pair) == set(ENGINE_PAIRS)
        assert "0 failure(s)" in report.describe()

    def test_pair_subset_and_unknown_pair(self):
        report = fuzz_run(seed=2, iterations=1, pair_names=["greedy"])
        assert set(report.per_pair) == {"greedy"}
        with pytest.raises(KeyError, match="nope"):
            fuzz_run(seed=2, iterations=1, pair_names=["nope"])

    def test_stops_at_max_failures(self):
        broken = _broken_registry("linial", _perturb_max_label)
        report = fuzz_run(
            seed=3,
            iterations=10,
            pair_names=["linial"],
            pairs=broken,
            shrink=False,
            max_failures=2,
        )
        assert len(report.failures) == 2


class TestBatchedDispatchByValue:
    """Regression: the batched fast side used to be selected by *identity*
    (``pair is ENGINE_PAIRS.get(name)``), so an equal-but-not-identical
    pair in a caller-built ``pairs=`` registry silently lost the batched
    path — the run still passed, it just never executed the code under
    test.  Dispatch is now by value equality (:func:`_batched_runner`)."""

    def _cases(self, pair, count=4):
        return [
            generate_case(f"bd:{i}:{pair}", pair=pair) for i in range(count)
        ]

    def _spied_vec_batch(self, monkeypatch, name):
        from repro.fuzz import differential

        calls = []
        real = differential._VEC_BATCH[name]

        def spy(cases):
            calls.append(len(cases))
            return real(cases)

        monkeypatch.setitem(differential._VEC_BATCH, name, spy)
        return calls

    @pytest.mark.parametrize("name", sorted(ENGINE_PAIRS))
    def test_equal_copy_keeps_batched_path(self, monkeypatch, name):
        from repro.fuzz import run_cases_batched

        calls = self._spied_vec_batch(monkeypatch, name)
        registry = {**ENGINE_PAIRS, name: dataclasses.replace(ENGINE_PAIRS[name])}
        assert registry[name] is not ENGINE_PAIRS[name]
        outcomes = run_cases_batched(self._cases(name), pairs=registry)
        assert calls == [4]
        assert all(o.ok for o in outcomes)

    def test_mutated_pair_falls_back_to_per_case(self, monkeypatch):
        from repro.fuzz import run_cases_batched

        calls = self._spied_vec_batch(monkeypatch, "linial")
        broken = _broken_registry("linial", _perturb_max_label)
        outcomes = run_cases_batched(self._cases("linial"), pairs=broken)
        assert calls == []  # per-case, so the mutated fast side actually ran
        assert all(not o.ok for o in outcomes)

    def test_compiled_registry_batches_linial(self, monkeypatch):
        from repro.fuzz import COMPILED_PAIRS, run_cases_batched
        from repro.fuzz import differential

        calls = []
        real = differential._CPL_BATCH["linial"]

        def spy(cases):
            calls.append(len(cases))
            return real(cases)

        monkeypatch.setitem(differential._CPL_BATCH, "linial", spy)
        cases = [
            c
            for c in self._cases("linial", count=8)
            if c.fault is None  # compiled backend skips fault cases
        ]
        assert len(cases) >= 2
        outcomes = run_cases_batched(cases, pairs=COMPILED_PAIRS)
        assert calls == [len(cases)]
        assert all(o.ok for o in outcomes)


class TestCaseValidation:
    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FuzzCase("linial", [1, 1], []).check_valid()

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            FuzzCase("linial", [1, 2], [(1, 1)]).check_valid()

    def test_undersized_list_rejected(self):
        with pytest.raises(ValueError, match="degree"):
            FuzzCase(
                "greedy", [1, 2], [(1, 2)],
                lists={1: [0], 2: [0, 1]}, space_size=3,
            ).check_valid()

    def test_duplicate_initial_colors_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            FuzzCase(
                "linial", [1, 2], [(1, 2)], initial_colors={1: 5, 2: 5}
            ).check_valid()
