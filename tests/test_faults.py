"""The fault-injection subsystem: plan, engines, wrappers, sweep, fuzz.

Four contracts under test:

1. a :class:`~repro.faults.FaultPlan` is a pure function of
   ``(seed, round, edge)`` — deterministic, offset-shiftable, and
   identical between its scalar (reference) and array (vectorized)
   evaluation paths;
2. both engines driven by the same plan stay in lockstep: identical
   outputs, metrics, per-round accounting, *and* per-round fault
   counts — including identical :class:`~repro.sim.node.HaltingError`
   behavior under crash-stop plans (the max-rounds exhaustion path);
3. the resilience wrappers actually buy validity back: retransmission
   absorbs drops that break the raw run, restarts escape crash windows,
   and the overhead stays on the books;
4. the sweep and fuzz layers treat faults as first-class coordinates:
   poisoned cells quarantine as ``status: "failed"`` records, corrupt
   cache files quarantine as ``.json.corrupt``, dead worker pools retry
   from per-cell checkpoints, and fault-axis fuzz cases replay green.
"""

import json
import random

import numpy as np
import pytest

from repro.algorithms.linial import linial_schedule, run_linial
from repro.core.coloring import ColoringResult
from repro.core.validate import validate_proper_coloring
from repro.experiments.sweep import (
    SWEEP_CACHE_SCHEMA,
    SweepCell,
    _cache_path,
    _compute_batch,
    cell_key,
    corrupt_cache_files,
    failed_record,
    load_cached,
    load_cached_detailed,
    run_sweep,
    run_sweep_summarized,
)
from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    RetransmitAlgorithm,
    resilient_linial,
    run_with_restarts,
)
from repro.faults.plan import FATE_DELIVER, node_labels_u64
from repro.graphs import path, random_regular
from repro.obs import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    RunRecord,
    RunRecorder,
    compare_round_accounting,
)
from repro.sim.network import SyncNetwork
from repro.sim.node import HaltingError
from repro.sim.trace import Trace
from repro.sim.vectorized import linial_vectorized


def _spread_colors(graph, seed=5, span=300):
    """Explicit initial colors far past the Linial fixed point, so the
    schedule is nonempty even on small graphs (empty schedules make every
    fault assertion vacuous)."""
    nodes = sorted(graph.nodes)
    return dict(zip(nodes, random.Random(seed).sample(range(span), len(nodes))))


#: Named plans covering each fault mode plus a mixed adversary; every one
#: verifiably fires on the 8-node path with ``_spread_colors`` (asserted
#: in ``test_engines_agree_per_plan``).
PLANS = {
    "drop": FaultPlan(seed=11, p_drop=0.3),
    "corrupt": FaultPlan(seed=12, p_corrupt=0.3),
    "delay": FaultPlan(seed=13, p_delay=0.3, max_delay=2),
    "duplicate": FaultPlan(seed=14, p_duplicate=0.3),
    "crash": FaultPlan(seed=0, p_crash=0.6, crash_horizon=3, recovery_rounds=2),
    "mixed": FaultPlan(
        seed=16, p_drop=0.15, p_corrupt=0.15, p_delay=0.1, p_duplicate=0.1
    ),
}


class TestFaultPlan:
    def test_fate_is_deterministic(self):
        plan = FaultPlan(seed=7, p_drop=0.2, p_corrupt=0.2, p_delay=0.2)
        fates = [plan.message_fate(r, 3, 9) for r in range(20)]
        again = [plan.message_fate(r, 3, 9) for r in range(20)]
        assert fates == again
        other = FaultPlan(seed=8, p_drop=0.2, p_corrupt=0.2, p_delay=0.2)
        assert fates != [other.message_fate(r, 3, 9) for r in range(20)]

    def test_scalar_and_array_paths_agree(self):
        plan = FaultPlan(
            seed=9, p_drop=0.2, p_corrupt=0.2, p_delay=0.15, p_duplicate=0.15
        )
        src = np.array([1, 1, 2, 40, 7], dtype=np.int64)
        dst = np.array([2, 40, 1, 7, 40], dtype=np.int64)
        for rnd in range(6):
            kinds, delays = plan.edge_fates(
                rnd, node_labels_u64(src), node_labels_u64(dst)
            )
            for i in range(len(src)):
                fate = plan.message_fate(rnd, int(src[i]), int(dst[i]))
                assert fate.kind == int(kinds[i])
                if fate.kind != FATE_DELIVER:
                    assert fate.delay == int(delays[i])

    def test_crash_mask_matches_scalar(self):
        plan = FaultPlan(seed=3, p_crash=0.5, crash_horizon=4, recovery_rounds=2)
        labels = np.arange(30, dtype=np.int64)
        for rnd in range(8):
            mask = plan.crashed_mask(rnd, node_labels_u64(labels))
            for v in range(30):
                assert bool(mask[v]) == plan.crashed(rnd, v)

    def test_with_offset_shifts_the_clock(self):
        plan = FaultPlan(seed=4, p_drop=0.4, p_crash=0.3, crash_horizon=5,
                         recovery_rounds=1)
        shifted = plan.with_offset(3)
        for rnd in range(10):
            assert (
                shifted.message_fate(rnd, 1, 2).kind
                == plan.message_fate(rnd + 3, 1, 2).kind
            )
            assert shifted.crashed(rnd, 6) == plan.crashed(rnd + 3, 6)

    def test_dict_round_trip_and_unknown_key(self):
        plan = PLANS["mixed"]
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        with pytest.raises((KeyError, TypeError, ValueError)):
            FaultPlan.from_dict({"seed": 1, "p_teleport": 0.5})

    def test_null_plan_and_round_budget(self):
        assert FaultPlan(seed=1).is_null
        assert not PLANS["drop"].is_null
        assert FaultPlan(seed=1).round_budget(5) >= 5
        crash = PLANS["crash"]
        # the budget must cover the whole crash-recovery horizon
        assert crash.round_budget(2) >= crash.crash_horizon


class TestEngineLockstep:
    @pytest.mark.parametrize("name", sorted(PLANS))
    def test_engines_agree_per_plan(self, name):
        plan = PLANS[name]
        g = path(8)
        colors = _spread_colors(g)
        rec_r = RunRecorder(engine=ENGINE_REFERENCE)
        res_r, met_r, pal_r = run_linial(
            g, initial_colors=colors, recorder=rec_r, faults=plan
        )
        rec_v = RunRecorder(engine=ENGINE_VECTORIZED)
        res_v, met_v, pal_v = linial_vectorized(
            g, initial_colors=colors, recorder=rec_v, faults=plan
        )
        assert met_r.rounds > 0, "empty schedule makes this test vacuous"
        assert dict(res_r.assignment) == dict(res_v.assignment)
        assert pal_r == pal_v
        assert met_r.summary() == met_v.summary()
        verdict = compare_round_accounting(rec_r.record, rec_v.record)
        assert verdict["rounds_equal"]
        assert verdict["accounting_equal"]
        assert verdict["totals_equal"]
        assert verdict["faults_equal"]
        fired = sum(
            sum((row.faults or {}).values()) for row in rec_r.record.rows
        )
        assert fired > 0, f"plan {name} never fired; test is vacuous"

    def test_different_seeds_mean_different_schedules(self):
        g = path(8)
        colors = _spread_colors(g)
        records = []
        for seed in (11, 47):
            rec = RunRecorder(engine=ENGINE_REFERENCE)
            run_linial(
                g,
                initial_colors=colors,
                recorder=rec,
                faults=FaultPlan(seed=seed, p_drop=0.5),
            )
            records.append(rec.record)
        assert not compare_round_accounting(*records)["faults_equal"]

    def test_crash_stop_halts_both_engines_identically(self):
        g = random_regular(150, 4, seed=1)
        plan = FaultPlan(seed=5, p_crash=0.8, crash_horizon=4,
                         recovery_rounds=None)
        with pytest.raises(HaltingError) as ref_err:
            run_linial(g, faults=plan)
        with pytest.raises(HaltingError) as vec_err:
            linial_vectorized(g, faults=plan)
        assert ref_err.value.rounds == vec_err.value.rounds
        assert sorted(ref_err.value.unfinished) == sorted(vec_err.value.unfinished)
        assert ref_err.value.unfinished  # typed error carries the victims

    def test_halted_run_still_flushes_partial_record(self):
        g = random_regular(150, 4, seed=1)
        plan = FaultPlan(seed=5, p_crash=0.8, crash_horizon=4,
                         recovery_rounds=None)
        for engine, runner in (
            (ENGINE_REFERENCE, run_linial),
            (ENGINE_VECTORIZED, linial_vectorized),
        ):
            recorder = RunRecorder(engine=engine)
            with pytest.raises(HaltingError) as err:
                runner(g, recorder=recorder, faults=plan)
            record = recorder.record
            assert record is not None
            assert len(record.rows) == err.value.rounds
            assert all(row.faults is not None for row in record.rows)

    def test_fault_columns_survive_record_serialization(self):
        g = path(8)
        rec = RunRecorder(engine=ENGINE_REFERENCE)
        run_linial(
            g, initial_colors=_spread_colors(g), recorder=rec,
            faults=PLANS["mixed"],
        )
        restored = RunRecord.from_dict(rec.record.to_dict())
        assert [row.faults for row in restored.rows] == [
            row.faults for row in rec.record.rows
        ]
        assert all(
            set(row.faults) == set(FAULT_KINDS) for row in restored.rows
        )

    def test_trace_records_fault_events(self):
        g = path(8)
        colors = _spread_colors(g)
        m0 = max(colors.values()) + 1
        sched = linial_schedule(m0, 2)
        from repro.algorithms.linial import LinialColoringAlgorithm

        trace = Trace()
        SyncNetwork(g).run(
            LinialColoringAlgorithm(),
            {v: {"color": c} for v, c in colors.items()},
            shared={"schedule": sched, "m0": m0},
            trace=trace,
            faults=PLANS["drop"],
        )
        counts = trace.fault_counts()
        assert counts["dropped"] > 0
        assert trace.summary()["faults"] == sum(counts.values())


class TestResilienceWrappers:
    def test_raw_run_breaks_but_retransmit_recovers(self):
        g = random_regular(150, 4, seed=1)
        plan = FaultPlan(seed=21, p_drop=0.3)
        raw, raw_metrics, _ = run_linial(g, faults=plan)
        assert not validate_proper_coloring(
            g, ColoringResult(dict(raw.assignment))
        ).ok
        res, metrics, palette, info = resilient_linial(
            g, plan, retries=2, restarts=0
        )
        assert validate_proper_coloring(g, res).ok
        assert info["valid"] and info["attempts"] == 1
        # resilience is paid for in rounds, and the price is recorded
        assert metrics.rounds > raw_metrics.rounds

    def test_retransmit_period_and_validation(self):
        class _Null:
            name = "null"

            def init_state(self, view):
                return {}

            def send(self, view, state, rnd):
                return {}

            def receive(self, view, state, rnd, inbox):
                pass

            def is_done(self, view, state):
                return True

            def output(self, view, state):
                return None

        assert RetransmitAlgorithm(_Null(), retries=3).period == 7
        with pytest.raises(ValueError):
            RetransmitAlgorithm(_Null(), retries=-1)

    def test_restart_escapes_crash_recovery_window(self):
        g = random_regular(150, 4, seed=1)
        plan = FaultPlan(seed=0, p_crash=0.5, crash_horizon=3,
                         recovery_rounds=2)
        res, metrics, palette, info = resilient_linial(
            g, plan, retries=1, restarts=2
        )
        history = info["history"]
        assert not history[0]["valid"], "seed pinned so attempt 0 fails"
        assert history[1]["valid"], "the shifted plan escapes the window"
        assert validate_proper_coloring(g, res).ok
        # merged metrics keep every attempt's rounds on the books
        assert metrics.rounds == sum(h["rounds"] for h in history)

    def test_crash_stop_exhausts_restarts_with_typed_error(self):
        g = random_regular(150, 4, seed=1)
        plan = FaultPlan(seed=5, p_crash=0.8, crash_horizon=4,
                         recovery_rounds=None)
        with pytest.raises(HaltingError):
            resilient_linial(g, plan, retries=1, restarts=1)

    def test_run_with_restarts_merges_history(self):
        from repro.sim.metrics import RunMetrics

        calls = []

        def attempt(plan, index):
            calls.append(plan.round_offset)
            metrics = RunMetrics()
            metrics.observe_round({})
            return {"winner": index}, metrics

        outputs, metrics, info = run_with_restarts(
            attempt,
            oracle=lambda out: out["winner"] >= 2,
            plan=FaultPlan(seed=1, p_drop=0.1),
            restarts=3,
        )
        assert outputs == {"winner": 2}
        assert info["attempts"] == 3 and info["valid"]
        # each retry faces the continuation of the adversary, never round 0
        assert calls == [0, 1, 2]


class TestSweepFaultTolerance:
    def _cells(self, algorithm, faults, n=150):
        return [
            SweepCell.make(
                "random_regular",
                {"n": n, "degree": 4, "seed": 1},
                algorithm,
                {"defect": 0, "faults": faults},
            )
        ]

    def test_fault_cells_agree_across_engines(self, tmp_path):
        faults = {"seed": 21, "p_drop": 0.2}
        cells = self._cells("linial_faulty", faults) + self._cells(
            "linial_faulty_vectorized", faults
        )
        results = run_sweep(cells, cache_dir=tmp_path, workers=1)
        ref, vec = (RunRecord.from_dict(r.data["run_record"]) for r in results)
        verdict = compare_round_accounting(ref, vec)
        assert verdict["accounting_equal"] and verdict["faults_equal"]
        assert results[0].data["metrics"] == results[1].data["metrics"]

    def test_poison_cell_quarantines_not_aborts(self, tmp_path):
        # degree >= n is impossible: the generator raises, the sweep must not
        poison = SweepCell.make(
            "random_regular", {"n": 10, "degree": 11, "seed": 0},
            "linial_vectorized",
        )
        good = SweepCell.make("path", {"n": 8}, "linial_vectorized")
        summary = run_sweep_summarized(
            [poison, good], cache_dir=tmp_path, workers=1
        )
        assert summary.failed == 1 and summary.total == 2
        bad, ok = summary.results[0], summary.results[1]
        assert bad.failed and bad.data["error"]["type"]
        assert not ok.failed and ok.data["valid"]
        # the failure record is served from cache on rerun, not re-raised
        again = run_sweep_summarized([poison], cache_dir=tmp_path, workers=1)
        assert again.cached == 1 and again.results[0].cache_status == "failed"

    def test_round_exhaustion_becomes_structured_failure(self, tmp_path):
        cells = self._cells(
            "linial_faulty",
            {"seed": 5, "p_crash": 0.8, "crash_horizon": 4,
             "recovery_rounds": None},
        )
        summary = run_sweep_summarized(cells, cache_dir=tmp_path, workers=1)
        record = summary.results[0].data
        assert record["status"] == "failed"
        assert record["error"]["type"] == "HaltingError"
        assert "unfinished" in record["error"]["message"]

    def test_corrupt_cache_file_is_renamed_and_recomputed(self, tmp_path):
        cell = SweepCell.make("path", {"n": 8}, "linial_vectorized")
        run_sweep([cell], cache_dir=tmp_path, workers=1)
        cache_file = _cache_path(tmp_path, cell_key(cell))
        cache_file.write_text("{ truncated nonsense")
        record, status = load_cached_detailed(tmp_path, cell)
        assert record is None and status == "corrupt"
        assert corrupt_cache_files(tmp_path) == [
            cache_file.with_name(cache_file.name + ".corrupt")
        ]
        cache_file.write_text("{ truncated nonsense")
        summary = run_sweep_summarized([cell], cache_dir=tmp_path, workers=1)
        assert summary.corrupt == 1 and summary.computed == 1
        assert load_cached(tmp_path, cell) is not None

    def test_stale_schema_is_recomputed_and_counted(self, tmp_path):
        cell = SweepCell.make("path", {"n": 8}, "linial_vectorized")
        run_sweep([cell], cache_dir=tmp_path, workers=1)
        cache_file = _cache_path(tmp_path, cell_key(cell))
        old = json.loads(cache_file.read_text())
        old["schema"] = SWEEP_CACHE_SCHEMA - 1
        cache_file.write_text(json.dumps(old))
        summary = run_sweep_summarized([cell], cache_dir=tmp_path, workers=1)
        assert summary.stale == 1 and summary.computed == 1

    def test_failed_record_is_shape_compatible(self):
        cell = SweepCell.make("path", {"n": 8}, "linial_vectorized")
        record = failed_record(cell, RuntimeError("boom"), wall_s=0.5)
        assert record["status"] == "failed"
        assert record["error"] == {"type": "RuntimeError", "message": "boom"}
        assert record["key"] == cell_key(cell)
        assert record["schema"] == SWEEP_CACHE_SCHEMA
        assert record["valid"] is False and record["metrics"] is None

    def test_batch_resumes_from_per_cell_checkpoints(self, tmp_path, monkeypatch):
        import repro.experiments.sweep as sweep_mod

        cells = [
            SweepCell.make("path", {"n": n}, "linial_vectorized")
            for n in (6, 8, 10)
        ]
        # checkpoint the first cell, as a dead worker would have left it
        _compute_batch([cells[0].spec()], str(tmp_path))
        computed = []
        real_cell = sweep_mod.compute_cell
        real_batched = sweep_mod.compute_cells_batched
        monkeypatch.setattr(
            sweep_mod,
            "compute_cell",
            lambda cell: computed.append(cell_key(cell)) or real_cell(cell),
        )
        monkeypatch.setattr(
            sweep_mod,
            "compute_cells_batched",
            lambda batch: computed.extend(cell_key(c) for c in batch)
            or real_batched(batch),
        )
        records = _compute_batch([c.spec() for c in cells], str(tmp_path))
        assert [r["key"] for r in records] == [cell_key(c) for c in cells]
        # the checkpointed cell was served, never recomputed (batched or not)
        assert sorted(computed) == sorted(cell_key(c) for c in cells[1:])

    def test_worker_sigkill_loses_at_most_one_inflight_cell(
        self, tmp_path, monkeypatch
    ):
        import multiprocessing as mp

        try:
            mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            pytest.skip("requires fork start method")
        import repro.graphs as graphs_mod

        sentinel = tmp_path / "kill-once"
        sentinel.write_text("")
        real_family = graphs_mod.family

        def family_with_kill(name, **params):
            if params.get("n") == 10 and sentinel.exists():
                import os
                import signal

                sentinel.unlink()
                os.kill(os.getpid(), signal.SIGKILL)
            return real_family(name, **params)

        monkeypatch.setattr(graphs_mod, "family", family_with_kill)
        cells = [
            SweepCell.make("path", {"n": n}, "linial_vectorized")
            for n in (6, 8, 10, 12, 14, 16)
        ]
        summary = run_sweep_summarized(
            cells, cache_dir=tmp_path / "cache", workers=2
        )
        assert summary.total == 6 and summary.failed == 0
        assert all(r.data["valid"] for r in summary.results)
        assert not sentinel.exists(), "the kill must actually have fired"


class TestFuzzFaultAxis:
    def test_generator_attaches_deterministic_fault_plans(self):
        from repro.fuzz import generate_case

        cases = [generate_case(f"fa:{i}", pair="linial") for i in range(60)]
        again = [generate_case(f"fa:{i}", pair="linial") for i in range(60)]
        assert [c.to_dict() for c in cases] == [c.to_dict() for c in again]
        faulted = [c for c in cases if c.fault is not None]
        assert faulted, "fault axis never sampled in 60 cases"
        for c in faulted:
            FaultPlan.from_dict(c.fault)  # validates
            assert c.initial_colors is not None, (
                "fault cases must force spread initial colors so the "
                "schedule is nonempty"
            )
            if "p_crash" in c.fault:
                assert c.fault.get("recovery_rounds"), (
                    "fuzz crash plans must guarantee recovery/termination"
                )

    def test_fault_case_runs_green_and_round_trips(self, tmp_path):
        from repro.fuzz import FuzzCase, load_case, run_case, save_case

        case = FuzzCase(
            pair="linial",
            nodes=[5, 210, 41, 88, 163, 19, 132, 74],
            edges=[(5, 210), (210, 41), (41, 88), (88, 163), (163, 19),
                   (19, 132), (132, 74)],
            initial_colors=dict(
                zip([5, 210, 41, 88, 163, 19, 132, 74],
                    random.Random(7).sample(range(320), 8))
            ),
            fault={"seed": 99, "p_drop": 0.2, "p_corrupt": 0.2,
                   "p_delay": 0.1, "max_delay": 2},
        )
        outcome = run_case(case)
        assert outcome.ok, outcome.failures
        assert outcome.accounting["faults_equal"]
        rows = outcome.vectorized.record.rows
        assert sum(sum((r.faults or {}).values()) for r in rows) > 0
        restored = load_case(save_case(case, tmp_path))
        assert restored.fault == case.fault

    def test_oracle_skipped_under_faults(self):
        from repro.fuzz.differential import EngineRun, _oracle_linial
        from repro.fuzz import FuzzCase

        # two adjacent nodes share a color: invalid without faults,
        # uncheckable (engine equality only) with them
        base = dict(
            pair="linial", nodes=[1, 2], edges=[(1, 2)],
        )
        run = EngineRun({1: 0, 2: 0})
        assert _oracle_linial(FuzzCase(**base), run)
        assert not _oracle_linial(
            FuzzCase(**base, fault={"seed": 1, "p_drop": 0.5}), run
        )

    def test_shrinker_minimizes_the_fault_plan(self):
        from repro.fuzz import generate_case, shrink_case

        case = generate_case("fa:pass5", pair="linial").replace(
            fault={"seed": 3, "p_drop": 0.3, "p_corrupt": 0.2,
                   "p_delay": 0.2, "max_delay": 3}
        )
        small = shrink_case(
            case,
            predicate=lambda c: c.fault is not None and "p_drop" in c.fault,
            max_attempts=300,
        )
        assert small.fault is not None and "p_drop" in small.fault
        assert "p_corrupt" not in small.fault
        assert "p_delay" not in small.fault
        assert small.n == 1 and small.m == 0

    def test_shrinker_drops_fault_independent_plans(self):
        from repro.fuzz import generate_case, shrink_case

        case = generate_case("fa:pass5", pair="linial").replace(
            fault={"seed": 3, "p_drop": 0.3}
        )
        small = shrink_case(case, predicate=lambda c: True, max_attempts=200)
        assert small.fault is None
