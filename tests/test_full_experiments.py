"""Full-sweep experiment runs — the repository's headline claims.

The fast sweeps run in tests/test_experiments.py; these re-run the *full*
sweeps that EXPERIMENTS.md reports, asserting every shape check.  Kept as
separate per-experiment tests so a regression localizes immediately.
(Total added wall time ~1 minute.)
"""

import pytest

from repro.experiments import EXPERIMENTS, get_runner

# E03/E11 full mode build graphs with thousands of nodes; they dominate the
# minute. Everything stays bounded enough for the default suite.
FULL_IDS = sorted(EXPERIMENTS)


@pytest.mark.parametrize("eid", FULL_IDS)
def test_full_sweep(eid):
    result = get_runner(eid)(fast=False)
    failing = [k for k, v in result.checks.items() if not v]
    assert not failing, f"{eid} full sweep failing: {failing}"
