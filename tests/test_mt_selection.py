"""Tests for the P2 set-family selection (mt_selection)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conflict import psi_g
from repro.algorithms.mt_selection import (
    FamilyOracle,
    NodeType,
    candidate_space,
    exact_greedy_assignment,
    seeded_family,
)


class TestNodeType:
    def test_colors_canonicalized(self):
        t = NodeType(1, (3, 1, 2))
        assert t.colors == (1, 2, 3)

    def test_equality_by_content(self):
        assert NodeType(1, (2, 3)) == NodeType(1, (3, 2))
        assert NodeType(1, (2, 3)) != NodeType(2, (2, 3))

    def test_digest_stable_and_seeded(self):
        t = NodeType(1, (2, 3))
        assert t.stable_digest(0) == NodeType(1, (3, 2)).stable_digest(0)
        assert t.stable_digest(0) != t.stable_digest(1)
        assert t.stable_digest(0) != NodeType(1, (2, 4)).stable_digest(0)


class TestSeededFamily:
    def test_deterministic(self):
        t = NodeType(0, tuple(range(20)))
        a = seeded_family(t, 4, 8, seed=5)
        b = seeded_family(t, 4, 8, seed=5)
        assert a == b

    def test_distinct_members(self):
        t = NodeType(0, tuple(range(20)))
        fam = seeded_family(t, 4, 8)
        assert len(set(fam)) == len(fam) == 8
        assert all(len(c) == 4 for c in fam)
        assert all(set(c) <= set(range(20)) for c in fam)

    def test_small_list_enumerates_all(self):
        t = NodeType(0, (0, 1, 2))
        fam = seeded_family(t, 2, 100)
        assert sorted(fam) == sorted(itertools.combinations((0, 1, 2), 2))

    def test_k_bounds(self):
        t = NodeType(0, (0, 1))
        with pytest.raises(ValueError):
            seeded_family(t, 0, 4)
        with pytest.raises(ValueError):
            seeded_family(t, 3, 4)

    def test_types_differ_families_differ(self):
        a = seeded_family(NodeType(0, tuple(range(30))), 5, 8)
        b = seeded_family(NodeType(1, tuple(range(30))), 5, 8)
        assert a != b

    @settings(max_examples=20)
    @given(st.integers(0, 100), st.integers(5, 15), st.integers(1, 4))
    def test_members_sorted_subsets(self, init, length, k):
        t = NodeType(init, tuple(range(length)))
        fam = seeded_family(t, k, 6)
        for c in fam:
            assert list(c) == sorted(c)
            assert len(set(c)) == k


class TestCandidateSpace:
    def test_counts(self):
        cands = list(candidate_space([0, 1, 2, 3], 2, 2))
        # C(4,2) = 6 subsets, C(6,2) = 15 families
        assert len(cands) == 15


class TestExactGreedy:
    def test_small_universe_succeeds(self):
        types = [NodeType(c, lst) for c in range(2) for lst in itertools.combinations(range(5), 4)]
        table = exact_greedy_assignment(types, k=2, k_prime=2, tau=3, tau_prime=2)
        assert set(table) == set(types)
        fams = list(table.values())
        for i, ka in enumerate(fams):
            for kb in fams[i + 1 :]:
                assert not psi_g(ka, kb, 2, 3)
                assert not psi_g(kb, ka, 2, 3)

    def test_deterministic(self):
        types = [NodeType(0, lst) for lst in itertools.combinations(range(5), 4)]
        a = exact_greedy_assignment(types, 2, 2, 3, 2)
        b = exact_greedy_assignment(list(reversed(types)), 2, 2, 3, 2)
        assert a == b

    def test_infeasible_params_raise(self):
        # tau = 1 makes every sharing a conflict; k'=3 on 3 candidate
        # subsets of a 3-color list cannot avoid Psi with tau'=1
        types = [NodeType(c, (0, 1, 2)) for c in range(4)]
        with pytest.raises(ValueError):
            exact_greedy_assignment(types, k=2, k_prime=3, tau=1, tau_prime=1)


class TestFamilyOracle:
    def test_seeded_cache_consistency(self):
        oracle = FamilyOracle(k_prime=6, seed=1)
        t = NodeType(3, tuple(range(12)))
        assert oracle.family(t, 3) is oracle.family(t, 3)
        assert oracle.family(t, 3) == seeded_family(t, 3, 6, seed=1)

    def test_exact_mode_requires_table(self):
        with pytest.raises(ValueError):
            FamilyOracle(k_prime=4, mode="exact")

    def test_exact_mode_lookup(self):
        t = NodeType(0, (0, 1, 2, 3))
        table = exact_greedy_assignment([t], 2, 2, 3, 2)
        oracle = FamilyOracle(k_prime=2, mode="exact", table=table)
        assert oracle.family(t, 2) == table[t]
        with pytest.raises(KeyError):
            oracle.family(NodeType(9, (0, 1)), 2)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            FamilyOracle(k_prime=4, mode="psychic")
