"""Exhaustive verification over *all* small graphs.

The networkx graph atlas enumerates every graph on up to 7 nodes; running
the full pipelines over every connected graph on <= 6 nodes (112 graphs)
leaves no room for a topology-shaped bug to hide at small scale.  Each
pipeline's output is checked with the independent validators.
"""

import networkx as nx
import pytest

from repro.core import (
    degree_plus_one_instance,
    uniform_instance,
    ColorSpace,
    validate_arbdefective,
    validate_ldc,
    validate_proper_coloring,
)
from repro.core.conditions import ldc_exists_condition
from repro.graphs import balanced_orientation
from repro.algorithms import (
    congest_delta_plus_one,
    greedy_list_coloring,
    linear_in_delta_coloring,
    run_linial,
    solve_ldc_potential,
    solve_list_arbdefective,
)


def small_connected_graphs(max_nodes: int = 6) -> list[nx.Graph]:
    out = []
    for g in nx.graph_atlas_g():
        n = g.number_of_nodes()
        if 2 <= n <= max_nodes and g.number_of_edges() > 0 and nx.is_connected(g):
            out.append(nx.convert_node_labels_to_integers(g))
    return out


GRAPHS = small_connected_graphs()


def test_atlas_has_expected_count():
    # 1 + 2 + 6 + 21 + 112 = 142 connected graphs on 2..6 nodes
    assert len(GRAPHS) == 142


@pytest.mark.parametrize("idx", range(0, len(GRAPHS), 1))
def test_congest_pipeline_on_every_small_graph(idx):
    g = GRAPHS[idx]
    res, _m, rep = congest_delta_plus_one(g)
    assert rep.valid
    validate_proper_coloring(g, res).raise_if_invalid()
    delta = max(d for _, d in g.degree)
    assert res.num_colors() <= delta + 1


def test_linial_on_every_small_graph():
    for g in GRAPHS:
        res, _m, _p = run_linial(g)
        validate_proper_coloring(g, res).raise_if_invalid()


def test_linear_in_delta_on_every_small_graph():
    for g in GRAPHS:
        res, _m, _rep = linear_in_delta_coloring(g)
        validate_proper_coloring(g, res).raise_if_invalid()
        delta = max(d for _, d in g.degree)
        assert res.num_colors() <= delta + 1


def test_thm13_defect_one_on_every_small_graph():
    for g in GRAPHS:
        delta = max(d for _, d in g.degree)
        q = delta // 2 + 1
        inst = uniform_instance(g, ColorSpace(q), range(q), 1)
        res, _m, _rep = solve_list_arbdefective(inst)
        validate_arbdefective(inst, res).raise_if_invalid()


def test_sequential_solvers_on_every_small_graph():
    for g in GRAPHS:
        inst = degree_plus_one_instance(g)
        assert ldc_exists_condition(inst)
        seq = solve_ldc_potential(inst)
        validate_ldc(inst, seq).raise_if_invalid()
        greedy = greedy_list_coloring(inst)
        validate_ldc(inst, greedy).raise_if_invalid()


def test_balanced_orientation_on_every_small_graph():
    for g in GRAPHS:
        ori = balanced_orientation(g)
        assert ori.covers(g)
        for v in g.nodes:
            assert ori.out_degree(v) <= -(-g.degree(v) // 2)
