"""Tests for the Linial lower-bound machinery."""

import networkx as nx
import pytest

from repro.analysis.lowerbound import (
    clique_lower_bound,
    greedy_chromatic_upper,
    is_k_colorable,
    neighborhood_graph_n0,
    neighborhood_graph_n1,
    one_round_color_lower_bound,
)


class TestN0:
    def test_is_complete(self):
        g = neighborhood_graph_n0(5)
        assert g.number_of_edges() == 10
        assert greedy_chromatic_upper(g) == 5

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            neighborhood_graph_n0(0)


class TestN1:
    def test_sizes(self):
        # m*(m-1)*(m-2) ordered distinct triples
        for m in (3, 4, 5):
            g = neighborhood_graph_n1(m)
            assert g.number_of_nodes() == m * (m - 1) * (m - 2)

    def test_adjacency_semantics(self):
        """(a,b,c) ~ (b,c,d) exactly when both are valid views of adjacent
        ring nodes: they share the overlap (b, c) and a != c, b != d."""
        g = neighborhood_graph_n1(4)
        view = nx.get_node_attributes(g, "view")
        inv = {t: i for i, t in view.items()}
        assert g.has_edge(inv[(0, 1, 2)], inv[(1, 2, 3)])
        assert g.has_edge(inv[(0, 1, 2)], inv[(1, 2, 0)])
        assert not g.has_edge(inv[(0, 1, 2)], inv[(2, 3, 0)])

    def test_needs_three_ids(self):
        with pytest.raises(ValueError):
            neighborhood_graph_n1(2)

    def test_contains_triangle(self):
        # views of a 3-ring form a triangle: chi >= 3 from the clique alone
        g = neighborhood_graph_n1(3)
        assert clique_lower_bound(g) >= 3

    def test_not_bipartite(self):
        for m in (3, 4, 5):
            g = neighborhood_graph_n1(m)
            assert is_k_colorable(g, 2) is False


class TestChromaticTools:
    def test_backtracking_on_known_graphs(self):
        assert is_k_colorable(nx.cycle_graph(6), 2) is True
        assert is_k_colorable(nx.cycle_graph(7), 2) is False
        assert is_k_colorable(nx.complete_graph(4), 3) is False
        assert is_k_colorable(nx.complete_graph(4), 4) is True

    def test_budget_returns_none(self):
        g = nx.empty_graph(10)
        assert is_k_colorable(g, 1, node_budget=5) is None

    def test_clique_bound_caps(self):
        assert clique_lower_bound(nx.complete_graph(10), limit=4) == 4

    def test_greedy_upper_at_least_clique(self):
        g = neighborhood_graph_n1(4)
        assert greedy_chromatic_upper(g) >= clique_lower_bound(g)


class TestOneRoundBound:
    @pytest.mark.parametrize("m", [3, 4, 5])
    def test_exact_chi_is_three(self, m):
        # one round suffices for 3 colors at tiny id spaces, never for 2
        assert one_round_color_lower_bound(m) == 3

    def test_meaning_zero_rounds(self):
        """chi(N_0(m)) = m: a 0-round algorithm needs the id space."""
        for m in (3, 6, 9):
            assert greedy_chromatic_upper(neighborhood_graph_n0(m)) == m
