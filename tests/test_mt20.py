"""Tests for the [MT20] 2-round list coloring (Section 3.1)."""

import random

import pytest

from repro.analysis.bounds import DEFAULT_SCALE
from repro.core import ColorSpace, ListDefectiveInstance
from repro.core.validate import validate_oldc
from repro.graphs import gnp, random_low_outdegree_digraph, ring
from repro.algorithms.linial import run_linial
from repro.algorithms.mt20 import mt20_list_coloring


def make_list_instance(n=40, p=0.2, seed=5, alpha=None):
    """A zero-defect directed list instance meeting the [MT20] list sizes."""
    scale = DEFAULT_SCALE
    alpha = scale.alpha if alpha is None else alpha
    rng = random.Random(seed)
    g = gnp(n, p, seed=seed + 1)
    dg = random_low_outdegree_digraph(g, seed=seed + 2)
    beta = max(max(1, dg.out_degree(v)) for v in dg.nodes)
    need = int(alpha * beta * beta * scale.tau) + 1
    space = ColorSpace(4 * need)
    lists = {}
    for v in dg.nodes:
        b = max(1, dg.out_degree(v))
        size = max(1, int(alpha * b * b * scale.tau))
        lists[v] = tuple(sorted(rng.sample(range(space.size), size)))
    defects = {v: {x: 0 for x in lists[v]} for v in dg.nodes}
    inst = ListDefectiveInstance(dg, space, lists, defects)
    pre, _m, _p = run_linial(g)
    return g, inst, pre.assignment


class TestMT20:
    def test_two_rounds(self):
        _g, inst, init = make_list_instance()
        _res, metrics, _rep = mt20_list_coloring(inst, init)
        assert metrics.rounds == 2

    def test_valid_proper_list_coloring(self):
        _g, inst, init = make_list_instance()
        res, _m, rep = mt20_list_coloring(inst, init)
        validate_oldc(inst, res).raise_if_invalid()

    def test_clean_picks_reported(self):
        _g, inst, init = make_list_instance()
        _res, _m, rep = mt20_list_coloring(inst, init)
        assert rep.n == inst.n
        assert 0 <= rep.clean_c_picks <= rep.n
        assert 0 <= rep.clean_color_picks <= rep.n

    def test_requires_directed(self):
        from repro.core.instance import uniform_instance

        inst = uniform_instance(ring(5), ColorSpace(30), range(30), 0)
        with pytest.raises(ValueError):
            mt20_list_coloring(inst, {v: v for v in range(5)})

    def test_rejects_defects(self):
        _g, inst, init = make_list_instance()
        bad = ListDefectiveInstance(
            inst.graph,
            inst.space,
            {v: tuple(lst) for v, lst in inst.lists.items()},
            {v: {x: 1 for x in inst.lists[v]} for v in inst.graph.nodes},
        )
        with pytest.raises(ValueError):
            mt20_list_coloring(bad, init)

    def test_list_size_precondition(self):
        _g, inst, init = make_list_instance()
        small = inst.restrict(keep_color=lambda v, x: x % 7 == 0)
        with pytest.raises(ValueError):
            mt20_list_coloring(small, init)

    def test_precondition_can_be_waived(self):
        _g, inst, init = make_list_instance()
        # keep about half of each list: may or may not stay clean, but the
        # algorithm must still run and output list colors
        smaller = inst.restrict(keep_color=lambda v, x: x % 2 == 0)
        res, metrics, _rep = mt20_list_coloring(
            smaller, init, require_list_size=False
        )
        assert metrics.rounds == 2
        for v in smaller.graph.nodes:
            assert res.assignment[v] in smaller.lists[v]

    def test_deterministic(self):
        _g, inst, init = make_list_instance()
        a = mt20_list_coloring(inst, init)[0].assignment
        b = mt20_list_coloring(inst, init)[0].assignment
        assert a == b

    def test_message_sizes_list_dominated(self):
        _g, inst, init = make_list_instance()
        _res, metrics, _rep = mt20_list_coloring(inst, init)
        from repro.sim.message import color_list_bits

        bound = color_list_bits(inst.max_list_size, inst.space.size) + 64
        assert metrics.max_message_bits <= bound
