"""Hypothesis stateful testing of DynamicColoring.

A rule-based machine inserts and deletes random edges in arbitrary
interleavings; the invariant — the maintained coloring validates against
the current instance — is checked after every rule.  Stateful search
explores interleavings (insert-then-delete-then-reinsert, repeated repairs
of the same region, ...) that fixed scenarios never hit.
"""

import networkx as nx
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.core import ColorSpace, uniform_instance, validate_ldc
from repro.exceptions import ConditionViolation
from repro.graphs import gnp
from repro.algorithms import solve_ldc_potential
from repro.algorithms.dynamic import DynamicColoring

N = 12
EXTRA = 5


class DynamicMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        g = gnp(N, 0.25, seed=9)
        delta = max((d for _, d in g.degree), default=0)
        inst = uniform_instance(
            g, ColorSpace(delta + EXTRA + 2), range(delta + EXTRA), 1
        )
        self.dyn = DynamicColoring(inst, solve_ldc_potential(inst))

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def toggle_edge(self, u, v):
        if u == v:
            return
        g = self.dyn.instance.graph
        try:
            if g.has_edge(u, v):
                self.dyn.update(delete=[(u, v)])
            else:
                self.dyn.update(insert=[(u, v)])
        except ConditionViolation:
            # budget exhausted at this degree; instance unchanged except
            # the attempted edge, which update() already applied — verify
            # the guard leaves a consistent graph by removing it again
            if g.has_edge(u, v):
                self.dyn.update(delete=[(u, v)])

    @rule(data=st.data())
    def batch_insert(self, data):
        g = self.dyn.instance.graph
        non_edges = [
            (a, b)
            for a in range(N)
            for b in range(a + 1, N)
            if not g.has_edge(a, b)
        ]
        if not non_edges:
            return
        k = data.draw(st.integers(1, min(3, len(non_edges))))
        batch = data.draw(
            st.lists(st.sampled_from(non_edges), min_size=k, max_size=k, unique=True)
        )
        try:
            self.dyn.update(insert=batch)
        except ConditionViolation:
            for e in batch:
                if self.dyn.instance.graph.has_edge(*e):
                    self.dyn.update(delete=[e])

    @invariant()
    def coloring_valid(self):
        assert self.dyn.check()
        validate_ldc(self.dyn.instance, self.dyn.coloring()).raise_if_invalid()

    @invariant()
    def graph_is_simple(self):
        g = self.dyn.instance.graph
        assert not any(u == v for u, v in g.edges)
        assert isinstance(g, nx.Graph)


DynamicMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestDynamicStateful = DynamicMachine.TestCase
