"""Batched multi-instance execution (:mod:`repro.sim.batch`).

The batched path's entire value rests on one claim: packing k instances
into a :class:`~repro.sim.batch.BatchCSRGraph` changes *nothing* about
any instance's result — outputs, palettes, metrics, per-round
accounting, fault behavior, even the exact exception a failing instance
raises.  This suite attacks the claim from four directions:

* structural properties of the container itself (hypothesis: pack/unpack
  round-trips on gappy unsorted labels, gather/scatter never crossing an
  instance boundary, degenerate batches);
* the fuzz corpus replayed through the batched path in groups of
  1/4/16, node-for-node against the per-case results;
* fault batteries — every fault class plus crash-stop halting, batched
  runs compared to per-instance runs down to the per-round fault
  columns of :func:`repro.obs.compare_round_accounting`;
* the per-instance budget-of-record rule (PR 2) in
  :func:`~repro.sim.batch.merge_sequential_batch`: a mixed-budget batch
  under a single scalar limit must raise, never silently unify.
"""

import random

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import graphs
from repro.faults import FaultPlan
from repro.fuzz import load_corpus, run_case, run_cases_batched
from repro.obs import ENGINE_VECTORIZED, RunRecorder, compare_round_accounting
from repro.sim.batch import (
    BatchCSRGraph,
    linial_vectorized_batch,
    merge_sequential_batch,
)
from repro.sim.engine import CSRGraph
from repro.sim.metrics import RunMetrics
from repro.sim.vectorized import linial_vectorized

CORPUS = "tests/corpus"


# ----------------------------------------------------------------------
# hypothesis: the container itself
# ----------------------------------------------------------------------
@st.composite
def labeled_graphs(draw):
    """A small graph with gappy, unsorted integer labels."""
    n = draw(st.integers(0, 12))
    labels = draw(
        st.lists(st.integers(0, 10**6), min_size=n, max_size=n, unique=True)
    )
    g = nx.Graph()
    g.add_nodes_from(labels)
    if n >= 2:
        m = draw(st.integers(0, min(16, n * (n - 1) // 2)))
        rng = random.Random(draw(st.integers(0, 2**31)))
        for _ in range(m):
            u, v = rng.sample(labels, 2)
            g.add_edge(u, v)
    return g


batch_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestBatchCSRGraphProperties:
    @batch_settings
    @given(st.lists(labeled_graphs(), min_size=0, max_size=5))
    def test_members_bit_identical_to_per_graph_freeze(self, gs):
        """The batched freeze must be invisible: every member carved out
        of the global arrays equals ``CSRGraph.from_networkx``."""
        batch = BatchCSRGraph.from_graphs(gs)
        assert batch.k == len(gs)
        for j, g in enumerate(gs):
            ref = CSRGraph.from_networkx(g)
            member = batch.members[j]
            assert member.n == ref.n
            assert member.nodes == ref.nodes
            assert member.index == ref.index
            assert np.array_equal(member.indptr, ref.indptr)
            assert np.array_equal(member.indices, ref.indices)
            assert np.array_equal(member.src, ref.src)

    @batch_settings
    @given(st.lists(labeled_graphs(), min_size=0, max_size=5))
    def test_gather_scatter_round_trip(self, gs):
        batch = BatchCSRGraph.from_graphs(gs)
        rng = random.Random(13)
        mappings = [
            {v: rng.randrange(10**9) for v in g.nodes} for g in gs
        ]
        dense = batch.gather(mappings)
        assert dense.shape == (batch.n,)
        assert batch.scatter(dense) == mappings
        # split returns the same per-member values as scatter, as views
        for j, part in enumerate(batch.split(dense)):
            assert np.array_equal(
                part, batch.members[j].gather(mappings[j])
            )

    @batch_settings
    @given(st.lists(labeled_graphs(), min_size=1, max_size=5))
    def test_adjacency_never_crosses_instance_boundaries(self, gs):
        """Block-diagonality: every neighbor (and edge source) of a
        member's dense nodes lies inside that member's own node range."""
        batch = BatchCSRGraph.from_graphs(gs)
        for j in range(batch.k):
            nsl, esl = batch.node_slice(j), batch.edge_slice(j)
            for arr in (batch.indices[esl], batch.src[esl]):
                if arr.size:
                    assert arr.min() >= nsl.start
                    assert arr.max() < nsl.stop
            assert (batch.instance_id[nsl] == j).all()
        # offsets tile the global ranges exactly
        assert batch.node_offsets[-1] == batch.n
        assert batch.edge_offsets[-1] == batch.num_directed_edges
        assert batch.indptr[batch.node_offsets].tolist() == (
            batch.edge_offsets.tolist()
        )

    def test_degenerate_batches(self):
        # k=1 wraps a single instance unchanged
        g = graphs.random_regular(10, 3, seed=1)
        one = BatchCSRGraph.from_graphs([g])
        assert one.k == 1 and one.n == 10
        (res,) = linial_vectorized_batch([g])
        single = linial_vectorized(g)
        assert res[0].assignment == single[0].assignment
        assert res[2] == single[2]

        # an empty member and an all-isolated member among real ones
        empty = nx.Graph()
        isolated = nx.Graph()
        isolated.add_nodes_from([7, 3, 99])
        batch = BatchCSRGraph.from_graphs([g, empty, isolated])
        assert batch.members[1].n == 0
        assert batch.members[2].n == 3
        assert batch.members[2].num_directed_edges == 0
        outs = linial_vectorized_batch([g, empty, isolated])
        for graph, out in zip([g, empty, isolated], outs):
            ref = linial_vectorized(graph)
            assert out[0].assignment == ref[0].assignment
            assert out[1].summary() == ref[1].summary()
            assert out[2] == ref[2]

    def test_k_zero(self):
        batch = BatchCSRGraph.from_graphs([])
        assert batch.k == 0 and batch.n == 0
        assert linial_vectorized_batch([]) == []

    def test_directed_graph_rejected(self):
        with pytest.raises(ValueError, match="undirected"):
            BatchCSRGraph.from_graphs([nx.DiGraph([(1, 2)])])


# ----------------------------------------------------------------------
# the corpus, replayed through the batched path
# ----------------------------------------------------------------------
class TestCorpusBatchedReplay:
    @pytest.fixture(scope="class")
    def corpus_outcomes(self):
        entries = load_corpus(CORPUS)
        assert entries, "fuzz corpus is empty"
        cases = [case for _, case in entries]
        return cases, [run_case(case) for case in cases]

    @pytest.mark.parametrize("group_size", [1, 4, 16])
    def test_batched_outcomes_match_per_case(self, corpus_outcomes, group_size):
        """Every corpus entry, replayed in random groups: the batched
        outcome must equal the per-case outcome field for field."""
        cases, single = corpus_outcomes
        order = list(range(len(cases)))
        random.Random(group_size).shuffle(order)
        outcomes: dict[int, object] = {}
        for start in range(0, len(order), group_size):
            group = order[start : start + group_size]
            for idx, outcome in zip(
                group, run_cases_batched([cases[i] for i in group])
            ):
                outcomes[idx] = outcome
        for i in range(len(cases)):
            a, b = single[i], outcomes[i]
            assert a.ok == b.ok, cases[i].describe()
            assert a.failures == b.failures, cases[i].describe()


# ----------------------------------------------------------------------
# fault batteries
# ----------------------------------------------------------------------
def _spread_init(g: nx.Graph) -> dict[int, int]:
    """Distinct, widely spread initial colors — m0 large enough that the
    Linial schedule has real rounds to batch."""
    return {
        v: (j * 66667) % (10**7)
        for j, v in enumerate(sorted(g.nodes()))
    }


class TestBatchedFaults:
    def _battery(self, plans, n=150, degree=4):
        gs = [
            graphs.random_regular(n, degree, seed=900 + i)
            for i in range(len(plans))
        ]
        inits = [_spread_init(g) for g in gs]
        recs_b = [
            RunRecorder(engine=ENGINE_VECTORIZED, algorithm="linial_faulty")
            for _ in gs
        ]
        batched = linial_vectorized_batch(
            gs,
            initial_colors=inits,
            faults=plans,
            recorders=recs_b,
            return_exceptions=True,
        )
        for j, g in enumerate(gs):
            rec_s = RunRecorder(
                engine=ENGINE_VECTORIZED, algorithm="linial_faulty"
            )
            try:
                ref = linial_vectorized(
                    g,
                    initial_colors=inits[j],
                    faults=plans[j],
                    recorder=rec_s,
                )
                ref_err = None
            except Exception as exc:  # noqa: BLE001 - comparing verbatim
                ref, ref_err = None, exc
            out = batched[j]
            if isinstance(out, BaseException):
                assert ref_err is not None, f"instance {j} halted only batched"
                assert type(out) is type(ref_err)
                assert str(out) == str(ref_err)
            else:
                assert ref_err is None, f"instance {j} halted only single"
                assert ref[0].assignment == out[0].assignment
                assert ref[1].summary() == out[1].summary()
                assert ref[2] == out[2]
            cmp = compare_round_accounting(rec_s.record, recs_b[j].record)
            assert cmp["rounds_equal"], (j, cmp)
            assert cmp["accounting_equal"], (j, cmp)
            assert cmp["faults_equal"], (j, cmp)
            assert cmp["totals_equal"], (j, cmp)

    def test_every_fault_class_matches_per_instance(self):
        self._battery(
            [
                FaultPlan(seed=1, p_drop=0.3),
                FaultPlan(seed=2, p_corrupt=0.25),
                FaultPlan(seed=3, p_delay=0.3),
                FaultPlan(seed=4, p_duplicate=0.3),
                FaultPlan(seed=6, p_drop=0.15, p_delay=0.15, p_corrupt=0.1),
                None,  # a fault-free sibling rides in the same batch
            ]
        )

    def test_crash_stop_halts_identically(self):
        """A crash-stop member records the same HaltingError (verbatim
        message) while siblings complete normally."""
        self._battery(
            [
                FaultPlan(
                    seed=5, p_crash=0.8, crash_horizon=4, recovery_rounds=None
                ),
                FaultPlan(seed=1, p_drop=0.3),
                None,
            ]
        )

    def test_with_offset_plans_match(self):
        """Offset plans (the restart-wrapper idiom) batch like any other:
        the shifted fault schedule is honored per instance."""
        base = FaultPlan(seed=9, p_drop=0.35, p_corrupt=0.1)
        self._battery([base, base.with_offset(3), base.with_offset(11)])


# ----------------------------------------------------------------------
# the budget-of-record rule (PR 2) on the batch path
# ----------------------------------------------------------------------
class TestMergeSequentialBatch:
    def _metrics(self, limit):
        m = RunMetrics(bandwidth_limit=limit)
        m.observe_round([4])
        return m

    def test_mixed_budget_scalar_raises(self):
        firsts = [self._metrics(32), self._metrics(64)]
        seconds = [self._metrics(32), self._metrics(64)]
        with pytest.raises(ValueError, match="mixed-budget"):
            merge_sequential_batch(firsts, seconds, bandwidth_limits=32)

    def test_per_instance_limits_match_sequential_merges(self):
        firsts = [self._metrics(32), self._metrics(64)]
        seconds = [self._metrics(32), self._metrics(64)]
        merged = merge_sequential_batch(
            firsts, seconds, bandwidth_limits=[32, 64]
        )
        for first, second, limit, got in zip(
            firsts, seconds, [32, 64], merged
        ):
            ref = first.merge_sequential(second, bandwidth_limit=limit)
            assert got.summary() == ref.summary()

    def test_length_mismatches_raise(self):
        with pytest.raises(ValueError, match="first-phase"):
            merge_sequential_batch(
                [self._metrics(8)], [], bandwidth_limits=[8]
            )
        with pytest.raises(ValueError, match="bandwidth limits"):
            merge_sequential_batch(
                [self._metrics(8)],
                [self._metrics(8)],
                bandwidth_limits=[8, 8],
            )
