"""Tests for hypergraphs, their line graphs, and neighborhood independence."""

import networkx as nx
import pytest

from repro.graphs import (
    clique,
    greedy_neighborhood_independence,
    hypergraph_line_graph,
    neighborhood_independence,
    random_hypergraph,
    ring,
    star,
)


class TestRandomHypergraph:
    def test_edge_shapes(self):
        edges = random_hypergraph(20, 15, rank=3, seed=1)
        assert len(edges) == 15
        assert all(2 <= len(e) <= 3 for e in edges)
        assert all(len(set(e)) == len(e) for e in edges)
        assert len(set(edges)) == len(edges)

    def test_deterministic(self):
        a = random_hypergraph(20, 10, 3, seed=2)
        b = random_hypergraph(20, 10, 3, seed=2)
        assert a == b

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            random_hypergraph(10, 5, rank=1, seed=0)
        with pytest.raises(ValueError):
            random_hypergraph(2, 5, rank=3, seed=0)


class TestHypergraphLineGraph:
    def test_disjoint_edges_independent(self):
        lg = hypergraph_line_graph([(0, 1), (2, 3), (4, 5)])
        assert lg.number_of_edges() == 0

    def test_shared_vertex_adjacent(self):
        lg = hypergraph_line_graph([(0, 1, 2), (2, 3), (3, 4)])
        assert lg.has_edge(0, 1)
        assert lg.has_edge(1, 2)
        assert not lg.has_edge(0, 2)

    def test_rank_two_matches_graph_line_graph(self):
        g = ring(6)
        edges = sorted(tuple(sorted(e)) for e in g.edges)
        lg = hypergraph_line_graph(edges)
        from repro.graphs import line_graph

        lg_ref, _ = line_graph(g)
        assert nx.is_isomorphic(lg, lg_ref)


class TestNeighborhoodIndependence:
    def test_clique_is_one(self):
        assert neighborhood_independence(clique(6)) == 1

    def test_star_is_n_minus_one(self):
        assert neighborhood_independence(star(6)) == 5

    def test_ring_is_two(self):
        assert neighborhood_independence(ring(8)) == 2

    def test_cap_short_circuits(self):
        assert neighborhood_independence(star(10), cap=3) == 3

    def test_greedy_lower_bounds_exact(self):
        for g in (ring(8), star(7), clique(5)):
            assert greedy_neighborhood_independence(g) <= neighborhood_independence(g)

    def test_line_graph_of_rank_r_has_independence_at_most_r(self):
        # the structural fact the paper leans on: line graphs of rank-r
        # hypergraphs have neighborhood independence <= r
        for seed in range(5):
            rank = 3
            edges = random_hypergraph(14, 12, rank=rank, seed=seed)
            lg = hypergraph_line_graph(edges)
            assert neighborhood_independence(lg, cap=rank + 1) <= rank

    def test_graph_line_graph_independence_at_most_two(self):
        g = nx.gnp_random_graph(12, 0.4, seed=3)
        edges = sorted(tuple(sorted(e)) for e in g.edges)
        lg = hypergraph_line_graph(edges)
        if lg.number_of_nodes():
            assert neighborhood_independence(lg, cap=3) <= 2


class TestPaperMap:
    def test_all_references_resolve(self):
        from repro.paper_map import verify_all

        assert verify_all() == []

    def test_render_mentions_all_theorems(self):
        from repro.paper_map import render

        out = render()
        for key in ("Theorem 1.1", "Theorem 1.2", "Theorem 1.3", "Theorem 1.4"):
            assert key in out

    def test_cli_map_command(self, capsys):
        from repro.cli import main

        rc = main(["map"])
        assert rc == 0
        assert "Theorem 1.4" in capsys.readouterr().out
