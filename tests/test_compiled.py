"""The compiled backend (:mod:`repro.sim.compiled`).

The backend's contract is bit-identity with the vectorized engine —
outputs, metrics, palettes, and per-round accounting rows must match
exactly, numba-jitted or not (the numpy fallback is part of the
contract, so CI without numba exercises the same assertions).  The
suite checks:

* driver equivalence on assorted graph shapes, including gappy unsorted
  labels and explicit initial colorings;
* the fuzz corpus replayed through :data:`repro.fuzz.COMPILED_PAIRS`
  (fault cases excluded — ``supports_faults=False``);
* batched execution (:func:`repro.sim.compiled.linial_compiled_batch`)
  against the per-instance compiled runs;
* capability enforcement: fault plans raise
  :class:`~repro.sim.backends.CapabilityError`, never a silent wrong
  answer;
* the fuzz runner's ``backend="compiled"`` path, with skipped fault
  cases accounted in :attr:`repro.fuzz.FuzzReport.skipped`.
"""

import random

import networkx as nx
import pytest

from repro.faults import FaultPlan
from repro.fuzz import COMPILED_PAIRS, fuzz_run, load_corpus, run_case
from repro.graphs import gnp, random_regular, ring, torus
from repro.obs import (
    ENGINE_COMPILED,
    ENGINE_VECTORIZED,
    RunRecorder,
    compare_round_accounting,
)
from repro.sim.backends import CapabilityError
from repro.sim.compiled import (
    defective_split_compiled,
    greedy_list_compiled,
    linial_compiled,
    linial_compiled_batch,
)
from repro.sim.vectorized import (
    defective_split_vectorized,
    greedy_list_vectorized,
    linial_vectorized,
)

CORPUS = "tests/corpus"


def gappy(base, seed):
    """Relabel onto sparse unsorted integers (the labels fuzzing found)."""
    rng = random.Random(seed)
    labels = rng.sample(range(10**6), base.number_of_nodes())
    return nx.relabel_nodes(base, dict(zip(sorted(base.nodes), labels)))


GRAPHS = [
    ring(14),
    nx.complete_graph(9),
    gnp(40, 0.2, seed=5),
    random_regular(60, 6, seed=3),
    torus(5, 7),
    gappy(gnp(30, 0.25, seed=11), seed=11),
    nx.empty_graph(4),
]
IDS = ["ring", "clique", "gnp", "regular", "grid", "gappy", "edgeless"]


class TestLinialCompiledEquivalence:
    @pytest.mark.parametrize("g", GRAPHS, ids=IDS)
    @pytest.mark.parametrize("defect", [0, 1])
    def test_bit_identical_to_vectorized(self, g, defect):
        vec_rec = RunRecorder(engine=ENGINE_VECTORIZED)
        cpl_rec = RunRecorder(engine=ENGINE_COMPILED)
        vres, vm, vpal = linial_vectorized(g, defect=defect, recorder=vec_rec)
        cres, cm, cpal = linial_compiled(g, defect=defect, recorder=cpl_rec)
        assert cres.assignment == vres.assignment
        assert cm.summary() == vm.summary()
        assert cpal == vpal
        cmp = compare_round_accounting(vec_rec.record, cpl_rec.record)
        assert cmp["accounting_equal"], cmp

    def test_explicit_initial_colors_match(self):
        g = gnp(36, 0.3, seed=8)
        initial = {v: (3 * i) % 50 for i, v in enumerate(sorted(g.nodes))}
        vres, vm, vpal = linial_vectorized(g, initial_colors=initial)
        cres, cm, cpal = linial_compiled(g, initial_colors=initial)
        assert cres.assignment == vres.assignment
        assert (cm.summary(), cpal) == (vm.summary(), vpal)

    def test_recorder_engine_label(self):
        rec = RunRecorder(engine=ENGINE_COMPILED)
        linial_compiled(ring(8), recorder=rec)
        assert rec.record.engine == ENGINE_COMPILED
        assert rec.record.algorithm == "linial_compiled"


class TestGreedyAndSplitCompiled:
    @pytest.mark.parametrize("g", GRAPHS, ids=IDS)
    def test_greedy_matches_vectorized(self, g):
        from repro.core.instance import degree_plus_one_instance

        inst = degree_plus_one_instance(g, rng=random.Random(7))
        assert (
            greedy_list_compiled(inst).assignment
            == greedy_list_vectorized(inst).assignment
        )

    def test_greedy_rejects_nonzero_defects(self):
        from repro.core.colorspace import ColorSpace
        from repro.core.instance import uniform_instance

        inst = uniform_instance(ring(10), ColorSpace(3), [0, 1, 2], defect=1)
        with pytest.raises(ValueError, match="zero-defect"):
            greedy_list_compiled(inst)

    @pytest.mark.parametrize("defect", [1, 2])
    def test_defective_split_matches_vectorized(self, defect):
        g = random_regular(48, 6, seed=9)
        vec_rec = RunRecorder(engine=ENGINE_VECTORIZED)
        cpl_rec = RunRecorder(engine=ENGINE_COMPILED)
        vcls, vm, vpal = defective_split_vectorized(
            g, defect=defect, recorder=vec_rec
        )
        ccls, cm, cpal = defective_split_compiled(
            g, defect=defect, recorder=cpl_rec
        )
        assert ccls == vcls
        assert (cm.summary(), cpal) == (vm.summary(), vpal)
        cmp = compare_round_accounting(vec_rec.record, cpl_rec.record)
        assert cmp["accounting_equal"], cmp


class TestCapabilityEnforcement:
    def test_linial_compiled_rejects_faults(self):
        plan = FaultPlan.from_dict({"seed": 1, "p_drop": 0.2})
        with pytest.raises(CapabilityError, match="fault injection"):
            linial_compiled(ring(10), faults=plan)

    def test_batch_rejects_any_fault_plan(self):
        plan = FaultPlan.from_dict({"seed": 1, "p_drop": 0.2})
        with pytest.raises(CapabilityError, match="fault injection"):
            linial_compiled_batch([ring(10), ring(12)], faults=[None, plan])


class TestCompiledBatch:
    def test_batch_matches_per_instance(self):
        gs = [
            ring(14),
            gnp(40, 0.2, seed=5),
            random_regular(60, 6, seed=3),
            gappy(gnp(25, 0.3, seed=2), seed=2),
            nx.empty_graph(3),
        ]
        recs = [RunRecorder(engine=ENGINE_COMPILED) for _ in gs]
        outs = linial_compiled_batch(gs, defect=0, recorders=recs)
        for g, rec, (res, metrics, palette) in zip(gs, recs, outs):
            solo_rec = RunRecorder(engine=ENGINE_COMPILED)
            sres, sm, spal = linial_compiled(g, recorder=solo_rec)
            assert res.assignment == sres.assignment
            assert (metrics.summary(), palette) == (sm.summary(), spal)
            cmp = compare_round_accounting(solo_rec.record, rec.record)
            assert cmp["accounting_equal"], cmp

    def test_batch_spanning_multiple_tiles(self):
        """A batch whose dense node count exceeds one 2048-node tile must
        still match the per-instance runs — the tiling is invisible."""
        gs = [random_regular(1500, 6, seed=s) for s in (1, 2, 3)]
        outs = linial_compiled_batch(gs, defect=[0, 1, 0])
        for g, d, (res, metrics, palette) in zip(gs, [0, 1, 0], outs):
            sres, sm, spal = linial_compiled(g, defect=d)
            assert res.assignment == sres.assignment
            assert (metrics.summary(), palette) == (sm.summary(), spal)


class TestCompiledFuzzIntegration:
    def test_corpus_replays_clean_through_compiled_pairs(self):
        replayed = 0
        for path, case in load_corpus(CORPUS):
            if case.pair not in COMPILED_PAIRS or case.fault is not None:
                continue
            outcome = run_case(case, pairs=COMPILED_PAIRS)
            assert outcome.ok, f"{path}: {outcome.describe()}"
            replayed += 1
        assert replayed > 0, "corpus has no compiled-replayable entries"

    @pytest.mark.parametrize("batch_size", [0, 8])
    def test_fuzz_run_compiled_backend(self, batch_size):
        report = fuzz_run(
            seed=7,
            iterations=6,
            backend="compiled",
            shrink=False,
            batch_size=batch_size,
        )
        assert report.ok, report.describe()
        assert report.backend == "compiled"
        assert set(report.per_pair) <= set(COMPILED_PAIRS)
        # every generated trial is either run or skipped-for-faults, and
        # the linial stream does generate fault cases at these seeds
        assert report.cases_run + report.skipped == 6 * len(COMPILED_PAIRS)
        assert report.skipped > 0
        assert "skipped" in report.describe()

    def test_fuzz_run_vectorized_never_skips(self):
        report = fuzz_run(seed=7, iterations=4, shrink=False)
        assert report.skipped == 0
        assert report.backend == "vectorized"
