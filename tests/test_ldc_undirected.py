"""Tests for the undirected LDC wrappers (paper's bidirection equivalence)."""

import random

import pytest

from repro.core import ColorSpace
from repro.core.instance import scaled_budget_instance, uniform_instance
from repro.core.validate import validate_ldc
from repro.graphs import gnp, ring
from repro.algorithms.ldc_undirected import solve_ldc_main, solve_ldc_with_reduction
from repro.algorithms.linial import run_linial


def make_ldc_instance(n=40, seed=9, slack=35.0):
    rng = random.Random(seed)
    g = gnp(n, 0.2, seed=seed + 1)
    delta = max(d for _, d in g.degree)
    space = ColorSpace(int(slack * delta * delta * 1.2) + 128)
    inst = scaled_budget_instance(g, space, 2.0, slack, 2, rng)
    pre, _m, _p = run_linial(g)
    return g, inst, pre.assignment


class TestUndirectedLDC:
    def test_solve_main_valid(self):
        _g, inst, init = make_ldc_instance()
        res, metrics, _rep = solve_ldc_main(inst, init)
        validate_ldc(inst, res).raise_if_invalid()

    def test_rejects_directed(self):
        inst = uniform_instance(ring(5), ColorSpace(3), range(3), 0).to_oriented()
        with pytest.raises(ValueError):
            solve_ldc_main(inst, {v: v for v in range(5)})
        with pytest.raises(ValueError):
            solve_ldc_with_reduction(inst, {v: v for v in range(5)}, p=2)

    def test_with_reduction_valid_and_smaller_messages(self):
        _g, inst, init = make_ldc_instance(slack=45.0)
        res0, m0, _r0 = solve_ldc_main(inst, init)
        p = max(2, int(inst.space.size ** 0.5))
        res1, m1, _r1 = solve_ldc_with_reduction(inst, init, p=p)
        validate_ldc(inst, res0).raise_if_invalid()
        validate_ldc(inst, res1).raise_if_invalid()
        assert m1.max_message_bits <= m0.max_message_bits

    def test_condition_uses_degree_not_outdegree(self):
        # on the bidirected view beta_v == deg(v) exactly
        _g, inst, _init = make_ldc_instance()
        oriented = inst.to_oriented()
        for v in inst.graph.nodes:
            assert oriented.outdegree(v) == max(1, inst.degree(v))
