"""Replay the pinned failure corpus as regression tests.

Every JSON file under ``tests/corpus/`` is a differential case that was
once worth pinning (a shrunk fuzz failure, or a hand-picked exemplar of
a regime that previously diverged).  Each entry must replay green on the
current engines: a red entry here means a *fixed* bug has come back.
"""

from pathlib import Path

import pytest

from repro.fuzz import ENGINE_PAIRS, load_case, load_corpus, run_case

CORPUS_DIR = Path(__file__).parent / "corpus"


def corpus_paths():
    return sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    # the suite ships pinned exemplars; an empty corpus means the replay
    # tests below silently stopped guarding anything
    assert len(corpus_paths()) >= 4


def test_corpus_covers_every_pair():
    pairs = {load_case(p).pair for p in corpus_paths()}
    assert pairs == set(ENGINE_PAIRS)


@pytest.mark.parametrize("path", corpus_paths(), ids=lambda p: p.name)
def test_corpus_entry_replays_green(path):
    case = load_case(path)
    case.check_valid()
    outcome = run_case(case)
    assert outcome.ok, f"{path.name} regressed:\n{outcome.describe()}"


def test_filenames_match_content_digest():
    # corpus files are content-addressed; a hand-edited entry must be
    # re-saved (repro-cli fuzz does this) so its name tracks its content
    from repro.fuzz import case_filename

    for path in corpus_paths():
        assert path.name == case_filename(load_case(path))


def test_load_corpus_sees_all_entries():
    assert [p for p, _ in load_corpus(CORPUS_DIR)] == corpus_paths()
