"""Dynamic repair: maintain a list defective coloring under edge updates.

The paper's lineage cares about dynamic networks ([Bar16]'s title is
"...in static, dynamic, and faulty networks"): topologies change and
recomputing from scratch wastes the part of the coloring that is still
fine.  This module provides the standard local-repair loop:

* **edge deletions** never invalidate a defective coloring (defects only
  drop), so they are free;
* an **edge insertion** can push its two endpoints (only) over budget; the
  repair uncolors exactly the violated nodes and recolors them with the
  always-valid priority sweep of the Theorem 1.3 driver (pick a residually
  feasible color, orientation by recoloring order) — each sweep round
  recolors the id-maxima of the currently uncolored set.

Costs are charged like the main pipelines: one announce round per sweep
wave, color-index-sized messages.  Repairs are *local*: untouched nodes
keep their colors, and the repair region is the violated set plus nothing
else (its neighbors only re-learn colors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.coloring import ColoringResult
from ..core.conditions import ldc_exists_condition
from ..core.instance import ListDefectiveInstance
from ..exceptions import ConditionViolation, ScheduleError
from ..sim.message import index_bits
from ..sim.metrics import RunMetrics


@dataclass
class RepairReport:
    """What one update batch cost."""

    inserted_edges: int = 0
    deleted_edges: int = 0
    violated_nodes: int = 0
    recolored_nodes: int = 0
    sweep_rounds: int = 0
    global_recolor: bool = False
    recolor_log: list[int] = field(default_factory=list)


class DynamicColoring:
    """A maintained LDC solution over an evolving graph.

    Construct from a valid (instance, coloring) pair; apply update batches
    with :meth:`update`.  The invariant — the current coloring is a valid
    LDC solution of the current instance — is re-checkable at any time via
    :meth:`check` and is asserted by tests after every batch.
    """

    def __init__(
        self, instance: ListDefectiveInstance, coloring: ColoringResult
    ) -> None:
        if instance.directed:
            raise ValueError("dynamic repair maintains undirected LDC instances")
        self.instance = instance.copy()
        self.colors: dict[int, int] = dict(coloring.assignment)
        self.metrics = RunMetrics()
        bad = self._violated()
        if bad:
            raise ValueError(f"initial coloring already invalid at {sorted(bad)[:5]}")

    # ------------------------------------------------------------------
    def _same_color_neighbors(self, v: int) -> int:
        x = self.colors[v]
        return sum(
            1 for u in self.instance.graph.neighbors(v) if self.colors.get(u) == x
        )

    def _violated(self) -> set[int]:
        out = set()
        for v in self.instance.graph.nodes:
            x = self.colors[v]
            if self._same_color_neighbors(v) > self.instance.defects[v][x]:
                out.add(v)
        return out

    def check(self) -> bool:
        """Whether the maintained coloring is currently valid."""
        return not self._violated()

    def coloring(self) -> ColoringResult:
        """Snapshot of the current assignment."""
        return ColoringResult(dict(self.colors))

    # ------------------------------------------------------------------
    def update(
        self,
        insert: list[tuple[int, int]] | None = None,
        delete: list[tuple[int, int]] | None = None,
    ) -> RepairReport:
        """Apply an update batch and repair locally.

        Raises :class:`ConditionViolation` if the post-update instance
        violates Eq. (1) (no valid coloring can exist then — callers must
        extend lists first).
        """
        insert = list(insert or [])
        delete = list(delete or [])
        report = RepairReport(
            inserted_edges=len(insert), deleted_edges=len(delete)
        )
        g = self.instance.graph
        for u, v in delete:
            if g.has_edge(u, v):
                g.remove_edge(u, v)
        for u, v in insert:
            if u == v or not (u in g.nodes and v in g.nodes):
                raise ValueError(f"cannot insert edge {(u, v)}")
            g.add_edge(u, v)
        if not ldc_exists_condition(self.instance):
            raise ConditionViolation(
                "update pushed some node past Eq. (1); extend its list first"
            )

        # only insertion endpoints can newly violate
        suspects = {w for e in insert for w in e}
        violated = {
            v
            for v in suspects
            if self._same_color_neighbors(v) > self.instance.defects[v][self.colors[v]]
        }
        report.violated_nodes = len(violated)
        if not violated:
            return report

        # uncolor the violated set, then priority-sweep it back in
        uncolored = set(violated)
        for v in violated:
            del self.colors[v]
        # One node per round (the global id-maximum of the uncolored set):
        # concurrent picks could jointly overload a *common colored
        # neighbor's* defect budget, which singleton waves rule out; the
        # violated set is tiny (at most two nodes per inserted edge), so
        # the serialization costs only O(#violations) rounds.
        guard = 0
        while uncolored:
            guard += 1
            if guard > len(violated) + 2:
                raise ScheduleError("repair sweep failed to converge")
            v = max(uncolored)
            try:
                x = self._feasible_color(v)
            except ScheduleError:
                # Local repair can get greedily stuck on tight defect
                # budgets even when Eq. (1) guarantees existence — fall
                # back to Lemma A.1's global potential descent (rare; the
                # report flags it so callers can count the cost).
                self._global_recolor(uncolored)
                report.global_recolor = True
                report.recolored_nodes += len(uncolored)
                report.recolor_log.extend(sorted(uncolored))
                uncolored.clear()
                break
            self.colors[v] = x
            uncolored.discard(v)
            report.recolored_nodes += 1
            report.recolor_log.append(v)
            report.sweep_rounds += 1
            self.metrics.observe_uniform_round(
                1, index_bits(self.instance.space.size)
            )
        return report

    def _global_recolor(self, uncolored: set[int]) -> None:
        from .greedy import solve_ldc_potential

        full = solve_ldc_potential(self.instance)
        self.colors = dict(full.assignment)

    def _feasible_color(self, v: int) -> int:
        """A color within budget against *currently colored* neighbors and
        not overloading any colored neighbor's own budget."""
        g = self.instance.graph
        counts: dict[int, int] = {}
        for u in g.neighbors(v):
            cu = self.colors.get(u)
            if cu is not None:
                counts[cu] = counts.get(cu, 0) + 1
        for x in self.instance.lists[v]:
            if counts.get(x, 0) > self.instance.defects[v][x]:
                continue
            overload = False
            for u in g.neighbors(v):
                if self.colors.get(u) == x:
                    used = sum(
                        1
                        for w in g.neighbors(u)
                        if self.colors.get(w) == x
                    )
                    if used + 1 > self.instance.defects[u][x]:
                        overload = True
                        break
            if not overload:
                return x
        raise ScheduleError(
            f"node {v}: no locally feasible color during repair "
            "(defect budgets too tight for local repair; recolor globally)"
        )
