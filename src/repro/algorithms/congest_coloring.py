"""Theorem 1.4: deterministic (degree+1)-list coloring in CONGEST.

The paper's headline application: for color spaces of size poly(Delta), a
deterministic CONGEST algorithm running in ``sqrt(Delta) * polylog Delta +
O(log* n)`` rounds.  Pipeline:

1. Linial precoloring with O(Delta^2) colors, O(log* n) rounds [Lin87];
2. the Theorem 1.3 transformation (stages × arbdefective classes), with
3. Theorem 1.1's OLDC algorithm as the inner solver — optionally wrapped in
   Corollary 4.2's recursive color-space reduction to push per-message
   sizes from the Theta(Lambda log |C|) list encodings down toward the
   O(log n) CONGEST budget.

Every returned run carries full bit accounting, so experiment E09 can
tabulate CONGEST compliance against the Omega(Delta log Delta)-bit messages
of the [FHK16]/[MT20] LOCAL-model baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..analysis.bounds import DEFAULT_SCALE, ParamScale
from ..core.coloring import ColoringResult
from ..core.instance import ListDefectiveInstance, degree_plus_one_instance
from ..core.validate import validate_ldc
from ..sim.metrics import RunMetrics
from ..sim.phases import PhaseLog
from ..exceptions import ConditionViolation
from .arblist import solve_list_arbdefective
from .colorspace_reduction import corollary_4_2_p, solve_with_reduction
from .oldc_main import solve_oldc_main


@dataclass
class CongestReport:
    """Audit of one Theorem 1.4 run."""

    stages: int = 0
    oldc_runs: int = 0
    valid: bool = True
    reduction_levels: int = 0
    phases: "PhaseLog | None" = None


def reduced_oldc_solver(
    scale: ParamScale = DEFAULT_SCALE,
    model: str = "CONGEST",
    reduction_r: int = 0,
):
    """Theorem 1.1's solver, optionally behind Corollary 4.2's reduction.

    ``reduction_r = 0`` disables the reduction; ``r >= 1`` partitions the
    color space in ``r`` levels of branching ``|C|^(1/r)`` before the base
    solver runs, shrinking the list-encoding messages accordingly.
    """

    def base(instance: ListDefectiveInstance, init_coloring: dict[int, int]):
        return solve_oldc_main(instance, init_coloring, scale=scale, model=model)

    if reduction_r <= 0:
        return base

    def solve(instance: ListDefectiveInstance, init_coloring: dict[int, int]):
        p = corollary_4_2_p(instance.space.size, reduction_r)
        if p >= instance.space.size:
            return base(instance, init_coloring)
        result, metrics, rep = solve_with_reduction(
            instance, init_coloring, base, p=p, nu=1.0
        )
        return result, metrics, rep

    return solve


def congest_degree_plus_one(
    instance: ListDefectiveInstance,
    scale: ParamScale = DEFAULT_SCALE,
    model: str = "CONGEST",
    reduction_r: int = 0,
    validate: bool = True,
) -> tuple[ColoringResult, RunMetrics, CongestReport]:
    """Theorem 1.4: solve a (degree+1)-list coloring instance.

    ``instance`` must be undirected with all defects zero and each list of
    size >= degree + 1.  Returns (coloring, metrics, report); when
    ``validate`` is set the output is asserted to be a proper list coloring.
    """
    if instance.directed:
        raise ValueError("expected an undirected (degree+1)-list instance")
    for v in instance.graph.nodes:
        if any(d != 0 for d in instance.defects[v].values()):
            raise ConditionViolation(
                f"node {v}: (degree+1)-list coloring has zero defects"
            )
        if len(instance.lists[v]) < instance.graph.degree(v) + 1:
            raise ConditionViolation(f"node {v}: list smaller than degree + 1")

    solver = reduced_oldc_solver(scale, model, reduction_r)
    result, metrics, rep = solve_list_arbdefective(
        instance, oldc_solver=solver, scale=scale, model=model
    )
    report = CongestReport(
        stages=rep.stages, oldc_runs=rep.oldc_runs, phases=rep.phases
    )
    if reduction_r > 0:
        report.reduction_levels = reduction_r
    check = validate_ldc(instance, result)
    report.valid = bool(check)
    if validate:
        check.raise_if_invalid()
    return result, metrics, report


def congest_delta_plus_one(
    graph: nx.Graph,
    scale: ParamScale = DEFAULT_SCALE,
    model: str = "CONGEST",
    reduction_r: int = 0,
    validate: bool = True,
) -> tuple[ColoringResult, RunMetrics, CongestReport]:
    """The standard (Delta+1)-coloring via Theorem 1.4 (|C| = Delta + 1)."""
    instance = degree_plus_one_instance(graph)
    return congest_degree_plus_one(
        instance, scale=scale, model=model, reduction_r=reduction_r, validate=validate
    )
