"""All algorithms: substrates, the paper's contributions, and baselines."""

from .arbdefective import arbdefective_coloring
from .arblist import (
    ArbListReport,
    basic_oldc_solver,
    default_oldc_solver,
    solve_list_arbdefective,
)
from .barenboim import BarenboimReport, barenboim_coloring
from .baselines import (
    ListExchangeColoring,
    RandomizedListColoring,
    list_exchange_coloring,
    randomized_list_coloring,
)
from .colorspace_reduction import (
    ReductionReport,
    corollary_4_1_p,
    corollary_4_2_p,
    solve_with_corollary_4_1,
    solve_with_reduction,
)
from .congest_coloring import (
    CongestReport,
    congest_degree_plus_one,
    congest_delta_plus_one,
    reduced_oldc_solver,
)
from .defective import defective_class_partition, run_defective_coloring
from .dynamic import DynamicColoring, RepairReport
from .greedy import (
    greedy_list_coloring,
    sequential_color_order_by_degree,
    solve_arbdefective_euler,
    solve_ldc_potential,
)
from .ldc_undirected import solve_ldc_main, solve_ldc_with_reduction
from .linear_in_delta import LinearReport, linear_in_delta_coloring
from .linial import (
    LinialColoringAlgorithm,
    LinialStep,
    defective_schedule,
    linial_schedule,
    poly_coeffs,
    poly_eval,
    run_linial,
)
from .mt_selection import (
    FamilyOracle,
    NodeType,
    candidate_space,
    exact_greedy_assignment,
    seeded_family,
)
from .oldc_basic import (
    BasicOLDC,
    OLDCReport,
    gamma_class,
    single_defect_restriction,
    solve_oldc_basic,
)
from .mt20 import MT20ListColoring, MT20Report, mt20_list_coloring
from .oldc_main import MainOLDC, MainReport, solve_oldc_main
from .oriented_defective import run_oriented_defective
from .registry import REGISTRY, AlgorithmInfo, algorithm_names
from .reduction import (
    ScheduledListColoring,
    classic_delta_plus_one,
    reduce_to_list_coloring,
)

__all__ = [
    "REGISTRY",
    "AlgorithmInfo",
    "ArbListReport",
    "BarenboimReport",
    "BasicOLDC",
    "CongestReport",
    "DynamicColoring",
    "FamilyOracle",
    "LinialColoringAlgorithm",
    "LinialStep",
    "ListExchangeColoring",
    "MT20ListColoring",
    "MT20Report",
    "MainOLDC",
    "MainReport",
    "NodeType",
    "OLDCReport",
    "RandomizedListColoring",
    "ReductionReport",
    "RepairReport",
    "ScheduledListColoring",
    "algorithm_names",
    "arbdefective_coloring",
    "barenboim_coloring",
    "basic_oldc_solver",
    "candidate_space",
    "classic_delta_plus_one",
    "congest_degree_plus_one",
    "congest_delta_plus_one",
    "corollary_4_1_p",
    "corollary_4_2_p",
    "default_oldc_solver",
    "defective_class_partition",
    "defective_schedule",
    "exact_greedy_assignment",
    "gamma_class",
    "greedy_list_coloring",
    "LinearReport",
    "linear_in_delta_coloring",
    "linial_schedule",
    "list_exchange_coloring",
    "mt20_list_coloring",
    "poly_coeffs",
    "poly_eval",
    "randomized_list_coloring",
    "reduce_to_list_coloring",
    "reduced_oldc_solver",
    "run_defective_coloring",
    "run_oriented_defective",
    "run_linial",
    "seeded_family",
    "sequential_color_order_by_degree",
    "single_defect_restriction",
    "solve_arbdefective_euler",
    "solve_ldc_main",
    "solve_ldc_potential",
    "solve_ldc_with_reduction",
    "solve_list_arbdefective",
    "solve_oldc_basic",
    "solve_oldc_main",
    "solve_with_corollary_4_1",
    "solve_with_reduction",
]
