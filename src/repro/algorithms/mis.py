"""Luby's randomized MIS and the MIS -> (Delta+1)-coloring reduction [Lub86].

The oldest entry in the paper's bibliography: Luby's parallel MIS runs in
O(log n) rounds w.h.p., and a maximal independent set of the *product
graph* ``G x K_{Delta+1}`` (one copy (v, c) per node and candidate color;
copies of one node pairwise adjacent; (u, c) ~ (v, c) for edges u~v) is
exactly a (Delta+1)-coloring of ``G``.  Both are classic substrates the
randomized-coloring literature builds on, and they give the experiments a
second independent randomized baseline beside the trial-coloring one.

Distributed implementation note: each product-graph node (v, c) is hosted
by the real node ``v``, so a product round costs one real round and the
per-message payload is a set of candidate colors (O(Delta log Delta) bits
worst case — charged as such; the simpler trial-coloring baseline is the
bandwidth-friendly one).
"""

from __future__ import annotations

import random
from typing import Any

import networkx as nx

from ..core.coloring import ColoringResult
from ..sim.message import Message, index_bits
from ..sim.metrics import RunMetrics
from ..sim.network import SyncNetwork
from ..sim.node import DistributedAlgorithm, NodeView


class LubyMIS(DistributedAlgorithm):
    """Luby's MIS: undecided nodes draw random priorities each round; local
    maxima join the set, their neighbors leave.  Inputs: ``seed``."""

    name = "luby-mis"

    def init_state(self, view: NodeView) -> dict[str, Any]:
        return {
            "rng": random.Random(int(view.inputs.get("seed", 0)) * 65537 + view.id),
            "state": "undecided",  # undecided | in | out
            "draw": None,
            "undecided_neigh": set(view.neighbors),
            "announced": False,
        }

    def send(self, view: NodeView, state, rnd: int) -> dict[int, Message]:
        if state["state"] != "undecided":
            if not state["announced"]:
                state["announced"] = True
                msg = Message(("decided", state["state"] == "in"), bits=2)
                return {u: msg for u in view.neighbors}
            return {}
        state["draw"] = state["rng"].random()
        msg = Message(("draw", state["draw"]), bits=64)
        return {u: msg for u in view.neighbors}

    def receive(self, view: NodeView, state, rnd: int, inbox) -> None:
        if state["state"] != "undecided":
            return
        joined_neighbor = False
        draws: dict[int, float] = {}
        for u, m in inbox.items():
            kind, payload = m.payload
            if kind == "decided":
                state["undecided_neigh"].discard(u)
                if payload:
                    joined_neighbor = True
            else:
                draws[u] = payload
        if joined_neighbor:
            state["state"] = "out"
            return
        alive = {u for u in state["undecided_neigh"] if u in draws}
        my = (state["draw"], view.id)
        if all(my > (draws[u], u) for u in alive):
            state["state"] = "in"

    def is_done(self, view: NodeView, state) -> bool:
        return state["state"] != "undecided" and state["announced"]

    def output(self, view: NodeView, state) -> bool:
        return state["state"] == "in"


def luby_mis(
    graph: nx.Graph, seed: int = 0, model: str = "CONGEST", max_rounds: int = 10_000
) -> tuple[set[int], RunMetrics]:
    """Run Luby's MIS; returns the independent set and metrics."""
    net = SyncNetwork(graph, model=model)
    inputs = {v: {"seed": seed} for v in graph.nodes}
    outputs, metrics = net.run(LubyMIS(), inputs, max_rounds=max_rounds)
    return {v for v, flag in outputs.items() if flag}, metrics


def is_maximal_independent_set(graph: nx.Graph, mis: set[int]) -> bool:
    """Independence + maximality (every outsider has a neighbor inside)."""
    for u, v in graph.edges:
        if u in mis and v in mis:
            return False
    for v in graph.nodes:
        if v not in mis and not any(u in mis for u in graph.neighbors(v)):
            return False
    return True


def product_graph(graph: nx.Graph, colors: int) -> nx.Graph:
    """``G x K_colors``: nodes (v, c) encoded as ``v * colors + c``."""
    pg = nx.Graph()
    for v in graph.nodes:
        for c in range(colors):
            pg.add_node(v * colors + c)
    for v in graph.nodes:
        for a in range(colors):
            for b in range(a + 1, colors):
                pg.add_edge(v * colors + a, v * colors + b)
    for u, v in graph.edges:
        for c in range(colors):
            pg.add_edge(u * colors + c, v * colors + c)
    return pg


def coloring_via_mis(
    graph: nx.Graph, seed: int = 0, model: str = "CONGEST"
) -> tuple[ColoringResult, RunMetrics]:
    """[Lub86]'s reduction: a (Delta+1)-coloring from an MIS of G x K_{Delta+1}.

    An MIS of the product graph picks at most one (v, c) per node
    (node-copies form a clique) and never the same c across an edge; it
    picks *at least* one per node because a colorless node would have some
    color c unused in its whole neighborhood, contradicting maximality.

    Metrics are synthesized from the product run: the product graph is
    simulated directly, and since node v hosts all its copies, real rounds
    equal product rounds while per-edge payloads aggregate the Delta+1
    copies' messages (charged accordingly).
    """
    delta = max((d for _, d in graph.degree), default=0)
    colors = delta + 1
    pg = product_graph(graph, colors)
    mis, pg_metrics = luby_mis(pg, seed=seed, model=model)
    assignment: dict[int, int] = {}
    for node in mis:
        assignment[node // colors] = node % colors
    # real-network accounting: one real message per graph edge direction
    # per round, carrying the copies' aggregate (<= colors * 64 bits + ids)
    metrics = RunMetrics(bandwidth_limit=pg_metrics.bandwidth_limit)
    per_round = 2 * graph.number_of_edges()
    bits = colors * (64 + index_bits(max(2, colors)))
    for _ in range(pg_metrics.rounds):
        metrics.observe_uniform_round(per_round, bits)
    return ColoringResult(assignment), metrics
