"""The main OLDC algorithm — Theorem 1.1 (via Lemmas 3.7 and 3.8).

Two cooperating pieces:

* :class:`MainOLDC` — Lemma 3.7's two-phase algorithm, given gamma-classes.

  **Phase I** iterates the classes in *ascending* order; when class ``i``
  fires, its nodes (a) drop *bad colors* — colors already claimed by more
  than ``d_v/4`` lower-class out-neighbors' ``C_u`` sets, (b) derive their
  candidate family ``K_v`` from the filtered list's type, (c) broadcast the
  type, (d) pick ``C_v in K_v`` minimizing conflicts against same-class
  out-neighbors only, and (e) broadcast ``C_v`` as an index.  Two rounds per
  class.

  **Phase II** iterates the classes in *descending* order; a firing node
  picks the color of ``C_v`` with the lowest risk count (occurrences in the
  ``C_u`` of not-yet-colored same/lower-class out-neighbors plus exact hits
  among already-colored ones) and broadcasts it.  One round per class.
  We deliberately count *all* same/lower-class neighbors' sets in the risk
  (the paper excludes lower classes — covered by the bad-color filter — and
  the few "bad" same-class neighbors; including them costs no communication
  and only lowers the realized defect).

* :func:`solve_oldc_main` — Lemma 3.8's reduction of the multi-defect
  problem: round ``(d+1)^2`` to powers of four, bucket each list by defect
  class ``mu``, compute the weights ``lambda_{v,mu}`` and the candidate
  class map ``i_v(mu) = mu - r + 2`` (Case I) or the single heavy bucket
  (Case II), then *choose* each node's gamma-class by solving an auxiliary
  g-generalized OLDC instance over the color space ``[h]`` with defects
  ``delta_{v,i} = floor(sqrt(lambda * R_v))`` using Lemma 3.6's algorithm,
  and finally run :class:`MainOLDC` on the restricted lists.

Round complexity: O(h') + O(h) = O(log beta); message sizes as in
Theorem 1.1 (types dominate: ``min{|C|, Lambda log|C|}`` bits).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from ..analysis.bounds import DEFAULT_SCALE, ParamScale
from ..core.colorspace import ColorSpace
from ..core.coloring import ColoringResult
from ..core.conflict import tau_g_conflict
from ..core.instance import ListDefectiveInstance
from ..sim.message import Message, color_list_bits, index_bits, int_bits
from ..sim.metrics import RunMetrics
from ..sim.network import SyncNetwork
from ..sim.node import DistributedAlgorithm, NodeView
from .mt_selection import FamilyOracle, NodeType
from .oldc_basic import solve_oldc_basic


# ----------------------------------------------------------------------
# Lemma 3.7: the two-phase algorithm, classes given
# ----------------------------------------------------------------------
class MainOLDC(DistributedAlgorithm):
    """Lemma 3.7's algorithm (module docstring has the play-by-play).

    Per-node inputs: ``colors`` (the class's color bucket), ``defect``
    (single value), ``init_color``, ``gamma_class``, ``k`` (|C_v| target).
    Shared: ``h``, ``tau``, ``oracle``, ``space_size``, ``m``, ``beta``.

    Round layout (h = number of classes):
      * rounds ``2(i-1)`` / ``2(i-1)+1`` — Phase I of class i (types / C's);
      * round ``2h + (h - i)`` — Phase II firing of class i.
    """

    name = "oldc-main"

    def init_state(self, view: NodeView) -> dict[str, Any]:
        return {
            "colors": tuple(view.inputs["colors"]),
            "defect": int(view.inputs["defect"]),
            "init_color": int(view.inputs["init_color"]),
            "class": int(view.inputs["gamma_class"]),
            "k": max(1, int(view.inputs["k"])),
            "type": None,
            "family": None,
            "C": None,
            "color": None,
            "risk": None,
            "neigh_class": dict(view.inputs.get("neigh_classes", {})),
            "neigh_type": {},
            "neigh_k": {},
            "neigh_C": {},
            "fixed_colors": {},
            "done": False,
        }

    # -- round geometry ---------------------------------------------------
    @staticmethod
    def _type_round(i: int) -> int:
        return 2 * (i - 1)

    @staticmethod
    def _cset_round(i: int) -> int:
        return 2 * (i - 1) + 1

    @staticmethod
    def _fire_round(i: int, h: int) -> int:
        return 2 * h + (h - i)

    # -- sending -----------------------------------------------------------
    def send(self, view: NodeView, state, rnd: int) -> dict[int, Message]:
        i, h = state["class"], view.globals["h"]
        if rnd == self._type_round(i):
            self._build_filtered_type(view, state)
            payload = (
                state["init_color"],
                state["type"].colors,
                state["class"],
                state["k"],
            )
            bits = (
                color_list_bits(len(state["type"].colors), view.globals["space_size"])
                + int_bits(max(1, view.globals["m"] - 1))
                + index_bits(max(2, h))
            )
            msg = Message(payload, bits=bits)
            return {u: msg for u in view.neighbors}
        if rnd == self._cset_round(i):
            idx = state["family"].index(state["C"])
            msg = Message(idx, bits=index_bits(max(2, len(state["family"]))))
            return {u: msg for u in view.neighbors}
        if rnd == self._fire_round(i, h):
            msg = Message(
                state["color"], bits=index_bits(view.globals["space_size"])
            )
            return {u: msg for u in view.neighbors}
        return {}

    # -- receiving ----------------------------------------------------------
    def receive(self, view: NodeView, state, rnd: int, inbox) -> None:
        i, h = state["class"], view.globals["h"]
        oracle: FamilyOracle = view.globals["oracle"]
        tau = view.globals["tau"]
        phase1_end = 2 * h
        if rnd < phase1_end:
            if rnd % 2 == 0:  # a type round
                for u, m in inbox.items():
                    init_c, colors, cls, k = m.payload
                    state["neigh_type"][u] = NodeType(init_c, tuple(colors))
                    state["neigh_class"][u] = cls
                    state["neigh_k"][u] = k
                if rnd == self._type_round(i):
                    self._solve_p1(view, state, oracle, tau)
            else:  # a C-set round
                for u, m in inbox.items():
                    t = state["neigh_type"].get(u)
                    if t is None:
                        continue
                    fam = oracle.family(t, state["neigh_k"][u])
                    state["neigh_C"][u] = fam[m.payload]
        else:
            for u, m in inbox.items():
                state["fixed_colors"][u] = m.payload
        fire = self._fire_round(i, h)
        if rnd == fire - 1 and state["color"] is None:
            self._pick_color(view, state)
        if rnd >= fire:
            state["done"] = True

    # -- local steps --------------------------------------------------------
    def _build_filtered_type(self, view: NodeView, state) -> None:
        """Drop bad colors (claimed by > d_v/4 lower-class C_u) and fix the
        type + candidate family for this node."""
        budget = state["defect"] / 4.0
        counts: dict[int, int] = {}
        my_class = state["class"]
        for u in view.out_neighbors:
            if state["neigh_class"].get(u, my_class) < my_class:
                cu = state["neigh_C"].get(u)
                if cu:
                    for x in cu:
                        counts[x] = counts.get(x, 0) + 1
        kept = tuple(
            x for x in state["colors"] if counts.get(x, 0) <= budget
        )
        if not kept:  # degenerate practical case: keep the least-claimed color
            kept = (min(state["colors"], key=lambda x: (counts.get(x, 0), x)),)
        state["type"] = NodeType(state["init_color"], kept)
        state["k"] = min(state["k"], len(kept))
        oracle: FamilyOracle = view.globals["oracle"]
        state["family"] = oracle.family(state["type"], state["k"])

    def _solve_p1(self, view: NodeView, state, oracle: FamilyOracle, tau: int) -> None:
        """Pick C_v minimizing conflicts against same-class out-neighbors."""
        my_class = state["class"]
        rivals = []
        for u in view.out_neighbors:
            if state["neigh_class"].get(u) == my_class and u in state["neigh_type"]:
                rivals.append(oracle.family(state["neigh_type"][u], state["neigh_k"][u]))
        best, best_score = None, None
        for cand in state["family"]:
            score = 0
            for fam_u in rivals:
                if any(tau_g_conflict(cand, cu, tau, 0) for cu in fam_u):
                    score += 1
            if best_score is None or score < best_score:
                best, best_score = cand, score
                if score == 0:
                    break
        state["C"] = best

    def _pick_color(self, view: NodeView, state) -> None:
        my_class = state["class"]
        best, best_risk = None, None
        for x in state["C"]:
            risk = 0
            for u in view.out_neighbors:
                ucls = state["neigh_class"].get(u)
                if ucls is None:
                    continue
                if u in state["fixed_colors"]:
                    if state["fixed_colors"][u] == x:
                        risk += 1
                elif ucls <= my_class:
                    cu = state["neigh_C"].get(u)
                    if cu is not None and x in cu:
                        risk += 1
            if best_risk is None or (risk, x) < (best_risk, best):
                best, best_risk = x, risk
        state["color"] = best
        state["risk"] = best_risk

    def is_done(self, view: NodeView, state) -> bool:
        return state["done"]

    def output(self, view: NodeView, state) -> tuple[int, int]:
        return (state["color"], state["risk"])


# ----------------------------------------------------------------------
# Lemma 3.8: defect bucketing and the auxiliary class-assignment problem
# ----------------------------------------------------------------------
@dataclass
class MainReport:
    """Audit record for a Theorem 1.1 run."""

    h: int = 0
    h_aux: int = 0
    tau: int = 0
    aux_rounds: int = 0
    main_rounds: int = 0
    case_ii_nodes: int = 0
    max_risk: int = 0
    guarantee_met: bool = True
    class_of: dict[int, int] = field(default_factory=dict)


def _pow2_floor(x: int) -> int:
    return 1 << (max(1, x).bit_length() - 1)


def _pow2_ceil(x: int) -> int:
    return 1 << max(0, (max(1, x) - 1).bit_length())


def _bucket_lists(
    instance: ListDefectiveInstance, v: int, h: int
) -> tuple[dict[int, list[int]], dict[int, int]]:
    """Bucket L_v by defect class mu = 1 + log2(beta_hat / (d+1)_hat).

    Returns (mu -> colors, mu -> common rounded defect).  Rounding is down
    for defects (conservative) and up for the outdegree, as in the paper.
    """
    beta_hat = _pow2_ceil(instance.outdegree(v))
    buckets: dict[int, list[int]] = {}
    common: dict[int, int] = {}
    for x in instance.lists[v]:
        dp1 = _pow2_floor(instance.defects[v][x] + 1)
        mu = 1 + max(0, int(math.log2(beta_hat)) - int(math.log2(dp1)))
        mu = min(max(1, mu), h)
        buckets.setdefault(mu, []).append(x)
        common[mu] = min(common.get(mu, dp1 - 1), dp1 - 1)
    return buckets, common


def solve_oldc_main(
    instance: ListDefectiveInstance,
    init_coloring: dict[int, int],
    scale: ParamScale = DEFAULT_SCALE,
    model: str = "CONGEST",
) -> tuple[ColoringResult, RunMetrics, MainReport]:
    """Theorem 1.1: solve a (multi-defect) OLDC instance in O(log beta) rounds.

    Pipeline: defect bucketing (Lemma 3.8) -> auxiliary gamma-class OLDC over
    ``[h]`` solved with Lemma 3.6's algorithm -> Lemma 3.7's two-phase main
    algorithm.  Returns (coloring, merged metrics, report); validate with
    :func:`repro.core.validate.validate_oldc`.
    """
    if not instance.directed:
        raise ValueError("solve_oldc_main expects a directed instance")
    graph = instance.graph
    if graph.number_of_nodes() == 0:
        return ColoringResult({}), RunMetrics(), MainReport()
    beta_hat = _pow2_ceil(instance.max_outdegree)
    h = 1 + int(math.log2(beta_hat))
    m = max(init_coloring.values()) + 1 if init_coloring else 1

    # ---- per-node buckets, lambdas, candidate classes -------------------
    report = MainReport(h=h, tau=scale.tau)
    aux_lists: dict[int, tuple[int, ...]] = {}
    aux_defects: dict[int, dict[int, int]] = {}
    mu_of_class: dict[int, dict[int, int]] = {}
    buckets_of: dict[int, dict[int, list[int]]] = {}
    common_of: dict[int, dict[int, int]] = {}
    for v in graph.nodes:
        buckets, common = _bucket_lists(instance, v, h)
        buckets_of[v], common_of[v] = buckets, common
        r_v = scale.alpha * 4.0 * _pow2_ceil(instance.outdegree(v)) ** 2
        d_total = sum(
            (common[mu] + 1) ** 2 * len(cols) for mu, cols in buckets.items()
        )
        lam: dict[int, float] = {}
        for mu, cols in buckets.items():
            d_mu = (common[mu] + 1) ** 2 * len(cols)
            frac = d_mu / d_total if d_total else 0.0
            lam[mu] = (
                0.0
                if frac < 1.0 / (2 * h)
                else 4.0 ** math.floor(math.log(frac, 4))
            )
        heavy = [mu for mu, l in lam.items() if l >= 0.25]
        classes: dict[int, int] = {}  # class i -> mu
        if heavy:  # Case II
            mu_v = min(heavy)
            i_v = min(max(1, mu_v), h)
            classes[i_v] = mu_v
            delta_of = {i_v: max(0, int(math.isqrt(int(r_v))) // 4)}
            report.case_ii_nodes += 1
        else:  # Case I
            delta_of = {}
            for mu in sorted(lam):
                if lam[mu] <= 0.0:
                    continue
                r = round(-math.log(lam[mu], 4))
                f = mu - r + 2
                if 1 <= f <= h and f not in classes:
                    classes[f] = mu
                    delta_of[f] = max(
                        0, int(math.isqrt(int(lam[mu] * r_v)))
                    )
            if not classes:  # practical fallback: heaviest bucket wins
                mu_v = max(buckets, key=lambda mu: (len(buckets[mu]), -mu))
                i_v = min(max(1, mu_v), h)
                classes[i_v] = mu_v
                delta_of[i_v] = max(0, int(math.isqrt(int(r_v))) // 4)
        aux_lists[v] = tuple(sorted(classes))
        aux_defects[v] = {i: delta_of[i] for i in classes}
        mu_of_class[v] = classes

    # ---- the auxiliary class-assignment OLDC ----------------------------
    g_aux = int(math.floor(math.log2(h))) if h > 1 else 0
    aux_space = ColorSpace(h + 1)
    aux_instance = ListDefectiveInstance(
        graph, aux_space, dict(aux_lists), {v: dict(d) for v, d in aux_defects.items()}
    )
    aux_result, aux_metrics, aux_report = solve_oldc_basic(
        aux_instance,
        init_coloring,
        scale=scale,
        g=g_aux,
        model=model,
        gamma_factor=4,
    )
    report.h_aux = aux_report.h
    report.aux_rounds = aux_metrics.rounds

    # ---- the main two-phase run ------------------------------------------
    inputs: dict[int, dict[str, Any]] = {}
    class_of: dict[int, int] = {}
    for v in graph.nodes:
        i_v = aux_result.assignment[v]
        mu_v = mu_of_class[v][i_v]
        colors = tuple(sorted(buckets_of[v][mu_v]))
        d_v = common_of[v][mu_v]
        class_of[v] = i_v
        inputs[v] = {
            "colors": colors,
            "defect": d_v,
            "init_color": init_coloring[v],
            "gamma_class": i_v,
            "k": (2 ** i_v) * scale.tau,
        }
    report.class_of = class_of

    oracle = FamilyOracle(k_prime=scale.k_prime, seed=scale.seed + 1)
    net = SyncNetwork(graph, model=model)
    outputs, main_metrics = net.run(
        MainOLDC(),
        inputs,
        shared={
            "h": h,
            "tau": scale.tau,
            "oracle": oracle,
            "space_size": instance.space.size,
            "m": m,
            "beta": instance.max_outdegree,
        },
        max_rounds=3 * h + 4,
    )
    report.main_rounds = main_metrics.rounds
    assignment = {v: c for v, (c, _r) in outputs.items()}
    risks = {v: r for v, (_c, r) in outputs.items()}
    report.max_risk = max(risks.values(), default=0)
    report.guarantee_met = all(
        risks[v] <= inputs[v]["defect"] for v in graph.nodes
    )
    metrics = aux_metrics.merge_sequential(main_metrics)
    return ColoringResult(assignment), metrics, report
