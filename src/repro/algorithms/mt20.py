"""The 2-round list coloring algorithm of Maus and Tonoyan (Section 3.1).

The paper's main technical tool is an adaptation of [MT20]: given a
properly m-colored directed graph where every node has a color list of
size ``|L_v| >= alpha * beta^2 * tau``, a proper coloring (every node picks
from its own list, no out-neighbor conflict) is computable in **2 rounds**:

* *(0 rounds)* every node derives its candidate family ``K_v`` (problem
  P2) from its type;
* *(round 1)* nodes exchange types; each node picks ``C_v in K_v`` with no
  tau-conflicting out-neighbor family where possible (problem P1);
* *(round 2)* nodes exchange the ``C_v`` index; each node picks a color of
  ``C_v`` not present in any out-neighbor's ``C_u`` (problem P0).

This module implements that pipeline directly (it is the ``h = 1``,
``g = 0``, zero-defect special case of :mod:`repro.algorithms.oldc_basic`,
but stated in [MT20]'s own terms and with its own simpler round layout),
plus a driver that checks the list-size precondition and validates.

Existence caveat at practical scale: with the seeded P2 families the
"no conflicting out-neighbor" and "free color" picks are guaranteed by the
paper's combinatorics only at theory-scale parameters; the driver therefore
reports, per node, whether its pick was clean, and the validator audits the
final coloring (see DESIGN.md §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..analysis.bounds import DEFAULT_SCALE, ParamScale
from ..core.coloring import ColoringResult
from ..core.conflict import tau_g_conflict
from ..core.instance import ListDefectiveInstance
from ..sim.message import Message, color_list_bits, index_bits, int_bits
from ..sim.metrics import RunMetrics
from ..sim.network import SyncNetwork
from ..sim.node import DistributedAlgorithm, NodeView
from .mt_selection import FamilyOracle, NodeType


@dataclass
class MT20Report:
    """Audit facts for one [MT20] run."""

    tau: int = 0
    k: int = 0
    clean_c_picks: int = 0
    clean_color_picks: int = 0
    n: int = 0

    @property
    def all_clean(self) -> bool:
        return self.clean_c_picks == self.n and self.clean_color_picks == self.n


class MT20ListColoring(DistributedAlgorithm):
    """[MT20]'s 2-round schedule (see module docstring).

    Per-node inputs: ``colors`` (the list), ``init_color``, ``k``.
    Shared: ``tau``, ``oracle``, ``space_size``, ``m``.
    Output: ``(color, clean_c, clean_color)``.
    """

    name = "mt20-list-coloring"

    def init_state(self, view: NodeView) -> dict[str, Any]:
        t = NodeType(int(view.inputs["init_color"]), tuple(view.inputs["colors"]))
        oracle: FamilyOracle = view.globals["oracle"]
        k = max(1, min(int(view.inputs["k"]), len(t.colors)))
        return {
            "type": t,
            "k": k,
            "family": oracle.family(t, k),
            "neigh_family": {},
            "neigh_C": {},
            "C": None,
            "clean_c": True,
            "color": None,
            "clean_color": True,
            "done": False,
        }

    def send(self, view: NodeView, state, rnd: int) -> dict[int, Message]:
        if rnd == 0:
            bits = (
                color_list_bits(len(state["type"].colors), view.globals["space_size"])
                + int_bits(max(1, view.globals["m"] - 1))
            )
            payload = (state["type"].init_color, state["type"].colors, state["k"])
            msg = Message(payload, bits=bits)
            return {u: msg for u in view.neighbors}
        if rnd == 1:
            idx = state["family"].index(state["C"])
            msg = Message(idx, bits=index_bits(max(2, len(state["family"]))))
            return {u: msg for u in view.neighbors}
        return {}

    def receive(self, view: NodeView, state, rnd: int, inbox) -> None:
        oracle: FamilyOracle = view.globals["oracle"]
        tau = view.globals["tau"]
        if rnd == 0:
            fams = {}
            for u, m in inbox.items():
                init_c, colors, k = m.payload
                fams[u] = oracle.family(NodeType(init_c, tuple(colors)), k)
            state["neigh_family"] = fams
            # P1: a C_v tau-conflicting with no out-neighbor family
            rivals = [fams[u] for u in view.out_neighbors if u in fams]
            best, best_score = None, None
            for cand in state["family"]:
                score = sum(
                    1
                    for fam in rivals
                    if any(tau_g_conflict(cand, cu, tau, 0) for cu in fam)
                )
                if best_score is None or score < best_score:
                    best, best_score = cand, score
                    if score == 0:
                        break
            state["C"] = best
            state["clean_c"] = best_score == 0
        elif rnd == 1:
            for u, m in inbox.items():
                fam = state["neigh_family"].get(u)
                if fam is not None:
                    state["neigh_C"][u] = fam[m.payload]
            # P0: a color of C_v free of all out-neighbors' C_u
            taken = set()
            for u in view.out_neighbors:
                cu = state["neigh_C"].get(u)
                if cu:
                    taken.update(cu)
            free = [x for x in state["C"] if x not in taken]
            if free:
                state["color"] = free[0]
            else:  # fall back to the least-claimed color; flagged unclean
                state["clean_color"] = False
                counts = {x: 0 for x in state["C"]}
                for u in view.out_neighbors:
                    cu = state["neigh_C"].get(u)
                    if cu:
                        for x in cu:
                            if x in counts:
                                counts[x] += 1
                state["color"] = min(counts, key=lambda x: (counts[x], x))
            state["done"] = True

    def is_done(self, view: NodeView, state) -> bool:
        return state["done"]

    def output(self, view: NodeView, state):
        return (state["color"], state["clean_c"], state["clean_color"])


def mt20_list_coloring(
    instance: ListDefectiveInstance,
    init_coloring: dict[int, int],
    scale: ParamScale = DEFAULT_SCALE,
    model: str = "LOCAL",
    require_list_size: bool = True,
) -> tuple[ColoringResult, RunMetrics, MT20Report]:
    """Run the [MT20] 2-round list coloring.

    ``instance`` must be directed with all defects zero.  With
    ``require_list_size`` (default) the driver enforces the practical form
    of [MT20]'s precondition ``|L_v| >= alpha beta_v^2 tau``.
    """
    if not instance.directed:
        raise ValueError("mt20_list_coloring expects a directed instance")
    for v in instance.graph.nodes:
        if any(d != 0 for d in instance.defects[v].values()):
            raise ValueError(f"node {v}: [MT20] solves the zero-defect problem")
    tau = scale.tau
    if require_list_size:
        for v in instance.graph.nodes:
            beta_v = instance.outdegree(v)
            need = max(1, int(scale.alpha * beta_v * beta_v * tau))
            if len(instance.lists[v]) < need:
                raise ValueError(
                    f"node {v}: list size {len(instance.lists[v])} < "
                    f"alpha*beta^2*tau = {need}"
                )
    m = max(init_coloring.values()) + 1 if init_coloring else 1
    oracle = FamilyOracle(k_prime=scale.k_prime, seed=scale.seed)
    inputs = {
        v: {
            "colors": instance.lists[v],
            "init_color": init_coloring[v],
            "k": instance.outdegree(v) * tau,
        }
        for v in instance.graph.nodes
    }
    net = SyncNetwork(instance.graph, model=model)
    outputs, metrics = net.run(
        MT20ListColoring(),
        inputs,
        shared={
            "tau": tau,
            "oracle": oracle,
            "space_size": instance.space.size,
            "m": m,
        },
        max_rounds=4,
    )
    report = MT20Report(tau=tau, n=instance.n)
    assignment = {}
    for v, (color, clean_c, clean_color) in outputs.items():
        assignment[v] = color
        report.clean_c_picks += int(clean_c)
        report.clean_color_picks += int(clean_color)
    return ColoringResult(assignment), metrics, report
