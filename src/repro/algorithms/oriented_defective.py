"""Oriented defective coloring — [Kuh09] on directed graphs.

Section 4 of the paper: "in [Kuh09], it was shown that [...] one can also
compute an oriented d-defective coloring with O((beta/d)^2) colors" — the
directed sibling of the defective substrate, where only *out-neighbors*
count against a node's defect.  It is the zero-round-flavored ancestor of
the OLDC problem (lists = the whole palette, one defect for all colors).

Implementation: the same polynomial machinery as
:mod:`repro.algorithms.linial`, but a node minimizes collisions against
its out-neighbors only, and the schedule budgets use the maximum
*outdegree* ``beta`` instead of ``Delta`` — palettes shrink from
``O(Delta^2)`` to ``O(beta^2)`` (or ``O((beta/d)^2)`` with defect ``d``),
which matters because ``beta`` can be as small as ``Delta/2`` (balanced
orientations) or O(arboricity) on sparse graphs.
"""

from __future__ import annotations

from typing import Any

import networkx as nx

from ..core.coloring import ColoringResult
from ..sim.message import Message, int_bits
from ..sim.metrics import RunMetrics
from ..sim.network import SyncNetwork
from ..sim.node import DistributedAlgorithm, NodeView
from .linial import LinialStep, defective_schedule, linial_schedule, poly_coeffs, poly_eval


class OrientedLinialAlgorithm(DistributedAlgorithm):
    """Linial steps with out-neighbor-only collision minimization.

    Messages still flow both ways over every arc (the model allows it and
    in-neighbors need our color to count *their* collisions), but each
    node's choice of evaluation point weighs only its out-neighbors.
    """

    name = "oriented-linial"

    def init_state(self, view: NodeView) -> dict[str, Any]:
        return {"color": int(view.inputs.get("color", view.id)), "step": 0}

    def _schedule(self, view: NodeView) -> list[LinialStep]:
        return view.globals["schedule"]

    def send(self, view: NodeView, state, rnd: int) -> dict[int, Message]:
        if state["step"] >= len(self._schedule(view)):
            return {}
        bits = int_bits(max(1, view.globals.get("m0", view.globals["n"]) - 1))
        msg = Message(state["color"], bits=bits)
        return {u: msg for u in view.neighbors}

    def receive(self, view: NodeView, state, rnd: int, inbox) -> None:
        sched = self._schedule(view)
        if state["step"] >= len(sched):
            return
        step = sched[state["step"]]
        q, deg = step.q, step.deg
        my = poly_coeffs(state["color"], q, deg)
        outs = [
            poly_coeffs(m.payload, q, deg)
            for u, m in inbox.items()
            if u in view.out_neighbors
        ]
        best_x, best_hits = 0, None
        for x in range(q):
            mine = poly_eval(my, x, q)
            hits = sum(1 for nc in outs if poly_eval(nc, x, q) == mine)
            if best_hits is None or hits < best_hits:
                best_x, best_hits = x, hits
                if hits == 0:
                    break
        state["color"] = best_x * q + poly_eval(my, best_x, q)
        state["step"] += 1

    def is_done(self, view: NodeView, state) -> bool:
        return state["step"] >= len(self._schedule(view))

    def output(self, view: NodeView, state) -> int:
        return state["color"]


def run_oriented_defective(
    digraph: nx.DiGraph,
    defect: int = 0,
    model: str = "CONGEST",
    initial_colors: dict[int, int] | None = None,
) -> tuple[ColoringResult, RunMetrics, int]:
    """Oriented ``defect``-defective coloring with an O((beta/d)^2) palette.

    ``defect = 0`` gives the proper *oriented* coloring of [Lin87]-style
    with O(beta^2) colors — every node disagrees with its out-neighbors
    (two adjacent nodes may share a color only when neither arc... note
    this digraph variant is one-directional: validate with
    :func:`repro.core.validate.validate_oldc` on a uniform instance).
    """
    if not digraph.is_directed():
        raise ValueError("run_oriented_defective expects a DiGraph")
    if defect < 0:
        raise ValueError(f"defect must be >= 0, got {defect}")
    n = digraph.number_of_nodes()
    beta = max((digraph.out_degree(v) for v in digraph.nodes), default=0)
    beta = max(1, beta)
    if initial_colors is None:
        initial_colors = {v: i for i, v in enumerate(sorted(digraph.nodes))}
    m0 = max(initial_colors.values()) + 1 if initial_colors else 1
    # beta replaces Delta in every budget of the schedule construction
    sched = (
        linial_schedule(m0, beta)
        if defect == 0
        else defective_schedule(m0, beta, defect)
    )
    palette = sched[-1].out_colors if sched else m0
    net = SyncNetwork(digraph, model=model)
    inputs = {v: {"color": c} for v, c in initial_colors.items()}
    outputs, metrics = net.run(
        OrientedLinialAlgorithm(),
        inputs,
        shared={"schedule": sched, "m0": m0},
        max_rounds=len(sched) + 1,
    )
    return ColoringResult(dict(outputs)), metrics, palette
