"""The basic (generalized) OLDC algorithm — Lemma 3.6 / Section 3.2.

Solves, on a directed graph with an initial proper ``m``-coloring, the
*g-generalized* oriented list defective coloring problem: assign each node
``v`` a color ``x_v`` from its list such that at most ``d_v(x_v)``
out-neighbors ``w`` hold a color with ``|x_w - x_v| <= g``.  For ``g = 0``
this is the OLDC problem of Definition 1.1.

Algorithm structure (paper Section 3.2.3, adapted to per-node list sizes):

0. *(local)* multiple defects -> single defect: partition the list into
   defect classes (powers of two) and keep the class maximizing
   ``sum (d+1)^2`` (Lemma 3.6's reduction).
1. *(local)* gamma-class: the smallest ``i`` with ``2^i >= 2 beta_v /
   (d_v + 1)``; congruence restriction: keep the largest residue class of
   the list modulo ``2g + 1`` (Lemma 3.5's trick).
2. *(local, zero communication)* problem **P2**: derive the candidate
   family ``K_v`` from the node's type via the shared
   :class:`~repro.algorithms.mt_selection.FamilyOracle`.
3. *(1 round)* exchange types; every node reconstructs each neighbor's
   family locally.
4. *(local)* problem **P1**: pick ``C_v in K_v`` minimizing the number of
   same-or-lower-class out-neighbors whose family contains a
   tau&g-conflicting set.
5. *(1 round)* announce ``C_v`` as an index into ``K_v``.
6. *(h rounds)* iterate the gamma-classes in **descending** order; when a
   node's class fires it picks the color of ``C_v`` minimizing the
   frequency ``f_v`` (occurrences across same/lower-class out-neighbors'
   ``C_u`` plus g-close colors already fixed by higher classes) and
   broadcasts it.

A structural guarantee independent of the P2 family quality: because each
``C_u`` lies in a single congruence class mod ``2g+1``, a node's final
defect never exceeds ``f_v(x_v)`` — the run reports ``max f`` so the
experiments can compare the achieved guarantee against ``d_v``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from ..analysis.bounds import ParamScale, DEFAULT_SCALE
from ..core.colorspace import best_congruence_class
from ..core.coloring import ColoringResult
from ..core.conflict import mu_g, tau_g_conflict
from ..core.instance import ListDefectiveInstance
from ..sim.message import Message, color_list_bits, index_bits, int_bits
from ..sim.metrics import RunMetrics
from ..sim.network import SyncNetwork
from ..sim.node import DistributedAlgorithm, NodeView
from .mt_selection import FamilyOracle, NodeType


# ----------------------------------------------------------------------
# local preprocessing
# ----------------------------------------------------------------------
def gamma_class(beta_v: int, d_v: int, h: int, factor: int = 2) -> int:
    """Smallest ``i >= 1`` with ``2^i >= factor * beta_v / (d_v + 1)``,
    clamped to ``[1, h]``.  The main algorithm (Lemma 3.7) uses factor 4."""
    ratio = factor * max(1, beta_v) / (d_v + 1)
    i = max(1, math.ceil(math.log2(ratio))) if ratio > 1 else 1
    return min(max(1, i), max(1, h))


def single_defect_restriction(
    colors: tuple[int, ...],
    defects: dict[int, int],
    beta_v: int,
) -> tuple[tuple[int, ...], int]:
    """Lemma 3.6's multiple->single defect reduction.

    Round each ``d+1`` down to a power of two, bucket colors by
    ``log2(beta_hat / (d_hat+1))``, and keep the bucket maximizing
    ``sum (d+1)^2`` (using the *rounded* defect as the common value, which
    is conservative).  Returns (restricted colors, common defect).
    """
    if not colors:
        raise ValueError("empty color list")
    beta_hat = 1 << max(0, (max(1, beta_v) - 1).bit_length())
    buckets: dict[int, list[int]] = {}
    rounded: dict[int, int] = {}
    for x in colors:
        dp1 = defects[x] + 1
        dp1_hat = 1 << (dp1.bit_length() - 1)  # round down to power of 2
        rounded[x] = dp1_hat - 1
        i = max(0, int(math.log2(beta_hat / dp1_hat))) if dp1_hat < beta_hat else 0
        buckets.setdefault(i, []).append(x)
    best_i = max(
        buckets,
        key=lambda i: (sum((rounded[x] + 1) ** 2 for x in buckets[i]), -i),
    )
    chosen = tuple(sorted(buckets[best_i]))
    common = min(rounded[x] for x in chosen)
    return chosen, common


# ----------------------------------------------------------------------
# the distributed algorithm
# ----------------------------------------------------------------------
@dataclass
class OLDCReport:
    """Per-run audit facts of the basic OLDC algorithm."""

    h: int = 0
    tau: int = 0
    g: int = 0
    max_f_chosen: int = 0
    guarantee_met: bool = True
    per_node_f: dict[int, int] = field(default_factory=dict)


class BasicOLDC(DistributedAlgorithm):
    """Lemma 3.6's algorithm (single defect per node; see module docstring).

    Per-node inputs: ``colors`` (restricted list), ``defect`` (single value),
    ``init_color`` (proper m-coloring), ``k`` (target |C_v| size).
    Shared: ``h``, ``tau``, ``g``, ``oracle`` (FamilyOracle), ``space_size``,
    ``m`` (initial palette size), ``beta`` (max outdegree).
    """

    name = "oldc-basic"

    def init_state(self, view: NodeView) -> dict[str, Any]:
        g = view.globals["g"]
        colors = tuple(view.inputs["colors"])
        if view.globals.get("use_congruence", True):
            a, restricted = best_congruence_class(colors, 2 * g + 1)
        else:
            # ablation mode: skip Lemma 3.5's restriction — the per-color
            # "at most one g-close conflict" argument then fails and the
            # realized defects degrade (experiment A01 measures this)
            restricted = sorted(set(colors))
        k = min(int(view.inputs["k"]), len(restricted))
        k = max(1, k)
        node_type = NodeType(int(view.inputs["init_color"]), tuple(restricted))
        my_class = int(view.inputs["gamma_class"])
        oracle: FamilyOracle = view.globals["oracle"]
        family = oracle.family(node_type, k)
        return {
            "type": node_type,
            "k": k,
            "class": my_class,
            "defect": int(view.inputs["defect"]),
            "family": family,
            "neigh_type": {},
            "neigh_class": {},
            "neigh_k": {},
            "neigh_family": {},
            "neigh_C": {},
            "higher_colors": {},
            "C": None,
            "color": None,
            "f": None,
            "done": False,
        }

    # -- message helpers -------------------------------------------------
    def _type_bits(self, view: NodeView, state) -> int:
        space = view.globals["space_size"]
        beta = view.globals["beta"]
        m = view.globals["m"]
        list_bits = color_list_bits(len(state["type"].colors), space)
        defect_bits = max(1, int(math.log2(max(2, math.log2(max(2, beta))))) + 1)
        return list_bits + defect_bits + int_bits(max(1, m - 1))

    def send(self, view: NodeView, state, rnd: int) -> dict[int, Message]:
        h = view.globals["h"]
        if rnd == 0:
            payload = (
                state["type"].init_color,
                state["type"].colors,
                state["defect"],
                state["class"],
                state["k"],
            )
            msg = Message(payload, bits=self._type_bits(view, state))
            return {u: msg for u in view.neighbors}
        if rnd == 1:
            idx = state["family"].index(state["C"])
            msg = Message(idx, bits=index_bits(max(2, len(state["family"]))))
            return {u: msg for u in view.neighbors}
        fire = 2 + (h - state["class"])
        if rnd == fire:
            msg = Message(state["color"], bits=index_bits(view.globals["space_size"]))
            return {u: msg for u in view.neighbors}
        return {}

    def receive(self, view: NodeView, state, rnd: int, inbox) -> None:
        h = view.globals["h"]
        tau = view.globals["tau"]
        g = view.globals["g"]
        oracle: FamilyOracle = view.globals["oracle"]
        if rnd == 0:
            for u, m in inbox.items():
                init_c, colors, _d, cls, k = m.payload
                t = NodeType(init_c, tuple(colors))
                state["neigh_type"][u] = t
                state["neigh_class"][u] = cls
                state["neigh_k"][u] = k
                state["neigh_family"][u] = oracle.family(t, k)
            state["C"] = self._solve_p1(view, state, tau, g)
        elif rnd == 1:
            for u, m in inbox.items():
                fam = state["neigh_family"].get(u)
                if fam is not None:
                    state["neigh_C"][u] = fam[m.payload]
        else:
            # a color announcement round
            for u, m in inbox.items():
                state["higher_colors"][u] = m.payload
        fire = 2 + (h - state["class"])
        if rnd == fire - 1 and state["color"] is None:
            self._pick_color(view, state, g)
        if rnd >= fire:
            state["done"] = True

    # -- local computations ----------------------------------------------
    def _solve_p1(self, view: NodeView, state, tau: int, g: int):
        """Pick C_v in K_v minimizing potentially-conflicting out-neighbors."""
        my_class = state["class"]
        rivals = [
            u
            for u in view.out_neighbors
            if state["neigh_class"].get(u, my_class + 1) <= my_class
        ]
        best, best_score = None, None
        for cand in state["family"]:
            score = 0
            for u in rivals:
                fam_u = state["neigh_family"][u]
                if any(tau_g_conflict(cand, cu, tau, g) for cu in fam_u):
                    score += 1
            if best_score is None or score < best_score:
                best, best_score = cand, score
                if score == 0:
                    break
        return best

    def _pick_color(self, view: NodeView, state, g: int) -> None:
        """Choose the least-frequent color of C_v (the f_v minimization)."""
        my_class = state["class"]
        best, best_f = None, None
        for x in state["C"]:
            f = 0
            for u in view.out_neighbors:
                ucls = state["neigh_class"].get(u)
                if ucls is None:
                    continue
                if ucls <= my_class:
                    cu = state["neigh_C"].get(u)
                    if cu is not None:
                        f += min(1, mu_g(x, cu, g))
                else:
                    xu = state["higher_colors"].get(u)
                    if xu is not None and abs(xu - x) <= g:
                        f += 1
            if best_f is None or (f, x) < (best_f, best):
                best, best_f = x, f
        state["color"] = best
        state["f"] = best_f

    def is_done(self, view: NodeView, state) -> bool:
        return state["done"]

    def output(self, view: NodeView, state) -> tuple[int, int]:
        return (state["color"], state["f"])


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def solve_oldc_basic(
    instance: ListDefectiveInstance,
    init_coloring: dict[int, int],
    scale: ParamScale = DEFAULT_SCALE,
    g: int = 0,
    model: str = "CONGEST",
    gamma_factor: int = 2,
    gamma_classes: dict[int, int] | None = None,
    forced_defects: dict[int, int] | None = None,
    use_congruence: bool = True,
) -> tuple[ColoringResult, RunMetrics, OLDCReport]:
    """Run Lemma 3.6's algorithm on a directed list defective instance.

    Parameters
    ----------
    instance:
        A *directed* instance (use ``instance.to_oriented()`` for LDC).
    init_coloring:
        A proper coloring of the underlying undirected graph (e.g. from
        :func:`repro.algorithms.linial.run_linial`).
    scale:
        Practical parameters (tau, k', seed) — see DESIGN.md §3.2.
    g:
        The generalization parameter (0 = plain OLDC).
    gamma_classes / forced_defects:
        Overrides used by the main algorithm (Lemma 3.8), which assigns
        classes via an auxiliary OLDC instance; plain callers leave both
        ``None`` and get Lemma 3.6's local choices.

    Returns (coloring, metrics, report); the caller validates with
    :func:`repro.core.validate.validate_generalized_oldc`.
    """
    if not instance.directed:
        raise ValueError("solve_oldc_basic expects a directed instance")
    g_int = int(g)
    if g_int < 0:
        raise ValueError(f"g must be >= 0, got {g_int}")
    graph = instance.graph
    m = max(init_coloring.values()) + 1 if init_coloring else 1
    beta = instance.max_outdegree

    # --- per-node single-defect restriction + gamma class ---------------
    inputs: dict[int, dict[str, Any]] = {}
    classes: dict[int, int] = {}
    tau = scale.tau
    h_nodes: dict[int, int] = {}
    restricted: dict[int, tuple[tuple[int, ...], int]] = {}
    for v in graph.nodes:
        if forced_defects is not None and v in forced_defects:
            dv = forced_defects[v]
            keep = tuple(
                x for x in instance.lists[v] if instance.defects[v][x] >= dv
            )
            if not keep:
                keep = instance.lists[v]
                dv = min(instance.defects[v].values())
            restricted[v] = (keep, dv)
        else:
            restricted[v] = single_defect_restriction(
                instance.lists[v], instance.defects[v], instance.outdegree(v)
            )
    h = 1
    for v in graph.nodes:
        _colors, dv = restricted[v]
        if gamma_classes is not None and v in gamma_classes:
            iv = max(1, gamma_classes[v])
        else:
            iv = gamma_class(instance.outdegree(v), dv, h=10**9, factor=gamma_factor)
        h_nodes[v] = iv
        h = max(h, iv)
    for v in graph.nodes:
        classes[v] = min(h_nodes[v], h)
        colors_v, dv = restricted[v]
        k_target = (2 ** classes[v]) * tau
        inputs[v] = {
            "colors": colors_v,
            "defect": dv,
            "init_color": init_coloring[v],
            "gamma_class": classes[v],
            "k": k_target,
        }

    oracle = FamilyOracle(k_prime=scale.k_prime, seed=scale.seed)
    net = SyncNetwork(graph, model=model)
    outputs, metrics = net.run(
        BasicOLDC(),
        inputs,
        shared={
            "h": h,
            "tau": tau,
            "g": g_int,
            "oracle": oracle,
            "space_size": instance.space.size,
            "m": m,
            "beta": beta,
            "use_congruence": use_congruence,
        },
        max_rounds=h + 4,
    )
    assignment = {v: c for v, (c, _f) in outputs.items()}
    per_f = {v: f for v, (_c, f) in outputs.items()}
    report = OLDCReport(
        h=h,
        tau=tau,
        g=g_int,
        max_f_chosen=max(per_f.values(), default=0),
        per_node_f=per_f,
    )
    report.guarantee_met = all(
        per_f[v] <= restricted[v][1] for v in graph.nodes
    )
    return ColoringResult(assignment), metrics, report
