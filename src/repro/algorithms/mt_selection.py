"""Problem P2: zero-round selection of conflict-avoiding set families.

Background (Sections 3.1/3.2.2 of the paper).  Every node must output, with
**no communication**, a family ``K_v`` of ``k'`` candidate subsets of size
``k`` of its (restricted) color list, such that for out-neighbors the pair
``(K_v, K_u)`` avoids the relation ``Psi_g(tau', tau)``.  The paper proves
existence by a greedy over all possible node *types* (initial color, list):
because each family conflicts with only a tiny fraction of each type's
candidate space (Lemma 3.1/3.2), a conflict-free type-indexed assignment
exists, and since it depends only on the type it can be computed locally by
every node — zero rounds.

Two implementations (DESIGN.md §3.1):

* :func:`exact_greedy_assignment` — the literal greedy over an explicit
  type universe.  Exponential; usable only at toy parameters, which is
  exactly what tests and experiment E10 need to verify the combinatorial
  lemma (conflict degrees vs the d2 bound, |S̄| >= |S|/2).
* :func:`seeded_family` — a shared PRF maps a type to ``k'`` pseudorandom
  ``k``-subsets.  Still zero-round (the PRF seed is common knowledge) and
  identical in message pattern; the downstream algorithm's explicit
  conflict-minimizing choices plus output validation carry the correctness
  burden that the paper's combinatorial argument carries at theory scale.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.conflict import psi_g


@dataclass(frozen=True)
class NodeType:
    """The paper's type ``T_v = (initial color, restricted color list)``.

    Nodes of equal type must output equal families (that is what makes the
    zero-round argument work), so this is the PRF key / greedy-table key.
    """

    init_color: int
    colors: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "colors", tuple(sorted(self.colors)))

    def stable_digest(self, seed: int) -> int:
        """A process-independent 64-bit digest of (seed, type)."""
        h = hashlib.blake2b(digest_size=8)
        h.update(str(seed).encode())
        h.update(b"|")
        h.update(str(self.init_color).encode())
        h.update(b"|")
        h.update(",".join(map(str, self.colors)).encode())
        return int.from_bytes(h.digest(), "big")


def seeded_family(
    node_type: NodeType,
    k: int,
    k_prime: int,
    seed: int = 0,
) -> list[tuple[int, ...]]:
    """``k_prime`` deterministic pseudorandom distinct ``k``-subsets of the list.

    Any two nodes with the same type (and shared seed) compute the same
    family with zero communication.  When the list is too small to yield
    ``k_prime`` distinct subsets, as many as exist are returned (all of
    them, enumerated deterministically).
    """
    colors = node_type.colors
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > len(colors):
        raise ValueError(f"k={k} exceeds list size {len(colors)}")
    import math

    total = math.comb(len(colors), k)
    if total <= k_prime:
        return [tuple(sorted(c)) for c in itertools.combinations(colors, k)]
    rng = random.Random(node_type.stable_digest(seed))
    seen: set[tuple[int, ...]] = set()
    out: list[tuple[int, ...]] = []
    attempts = 0
    while len(out) < k_prime and attempts < 50 * k_prime:
        cand = tuple(sorted(rng.sample(colors, k)))
        attempts += 1
        if cand not in seen:
            seen.add(cand)
            out.append(cand)
    return out


def candidate_space(colors: Sequence[int], k: int, k_prime: int):
    """Enumerate the paper's S(L): all ``k_prime``-subsets of the
    ``k``-subsets of ``colors``.  Exponential — toy parameters only."""
    subsets = list(itertools.combinations(sorted(colors), k))
    return itertools.combinations(subsets, k_prime)


def exact_greedy_assignment(
    types: Iterable[NodeType],
    k: int,
    k_prime: int,
    tau: int,
    tau_prime: int,
    g: int = 0,
) -> dict[NodeType, list[tuple[int, ...]]]:
    """The paper's greedy: assign each type a family avoiding Psi conflicts
    with all previously assigned types (in both directions).

    Types are processed in the canonical order of Lemma 3.5 (descending
    list size, then lexicographic), which the gamma-class argument needs.
    Raises ``ValueError`` if some type's whole candidate space conflicts —
    at paper parameters Lemma 3.2 rules this out; at toy parameters the
    caller must pick feasible values (tests exercise both outcomes).
    """
    ordered = sorted(set(types), key=lambda t: (-len(t.colors), t.colors, t.init_color))
    assigned: dict[NodeType, list[tuple[int, ...]]] = {}
    for t in ordered:
        chosen = None
        for cand in candidate_space(t.colors, min(k, len(t.colors)), k_prime):
            fam = [tuple(c) for c in cand]
            bad = False
            for prev in assigned.values():
                if psi_g(fam, prev, tau_prime, tau, g) or psi_g(
                    prev, fam, tau_prime, tau, g
                ):
                    bad = True
                    break
            if not bad:
                chosen = fam
                break
        if chosen is None:
            raise ValueError(
                f"greedy failed for type {t}: every candidate family conflicts "
                f"(parameters too small: k={k}, k'={k_prime}, tau={tau}, "
                f"tau'={tau_prime})"
            )
        assigned[t] = chosen
    return assigned


class FamilyOracle:
    """Uniform interface over the two P2 modes.

    ``mode="seeded"`` computes families on demand from the shared PRF;
    ``mode="exact"`` takes a precomputed greedy table (types must be known
    up front).  Algorithms call :meth:`family` with a node's type; equal
    types always yield equal families, preserving the zero-round property.
    """

    def __init__(
        self,
        k_prime: int,
        seed: int = 0,
        mode: str = "seeded",
        table: dict[NodeType, list[tuple[int, ...]]] | None = None,
    ) -> None:
        if mode not in ("seeded", "exact"):
            raise ValueError(f"unknown P2 mode {mode!r}")
        if mode == "exact" and table is None:
            raise ValueError("exact mode requires a precomputed greedy table")
        self.k_prime = k_prime
        self.seed = seed
        self.mode = mode
        self.table = table or {}
        self._cache: dict[tuple[NodeType, int], list[tuple[int, ...]]] = {}

    def family(self, node_type: NodeType, k: int) -> list[tuple[int, ...]]:
        if self.mode == "exact":
            if node_type not in self.table:
                raise KeyError(f"type {node_type} missing from exact table")
            return self.table[node_type]
        key = (node_type, k)
        if key not in self._cache:
            self._cache[key] = seeded_family(node_type, k, self.k_prime, self.seed)
        return self._cache[key]
