"""Defective coloring in O(log* n) rounds [Kuh09, BE09].

A thin, validated wrapper over the defective Linial schedule in
:mod:`repro.algorithms.linial`: a ``d``-defective coloring with
``O((Delta/d)^2 * polylog)`` colors (the paper-cited bound is
``O((Delta/d)^2)``; our single-shot polynomial construction carries an extra
polylog factor in the palette, see DESIGN.md §3 — the E03 experiment fits
the exponent of the (Delta/d) dependence, which is the claim under test).
"""

from __future__ import annotations

import networkx as nx

from ..core.coloring import ColoringResult
from ..core.validate import validate_defective_coloring
from ..sim.metrics import RunMetrics
from .linial import run_linial


def run_defective_coloring(
    graph: nx.Graph,
    defect: int,
    model: str = "CONGEST",
    validate: bool = True,
    recorder=None,
    wrap=None,
) -> tuple[ColoringResult, RunMetrics, int]:
    """Compute a ``defect``-defective coloring; returns (result, metrics,
    palette size).  Raises if validation fails (it never should).

    ``recorder`` (a :class:`~repro.obs.RunRecorder`) and ``wrap`` (an
    algorithm decorator such as
    :class:`~repro.sim.referee.RefereedAlgorithm`) are threaded into the
    underlying :func:`~repro.algorithms.linial.run_linial`, so the
    reference side of the defective-split engine pair is observable and
    refereed exactly like its vectorized twin.
    """
    if defect < 0:
        raise ValueError(f"defect must be >= 0, got {defect}")
    result, metrics, palette = run_linial(
        graph, model=model, defect=defect, recorder=recorder, wrap=wrap
    )
    if validate:
        validate_defective_coloring(graph, result, defect).raise_if_invalid()
    return result, metrics, palette


def defective_class_partition(
    graph: nx.Graph,
    defect: int,
    model: str = "CONGEST",
    recorder=None,
    wrap=None,
) -> tuple[dict[int, int], RunMetrics, int]:
    """Convenience: the class index of each node under a defective coloring.

    Used as the graph-decomposition step of the Theorem 1.3 transformation
    (and the Section 5 technique generally): each class induces a subgraph
    of maximum degree <= defect.
    """
    result, metrics, palette = run_defective_coloring(
        graph, defect, model, recorder=recorder, wrap=wrap
    )
    return dict(result.assignment), metrics, palette
