"""Algorithm registry: name -> (Delta+1)-coloring runner + metadata.

One switchboard for the CLI, the conformance grid, and downstream users:
``run(name, graph)`` executes any registered algorithm and returns the
uniform ``(coloring, metrics)`` pair.  Metadata records the palette
guarantee, determinism, and the reference it implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import networkx as nx

from ..core.coloring import ColoringResult
from ..core.instance import degree_plus_one_instance
from ..sim.metrics import RunMetrics

Runner = Callable[[nx.Graph], tuple[ColoringResult, RunMetrics]]


@dataclass(frozen=True)
class AlgorithmInfo:
    name: str
    reference: str
    palette: str  # human-readable palette guarantee
    deterministic: bool
    runner: Runner
    #: the :data:`repro.fuzz.differential.ENGINE_PAIRS` entry whose
    #: differential trials cover this implementation (``None`` when no
    #: vectorized twin exists).  Registry names are presentation names
    #: (``classic-vec``), pair names are canonical algorithm families
    #: (``classic``) — this link is what keeps them in sync, enforced by
    #: ``tests/test_algorithm_properties.py``.
    engine_pair: str | None = None


def _thm14(g):
    from .congest_coloring import congest_delta_plus_one

    res, m, _rep = congest_delta_plus_one(g)
    return res, m


def _thm13(g):
    from .arblist import solve_list_arbdefective

    res, m, _rep = solve_list_arbdefective(degree_plus_one_instance(g))
    return res, m


def _classic(g):
    from .reduction import classic_delta_plus_one

    return classic_delta_plus_one(g)


def _classic_vec(g):
    from ..sim.vectorized import classic_delta_plus_one_vectorized

    return classic_delta_plus_one_vectorized(g)


def _linear(g):
    from .linear_in_delta import linear_in_delta_coloring

    res, m, _rep = linear_in_delta_coloring(g)
    return res, m


def _bar16(g):
    from .barenboim import barenboim_coloring

    res, m, _rep = barenboim_coloring(g)
    return res, m


def _randomized(g):
    from .baselines import randomized_list_coloring

    return randomized_list_coloring(degree_plus_one_instance(g), seed=1)


def _mis(g):
    from .mis import coloring_via_mis

    return coloring_via_mis(g, seed=1)


def _fk24(g):
    # defect 0 degenerates [FK24] to proper (degree+1)-list coloring
    # with prefix lists, i.e. a Delta+1 palette
    from .fk24 import run_fk24

    res, m, _palette = run_fk24(g, defect=0)
    return res, m


def _greedy(g):
    from ..sim.metrics import RunMetrics as _RM

    from .greedy import greedy_list_coloring

    return greedy_list_coloring(degree_plus_one_instance(g)), _RM()


REGISTRY: dict[str, AlgorithmInfo] = {
    "thm14": AlgorithmInfo(
        "thm14", "Theorem 1.4 (this paper)", "Delta+1", True, _thm14
    ),
    "thm13": AlgorithmInfo(
        "thm13", "Theorem 1.3 (this paper)", "Delta+1", True, _thm13
    ),
    "classic": AlgorithmInfo(
        "classic", "[Lin87]+schedule", "Delta+1", True, _classic,
        engine_pair="classic",
    ),
    "classic-vec": AlgorithmInfo(
        "classic-vec", "[Lin87]+schedule (vectorized)", "Delta+1", True,
        _classic_vec, engine_pair="classic",
    ),
    "fk24": AlgorithmInfo(
        "fk24", "[FK24] iterative list-defective (arXiv 2405.04648 §3)",
        "Delta+1", True, _fk24, engine_pair="fk24",
    ),
    "greedy-seq": AlgorithmInfo(
        "greedy-seq", "sequential greedy on (deg+1)-lists", "Delta+1",
        True, _greedy, engine_pair="greedy",
    ),
    "linear": AlgorithmInfo(
        "linear", "[BE09, Kuh09]", "Delta+1", True, _linear
    ),
    "bar16": AlgorithmInfo(
        "bar16", "[Bar16]", "2*Delta+1", True, _bar16
    ),
    "randomized": AlgorithmInfo(
        "randomized", "[Lub86]-style trials", "Delta+1", False, _randomized
    ),
    "mis": AlgorithmInfo(
        "mis", "[Lub86] MIS x K_{Delta+1}", "Delta+1", False, _mis
    ),
}


def algorithm_names() -> list[str]:
    """Registered algorithm names (sorted)."""
    return sorted(REGISTRY)


def get(name: str) -> AlgorithmInfo:
    """Look up a registered algorithm; KeyError with options on a miss."""
    if name not in REGISTRY:
        raise KeyError(
            f"unknown algorithm {name!r}; options: {algorithm_names()}"
        )
    return REGISTRY[name]


def run(name: str, graph: nx.Graph) -> tuple[ColoringResult, RunMetrics]:
    """Run a registered algorithm on ``graph``."""
    return get(name).runner(graph)
