"""[Bar16]-style (1+eps)Delta-coloring in ~sqrt(Delta) + log* n rounds.

The paper's related-work benchmark: Barenboim's technique (as refined by
[BEG18, MT20]) computes an O(sqrt(Delta))-arbdefective
O(sqrt(Delta))-coloring, then iterates over its color classes; within a
class every node has small outdegree (the arbdefect) while its remaining
palette is still large (>= eps*Delta out of (1+eps)*Delta colors), so one
[MT20] 2-round list coloring finishes each class.  Total:
O(sqrt(Delta)) classes x O(1) rounds + O(log* n).  The paper cites this as
"still the fastest known (Delta+1)-coloring algorithm [in the
f(Delta)+O(log* n) regime] in CONGEST" (via its Delta^(3/4) variant); the
(1+eps)Delta variant implemented here is the clean sqrt(Delta) form, and
experiment E13 compares it against Theorem 1.4's pipeline — the trade the
paper's contribution removes is exactly the (1+eps) palette blow-up.

Practical notes: the per-class [MT20] run uses the seeded P2 mode; nodes
whose 2-round pick collides (possible at scaled parameters) decline and
are finished by the same always-valid priority sweep used in Theorem 1.3's
driver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from ..analysis.bounds import DEFAULT_SCALE, ParamScale
from ..core.colorspace import ColorSpace
from ..core.coloring import ColoringResult
from ..core.instance import ListDefectiveInstance
from ..sim.message import index_bits
from ..sim.metrics import RunMetrics
from .arbdefective import arbdefective_coloring
from .linial import run_linial
from .mt20 import mt20_list_coloring


@dataclass
class BarenboimReport:
    """Audit of one [Bar16]-style run."""

    palette: int = 0
    arbdefect: int = 0
    classes: int = 0
    mt20_runs: int = 0
    declined: int = 0
    sweep_rounds: int = 0
    valid: bool = True


def barenboim_coloring(
    graph: nx.Graph,
    palette_factor: float = 2.0,
    scale: ParamScale = DEFAULT_SCALE,
    model: str = "CONGEST",
) -> tuple[ColoringResult, RunMetrics, BarenboimReport]:
    """(palette_factor * Delta)-color ``graph`` via arbdefective classes +
    per-class [MT20] 2-round list coloring.

    Requires ``palette_factor > 1`` (the eps*Delta palette slack is what
    feeds [MT20]'s quadratic list-size requirement).  Returns
    ``(coloring, metrics, report)``; the coloring is validated by the
    caller (it is a proper coloring with at most
    ``ceil(palette_factor * Delta) + 1`` colors).
    """
    if palette_factor <= 1.0:
        raise ValueError(f"palette_factor must exceed 1, got {palette_factor}")
    delta = max((d for _, d in graph.degree), default=0)
    report = BarenboimReport()
    palette = max(1, math.ceil(palette_factor * delta)) + 1
    space = ColorSpace(palette)
    report.palette = palette
    if delta == 0:
        return (
            ColoringResult({v: 0 for v in graph.nodes}),
            RunMetrics(),
            report,
        )

    # arbdefect d ~ sqrt(eps * Delta / (alpha * tau)): classes then have
    # outdegree <= d while residual palettes of size >= eps*Delta satisfy
    # [MT20]'s |L| >= alpha * d^2 * tau.
    eps = palette_factor - 1.0
    d = max(1, int(math.sqrt(eps * delta / (scale.alpha * scale.tau))))
    report.arbdefect = d

    arb, metrics, q = arbdefective_coloring(
        graph, arbdefect=d, mode="fast", model=model
    )
    report.classes = q
    pre, m_pre, _pal = run_linial(graph, model=model)
    metrics = metrics.merge_sequential(m_pre)

    colors: dict[int, int] = {}
    taken: dict[int, set[int]] = {v: set() for v in graph.nodes}

    def mark(v: int, x: int) -> None:
        colors[v] = x
        for u in graph.neighbors(v):
            taken[u].add(x)

    for i in range(q):
        members = [v for v in graph.nodes if arb.assignment[v] == i]
        if not members:
            continue
        gi = nx.DiGraph()
        gi.add_nodes_from(members)
        mset = set(members)
        for v in members:
            for u in graph.neighbors(v):
                if u in mset and arb.orientation.points_from(v, u):
                    gi.add_edge(v, u)
        lists = {
            v: tuple(x for x in range(palette) if x not in taken[v])
            for v in members
        }
        defects = {v: {x: 0 for x in lists[v]} for v in members}
        inst = ListDefectiveInstance(gi, space, lists, defects)
        res, m, _rep = mt20_list_coloring(
            inst,
            {v: pre.assignment[v] for v in members},
            scale=scale,
            model=model,
            require_list_size=False,
        )
        # the per-class digraph is a smaller network with its own (smaller-n)
        # budget; the global graph's budget stays the budget of record
        metrics = metrics.merge_sequential(
            m, bandwidth_limit=metrics.bandwidth_limit
        )
        report.mt20_runs += 1
        # accept only collision-free picks (w.r.t. the class digraph AND
        # colors already fixed by earlier classes); decline the rest
        for v in sorted(members):
            x = res.assignment[v]
            clash = x in taken[v] or any(
                res.assignment.get(u) == x for u in gi.successors(v)
            )
            if clash:
                report.declined += 1
            else:
                mark(v, x)
        metrics.observe_round([index_bits(palette)] * len(members))

    # priority sweep for declined nodes (always valid; palette > Delta)
    while True:
        rest = [v for v in graph.nodes if v not in colors]
        if not rest:
            break
        rest_set = set(rest)
        maxima = [
            v
            for v in rest
            if all(u < v for u in graph.neighbors(v) if u in rest_set)
        ]
        for v in sorted(maxima):
            free = next(x for x in range(palette) if x not in taken[v])
            mark(v, free)
        report.sweep_rounds += 1
        metrics.observe_round([index_bits(palette)] * len(maxima))

    result = ColoringResult(colors)
    report.valid = all(
        colors[u] != colors[v] for u, v in graph.edges
    )
    return result, metrics, report
