"""Sequential coloring algorithms (Appendix A of the paper + folklore greedy).

Three solvers:

* :func:`greedy_list_coloring` — the folklore sequential greedy for
  (degree+1)-list coloring (and any LDC instance processed greedily).
* :func:`solve_ldc_potential` — Lemma A.1: list defective colorings exist
  whenever ``sum_x (d_v(x)+1) > deg(v)``; constructive via the potential
  function ``Phi = M + sum_v (deg(v) - d_v(x_v))`` which strictly decreases
  each time an unhappy node is recolored.
* :func:`solve_arbdefective_euler` — Lemma A.2: list arbdefective colorings
  exist whenever ``sum_x (2 d_v(x)+1) > deg(v)``; constructive by first
  solving the doubled-defect LDC instance and then orienting each color
  class with the Euler-tour balanced orientation.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from ..core.coloring import ColoringResult, EdgeOrientation
from ..core.conditions import (
    arbdefective_exists_condition,
    ldc_exists_condition,
)
from ..core.instance import ListDefectiveInstance
from ..graphs.orientation import balanced_orientation
from ..exceptions import ConditionViolation


def greedy_list_coloring(
    instance: ListDefectiveInstance,
    order: Sequence[int] | None = None,
) -> ColoringResult:
    """Sequential greedy: color nodes in ``order``, never exceeding defects.

    Processes nodes one by one; each node takes the first color in its list
    whose *current* same-color neighbor count is within the color's defect
    budget **and** which cannot push an already-colored neighbor over its
    own budget.  For zero-defect (degree+1)-list instances this is the
    classic greedy, which always succeeds.  For general defects greedy can
    get stuck even when Eq. (1) holds — use :func:`solve_ldc_potential` for
    the guaranteed solver; the contrast between the two is itself checked in
    tests.

    Raises ``ValueError`` when some node has no admissible color.
    """
    g = instance.graph
    order = list(order) if order is not None else sorted(g.nodes)
    assignment: dict[int, int] = {}

    def neighbors(v: int) -> list[int]:
        if instance.directed:
            return sorted(set(g.predecessors(v)) | set(g.successors(v)))
        return sorted(g.neighbors(v))

    for v in order:
        chosen = None
        for x in instance.lists[v]:
            same = [u for u in neighbors(v) if assignment.get(u) == x]
            if len(same) > instance.defects[v][x]:
                continue
            # check we don't overload an already-colored neighbor
            overload = False
            for u in same:
                budget = instance.defects[u][x]
                used = sum(1 for w in neighbors(u) if assignment.get(w) == x)
                if used + 1 > budget:
                    overload = True
                    break
            if not overload:
                chosen = x
                break
        if chosen is None:
            raise ValueError(f"greedy stuck at node {v}")
        assignment[v] = chosen
    return ColoringResult(assignment)


def solve_ldc_potential(
    instance: ListDefectiveInstance,
    max_steps: int | None = None,
    require_condition: bool = True,
) -> ColoringResult:
    """Lemma A.1: construct an LDC solution via potential descent.

    Start from an arbitrary list coloring; while some node ``v`` is
    *unhappy* (more than ``d_v(x_v)`` same-colored neighbors), recolor it
    with a color ``y`` whose current same-color neighbor count is at most
    ``d_v(y)`` — such a ``y`` exists whenever Eq. (1) holds for ``v``
    (pigeonhole over ``sum (d+1) > deg``).  The potential
    ``Phi = M + sum_v (deg(v) - d_v(x_v))`` drops by >= 1 per step, so at
    most ``3|E|`` steps occur.

    Parameters
    ----------
    require_condition:
        When true (default), raise if Eq. (1) is violated; when false, run
        anyway and raise only if the process exceeds its step budget —
        used by the E01 tightness experiment.
    """
    if require_condition and not ldc_exists_condition(instance):
        raise ConditionViolation(
            "Eq. (1) violated: sum (d_v(x)+1) <= deg(v) for some v"
        )
    g = instance.graph
    if instance.directed:
        raise ValueError("Lemma A.1 operates on undirected instances")
    if max_steps is None:
        # Phi starts at <= 3|E| and can only descend to -sum_v max_x d_v(x)
        # (negative terms arise when defects exceed degrees), one unit/step.
        slack = sum(max(dv.values(), default=0) for dv in instance.defects.values())
        max_steps = 3 * g.number_of_edges() + slack + g.number_of_nodes() + 10

    assignment = {v: instance.lists[v][0] for v in g.nodes}
    # same-color neighbor counters, maintained incrementally
    same_count = {v: 0 for v in g.nodes}
    for u, v in g.edges:
        if assignment[u] == assignment[v]:
            same_count[u] += 1
            same_count[v] += 1

    def unhappy() -> int | None:
        for v in sorted(g.nodes):
            if same_count[v] > instance.defects[v][assignment[v]]:
                return v
        return None

    steps = 0
    v = unhappy()
    while v is not None:
        if steps >= max_steps:
            raise ValueError(
                f"potential descent did not converge in {max_steps} steps "
                "(Eq. (1) presumably violated)"
            )
        # count, per candidate color, how many neighbors currently hold it
        neigh_colors: dict[int, int] = {}
        for u in g.neighbors(v):
            cu = assignment[u]
            neigh_colors[cu] = neigh_colors.get(cu, 0) + 1
        new = None
        for y in instance.lists[v]:
            if neigh_colors.get(y, 0) <= instance.defects[v][y]:
                new = y
                break
        if new is None:
            raise ValueError(f"no admissible recoloring for node {v}")
        old = assignment[v]
        assignment[v] = new
        # update counters
        same_count[v] = neigh_colors.get(new, 0)
        for u in g.neighbors(v):
            if assignment[u] == old:
                same_count[u] -= 1
            elif assignment[u] == new:
                same_count[u] += 1
        steps += 1
        v = unhappy()
    return ColoringResult(assignment)


def solve_arbdefective_euler(
    instance: ListDefectiveInstance,
    require_condition: bool = True,
) -> ColoringResult:
    """Lemma A.2: list arbdefective coloring via doubled defects + Euler.

    1. Solve the LDC instance with defects ``d'_v(x) = 2 d_v(x)`` (exists by
       Lemma A.1 because ``sum (2d+1) > deg`` is exactly Eq. (1) for d').
    2. For each color class ``G_x``, compute a balanced orientation
       (outdegree <= ceil(deg_{G_x}/2) <= d_v(x)).
    3. Orient cross-color edges arbitrarily (by id); they never count
       against any defect.
    """
    if require_condition and not arbdefective_exists_condition(instance):
        raise ConditionViolation(
            "Eq. (2) violated: sum (2 d_v(x)+1) <= deg(v) for some v"
        )
    doubled = ListDefectiveInstance(
        instance.graph,
        instance.space,
        {v: tuple(lst) for v, lst in instance.lists.items()},
        {v: {x: 2 * d for x, d in dv.items()} for v, dv in instance.defects.items()},
    )
    base = solve_ldc_potential(doubled, require_condition=require_condition)
    assignment = base.assignment
    g = instance.graph

    ori = EdgeOrientation()
    classes: dict[int, list[int]] = {}
    for v, c in assignment.items():
        classes.setdefault(c, []).append(v)
    for c, members in sorted(classes.items()):
        sub = g.subgraph(members)
        sub_ori = balanced_orientation(sub)
        for a, b in sub_ori:
            ori.orient(a, b)
    for u, v in g.edges:
        if not ori.is_oriented(u, v):
            ori.orient(min(u, v), max(u, v))
    return ColoringResult(assignment, ori)


def sequential_color_order_by_degree(graph: nx.Graph) -> list[int]:
    """Smallest-last (degeneracy) order — the strongest greedy schedule."""
    g = graph.copy()
    order: list[int] = []
    while g.number_of_nodes():
        v = min(sorted(g.nodes), key=lambda u: g.degree(u))
        order.append(v)
        g.remove_node(v)
    order.reverse()
    return order
