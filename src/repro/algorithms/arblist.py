"""Theorem 1.3: (degree+1)-list arbdefective coloring via OLDC algorithms.

Transforms any OLDC solver into an algorithm for list arbdefective
instances satisfying ``sum_x (d_v(x)+1) > deg(v)`` — which includes the
standard (degree+1)-list coloring (all defects zero) and the
``d``-arbdefective ``floor(Delta/(d+1)+1)``-coloring.

Structure (Section 5 of the paper):

* **Stages** halve the maximum degree of the *uncolored* subgraph: stage
  ``s`` starts from max degree ``Delta_s`` and colors enough nodes that
  every remaining node has fewer than ``Delta_s / 2`` uncolored neighbors.
  O(log Delta) stages.
* Within a stage: compute a ``delta``-arbdefective ``q``-coloring of the
  uncolored subgraph (``delta ~ sqrt(Delta_s / kappa)``,
  ``q ~ Delta_s/delta`` — for the Theorem 1.1 solver with nu = 1 this gives
  the √Delta·polylog round shape of Theorem 1.4) and iterate its color
  classes.  In iteration ``i``, the nodes of class ``i`` that still have at
  least ``Delta_s/2`` uncolored neighbors form ``V_i'``; they carry residual
  lists ``L'_v = {x : a_v(x) <= d_v(x)}`` with residual defects
  ``d'_v(x) = d_v(x) - a_v(x)`` (``a_v(x)`` = already-colored neighbors
  holding ``x``) of total weight > Delta_s / 2, and get colored by one OLDC
  run on the class's low-outdegree digraph ``G_i'``.
* Orientation: every edge is oriented from the later-colored endpoint to
  the earlier one; edges inside one OLDC event inherit the stage's
  arbdefective orientation.  A node's same-color out-neighbors therefore
  number at most ``a_v(x) + d'_v(x) = d_v(x)``.

The OLDC solver is pluggable; the default is Theorem 1.1's algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

import networkx as nx

from ..analysis.bounds import DEFAULT_SCALE, ParamScale
from ..core.coloring import ColoringResult, EdgeOrientation
from ..core.instance import ListDefectiveInstance
from ..sim.metrics import RunMetrics
from ..sim.message import index_bits
from ..sim.phases import PhaseLog
from ..exceptions import ScheduleError
from .arbdefective import arbdefective_coloring
from .linial import run_linial
from .oldc_main import solve_oldc_main

OLDCSolver = Callable[
    [ListDefectiveInstance, dict[int, int]],
    tuple[ColoringResult, RunMetrics, Any],
]


@dataclass
class ArbListReport:
    """Audit of one Theorem 1.3 run."""

    stages: int = 0
    oldc_runs: int = 0
    announce_rounds: int = 0
    stage_deltas: list[int] = field(default_factory=list)
    stage_palettes: list[int] = field(default_factory=list)
    cleanup_nodes: int = 0
    declined: int = 0
    sweep_rounds: int = 0
    sweep_nodes: int = 0
    inner_reports: list[Any] = field(default_factory=list)
    phases: PhaseLog = field(default_factory=PhaseLog)


def default_oldc_solver(scale: ParamScale = DEFAULT_SCALE, model: str = "CONGEST"):
    """Theorem 1.1's algorithm packaged with a fixed scale/model."""

    def solve(instance: ListDefectiveInstance, init_coloring: dict[int, int]):
        return solve_oldc_main(instance, init_coloring, scale=scale, model=model)

    return solve


def basic_oldc_solver(scale: ParamScale = DEFAULT_SCALE, model: str = "CONGEST"):
    """Lemma 3.6's algorithm as the inner solver.

    Theorem 1.3 is stated for *any* OLDC algorithm; the basic algorithm
    spends ~h+4 rounds per run instead of the main algorithm's aux+3h —
    roughly 2-3x fewer at small beta — at the price of the weaker
    requirement (a log-beta factor more list slack in theory).  A01/E08
    use this to quantify the per-class constant.
    """
    from .oldc_basic import solve_oldc_basic

    def solve(instance: ListDefectiveInstance, init_coloring: dict[int, int]):
        return solve_oldc_basic(instance, init_coloring, scale=scale, model=model)

    return solve


def solve_list_arbdefective(
    instance: ListDefectiveInstance,
    oldc_solver: OLDCSolver | None = None,
    scale: ParamScale = DEFAULT_SCALE,
    kappa: float | None = None,
    model: str = "CONGEST",
    arb_mode: str = "fast",
    decline_violators: bool = True,
) -> tuple[ColoringResult, RunMetrics, ArbListReport]:
    """Solve a (degree+1)-list arbdefective instance (Theorem 1.3).

    Parameters
    ----------
    instance:
        Undirected; must satisfy ``sum_x (d_v(x)+1) > deg(v)`` per node.
    oldc_solver:
        Any OLDC solver (defaults to Theorem 1.1's).
    kappa:
        The inner solver's condition threshold; shapes the stage arbdefect
        ``delta ~ sqrt(Delta_s / (2 kappa))`` and hence ``q``.
    arb_mode:
        ``"fast"`` or ``"tight"`` decomposition (see
        :func:`repro.algorithms.arbdefective.arbdefective_coloring`).

    Returns ``(result-with-orientation, metrics, report)``; validate with
    :func:`repro.core.validate.validate_arbdefective`.
    """
    if instance.directed:
        raise ValueError("Theorem 1.3 expects an undirected instance")
    if kappa is None:
        # The inner OLDC condition needs list sizes >= ~alpha*tau*beta^2;
        # delta = sqrt(Delta_s / (2 kappa)) with kappa ~ 2.5 tau keeps the
        # residual lists (size >= Delta_s/2) comfortably above it.
        kappa = 2.5 * scale.tau + 2.0
    if oldc_solver is None:
        oldc_solver = default_oldc_solver(scale, model)
    graph = instance.graph
    report = ArbListReport()

    # One-time Linial precoloring of the whole graph (O(log* n) rounds),
    # reused as the initial m-coloring of every inner OLDC run.
    pre, metrics, _pal = run_linial(graph, model=model)
    report.phases.add("linial", metrics)
    init_coloring = pre.assignment

    colors: dict[int, int] = {}
    colored_seq: dict[int, int] = {}  # global coloring order (event index)
    event = 0
    event_ori: dict[frozenset, tuple[int, int]] = {}
    a_count: dict[int, dict[int, int]] = {v: {} for v in graph.nodes}

    def mark_colored(v: int, x: int, seq: int) -> None:
        colors[v] = x
        colored_seq[v] = seq
        for u in graph.neighbors(v):
            a_count[u][x] = a_count[u].get(x, 0) + 1

    def uncolored_subgraph() -> nx.Graph:
        return graph.subgraph([v for v in graph.nodes if v not in colors])

    delta0 = max((d for _, d in graph.degree), default=0)
    max_stages = 2 * max(1, delta0).bit_length() + 8
    while report.stages < max_stages:
        sub = uncolored_subgraph()
        if sub.number_of_nodes() == 0:
            break
        delta_s = max((d for _, d in sub.degree), default=0)
        if delta_s == 0:
            # isolated uncolored nodes: any residual-feasible color works
            event += 1
            for v in sorted(sub.nodes):
                x = _any_feasible(instance, a_count, v)
                mark_colored(v, x, event)
                report.cleanup_nodes += 1
            report.announce_rounds += 1
            metrics.observe_round(
                [index_bits(instance.space.size)] * sub.number_of_nodes()
            )
            report.phases.add_raw(
                "announce", 1, sub.number_of_nodes(),
                sub.number_of_nodes() * index_bits(instance.space.size),
            )
            break

        report.stages += 1
        report.stage_deltas.append(delta_s)
        threshold = delta_s / 2.0

        # --- stage decomposition: delta-arbdefective q-coloring ----------
        # Paper (proof of Thm 1.3, nu = 1): delta = (Delta_s/2) /
        # (Lambda^{1/2} kappa^{1/2}) — Hölder turns residual weight
        # sum (d'+1) > Delta_s/2 over <= Lambda colors into
        # sum (d'+1)^2 >= (Delta_s/2)^2 / Lambda >= delta^2 kappa.
        lam = max(
            (len(instance.lists[v]) for v in sub.nodes if v not in colors),
            default=1,
        )
        lam = min(lam, delta_s + 1)
        delta = max(1, int(delta_s / (2.0 * math.sqrt(lam * kappa))))
        arb, arb_metrics, q = arbdefective_coloring(
            sub.copy(), arbdefect=delta, mode=arb_mode, model=model
        )
        report.stage_palettes.append(q)
        report.phases.add("arbdefective-decomposition", arb_metrics)
        # stage runs live on the (shrinking) uncolored subgraph; the full
        # graph's budget stays the budget of record
        metrics = metrics.merge_sequential(
            arb_metrics, bandwidth_limit=metrics.bandwidth_limit
        )

        # --- iterate the q classes ----------------------------------------
        for i in range(q):
            members = [
                v
                for v in sub.nodes
                if v not in colors and arb.assignment[v] == i
            ]
            active = [
                v
                for v in members
                if sum(1 for u in graph.neighbors(v) if u not in colors)
                >= threshold
            ]
            if not active:
                continue
            gi = _class_digraph(sub, arb.orientation, active)
            residual = _residual_instance(instance, a_count, gi)
            if any(len(residual.lists[v]) == 0 for v in active):
                raise ScheduleError("residual list emptied — defect accounting bug")
            res, m, inner = oldc_solver(
                residual, {v: init_coloring[v] for v in active}
            )
            metrics = metrics.merge_sequential(
                m, bandwidth_limit=metrics.bandwidth_limit
            )
            report.phases.add("inner-oldc", m)
            report.oldc_runs += 1
            report.inner_reports.append(inner)
            # Self-audit: nodes whose realized out-defect in G_i' exceeds the
            # residual budget *decline* and stay uncolored (they are finished
            # off by the always-valid priority sweep below).  Removing the
            # violators only lowers the counts of the nodes that stay.
            accepted = []
            for v in active:
                x = res.assignment[v]
                realized = sum(
                    1 for u in gi.successors(v) if res.assignment[u] == x
                )
                if decline_violators and realized > residual.defects[v][x]:
                    report.declined += 1
                else:
                    accepted.append(v)
            event += 1
            for a, b in gi.edges:
                event_ori[frozenset((a, b))] = (a, b)
            for v in sorted(accepted):
                mark_colored(v, res.assignment[v], event)
            # one announce round: newly colored nodes broadcast their color
            report.announce_rounds += 1
            metrics.observe_round(
                [index_bits(instance.space.size)] * len(active)
            )
            report.phases.add_raw(
                "announce", 1, len(active),
                len(active) * index_bits(instance.space.size),
            )

    # --- priority sweep for leftovers (declines / stage-budget overrun) ---
    # Always valid: colored-neighbor counts plus the sum (d+1) > deg
    # pigeonhole guarantee a feasible color, and the coloring-order
    # orientation means later picks never hurt earlier nodes.  Each round
    # the id-maxima of the uncolored subgraph pick simultaneously (they are
    # pairwise non-adjacent).
    while True:
        rest = [v for v in graph.nodes if v not in colors]
        if not rest:
            break
        rest_set = set(rest)
        maxima = [
            v
            for v in rest
            if all(u < v for u in graph.neighbors(v) if u in rest_set)
        ]
        event += 1
        for v in sorted(maxima):
            x = _any_feasible(instance, a_count, v)
            mark_colored(v, x, event)
            report.sweep_nodes += 1
        report.sweep_rounds += 1
        metrics.observe_round([index_bits(instance.space.size)] * len(maxima))
        report.phases.add_raw(
            "sweep", 1, len(maxima),
            len(maxima) * index_bits(instance.space.size),
        )

    # --- build the global orientation -------------------------------------
    ori = EdgeOrientation()
    for u, v in graph.edges:
        su, sv = colored_seq[u], colored_seq[v]
        if su == sv:
            a, b = event_ori.get(frozenset((u, v)), (max(u, v), min(u, v)))
            ori.orient(a, b)
        elif su > sv:
            ori.orient(u, v)
        else:
            ori.orient(v, u)
    return ColoringResult(dict(colors), ori), metrics, report


def _any_feasible(
    instance: ListDefectiveInstance, a_count: dict[int, dict[int, int]], v: int
) -> int:
    for x in instance.lists[v]:
        if a_count[v].get(x, 0) <= instance.defects[v][x]:
            return x
    raise ScheduleError(
        f"node {v}: no residually feasible color "
        "(input violates sum (d+1) > deg or an inner run overdrew defects)"
    )


def _class_digraph(
    sub: nx.Graph, ori: EdgeOrientation, active: list[int]
) -> nx.DiGraph:
    """The arbdefective orientation restricted to one class's active nodes."""
    gi = nx.DiGraph()
    gi.add_nodes_from(active)
    active_set = set(active)
    for v in active:
        for u in sub.neighbors(v):
            if u in active_set and ori.points_from(v, u):
                gi.add_edge(v, u)
    return gi


def _residual_instance(
    instance: ListDefectiveInstance,
    a_count: dict[int, dict[int, int]],
    gi: nx.DiGraph,
) -> ListDefectiveInstance:
    lists: dict[int, tuple[int, ...]] = {}
    defects: dict[int, dict[int, int]] = {}
    for v in gi.nodes:
        kept = [
            x
            for x in instance.lists[v]
            if a_count[v].get(x, 0) <= instance.defects[v][x]
        ]
        lists[v] = tuple(kept)
        defects[v] = {
            x: instance.defects[v][x] - a_count[v].get(x, 0) for x in kept
        }
    return ListDefectiveInstance(gi, instance.space, lists, defects)
