"""Color-count reduction: from a proper m-coloring to a list coloring.

The classic schedule-based reduction ([Lin87, GPS88]; footnote 2 of the
paper): given a proper ``m``-coloring, iterate over the color classes one
round at a time.  Class ``i`` is an independent set, so all its nodes may
simultaneously pick a final color from their list that no already-finalized
neighbor holds; a (degree+1)-list always has a free color left.  Round
complexity: ``m`` (plus whatever produced the m-coloring), which is the
O(Delta^2 + log* n) baseline the paper's Theorem 1.4 improves on.
"""

from __future__ import annotations

from typing import Any

import networkx as nx

from ..core.coloring import ColoringResult
from ..core.instance import ListDefectiveInstance
from ..sim.message import Message, index_bits
from ..sim.metrics import RunMetrics
from ..sim.network import SyncNetwork
from ..sim.node import DistributedAlgorithm, NodeView


class ScheduledListColoring(DistributedAlgorithm):
    """One color class per round picks greedily from its list.

    Inputs per node: ``schedule_color`` (its class in the proper coloring),
    ``palette`` (its color list).  Shared: ``num_classes``, ``space_size``.

    Nodes track which palette colors neighbors have finalized; in the round
    matching their class they pick the smallest free palette color and
    broadcast it.  A node's class must differ from all neighbors' classes
    (proper coloring) — simultaneous picks never conflict.
    """

    name = "scheduled-list-coloring"

    def init_state(self, view: NodeView) -> dict[str, Any]:
        return {
            "cls": int(view.inputs["schedule_color"]),
            "palette": list(view.inputs["palette"]),
            "taken": set(),
            "output": None,
            "announced": False,
        }

    def send(self, view: NodeView, state, rnd: int) -> dict[int, Message]:
        # A node speaks exactly once: the round after it picks its color.
        if state["output"] is not None and not state["announced"]:
            state["announced"] = True
            bits = index_bits(view.globals["space_size"])
            msg = Message(state["output"], bits=bits)
            return {u: msg for u in view.neighbors}
        return {}

    def receive(self, view: NodeView, state, rnd: int, inbox) -> None:
        for m in inbox.values():
            state["taken"].add(m.payload)
        if state["output"] is None and rnd == state["cls"]:
            free = [x for x in state["palette"] if x not in state["taken"]]
            if not free:
                raise ValueError(
                    f"node {view.id}: palette exhausted "
                    f"(list size {len(state['palette'])}, degree {view.degree})"
                )
            state["output"] = free[0]

    def is_done(self, view: NodeView, state) -> bool:
        return state["output"] is not None and state["announced"]

    def output(self, view: NodeView, state) -> int:
        return state["output"]


def reduce_to_list_coloring(
    instance: ListDefectiveInstance,
    proper_coloring: dict[int, int],
    model: str = "CONGEST",
    recorder=None,
    _finalize_recorder: bool = True,
    wrap=None,
) -> tuple[ColoringResult, RunMetrics]:
    """Run the schedule reduction for a zero-defect list instance.

    ``proper_coloring`` must be proper on the instance graph; each node's
    list must have size >= degree + 1 (checked up front).  ``recorder``
    (a :class:`~repro.obs.RunRecorder`) is threaded into the underlying
    :meth:`~repro.sim.network.SyncNetwork.run`; ``wrap`` optionally
    decorates the algorithm (e.g. with
    :class:`~repro.sim.referee.RefereedAlgorithm`) before the run.
    """
    g = instance.graph
    if instance.directed:
        raise ValueError("schedule reduction expects an undirected instance")
    for v in g.nodes:
        if len(instance.lists[v]) < g.degree(v) + 1:
            raise ValueError(f"node {v}: list smaller than degree+1")
    for u, v in g.edges:
        if proper_coloring[u] == proper_coloring[v]:
            raise ValueError(f"schedule coloring not proper on edge {{{u},{v}}}")
    num_classes = max(proper_coloring.values()) + 1
    net = SyncNetwork(g, model=model)
    inputs = {
        v: {"schedule_color": proper_coloring[v], "palette": instance.lists[v]}
        for v in g.nodes
    }
    algorithm = ScheduledListColoring()
    if wrap is not None:
        algorithm = wrap(algorithm)
    outputs, metrics = net.run(
        algorithm,
        inputs,
        shared={"num_classes": num_classes, "space_size": instance.space.size},
        max_rounds=num_classes + 2,
        recorder=recorder,
        _finalize_recorder=_finalize_recorder,
    )
    return ColoringResult(dict(outputs)), metrics


def classic_delta_plus_one(
    graph: nx.Graph, model: str = "CONGEST", recorder=None, wrap=None
) -> tuple[ColoringResult, RunMetrics]:
    """The classic O(Delta^2 + log* n) pipeline: Linial then the schedule.

    This is the baseline of [Lin87]-era algorithms referenced in footnote 2;
    experiment E11 compares it against Theorem 1.4's pipeline.  A
    ``recorder`` accumulates rows across both stages and is finalized once
    against the merged metrics (mirroring ``classic_vectorized``).
    """
    from ..core.instance import delta_plus_one_instance
    from .linial import run_linial

    pre, m1, _palette = run_linial(
        graph, model=model, recorder=recorder, _finalize_recorder=False, wrap=wrap
    )
    instance = delta_plus_one_instance(graph)
    result, m2 = reduce_to_list_coloring(
        instance,
        pre.assignment,
        model=model,
        recorder=recorder,
        _finalize_recorder=False,
        wrap=wrap,
    )
    merged = m1.merge_sequential(m2)
    if recorder is not None:
        recorder.finalize(
            merged,
            n=graph.number_of_nodes(),
            m=graph.number_of_edges(),
            palette=instance.space.size,
            algorithm=recorder.algorithm or "classic",
        )
    return result, merged
