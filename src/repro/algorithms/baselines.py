"""Baseline algorithms the paper compares against (or builds on).

* :func:`randomized_list_coloring` — the Luby-style randomized
  (degree+1)-list coloring [Lub86, BEPS16]: every round, each uncolored
  node proposes a random free color; a proposal is kept unless a
  higher-priority neighbor proposed the same color.  O(log n) rounds w.h.p.
  with O(log n)-bit messages — the randomized yardstick for Theorem 1.4.
* :class:`ListExchangeColoring` — a stand-in for the message-size profile
  of the [FHK16]/[MT20] LOCAL algorithms: identical conflict resolution,
  but every message additionally carries the sender's full remaining color
  list, i.e. Theta(Lambda log |C|) bits — exactly the "every node has to
  learn the color lists of its neighbors" cost the paper pinpoints as the
  reason those algorithms need Delta = O(log n) to fit CONGEST.  Round
  counts for the true deterministic algorithms are reported from their
  formulas in :mod:`repro.analysis.bounds` (they are not re-implemented;
  DESIGN.md §3 lists this as a documented substitution).
"""

from __future__ import annotations

import random
from typing import Any

from ..core.coloring import ColoringResult
from ..core.instance import ListDefectiveInstance
from ..sim.message import Message, color_list_bits, index_bits
from ..sim.metrics import RunMetrics
from ..sim.network import SyncNetwork
from ..sim.node import DistributedAlgorithm, NodeView


class RandomizedListColoring(DistributedAlgorithm):
    """Luby-style trial coloring.

    Per-node inputs: ``palette`` (list), ``seed``.  Shared: ``space_size``.
    Each round: uncolored nodes draw a uniformly random free color and send
    ``(proposal, final?)``; a node finalizes if no neighbor with a larger
    id proposed the same color.  Finalized colors are re-announced once so
    neighbors can mark them taken.
    """

    name = "randomized-list-coloring"

    def init_state(self, view: NodeView) -> dict[str, Any]:
        return {
            "rng": random.Random(int(view.inputs.get("seed", 0)) * 7919 + view.id),
            "palette": list(view.inputs["palette"]),
            "taken": set(),
            "proposal": None,
            "color": None,
            "quiet": False,
        }

    def send(self, view: NodeView, state, rnd: int) -> dict[int, Message]:
        bits = index_bits(view.globals["space_size"]) + 1
        if state["color"] is not None:
            state["quiet"] = True
            msg = Message((state["color"], True), bits=bits)
            return {u: msg for u in view.neighbors}
        free = [x for x in state["palette"] if x not in state["taken"]]
        if not free:
            raise ValueError(f"node {view.id}: palette exhausted")
        state["proposal"] = state["rng"].choice(free)
        msg = Message((state["proposal"], False), bits=bits)
        return {u: msg for u in view.neighbors}

    def receive(self, view: NodeView, state, rnd: int, inbox) -> None:
        if state["color"] is not None:
            return
        conflict = False
        for u, m in inbox.items():
            color, final = m.payload
            if final:
                state["taken"].add(color)
                if color == state["proposal"]:
                    conflict = True
            elif color == state["proposal"] and u > view.id:
                conflict = True
        if not conflict and state["proposal"] is not None:
            state["color"] = state["proposal"]

    def is_done(self, view: NodeView, state) -> bool:
        return state["quiet"]

    def output(self, view: NodeView, state) -> int:
        return state["color"]


def randomized_list_coloring(
    instance: ListDefectiveInstance,
    seed: int = 0,
    model: str = "CONGEST",
    max_rounds: int = 10_000,
) -> tuple[ColoringResult, RunMetrics]:
    """Run the Luby-style baseline on a zero-defect list instance."""
    if instance.directed:
        raise ValueError("baseline expects an undirected instance")
    net = SyncNetwork(instance.graph, model=model)
    inputs = {
        v: {"palette": instance.lists[v], "seed": seed} for v in instance.graph.nodes
    }
    outputs, metrics = net.run(
        RandomizedListColoring(),
        inputs,
        shared={"space_size": instance.space.size},
        max_rounds=max_rounds,
    )
    return ColoringResult(dict(outputs)), metrics


class ListExchangeColoring(RandomizedListColoring):
    """The big-message variant: every message carries the full list.

    Same schedule as :class:`RandomizedListColoring`, but each message is
    charged ``Theta(Lambda log |C|)`` bits — the [FHK16]/[MT20] profile.
    """

    name = "list-exchange-coloring"

    def send(self, view: NodeView, state, rnd: int) -> dict[int, Message]:
        out = super().send(view, state, rnd)
        extra = color_list_bits(len(state["palette"]), view.globals["space_size"])
        return {
            u: Message(m.payload, bits=m.size_bits() + extra) for u, m in out.items()
        }


def list_exchange_coloring(
    instance: ListDefectiveInstance,
    seed: int = 0,
    model: str = "CONGEST",
    max_rounds: int = 10_000,
) -> tuple[ColoringResult, RunMetrics]:
    """Run the big-message baseline (message-size profile of [FHK16, MT20])."""
    if instance.directed:
        raise ValueError("baseline expects an undirected instance")
    net = SyncNetwork(instance.graph, model=model)
    inputs = {
        v: {"palette": instance.lists[v], "seed": seed} for v in instance.graph.nodes
    }
    outputs, metrics = net.run(
        ListExchangeColoring(),
        inputs,
        shared={"space_size": instance.space.size},
        max_rounds=max_rounds,
    )
    return ColoringResult(dict(outputs)), metrics
