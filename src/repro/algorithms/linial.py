"""Linial's O(Delta^2)-coloring in O(log* n) rounds [Lin87], and the
defective generalization of [Kuh09].

Construction (the standard polynomial / cover-free-family instantiation):
interpret a node's current color ``c < q^(deg+1)`` as a polynomial ``p_c``
of degree <= ``deg`` over ``F_q`` via base-``q`` digits.  After one exchange
of current colors, node ``v`` picks an evaluation point ``x`` such that
``p_v(x) != p_u(x)`` for every neighbor ``u`` (possible whenever
``q > deg * Delta``, since two distinct degree-<=deg polynomials agree on at
most ``deg`` points) and adopts the new color ``x * q + p_v(x)`` — one of
``q^2`` colors.  Iterating with a precomputed schedule shrinks ``m``
colors to ``O(Delta^2)`` in ``O(log* m)`` rounds.

The defective step [Kuh09] relaxes "no agreement" to "at most ``b``
agreements": ``v`` picks the ``x`` minimizing the number of neighbors whose
polynomial agrees at ``x``; by averaging this is at most
``floor(deg * Delta / q)``, so ``q ~ deg * Delta / b`` colors-per-axis
suffice for defect ``b``.  Crucially, a pair of neighbors *already sharing a
color* agree everywhere, so defects persist across iterations and the
schedule must split a total defect budget among its steps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import networkx as nx

from ..analysis.bounds import smallest_prime_above
from ..core.coloring import ColoringResult
from ..sim.message import Message, int_bits
from ..sim.network import SyncNetwork
from ..sim.metrics import RunMetrics
from ..sim.node import DistributedAlgorithm, NodeView


# ----------------------------------------------------------------------
# polynomial machinery over F_q
# ----------------------------------------------------------------------
def poly_coeffs(color: int, q: int, degree: int) -> tuple[int, ...]:
    """Base-q digits of ``color`` as coefficients (length ``degree + 1``)."""
    if color < 0 or color >= q ** (degree + 1):
        raise ValueError(f"color {color} not representable with q={q}, deg={degree}")
    out = []
    c = color
    for _ in range(degree + 1):
        out.append(c % q)
        c //= q
    return tuple(out)


def poly_eval(coeffs: tuple[int, ...], x: int, q: int) -> int:
    """Evaluate the polynomial with the given coefficients at ``x`` mod q."""
    acc = 0
    for a in reversed(coeffs):
        acc = (acc * x + a) % q
    return acc


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinialStep:
    """One reduction step: field size ``q``, polynomial degree ``deg``,
    allowed per-step defect ``budget`` (0 for the proper variant)."""

    q: int
    deg: int
    budget: int

    @property
    def out_colors(self) -> int:
        return self.q * self.q


def _best_step(m: int, delta: int, budget: int) -> LinialStep | None:
    """The step minimizing the output color count ``q^2`` for current ``m``.

    Requires ``q^(deg+1) >= m`` (representability) and, for budget ``b``,
    ``floor(deg * Delta / q) <= b`` — i.e. ``q > deg * Delta`` when ``b = 0``.
    Returns ``None`` if no admissible step shrinks the palette.
    """
    delta = max(1, delta)
    best: LinialStep | None = None
    max_deg = max(2, math.ceil(math.log2(max(2, m))))
    for deg in range(1, max_deg + 1):
        need_repr = math.ceil(m ** (1.0 / (deg + 1))) - 1
        if budget == 0:
            need_collision = deg * delta
        else:
            need_collision = math.ceil(deg * delta / budget) - 1
        q = smallest_prime_above(max(need_repr, need_collision, 1))
        while q ** (deg + 1) < m:
            q = smallest_prime_above(q)
        step = LinialStep(q, deg, budget)
        if best is None or step.out_colors < best.out_colors:
            best = step
    if best is not None and best.out_colors < m:
        return best
    return None


def linial_schedule(m: int, delta: int) -> list[LinialStep]:
    """The proper-coloring schedule from ``m`` initial colors to the fixed
    point ``O(Delta^2)``; length is ``O(log* m)``."""
    steps: list[LinialStep] = []
    cur = m
    while True:
        step = _best_step(cur, delta, budget=0)
        if step is None:
            break
        steps.append(step)
        cur = step.out_colors
    return steps


def defective_schedule(m: int, delta: int, defect: int) -> list[LinialStep]:
    """[Kuh09]: proper steps down to O(Delta^2), then defective steps.

    Because defects accumulate across steps (neighbors already sharing a
    color agree everywhere), the per-step budgets must sum to at most
    ``defect``.  Each round we greedily pick the share/step pair that
    minimizes the output palette, breaking ties toward spending *less*
    budget (saving it for later steps); candidate shares are the remaining
    budget and its halvings.
    """
    steps = linial_schedule(m, delta)
    cur = steps[-1].out_colors if steps else m
    remaining = defect
    while remaining >= 1:
        shares = []
        s = remaining
        while s >= 1:
            shares.append(s)
            s //= 2
        best: tuple[int, int, LinialStep] | None = None
        for share in shares:
            step = _best_step(cur, delta, budget=share)
            if step is None:
                continue
            key = (step.out_colors, share)
            if best is None or key < (best[0], best[1]):
                best = (step.out_colors, share, step)
        if best is None:
            break
        _, share, step = best
        steps.append(step)
        cur = step.out_colors
        remaining -= share
    return steps


# ----------------------------------------------------------------------
# the distributed algorithm
# ----------------------------------------------------------------------
class LinialColoringAlgorithm(DistributedAlgorithm):
    """Runs a precomputed (shared-knowledge) schedule of Linial steps.

    Inputs per node: ``color`` — the initial proper color (defaults to the
    node id).  Shared: ``schedule`` — list of :class:`LinialStep`;
    ``m0`` — the initial palette size (for message sizing).

    Each step costs exactly one round: send the current color, then locally
    pick the evaluation point.  The proper variant picks an ``x`` with zero
    agreements (guaranteed to exist); the defective variant picks the
    minimizing ``x``.
    """

    name = "linial"

    def init_state(self, view: NodeView) -> dict[str, Any]:
        return {
            "color": int(view.inputs.get("color", view.id)),
            "step": 0,
        }

    def _schedule(self, view: NodeView) -> list[LinialStep]:
        return view.globals["schedule"]

    def send(self, view: NodeView, state, rnd: int) -> dict[int, Message]:
        sched = self._schedule(view)
        if state["step"] >= len(sched):
            return {}
        bits = int_bits(max(1, view.globals.get("m0", view.globals["n"]) - 1))
        msg = Message(state["color"], bits=bits)
        return {u: msg for u in view.neighbors}

    def receive(self, view: NodeView, state, rnd: int, inbox) -> None:
        sched = self._schedule(view)
        if state["step"] >= len(sched):
            return
        step = sched[state["step"]]
        q, deg = step.q, step.deg
        my = poly_coeffs(state["color"], q, deg)
        # Decoder filtering: under fault injection a frame can be stale
        # (sender at a different step) or corrupted out of domain; anything
        # not a valid base-q encoding for *this* step is discarded, exactly
        # as the vectorized kernel masks out-of-domain deliveries.
        domain = q ** (deg + 1)
        neigh = [
            poly_coeffs(m.payload, q, deg)
            for m in inbox.values()
            if isinstance(m.payload, int)
            and not isinstance(m.payload, bool)
            and 0 <= m.payload < domain
        ]
        best_x, best_hits = 0, None
        for x in range(q):
            mine = poly_eval(my, x, q)
            hits = sum(1 for nc in neigh if poly_eval(nc, x, q) == mine)
            if best_hits is None or hits < best_hits:
                best_x, best_hits = x, hits
                if hits == 0:
                    break
        state["color"] = best_x * q + poly_eval(my, best_x, q)
        state["step"] += 1

    def is_done(self, view: NodeView, state) -> bool:
        return state["step"] >= len(self._schedule(view))

    def output(self, view: NodeView, state) -> int:
        return state["color"]


def run_linial(
    graph: nx.Graph,
    model: str = "CONGEST",
    initial_colors: dict[int, int] | None = None,
    defect: int = 0,
    recorder=None,
    _finalize_recorder: bool = True,
    wrap=None,
    faults=None,
) -> tuple[ColoringResult, RunMetrics, int]:
    """Convenience wrapper: run Linial (or the [Kuh09] defective variant).

    Returns ``(coloring, metrics, palette_size)`` where ``palette_size`` is
    the final schedule palette ``q^2`` (an upper bound on colors used).
    ``recorder`` (a :class:`~repro.obs.RunRecorder`) is threaded into the
    underlying :meth:`~repro.sim.network.SyncNetwork.run`.  ``wrap`` is an
    optional algorithm decorator (e.g.
    :class:`~repro.sim.referee.RefereedAlgorithm`) applied to the
    algorithm instance before the run — the differential fuzz harness uses
    it to referee every reference execution.  ``faults`` (a
    :class:`~repro.faults.FaultPlan`) injects the plan's message/crash
    schedule; the round budget then stretches to the plan's
    :meth:`~repro.faults.FaultPlan.round_budget` — the same bound the
    vectorized twin uses, so a crash-stop plan halts both engines
    identically.
    """
    n = graph.number_of_nodes()
    delta = max((d for _, d in graph.degree), default=0)
    if initial_colors is None:
        initial_colors = {v: i for i, v in enumerate(sorted(graph.nodes))}
    m0 = max(initial_colors.values()) + 1 if initial_colors else 1
    if defect == 0:
        sched = linial_schedule(m0, delta)
    else:
        sched = defective_schedule(m0, delta, defect)
    palette = sched[-1].out_colors if sched else m0
    net = SyncNetwork(graph, model=model)
    inputs = {v: {"color": c} for v, c in initial_colors.items()}
    algorithm = LinialColoringAlgorithm()
    if wrap is not None:
        algorithm = wrap(algorithm)
    max_rounds = (
        len(sched) + 1 if faults is None else faults.round_budget(len(sched))
    )
    outputs, metrics = net.run(
        algorithm,
        inputs,
        shared={"schedule": sched, "m0": m0},
        max_rounds=max_rounds,
        recorder=recorder,
        faults=faults,
        _finalize_recorder=False,
    )
    if recorder is not None and _finalize_recorder:
        recorder.finalize(
            metrics,
            n=n,
            m=graph.number_of_edges(),
            palette=palette,
            algorithm=recorder.algorithm or LinialColoringAlgorithm().name,
        )
    return ColoringResult(dict(outputs)), metrics, palette
