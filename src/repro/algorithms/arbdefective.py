"""Arbdefective coloring via scheduled least-loaded picks.

Produces a ``d``-arbdefective ``q``-coloring together with its orientation.
Two modes (DESIGN.md §3.3 documents this as the substitution for the
locally-iterative algorithm of [BEG18]):

* ``mode="tight"`` — schedule over the classes of a *proper* Linial
  O(Delta^2)-coloring.  Each node, in its class's round, picks the color of
  ``[q]`` least used among already-colored neighbors; with
  ``q = floor(Delta / (d+1)) + 1`` the pigeonhole gives at most
  ``floor(Delta/q) <= d`` earlier-colored same-color neighbors, and edges
  are oriented toward earlier-colored nodes — exactly the paper's
  ``d``-arbdefective ``floor(Delta/(d+1) + 1)``-coloring.  Rounds:
  O(Delta^2 + log* n).
* ``mode="fast"`` — schedule over the classes of a ``floor(d/2)``-defective
  coloring instead (O((Delta/d)^2) classes).  Same-round adjacent picks are
  possible but number at most ``floor(d/2)`` per node and are oriented by
  id, so the total arbdefect stays <= d at the price of roughly doubled
  ``q``.  Rounds: O((Delta/d)^2 + log* n).
"""

from __future__ import annotations

import math
from typing import Any

import networkx as nx

from ..core.coloring import ColoringResult, EdgeOrientation
from ..core.validate import validate_arbdefective_plain
from ..sim.message import Message, index_bits
from ..sim.metrics import RunMetrics
from ..sim.network import SyncNetwork
from ..sim.node import DistributedAlgorithm, NodeView
from .linial import run_linial


class ScheduledArbdefective(DistributedAlgorithm):
    """Least-loaded color pick on a class schedule.

    Inputs per node: ``schedule_color``.  Shared: ``q`` (palette size).
    Output per node: ``(color, pick_round)`` — the orientation is derived
    from pick rounds (later -> earlier) with id tie-breaks.
    """

    name = "scheduled-arbdefective"

    def init_state(self, view: NodeView) -> dict[str, Any]:
        return {
            "cls": int(view.inputs["schedule_color"]),
            "counts": {},
            "color": None,
            "announced": False,
        }

    def send(self, view: NodeView, state, rnd: int) -> dict[int, Message]:
        if state["color"] is not None and not state["announced"]:
            state["announced"] = True
            msg = Message(state["color"], bits=index_bits(view.globals["q"]))
            return {u: msg for u in view.neighbors}
        return {}

    def receive(self, view: NodeView, state, rnd: int, inbox) -> None:
        for m in inbox.values():
            state["counts"][m.payload] = state["counts"].get(m.payload, 0) + 1
        if state["color"] is None and rnd == state["cls"]:
            q = view.globals["q"]
            state["color"] = min(range(q), key=lambda c: (state["counts"].get(c, 0), c))

    def is_done(self, view: NodeView, state) -> bool:
        return state["color"] is not None and state["announced"]

    def output(self, view: NodeView, state) -> tuple[int, int]:
        return (state["color"], state["cls"])


def arbdefective_coloring(
    graph: nx.Graph,
    arbdefect: int,
    colors: int | None = None,
    mode: str = "tight",
    model: str = "CONGEST",
    validate: bool = True,
) -> tuple[ColoringResult, RunMetrics, int]:
    """Compute a ``d``-arbdefective ``q``-coloring with orientation.

    Returns ``(result, metrics, q)``.  ``colors`` overrides the default
    palette size (callers like Theorem 1.3 pass their own ``q``); it must be
    at least the mode's pigeonhole requirement or a ``ValueError`` results.
    """
    if arbdefect < 0:
        raise ValueError(f"arbdefect must be >= 0, got {arbdefect}")
    if mode not in ("tight", "fast"):
        raise ValueError(f"unknown mode {mode!r}")
    delta = max((deg for _, deg in graph.degree), default=0)
    d1 = 0 if mode == "tight" else arbdefect // 2
    d2 = arbdefect - d1  # budget left for earlier-colored neighbors
    q_min = math.floor(delta / (d2 + 1)) + 1
    q = q_min if colors is None else colors
    if q < q_min:
        raise ValueError(
            f"q={q} too small: mode {mode!r} needs >= {q_min} colors "
            f"for Delta={delta}, d={arbdefect}"
        )

    if d1 == 0:
        schedule, m1, _pal = run_linial(graph, model=model)
    else:
        schedule, m1, _pal = run_linial(graph, model=model, defect=d1)

    net = SyncNetwork(graph, model=model)
    inputs = {v: {"schedule_color": schedule.assignment[v]} for v in graph.nodes}
    max_cls = max(schedule.assignment.values(), default=0)
    outputs, m2 = net.run(
        ScheduledArbdefective(),
        inputs,
        shared={"q": q},
        max_rounds=max_cls + 3,
    )

    assignment = {v: c for v, (c, _r) in outputs.items()}
    pick_round = {v: r for v, (_c, r) in outputs.items()}
    ori = EdgeOrientation()
    for u, v in graph.edges:
        if (pick_round[u], u) > (pick_round[v], v):
            ori.orient(u, v)
        else:
            ori.orient(v, u)
    result = ColoringResult(assignment, ori)
    if validate:
        validate_arbdefective_plain(graph, result, arbdefect).raise_if_invalid()
    return result, m1.merge_sequential(m2), q
