"""Recursive color space reduction — Theorem 1.2, Corollaries 4.1/4.2.

Given any OLDC solver ``A``, build a solver ``A'`` for a larger color space:
partition ``C`` into ``p`` nearly-equal parts; have every node first choose
*which part* to draw its color from — itself an OLDC instance over the tiny
color space ``[p]``, solved with ``A`` — and then recurse inside each part
on the subgraph of nodes that chose it.  Nodes choosing different parts can
never conflict, so the subproblems are independent and run in parallel.

The choice instance's defect for part ``i`` is the *outdegree budget*
``beta_{v,i}``: the largest number of same-part out-neighbors for which the
inner condition still holds on the residual list ``L_v ∩ C_i``::

    beta_{v,i} = floor( (sum_{x in L_v ∩ C_i} (d_v(x)+1)^{1+nu} / kappa_inner)
                        ^{1/(1+nu)} )

(the paper's ``lambda_{v,i}`` bookkeeping, solved for ``beta``).

Metric accounting: per recursion level the part-subproblems run
concurrently — rounds take the max over parts, bits add up.  The practical
payoff measured by E06 is Corollary 4.2's: message sizes drop from
``O(|C|)``-bit list encodings to ``O(|C|^{1/r})`` at the cost of an ``r``
factor in rounds and of ``kappa^r`` in the list-size requirement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.colorspace import ColorSpace
from ..core.coloring import ColoringResult
from ..core.instance import ListDefectiveInstance
from ..sim.metrics import RunMetrics

OLDCSolver = Callable[
    [ListDefectiveInstance, dict[int, int]],
    tuple[ColoringResult, RunMetrics, Any],
]


@dataclass
class ReductionReport:
    """Audit of one recursive reduction run."""

    levels: int = 0
    p: int = 0
    choice_rounds: int = 0
    max_choice_message_bits: int = 0
    leaf_reports: list[Any] = field(default_factory=list)


def _parallel_merge(metrics_list: list[RunMetrics]) -> RunMetrics:
    """Combine metrics of subproblems that execute concurrently.

    Per-round accounting is undefined across concurrent sub-runs, so only
    the aggregate counters are filled in; the merged limit is the largest
    sub-budget (the parts differ in size, and each part's violations were
    counted against its own budget when observed).
    """
    out = RunMetrics()
    if not metrics_list:
        return out
    out.rounds = max(m.rounds for m in metrics_list)
    out.total_messages = sum(m.total_messages for m in metrics_list)
    out.total_bits = sum(m.total_bits for m in metrics_list)
    out.max_message_bits = max(m.max_message_bits for m in metrics_list)
    out.bandwidth_violations = sum(m.bandwidth_violations for m in metrics_list)
    limits = [m.bandwidth_limit for m in metrics_list if m.bandwidth_limit is not None]
    out.bandwidth_limit = max(limits) if limits else None
    return out


def solve_with_reduction(
    instance: ListDefectiveInstance,
    init_coloring: dict[int, int],
    solver: OLDCSolver,
    p: int,
    nu: float = 1.0,
    kappa_inner: float = 1.0,
) -> tuple[ColoringResult, RunMetrics, ReductionReport]:
    """Theorem 1.2's transformation of ``solver`` (see module docstring).

    Parameters
    ----------
    p:
        Branching factor; recursion depth is ``ceil(log_p |C|)``.  ``p``
        must lie in the paper's interval ``(1, |C|]``.
    nu / kappa_inner:
        The exponent and threshold of the inner solver's condition
        (Eq. 12); they shape the ``beta_{v,i}`` budgets.

    Returns (coloring, metrics, report).  Correctness of the final coloring
    is the caller's to validate; the reduction itself guarantees only that
    nodes in different parts received disjoint colors.
    """
    if not instance.directed:
        raise ValueError("reduction expects a directed (OLDC) instance")
    if not 1 < p <= instance.space.size:
        raise ValueError(f"p={p} outside (1, |C|={instance.space.size}]")
    report = ReductionReport(p=p)
    result, metrics = _reduce(
        instance, init_coloring, solver, p, nu, kappa_inner, report, level=0
    )
    return result, metrics, report


def _reduce(
    instance: ListDefectiveInstance,
    init_coloring: dict[int, int],
    solver: OLDCSolver,
    p: int,
    nu: float,
    kappa_inner: float,
    report: ReductionReport,
    level: int,
) -> tuple[ColoringResult, RunMetrics]:
    report.levels = max(report.levels, level + 1)
    if instance.space.size <= p:
        result, metrics, leaf = solver(instance, init_coloring)
        report.leaf_reports.append(leaf)
        return result, metrics

    graph = instance.graph
    parts = instance.space.partition(p)
    expo = 1.0 + nu

    # ---- build the part-choice OLDC instance -----------------------------
    choice_lists: dict[int, tuple[int, ...]] = {}
    choice_defects: dict[int, dict[int, int]] = {}
    part_colors: dict[int, dict[int, list[int]]] = {}
    for v in graph.nodes:
        per_part: dict[int, list[int]] = {}
        for x in instance.lists[v]:
            i = instance.space.subspace_of(x, p)
            per_part.setdefault(i, []).append(x)
        part_colors[v] = per_part
        budgets: dict[int, int] = {}
        for i, cols in per_part.items():
            weight = sum((instance.defects[v][x] + 1) ** expo for x in cols)
            budgets[i] = max(0, math.floor((weight / kappa_inner) ** (1.0 / expo)) - 1)
        choice_lists[v] = tuple(sorted(per_part))
        choice_defects[v] = budgets
    choice_instance = ListDefectiveInstance(
        graph, ColorSpace(p), choice_lists, choice_defects
    )
    choice_result, choice_metrics, _info = solver(choice_instance, init_coloring)
    report.choice_rounds += choice_metrics.rounds
    report.max_choice_message_bits = max(
        report.max_choice_message_bits, choice_metrics.max_message_bits
    )

    # ---- recurse per part (concurrent subproblems) ------------------------
    members: dict[int, list[int]] = {}
    for v in graph.nodes:
        members.setdefault(choice_result.assignment[v], []).append(v)
    sub_metrics: list[RunMetrics] = []
    assignment: dict[int, int] = {}
    for i in sorted(members):
        nodes = members[i]
        sub = instance.restrict(
            nodes, keep_color=lambda v, x, i=i: instance.space.subspace_of(x, p) == i
        )
        sub = ListDefectiveInstance(sub.graph, parts[i], sub.lists, sub.defects)
        sub_init = {v: init_coloring[v] for v in nodes}
        sub_result, m = _reduce(
            sub, sub_init, solver, p, nu, kappa_inner, report, level + 1
        )
        sub_metrics.append(m)
        assignment.update(sub_result.assignment)
    # sub-instances live on smaller graphs with smaller budgets; keep the
    # choice-level (full-instance) budget as the budget of record
    merged = choice_metrics.merge_sequential(
        _parallel_merge(sub_metrics),
        bandwidth_limit=choice_metrics.bandwidth_limit,
    )
    return ColoringResult(assignment), merged


def corollary_4_1_p(beta: int, kappa: float) -> int:
    """Corollary 4.1's branching factor ``p = 2^Theta(sqrt(log beta log kappa))``.

    For a base OLDC algorithm with round complexity poly(Lambda) +
    O(log* m) and requirement factor ``kappa(Lambda)``, this choice
    balances the per-level cost poly(p) against the depth log_p |C|,
    giving total time 2^O(sqrt(log beta log kappa)) + O(log* m) when
    |C| = poly(beta).  We expose the formula (and
    :func:`solve_with_corollary_4_1` below) so the trade-off is runnable;
    note that with Theorem 1.1's O(log beta)-round solver the *time* win
    does not materialize (its T does not grow with Lambda) — the paper's
    Corollary 4.1 presumes a poly(Lambda)-time base algorithm, a class we
    do not implement (see DESIGN.md §3).
    """
    if beta < 1 or kappa < 1:
        raise ValueError("need beta >= 1 and kappa >= 1")
    exponent = math.sqrt(max(1.0, math.log2(max(2, beta))) * max(1.0, math.log2(max(2.0, kappa))))
    return max(2, int(round(2.0**exponent)))


def solve_with_corollary_4_1(
    instance: ListDefectiveInstance,
    init_coloring: dict[int, int],
    solver: OLDCSolver,
    kappa: float,
    nu: float = 1.0,
) -> tuple[ColoringResult, RunMetrics, ReductionReport]:
    """Theorem 1.2 instantiated with Corollary 4.1's branching factor."""
    p = min(
        corollary_4_1_p(instance.max_outdegree, kappa), instance.space.size
    )
    p = max(2, p)
    return solve_with_reduction(
        instance, init_coloring, solver, p=p, nu=nu, kappa_inner=1.0
    )


def corollary_4_2_p(space_size: int, r: int) -> int:
    """Corollary 4.2's branching factor ``p = ceil(|C|^{1/r})`` (so the
    color space flattens in ``r`` levels)."""
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    p = max(2, math.ceil(space_size ** (1.0 / r)))
    return min(p, space_size)
