"""(Delta+1)-coloring in O(Delta polylog + log* n) rounds [BE09, Kuh09].

The paper's introduction describes the first generation of
defective-coloring-based algorithms: "Both papers use defective colorings
to compute proper colorings in a divide-and-conquer fashion, leading to
algorithms to compute a (Delta+1)-coloring in O(Delta + log* n) rounds
[...] In [BE09, Kuh09], this [palette growth] is compensated by reducing
the number of colors at the end of each recursion level."

This module implements that exact scheme:

1. compute a ``Delta/2``-defective coloring (O(log* n) rounds, [Kuh09]);
2. recurse *in parallel* on each defective class (max degree <= Delta/2)
   with pairwise **disjoint palettes** — inter-class edges can then never
   conflict;
3. the union is a proper coloring with ``classes * (Delta/2 + 1)`` colors;
   rank-compress the palette (zero rounds — the palette layout is common
   knowledge) and run the one-class-per-round schedule reduction back down
   to ``Delta + 1`` colors.

Per level the reduction costs O(classes * Delta / 2) rounds, so the
recursion totals O(Delta * classes) — linear in Delta with the polylog
carried by our defective palette (DESIGN.md §3).  This is the baseline the
(1+eps) trick of [Bar16] (E13) and ultimately Theorem 1.4 improve on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..core.coloring import ColoringResult
from ..sim.message import Message, index_bits
from ..sim.metrics import RunMetrics, congest_bandwidth
from ..sim.network import SyncNetwork
from ..sim.node import DistributedAlgorithm, NodeView
from .defective import run_defective_coloring
from .linial import run_linial


@dataclass
class LinearReport:
    """Recursion audit."""

    levels: int = 0
    palettes_before_reduce: list[int] = field(default_factory=list)
    reduce_rounds: list[int] = field(default_factory=list)


def _reduce_palette(
    graph: nx.Graph,
    coloring: dict[int, int],
    palette_order: list[int],
    target: int,
    model: str,
) -> tuple[dict[int, int], RunMetrics]:
    """Schedule-reduce a proper coloring onto its first ``target`` ranks.

    ``palette_order`` is the globally known enumeration of possible colors;
    nodes holding a color ranked >= target repick greedily, scheduled by
    their current (proper!) color rank.  One round per excess rank.
    """
    rank = {c: i for i, c in enumerate(palette_order)}
    n_excess_schedule = len(palette_order)

    class Reduce(DistributedAlgorithm):
        name = "palette-reduce"

        def init_state(self, view: NodeView):
            c = view.inputs["color"]
            return {
                "rank": rank[c],
                "final": rank[c] if rank[c] < target else None,
                "taken": set(),
                "announced": False,
            }

        def send(self, view, state, rnd):
            if state["final"] is not None and not state["announced"]:
                state["announced"] = True
                msg = Message(state["final"], bits=index_bits(max(2, target)))
                return {u: msg for u in view.neighbors}
            return {}

        def receive(self, view, state, rnd, inbox):
            for m in inbox.values():
                state["taken"].add(m.payload)
            if state["final"] is None and rnd == state["rank"] - target:
                free = next(
                    x for x in range(target) if x not in state["taken"]
                )
                state["final"] = free

        def is_done(self, view, state):
            return state["final"] is not None and state["announced"]

        def output(self, view, state):
            return state["final"]

    # nodes already below target announce at round 0; node of rank r >=
    # target repicks at round r - target (by then all lower ranks are
    # final, and equal-rank nodes are non-adjacent since the input
    # coloring is proper).
    net = SyncNetwork(graph, model=model)
    inputs = {v: {"color": coloring[v]} for v in graph.nodes}
    outputs, metrics = net.run(
        Reduce(), inputs, max_rounds=n_excess_schedule + 3
    )
    return dict(outputs), metrics


def linear_in_delta_coloring(
    graph: nx.Graph,
    model: str = "CONGEST",
    base_delta: int = 4,
) -> tuple[ColoringResult, RunMetrics, LinearReport]:
    """[BE09/Kuh09]-style recursive (Delta+1)-coloring (module docstring).

    Returns ``(coloring, metrics, report)`` with at most ``Delta+1``
    colors; validate with
    :func:`repro.core.validate.validate_proper_coloring`.
    """
    report = LinearReport()
    # recursion spawns sub-networks on subgraphs with their own (smaller-n)
    # CONGEST budgets; the full graph's budget is the budget of record for
    # every merge below
    budget = (
        congest_bandwidth(graph.number_of_nodes()) if model == "CONGEST" else None
    )
    metrics = RunMetrics(bandwidth_limit=budget)

    def color_recursive(sub: nx.Graph, level: int) -> dict[int, int]:
        nonlocal metrics
        report.levels = max(report.levels, level + 1)
        delta = max((d for _, d in sub.degree), default=0)
        if delta <= base_delta:
            pre, m1, _p = run_linial(sub, model=model)
            target = delta + 1
            palette_order = sorted(set(pre.assignment.values()))
            colors, m2 = _reduce_palette(
                sub, pre.assignment, palette_order, target, model
            )
            metrics = metrics.merge_sequential(
                m1, bandwidth_limit=budget
            ).merge_sequential(m2, bandwidth_limit=budget)
            return colors

        d = delta // 2
        classes, m1, palette = run_defective_coloring(sub, d, model=model)
        metrics = metrics.merge_sequential(m1, bandwidth_limit=budget)
        # recurse per class with disjoint palettes (parallel: max rounds)
        sub_metrics: list[RunMetrics] = []
        union: dict[int, int] = {}
        offset = 0
        saved = metrics
        for cls, members in sorted(classes.color_classes().items()):
            block = sub.subgraph(members)
            block_delta = max((deg for _, deg in block.degree), default=0)
            metrics = RunMetrics(bandwidth_limit=budget)
            colors = color_recursive(block.copy(), level + 1)
            sub_metrics.append(metrics)
            for v, c in colors.items():
                union[v] = offset + c
            offset += block_delta + 1
        parallel = RunMetrics()
        if sub_metrics:
            parallel.rounds = max(m.rounds for m in sub_metrics)
            parallel.total_messages = sum(m.total_messages for m in sub_metrics)
            parallel.total_bits = sum(m.total_bits for m in sub_metrics)
            parallel.max_message_bits = max(
                m.max_message_bits for m in sub_metrics
            )
        metrics = saved.merge_sequential(parallel, bandwidth_limit=budget)
        report.palettes_before_reduce.append(offset)
        # rank-compress & reduce to delta + 1
        palette_order = list(range(offset))
        colors, m2 = _reduce_palette(sub, union, palette_order, delta + 1, model)
        report.reduce_rounds.append(m2.rounds)
        metrics = metrics.merge_sequential(m2, bandwidth_limit=budget)
        return colors

    assignment = color_recursive(graph, 0)
    return ColoringResult(assignment), metrics, report
