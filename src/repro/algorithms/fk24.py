"""Fuchs-Kuhn 2024 simple iterative list (arb)defective coloring [FK24].

The follow-up paper "Simpler and More General Distributed Coloring Based
on Simple List Defective Coloring Algorithms" (arXiv 2405.04648, Section 3)
replaces the SPAA'23 brief announcement's polynomial constructions with a
strikingly simple iterative scheme: every uncolored node repeatedly *tries*
a candidate color from its list and keeps it unless too many stronger
neighbors compete for (or already hold) the same color.

Protocol (one try/announce cycle per synchronous round):

* every node ``v`` holds a color list ``L_v`` from a common space ``C``
  and a defect budget ``d``;
* a *trying* node picks as candidate the first ``x`` in ``L_v`` such that,
  among the neighbors whose adopted color ``v`` has heard of, at most ``d``
  hold ``x``; it broadcasts ``try(x)`` (nothing, if no viable color);
* on receive, ``v`` first records this round's ``took`` announcements,
  then *adopts* its candidate ``x`` iff the known takers of ``x`` plus the
  same-round triers of ``x`` with a smaller label still number at most
  ``d``;
* an adopter broadcasts ``took(x)`` once in the next round, then halts.

Smaller label wins ties, so the node with the globally smallest label
among the active triers always either adopts or permanently kills its
candidate — giving termination within ``sum(|L_v|) + 2n`` progress events.
Orienting each monochromatic edge from the *later* adopter to the earlier
one (ties toward the larger label) makes the counted set a superset of the
out-neighborhood, hence the output is a **list arbdefective coloring**:
every node has at most ``d`` same-colored out-neighbors
(:func:`~repro.core.validate.validate_arbdefective`).  Any list sizes with
``|L_v| >= floor(deg(v) / (d + 1)) + 1`` guarantee a viable candidate
always exists, matching the [FK24] list-size requirement ``p_v`` with
per-color defects ``d`` (their Theorem 1.2 instantiated uniformly).

Each message encodes ``tag * |C| + color`` (tag 0 = try, 1 = took) in
``ceil(log2(2|C|))`` bits, so the algorithm is CONGEST-compliant whenever
``|C|`` is polynomial in ``n``.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Mapping

import networkx as nx

from ..core.coloring import ColoringResult, orientation_from_priority
from ..sim.message import Message, int_bits
from ..sim.metrics import RunMetrics
from ..sim.network import SyncNetwork
from ..sim.node import DistributedAlgorithm, NodeView

# Node phases (also the vectorized kernels' status codes).
TRYING = 0
ANNOUNCING = 1
DONE = 2


def fk24_list_size(degree: int, defect: int) -> int:
    """Minimum list length guaranteeing a viable candidate always exists.

    A dead color needs ``d + 1`` distinct known takers, so at most
    ``floor(deg / (d + 1))`` colors of ``L_v`` can ever die.
    """
    return degree // (defect + 1) + 1


def fk24_round_budget(lists: Iterable[Iterable[int]], n: int) -> int:
    """Fault-free round budget: every round with an unfinished node either
    kills a candidate permanently (at most ``sum |L_v|`` times) or moves a
    node through adopt -> announce (at most ``2n`` times); the slack covers
    the final announce/halt tail and empty graphs."""
    return sum(len(tuple(lst)) for lst in lists) + 2 * n + 4


def fk24_lists(
    graph: nx.Graph,
    defect: int = 1,
    slack: int = 0,
    space_size: int | None = None,
    seed: int | None = None,
) -> tuple[dict[int, tuple[int, ...]], int]:
    """Deterministic valid instance builder: ``(lists, space_size)``.

    Every node gets ``fk24_list_size(deg, defect) + slack`` colors.  With
    ``seed=None`` the lists are palette prefixes (the densest packing);
    otherwise each node samples its list from the space with a per-node
    seeded RNG, which is what the sweeps use to exercise gappy lists.
    """
    degrees = dict(graph.degree)
    need = {v: fk24_list_size(degrees[v], defect) + slack for v in graph.nodes}
    space = max(need.values(), default=1) if space_size is None else space_size
    if space < max(need.values(), default=1):
        raise ValueError(
            f"space_size={space} smaller than the largest required list "
            f"({max(need.values())})"
        )
    lists: dict[int, tuple[int, ...]] = {}
    for idx, v in enumerate(sorted(graph.nodes)):
        k = need[v]
        if seed is None:
            lists[v] = tuple(range(k))
        else:
            rng = random.Random((seed << 20) ^ idx)
            lists[v] = tuple(sorted(rng.sample(range(space), k)))
    return lists, space


class FK24Algorithm(DistributedAlgorithm):
    """The [FK24] iterative list-defective algorithm as a per-node program.

    Inputs per node: ``list`` — the color list (sorted tuple).  Shared:
    ``space`` — ``|C|``; ``defect`` — the uniform per-color defect ``d``.

    State machine: ``TRYING`` (broadcast a candidate, adopt on success) ->
    ``ANNOUNCING`` (broadcast ``took`` once) -> ``DONE``.  A trying node
    with no viable candidate idles (stays active, sends nothing) — on a
    valid instance this never happens, and on an invalid one both engines
    idle to the same :class:`~repro.sim.node.HaltingError`.
    """

    name = "fk24"

    def init_state(self, view: NodeView) -> dict[str, Any]:
        return {
            "status": TRYING,
            "color": None,
            "cand": None,
            "know": {},  # neighbor id -> last heard adopted color
            "adopted": None,  # round index of our own adoption
        }

    def _bits(self, view: NodeView) -> int:
        return int_bits(max(1, 2 * view.globals["space"] - 1))

    def send(self, view: NodeView, state, rnd: int) -> dict[int, Message]:
        space = view.globals["space"]
        bits = self._bits(view)
        if state["status"] == ANNOUNCING:
            msg = Message(space + state["color"], bits=bits)
            return {u: msg for u in view.neighbors}
        # trying: first list color with at most d *known* takers, using
        # knowledge as of the end of the previous round
        defect = view.globals["defect"]
        known = list(state["know"].values())
        cand = None
        for x in view.inputs["list"]:
            if sum(1 for c in known if c == x) <= defect:
                cand = x
                break
        state["cand"] = cand
        if cand is None:
            return {}
        msg = Message(cand, bits=bits)
        return {u: msg for u in view.neighbors}

    def receive(self, view: NodeView, state, rnd: int, inbox) -> None:
        if state["status"] == ANNOUNCING:
            # the one announce round is over (we were alive to send it)
            state["status"] = DONE
            return
        space = view.globals["space"]
        # Decoder filtering: corrupt payloads outside [0, 2|C|) or of a
        # foreign type are discarded, exactly as the vectorized kernel
        # masks out-of-domain deliveries.
        tries: list[tuple[int, int]] = []
        for u, m in inbox.items():
            p = m.payload
            if isinstance(p, int) and not isinstance(p, bool) and 0 <= p < 2 * space:
                if p >= space:
                    state["know"][u] = p - space  # took
                else:
                    tries.append((u, p))  # try
        cand = state["cand"]
        if cand is None:
            return
        defect = view.globals["defect"]
        taken = sum(1 for c in state["know"].values() if c == cand)
        stronger = sum(1 for u, x in tries if x == cand and u < view.id)
        if taken + stronger <= defect:
            state["color"] = cand
            state["status"] = ANNOUNCING
            state["adopted"] = rnd

    def is_done(self, view: NodeView, state) -> bool:
        return state["status"] == DONE

    def output(self, view: NodeView, state) -> tuple[int, int]:
        return state["color"], state["adopted"]


def run_fk24(
    graph: nx.Graph,
    lists: Mapping[int, Iterable[int]] | None = None,
    space_size: int | None = None,
    defect: int = 1,
    model: str = "CONGEST",
    recorder=None,
    _finalize_recorder: bool = True,
    wrap=None,
    faults=None,
    adoption_out: dict[int, int] | None = None,
) -> tuple[ColoringResult, RunMetrics, int]:
    """Run [FK24] on ``graph``; returns ``(result, metrics, palette_size)``.

    ``result.orientation`` orients every edge from the later adopter to the
    earlier one (ties toward the larger label), under which the coloring is
    ``d``-arbdefective with colors from the lists.  ``lists`` defaults to
    :func:`fk24_lists`; ``palette_size`` is ``|C|``.  ``adoption_out``, if
    given, is filled with each node's adoption round — the differential
    harness compares it across engines.  ``wrap`` / ``faults`` /
    ``recorder`` behave as in :func:`~repro.algorithms.linial.run_linial`.
    """
    n = graph.number_of_nodes()
    if lists is None:
        lists, built_space = fk24_lists(graph, defect)
        if space_size is None:
            space_size = built_space
    lists = {v: tuple(lists[v]) for v in graph.nodes}
    if space_size is None:
        space_size = max((max(lst) for lst in lists.values() if lst), default=0) + 1
    budget = fk24_round_budget(lists.values(), n)
    max_rounds = budget if faults is None else faults.round_budget(budget)
    net = SyncNetwork(graph, model=model)
    inputs = {v: {"list": lists[v]} for v in graph.nodes}
    algorithm = FK24Algorithm()
    if wrap is not None:
        algorithm = wrap(algorithm)
    outputs, metrics = net.run(
        algorithm,
        inputs,
        shared={"space": space_size, "defect": int(defect)},
        max_rounds=max_rounds,
        recorder=recorder,
        faults=faults,
        _finalize_recorder=False,
    )
    assignment = {v: color for v, (color, _) in outputs.items()}
    adoption = {v: rnd for v, (_, rnd) in outputs.items()}
    if adoption_out is not None:
        adoption_out.update(adoption)
    result = ColoringResult(
        assignment, orientation_from_priority(graph, adoption)
    )
    if recorder is not None and _finalize_recorder:
        recorder.finalize(
            metrics,
            n=n,
            m=graph.number_of_edges(),
            palette=space_size,
            algorithm=recorder.algorithm or FK24Algorithm.name,
        )
    return result, metrics, space_size
