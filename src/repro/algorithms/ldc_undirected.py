"""Undirected list defective coloring via bidirection.

The paper (remark after Theorem 1.2): an LDC problem on an undirected
graph is equivalent to the OLDC problem on the bidirected graph — every
neighbor is an out-neighbor, so the defect counts coincide.  The
requirement then reads with ``deg(v)`` in place of ``beta_v``:
``sum (d_v(x)+1)^2 >= alpha * deg(v)^2 * kappa``.

These wrappers package that equivalence so undirected callers never touch
digraphs:

* :func:`solve_ldc_main` — Theorem 1.1's algorithm on the bidirection;
* :func:`solve_ldc_with_reduction` — ditto behind Theorem 1.2's reduction.

Note the quadratic price: bidirecting doubles nothing but makes *every*
neighbor count, so the condition is on ``deg^2`` (cf. the paper's Section 5
discussion that a hypothetical ``deg^{3/2-eps}`` LDC algorithm would
already improve the state of the art).
"""

from __future__ import annotations

from ..analysis.bounds import DEFAULT_SCALE, ParamScale
from ..core.coloring import ColoringResult
from ..core.instance import ListDefectiveInstance
from ..sim.metrics import RunMetrics
from .colorspace_reduction import ReductionReport, solve_with_reduction
from .oldc_main import MainReport, solve_oldc_main


def solve_ldc_main(
    instance: ListDefectiveInstance,
    init_coloring: dict[int, int],
    scale: ParamScale = DEFAULT_SCALE,
    model: str = "CONGEST",
) -> tuple[ColoringResult, RunMetrics, MainReport]:
    """Theorem 1.1 for *undirected* LDC instances (via bidirection).

    The returned coloring satisfies the LDC condition of Definition 1.1
    (validate with :func:`repro.core.validate.validate_ldc`).
    """
    if instance.directed:
        raise ValueError("solve_ldc_main expects an undirected instance")
    oriented = instance.to_oriented()
    return solve_oldc_main(oriented, init_coloring, scale=scale, model=model)


def solve_ldc_with_reduction(
    instance: ListDefectiveInstance,
    init_coloring: dict[int, int],
    p: int,
    scale: ParamScale = DEFAULT_SCALE,
    model: str = "CONGEST",
    nu: float = 1.0,
) -> tuple[ColoringResult, RunMetrics, ReductionReport]:
    """Theorem 1.2's reduction applied to an undirected LDC instance."""
    if instance.directed:
        raise ValueError("solve_ldc_with_reduction expects an undirected instance")
    oriented = instance.to_oriented()

    def base(inst, init):
        return solve_oldc_main(inst, init, scale=scale, model=model)

    return solve_with_reduction(oriented, init_coloring, base, p=p, nu=nu)
