"""Deterministic fault injection and resilience (`repro.faults`).

The subsystem has two halves:

* :mod:`repro.faults.plan` — the adversary: :class:`FaultPlan`, a pure
  seeded function of ``(round, edge)`` injecting message drop,
  duplication, payload corruption, bounded delay, and node
  crash/crash-recovery, with scalar and NumPy query paths pinned equal so
  both engines see the identical fault schedule;
* :mod:`repro.faults.wrappers` — the defenses: the retransmit-with-ack
  :class:`RetransmitAlgorithm`, oracle-checked :func:`run_with_restarts`,
  and the composed :func:`resilient_linial`.

See ``docs/RESILIENCE.md`` for the fault model, the determinism contract,
and how ``e16_resilience`` reads the degradation curves.
"""

from .plan import (
    FATE_CORRUPT,
    FATE_DELAY,
    FATE_DELIVER,
    FATE_DROP,
    FATE_DUPLICATE,
    FAULT_KINDS,
    CorruptedPayload,
    Fate,
    FaultPlan,
    node_labels_u64,
    splitmix64,
    splitmix64_array,
)
from .wrappers import RetransmitAlgorithm, resilient_linial, run_with_restarts

__all__ = [
    "FATE_CORRUPT",
    "FATE_DELAY",
    "FATE_DELIVER",
    "FATE_DROP",
    "FATE_DUPLICATE",
    "FAULT_KINDS",
    "CorruptedPayload",
    "Fate",
    "FaultPlan",
    "RetransmitAlgorithm",
    "node_labels_u64",
    "resilient_linial",
    "run_with_restarts",
    "splitmix64",
    "splitmix64_array",
]
