"""Deterministic, seeded fault schedules (the adversary).

A :class:`FaultPlan` is a *pure function* of ``(seed, round, edge)`` — it
carries no mutable state, so the reference simulator and the vectorized
fast paths can ask it the same questions independently and are guaranteed
to see the **identical fault schedule**.  That determinism is the whole
contract: with a fixed plan, a faulty run is bit-for-bit reproducible
across engines (enforced by ``compare_round_accounting`` over the fault
column family and by the differential fuzz harness).

Fault model (message fates, in fixed precedence order):

* **drop** — the message is never delivered;
* **corrupt** — the payload is replaced by a deterministic perturbation
  (in-domain remap when ``corrupt_space`` is set, otherwise an offset
  that receivers' decoders may detect and discard);
* **delay** — delivery is postponed by ``1..max_delay`` rounds (stale
  deliveries are overwritten by a fresher message from the same sender
  arriving in the same round);
* **duplicate** — delivered now *and* again ``1..max_delay`` rounds later.

Node fates:

* **crash / crash-recovery** — a selected node goes down at a schedule
  point within ``crash_horizon`` rounds; while down it neither sends nor
  receives (its state is frozen).  With ``recovery_rounds`` set it comes
  back after that many rounds (crash-recovery); with ``None`` it stays
  down forever (crash-stop).

Accounting contract: faults never change *transmission* accounting —
dropped, corrupted, delayed, and duplicated messages are all charged
exactly once at their send round, like any other message — except that
crashed nodes do not transmit at all.  This keeps the per-round
message/bit rows an engine-independent function of the plan.

The hash is a splitmix64 finalizer implemented twice — once over Python
integers, once over NumPy ``uint64`` arrays — with tests pinning the two
implementations equal value for value.  Probabilities are compared as
integer thresholds (``hash < floor(p * 2**64)``), never as floats, so
there is no room for rounding drift between the engines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

_U64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB

# Independent hash streams per fault mode (arbitrary odd constants).
_S_DROP = 0xD209_0B5E_D209_0B5F
_S_CORRUPT = 0xC0DE_FACE_C0DE_FACD
_S_DELAY = 0xDE1A_77A1_DE1A_77A1
_S_DUPLICATE = 0xD0B1_E77E_D0B1_E77F
_S_DELAY_AMOUNT = 0x5E1E_C7ED_5E1E_C7ED
_S_CORRUPT_AMOUNT = 0x0FF5_E7C0_0FF5_E7C1
_S_CRASH_SELECT = 0xC4A5_4AC7_C4A5_4AC7
_S_CRASH_ROUND = 0xC4A5_4077_C4A5_4077

#: Message fate codes (shared by the scalar and vectorized query paths).
FATE_DELIVER = 0
FATE_DROP = 1
FATE_CORRUPT = 2
FATE_DELAY = 3
FATE_DUPLICATE = 4

#: The fault column family recorded per round (obs ``RoundRow.faults``).
FAULT_KINDS = ("dropped", "corrupted", "delayed", "duplicated", "crashed")


def splitmix64(z: int) -> int:
    """The splitmix64 finalizer over Python ints (wrapping at 2**64)."""
    z = (z + _GOLDEN) & _U64
    z = ((z ^ (z >> 30)) * _MIX1) & _U64
    z = ((z ^ (z >> 27)) * _MIX2) & _U64
    return z ^ (z >> 31)


def splitmix64_array(z: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a ``uint64`` array (C wraparound)."""
    z = z + np.uint64(_GOLDEN)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
    return z ^ (z >> np.uint64(31))


def node_labels_u64(labels) -> np.ndarray:
    """Node labels as the ``uint64`` array the vectorized queries hash.

    Goes through ``int64`` first so negative labels wrap exactly like the
    scalar path's ``label & (2**64 - 1)`` two's-complement masking.
    """
    return np.asarray(labels, dtype=np.int64).astype(np.uint64)


@dataclass(frozen=True)
class CorruptedPayload:
    """Sentinel replacing a corrupted non-integer payload.

    Deliberately unlike any protocol message, so structured decoders
    (e.g. the retransmit wrapper's frame check) discard it; carries the
    corruption nonce for debugging.
    """

    nonce: int


@dataclass(frozen=True)
class Fate:
    """One transmission's fate: a ``FATE_*`` code plus the extra delivery
    delay in rounds (meaningful for delay/duplicate fates only)."""

    kind: int
    delay: int = 0


def _threshold(p: float) -> int:
    """Integer threshold for ``uniform_hash < threshold`` <=> prob ``p``."""
    if p <= 0.0:
        return 0
    if p >= 1.0:
        return 1 << 64
    return int(p * (1 << 64))


def _lt_scalar(h: int, thr: int) -> bool:
    return h < thr


def _lt_array(h: np.ndarray, thr: int) -> np.ndarray:
    if thr <= 0:
        return np.zeros(h.shape, dtype=bool)
    if thr > _U64:
        return np.ones(h.shape, dtype=bool)
    return h < np.uint64(thr)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule (see module docstring).

    All probabilities are per-transmission (``p_crash`` per node) and live
    in ``[0, 1]``.  ``round_offset`` shifts the plan's notion of time —
    :meth:`with_offset` derives the shifted plan a restart wrapper uses so
    a re-run faces the *continuation* of the adversary, not a replay.
    """

    seed: int = 0
    p_drop: float = 0.0
    p_corrupt: float = 0.0
    p_delay: float = 0.0
    p_duplicate: float = 0.0
    p_crash: float = 0.0
    max_delay: int = 2
    crash_horizon: int = 8
    recovery_rounds: int | None = 2
    corrupt_space: int | None = None
    round_offset: int = 0

    def __post_init__(self) -> None:
        for name in ("p_drop", "p_corrupt", "p_delay", "p_duplicate", "p_crash"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} outside [0, 1]")
        if self.max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {self.max_delay}")
        if self.crash_horizon < 1:
            raise ValueError(
                f"crash_horizon must be >= 1, got {self.crash_horizon}"
            )
        if self.recovery_rounds is not None and self.recovery_rounds < 1:
            raise ValueError(
                f"recovery_rounds must be >= 1 or None, got {self.recovery_rounds}"
            )
        if self.corrupt_space is not None and self.corrupt_space < 1:
            raise ValueError(
                f"corrupt_space must be >= 1 or None, got {self.corrupt_space}"
            )

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    @property
    def is_null(self) -> bool:
        """True when the plan can never inject a fault."""
        return (
            self.p_drop == 0.0
            and self.p_corrupt == 0.0
            and self.p_delay == 0.0
            and self.p_duplicate == 0.0
            and self.p_crash == 0.0
        )

    def with_offset(self, rounds: int) -> "FaultPlan":
        """The same adversary, its clock advanced by ``rounds``."""
        return replace(self, round_offset=self.round_offset + rounds)

    def round_budget(self, schedule_len: int) -> int:
        """A ``max_rounds`` bound under which any terminating run finishes.

        Schedule-driven algorithms advance one step per round they are up;
        a crash-recovery outage costs at most ``crash_horizon +
        recovery_rounds`` rounds of lost progress, and late deliveries add
        at most ``max_delay``.  Crash-stop nodes never finish — the budget
        then bounds how long the run waits before raising
        :class:`~repro.sim.node.HaltingError`.
        """
        budget = schedule_len + 2
        if self.p_delay > 0.0 or self.p_duplicate > 0.0:
            budget += self.max_delay
        if self.p_crash > 0.0:
            budget += self.crash_horizon
            if self.recovery_rounds is not None:
                budget += self.recovery_rounds
        return budget

    def describe(self) -> str:
        """Compact one-line rendering of the active fault modes."""
        parts = [f"seed={self.seed}"]
        for name, p in (
            ("drop", self.p_drop),
            ("corrupt", self.p_corrupt),
            ("delay", self.p_delay),
            ("dup", self.p_duplicate),
            ("crash", self.p_crash),
        ):
            if p > 0.0:
                parts.append(f"{name}={p:g}")
        if self.p_crash > 0.0:
            rec = self.recovery_rounds
            parts.append(f"recovery={'stop' if rec is None else rec}")
        if self.round_offset:
            parts.append(f"offset={self.round_offset}")
        return "FaultPlan(" + ", ".join(parts) + ")"

    # ------------------------------------------------------------------
    # serialization (fuzz cases, sweep algo_params, CLI artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict; inverse of :meth:`from_dict`."""
        return {
            "seed": self.seed,
            "p_drop": self.p_drop,
            "p_corrupt": self.p_corrupt,
            "p_delay": self.p_delay,
            "p_duplicate": self.p_duplicate,
            "p_crash": self.p_crash,
            "max_delay": self.max_delay,
            "crash_horizon": self.crash_horizon,
            "recovery_rounds": self.recovery_rounds,
            "corrupt_space": self.corrupt_space,
            "round_offset": self.round_offset,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        """Build a plan from :meth:`to_dict` output (unknown keys rejected)."""
        known = {
            "seed",
            "p_drop",
            "p_corrupt",
            "p_delay",
            "p_duplicate",
            "p_crash",
            "max_delay",
            "crash_horizon",
            "recovery_rounds",
            "corrupt_space",
            "round_offset",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**data)

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------
    def _edge_base(self, stream: int, rnd: int) -> int:
        """Round-level hash base, shared by scalar and vectorized queries."""
        r = (rnd + self.round_offset) & _U64
        return splitmix64(splitmix64((self.seed ^ stream) & _U64) ^ r)

    def _edge_hash(self, stream: int, rnd: int, src: int, dst: int) -> int:
        base = self._edge_base(stream, rnd)
        mixed = base ^ splitmix64(src & _U64) ^ ((dst & _U64) * _GOLDEN & _U64)
        return splitmix64(mixed & _U64)

    def _edge_hash_array(
        self, stream: int, rnd: int, src: np.ndarray, dst: np.ndarray
    ) -> np.ndarray:
        base = np.uint64(self._edge_base(stream, rnd))
        mixed = base ^ splitmix64_array(src) ^ (dst * np.uint64(_GOLDEN))
        return splitmix64_array(mixed)

    def _node_hash(self, stream: int, node: int) -> int:
        base = splitmix64((self.seed ^ stream) & _U64)
        return splitmix64(base ^ splitmix64(node & _U64))

    def _node_hash_array(self, stream: int, nodes: np.ndarray) -> np.ndarray:
        base = np.uint64(splitmix64((self.seed ^ stream) & _U64))
        return splitmix64_array(base ^ splitmix64_array(nodes))

    # ------------------------------------------------------------------
    # crash schedule
    # ------------------------------------------------------------------
    def crash_window(self, node: int) -> tuple[int, int | None] | None:
        """The node's down interval ``(start, end)`` in plan time, if any.

        ``end`` is exclusive; ``None`` end means crash-stop (down forever).
        Returns ``None`` for nodes the plan never crashes.
        """
        if self.p_crash <= 0.0:
            return None
        sel = self._node_hash(_S_CRASH_SELECT, node)
        if not _lt_scalar(sel, _threshold(self.p_crash)):
            return None
        start = self._node_hash(_S_CRASH_ROUND, node) % self.crash_horizon
        end = None if self.recovery_rounds is None else start + self.recovery_rounds
        return start, end

    def crashed(self, rnd: int, node: int) -> bool:
        """Is ``node`` down during (run-local) round ``rnd``?"""
        window = self.crash_window(node)
        if window is None:
            return False
        start, end = window
        r = rnd + self.round_offset
        return r >= start and (end is None or r < end)

    def crashed_mask(self, rnd: int, labels: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`crashed` over a ``uint64`` label array."""
        if self.p_crash <= 0.0:
            return np.zeros(labels.shape, dtype=bool)
        sel = self._node_hash_array(_S_CRASH_SELECT, labels)
        chosen = _lt_array(sel, _threshold(self.p_crash))
        start = (
            self._node_hash_array(_S_CRASH_ROUND, labels)
            % np.uint64(self.crash_horizon)
        ).astype(np.int64)
        r = rnd + self.round_offset
        down = chosen & (r >= start)
        if self.recovery_rounds is not None:
            down &= r < start + self.recovery_rounds
        return down

    # ------------------------------------------------------------------
    # message fates
    # ------------------------------------------------------------------
    def _delay_amount(self, rnd: int, src: int, dst: int) -> int:
        return 1 + self._edge_hash(_S_DELAY_AMOUNT, rnd, src, dst) % self.max_delay

    def message_fate(self, rnd: int, src: int, dst: int) -> Fate:
        """The fate of the round-``rnd`` transmission on edge ``src->dst``.

        Precedence is fixed (drop > corrupt > delay > duplicate): each mode
        draws from its own hash stream and the first triggering mode wins,
        identically in :meth:`edge_fates`.
        """
        for p, stream, kind in (
            (self.p_drop, _S_DROP, FATE_DROP),
            (self.p_corrupt, _S_CORRUPT, FATE_CORRUPT),
            (self.p_delay, _S_DELAY, FATE_DELAY),
            (self.p_duplicate, _S_DUPLICATE, FATE_DUPLICATE),
        ):
            if p > 0.0 and _lt_scalar(
                self._edge_hash(stream, rnd, src, dst), _threshold(p)
            ):
                if kind in (FATE_DELAY, FATE_DUPLICATE):
                    return Fate(kind, self._delay_amount(rnd, src, dst))
                return Fate(kind)
        return Fate(FATE_DELIVER)

    def edge_fates(
        self, rnd: int, src: np.ndarray, dst: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`message_fate` over parallel label arrays.

        Returns ``(codes, delays)``: ``codes[k]`` is the ``FATE_*`` code of
        directed edge ``k``; ``delays[k]`` the extra delivery delay where
        the code is delay/duplicate (0 elsewhere).
        """
        codes = np.zeros(src.shape, dtype=np.int64)
        undecided = np.ones(src.shape, dtype=bool)
        for p, stream, kind in (
            (self.p_drop, _S_DROP, FATE_DROP),
            (self.p_corrupt, _S_CORRUPT, FATE_CORRUPT),
            (self.p_delay, _S_DELAY, FATE_DELAY),
            (self.p_duplicate, _S_DUPLICATE, FATE_DUPLICATE),
        ):
            if p <= 0.0:
                continue
            h = self._edge_hash_array(stream, rnd, src, dst)
            hit = undecided & _lt_array(h, _threshold(p))
            codes[hit] = kind
            undecided &= ~hit
        delays = np.zeros(src.shape, dtype=np.int64)
        late = (codes == FATE_DELAY) | (codes == FATE_DUPLICATE)
        if late.any():
            h = self._edge_hash_array(_S_DELAY_AMOUNT, rnd, src[late], dst[late])
            delays[late] = 1 + (h % np.uint64(self.max_delay)).astype(np.int64)
        return codes, delays

    # ------------------------------------------------------------------
    # payload corruption
    # ------------------------------------------------------------------
    def corrupt_payload(self, rnd: int, src: int, dst: int, payload: Any) -> Any:
        """Deterministically perturbed replacement for ``payload``.

        Integer payloads inside ``[0, corrupt_space)`` are remapped to a
        *different* in-domain value (silent corruption — undetectable by
        domain checks); other integers are offset by ``1..7`` (leaving the
        expected domain, so decoders that range-check can discard them);
        non-integers become a :class:`CorruptedPayload` sentinel.
        """
        h = self._edge_hash(_S_CORRUPT_AMOUNT, rnd, src, dst)
        if isinstance(payload, int) and not isinstance(payload, bool):
            space = self.corrupt_space
            if space is not None and space > 1 and 0 <= payload < space:
                return (payload + 1 + h % (space - 1)) % space
            return payload + 1 + h % 7
        return CorruptedPayload(nonce=h & 0xFFFF)

    def corrupt_values(
        self, rnd: int, src: np.ndarray, dst: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`corrupt_payload` for int payload arrays."""
        h = self._edge_hash_array(_S_CORRUPT_AMOUNT, rnd, src, dst)
        space = self.corrupt_space
        offset_out = 1 + (h % np.uint64(7)).astype(np.int64)
        if space is None or space <= 1:
            return values + offset_out
        in_domain = (values >= 0) & (values < space)
        offset_in = 1 + (h % np.uint64(space - 1)).astype(np.int64)
        return np.where(
            in_domain, (values + offset_in) % space, values + offset_out
        )
