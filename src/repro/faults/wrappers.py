"""Resilience wrappers: retransmission, round extension, and restarts.

Three layers of defense against a :class:`~repro.faults.plan.FaultPlan`,
from cheapest to most drastic:

* :class:`RetransmitAlgorithm` — wraps any
  :class:`~repro.sim.node.DistributedAlgorithm`, stretching each logical
  round into ``1 + 2*retries`` physical rounds: a data slot, then
  alternating ack and retransmit slots.  Frames are tagged with a 2-bit
  logical-round tag so duplicates and stale deliveries deduplicate, and a
  sender retransmits only to neighbors that have not acknowledged.  With
  retry budget ``k``, a message survives up to ``k`` independent drops —
  the degradation threshold measured by ``e16_resilience``.
* **round extension** — the fault plan's
  :meth:`~repro.faults.plan.FaultPlan.round_budget` stretches
  ``max_rounds`` so crash outages and late deliveries do not spuriously
  trip :class:`~repro.sim.node.HaltingError`; the drivers here apply it
  automatically.
* :func:`run_with_restarts` — the self-checking last resort: run, validate
  the output with a :mod:`repro.core.validate`-style oracle, and on
  failure re-run against the *continuation* of the adversary
  (:meth:`~repro.faults.plan.FaultPlan.with_offset`), merging metrics
  sequentially so the full price in rounds and bits stays on the books.

:func:`resilient_linial` composes all three for the paper's Linial /
[Kuh09] defective runs; its overhead is *measured*, never assumed:
rounds multiply by the retransmit period, bits by the retry traffic, and
restarts append whole attempts.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import networkx as nx

from ..core.coloring import ColoringResult
from ..core.validate import ValidationReport, validate_defective_coloring
from ..sim.message import Message
from ..sim.metrics import RunMetrics
from ..sim.network import SyncNetwork
from ..sim.node import DistributedAlgorithm, HaltingError, NodeView
from .plan import FaultPlan

_ACK_MARK = "a"


class RetransmitAlgorithm(DistributedAlgorithm):
    """Retransmit-with-ack wrapper around any distributed algorithm.

    Physical round ``r`` maps to logical round ``r // period`` and slot
    ``r % period`` where ``period = 1 + 2*retries``: slot 0 sends data
    frames ``(tag, payload)``, odd slots acknowledge received frames with
    ``("a", tag)``, and the remaining even slots retransmit to the
    not-yet-acked neighbors.  The inner algorithm's ``receive`` fires once
    per logical round, at the last slot, with whatever frames got through.

    Slots are derived from the *global* round number, so a node recovering
    from a crash mid-period resynchronizes immediately (it refreshes its
    frame set on its first data-capable slot of the logical round).  Frame
    and ack payloads are structural — corrupted payloads (which become
    non-tuples or mismatch the tag) are discarded, never misdelivered.

    Overhead: exactly ``period``x rounds; data bits at most ``(retries+1)``x
    plus 2 tag bits per frame; acks cost 3 bits per received frame per ack
    slot.
    """

    def __init__(self, inner: DistributedAlgorithm, retries: int = 2) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.inner = inner
        self.retries = retries
        self.period = 1 + 2 * retries
        self.name = f"retransmit[{retries}]-{getattr(inner, 'name', 'algorithm')}"

    def init_state(self, view: NodeView) -> dict[str, Any]:
        return {
            "inner": self.inner.init_state(view),
            "cur_lr": -1,  # logical round the frame set below belongs to
            "frames": {},
            "need": set(),  # neighbors that have not acked this lr
            "got": {},  # sender -> inner payload received this lr
            "last_rnd": -1,
        }

    # ------------------------------------------------------------------
    def _refresh(self, view: NodeView, state: dict[str, Any], lr: int) -> None:
        state["cur_lr"] = lr
        state["frames"] = dict(self.inner.send(view, state["inner"], lr))
        state["need"] = set(state["frames"])
        state["got"] = {}

    def send(self, view: NodeView, state, rnd: int) -> dict[int, Message]:
        lr, slot = divmod(rnd, self.period)
        tag = lr % 4
        if slot % 2 == 1:  # ack slot
            if state["cur_lr"] != lr:
                return {}
            return {
                u: Message((_ACK_MARK, tag), bits=3) for u in sorted(state["got"])
            }
        # data (slot 0) or retransmit (even slot >= 2)
        if state["cur_lr"] != lr:
            if self.inner.is_done(view, state["inner"]):
                return {}
            self._refresh(view, state, lr)
        out = {}
        for dst in sorted(state["need"]):
            msg = state["frames"][dst]
            out[dst] = Message((tag, msg.payload), bits=msg.size_bits() + 2)
        return out

    def receive(self, view: NodeView, state, rnd: int, inbox) -> None:
        lr, slot = divmod(rnd, self.period)
        tag = lr % 4
        state["last_rnd"] = rnd
        if state["cur_lr"] == lr:
            if slot % 2 == 1:
                for src, msg in inbox.items():
                    p = msg.payload
                    if (
                        isinstance(p, tuple)
                        and len(p) == 2
                        and p[0] == _ACK_MARK
                        and p[1] == tag
                    ):
                        state["need"].discard(src)
            else:
                for src, msg in inbox.items():
                    p = msg.payload
                    if isinstance(p, tuple) and len(p) == 2 and p[0] == tag:
                        state["got"][src] = p[1]
            if slot == self.period - 1:
                # close the logical round: deliver whatever got through
                inner_inbox = {
                    src: Message(payload, bits=1)
                    for src, payload in sorted(state["got"].items())
                }
                self.inner.receive(view, state["inner"], lr, inner_inbox)

    def is_done(self, view: NodeView, state) -> bool:
        if not self.inner.is_done(view, state["inner"]):
            return False
        # only halt between logical rounds, so in-flight acks still go out
        return state["last_rnd"] < 0 or state["last_rnd"] % self.period == (
            self.period - 1
        )

    def output(self, view: NodeView, state) -> Any:
        return self.inner.output(view, state["inner"])


def run_with_restarts(
    attempt: Callable[[FaultPlan, int], tuple[Mapping[int, Any], RunMetrics]],
    oracle: Callable[[Mapping[int, Any]], ValidationReport],
    plan: FaultPlan,
    restarts: int = 2,
) -> tuple[Mapping[int, Any], RunMetrics, dict[str, Any]]:
    """Self-checking restart driver.

    Calls ``attempt(shifted_plan, attempt_index)`` up to ``restarts + 1``
    times, validating each output with ``oracle``; each retry faces the
    plan shifted past every round already consumed (crash windows near
    round 0 are therefore escaped by a restart, which is what makes
    restarts effective against crash-stop adversaries).  Metrics of all
    attempts are merged sequentially — failed work is paid for, not
    hidden.  An attempt raising :class:`~repro.sim.node.HaltingError`
    counts as invalid and consumes its round budget; if every attempt
    halts, the last error propagates.

    Returns ``(outputs, merged_metrics, info)`` with
    ``info = {"attempts", "valid", "history"}``; ``outputs`` are the last
    attempt's even when still invalid after the restart budget.
    """
    total: RunMetrics | None = None
    rounds_used = 0
    history: list[dict[str, Any]] = []
    outputs: Mapping[int, Any] | None = None
    valid = False
    last_halt: HaltingError | None = None
    for i in range(restarts + 1):
        shifted = plan.with_offset(rounds_used)
        try:
            outputs, metrics = attempt(shifted, i)
        except HaltingError as exc:
            last_halt = exc
            rounds_used += exc.rounds
            history.append({"attempt": i, "rounds": exc.rounds, "halted": True})
            continue
        total = metrics if total is None else total.merge_sequential(metrics)
        rounds_used += metrics.rounds
        valid = bool(oracle(outputs))
        history.append(
            {"attempt": i, "rounds": metrics.rounds, "valid": valid}
        )
        if valid:
            break
    if outputs is None:
        assert last_halt is not None
        raise last_halt
    assert total is not None
    return outputs, total, {
        "attempts": len(history),
        "valid": valid,
        "history": history,
    }


def resilient_linial(
    graph: nx.Graph,
    faults: FaultPlan,
    defect: int = 0,
    retries: int = 2,
    restarts: int = 2,
    model: str = "CONGEST",
    initial_colors: dict[int, int] | None = None,
) -> tuple[ColoringResult, RunMetrics, int, dict[str, Any]]:
    """Linial / [Kuh09] defective coloring hardened against ``faults``.

    Composes the retransmit wrapper (ack-based, ``retries`` budget), the
    fault plan's round-budget extension, and oracle-checked restarts.
    Returns ``(coloring, metrics, palette, info)`` — the same triple as
    :func:`repro.algorithms.linial.run_linial` plus the restart history;
    ``metrics`` aggregates *every* attempt, so the overhead of resilience
    is visible, not amortized away.
    """
    from ..algorithms.linial import (
        LinialColoringAlgorithm,
        defective_schedule,
        linial_schedule,
    )

    delta = max((d for _, d in graph.degree), default=0)
    if initial_colors is None:
        initial_colors = {v: i for i, v in enumerate(sorted(graph.nodes))}
    m0 = max(initial_colors.values()) + 1 if initial_colors else 1
    sched = (
        linial_schedule(m0, delta)
        if defect == 0
        else defective_schedule(m0, delta, defect)
    )
    palette = sched[-1].out_colors if sched else m0
    inputs = {v: {"color": c} for v, c in initial_colors.items()}

    def attempt(plan: FaultPlan, index: int):
        algorithm = RetransmitAlgorithm(LinialColoringAlgorithm(), retries=retries)
        budget = (plan.round_budget(len(sched)) + 1) * algorithm.period
        net = SyncNetwork(graph, model=model)
        return net.run(
            algorithm,
            inputs,
            shared={"schedule": sched, "m0": m0},
            max_rounds=budget,
            faults=plan,
        )

    def oracle(outputs: Mapping[int, Any]) -> ValidationReport:
        return validate_defective_coloring(
            graph, ColoringResult(dict(outputs)), defect
        )

    outputs, metrics, info = run_with_restarts(
        attempt, oracle, faults, restarts=restarts
    )
    return ColoringResult(dict(outputs)), metrics, palette, info
