"""repro — reproduction of Fuchs & Kuhn, "List Defective Colorings:
Distributed Algorithms and Applications" (SPAA 2023).

Public API layout:

* :mod:`repro.core` — color spaces, list defective instances (Def. 1.1),
  coloring outputs, validators, and the paper's existence conditions;
* :mod:`repro.graphs` — graph generators and orientations;
* :mod:`repro.sim` — the synchronous LOCAL / CONGEST simulator with
  per-message bit accounting;
* :mod:`repro.algorithms` — every algorithm: sequential existence proofs
  (Appendix A), the Linial/defective/arbdefective substrates, the OLDC
  algorithms of Theorem 1.1, the recursive color-space reduction of
  Theorem 1.2, the Theorem 1.3 transformation, the Theorem 1.4 CONGEST
  coloring pipeline, and the randomized / big-message baselines;
* :mod:`repro.analysis` — the paper's parameter formulas and bound
  reference values, plus table/series formatting;
* :mod:`repro.experiments` — one module per reproduced result (E01-E11).

Quickstart::

    import repro
    g = repro.graphs.gnp(80, 0.15, seed=1)
    coloring, metrics, report = repro.algorithms.congest_delta_plus_one(g)
    print(metrics.rounds, metrics.max_message_bits, coloring.num_colors())
"""

from . import algorithms, analysis, core, graphs, io, scenarios, sim
from .exceptions import ConditionViolation, ProtocolError, ReproError, ScheduleError
from .core import (
    ColorSpace,
    ColoringResult,
    EdgeOrientation,
    ListDefectiveInstance,
    ValidationReport,
    degree_plus_one_instance,
    delta_plus_one_instance,
    uniform_instance,
    validate_arbdefective,
    validate_ldc,
    validate_oldc,
    validate_proper_coloring,
)

__version__ = "1.0.0"

__all__ = [
    "ColorSpace",
    "ColoringResult",
    "EdgeOrientation",
    "ListDefectiveInstance",
    "ValidationReport",
    "__version__",
    "ConditionViolation",
    "ProtocolError",
    "ReproError",
    "ScheduleError",
    "algorithms",
    "analysis",
    "core",
    "degree_plus_one_instance",
    "delta_plus_one_instance",
    "graphs",
    "io",
    "scenarios",
    "sim",
    "uniform_instance",
    "validate_arbdefective",
    "validate_ldc",
    "validate_oldc",
    "validate_proper_coloring",
]
