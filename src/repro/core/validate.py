"""Validators for every coloring variant in the paper.

All algorithms in this library are checked against these validators, which
are written independently of the algorithms (direct quantification over
edges / neighborhoods) so an algorithm bug cannot hide behind a matching
validator bug.

Each validator returns a :class:`ValidationReport` rather than a bare bool,
so the experiments can report *measured* defects against *allowed* defects
(the "paper vs measured" columns of EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from .coloring import ColoringResult
from .instance import ListDefectiveInstance


@dataclass
class ValidationReport:
    """Outcome of validating a coloring against an instance."""

    ok: bool
    violations: list[str] = field(default_factory=list)
    max_defect_seen: int = 0
    max_defect_allowed: int = 0

    def __bool__(self) -> bool:
        return self.ok

    def raise_if_invalid(self) -> None:
        if not self.ok:
            preview = "; ".join(self.violations[:5])
            raise AssertionError(
                f"invalid coloring ({len(self.violations)} violations): {preview}"
            )


def _list_membership_violations(
    instance: ListDefectiveInstance, result: ColoringResult
) -> list[str]:
    out: list[str] = []
    for v in instance.graph.nodes:
        if v not in result.assignment:
            out.append(f"node {v} is uncolored")
            continue
        x = result.assignment[v]
        if x not in instance.lists[v]:
            out.append(f"node {v}: color {x} not in its list")
    return out


def validate_proper_coloring(graph: nx.Graph, result: ColoringResult) -> ValidationReport:
    """Plain proper coloring: no two adjacent nodes share a color."""
    violations = [f"node {v} is uncolored" for v in graph.nodes if v not in result.assignment]
    for u, v in graph.edges:
        cu, cv = result.assignment.get(u), result.assignment.get(v)
        if cu is not None and cu == cv:
            violations.append(f"monochromatic edge {{{u},{v}}} color {cu}")
    return ValidationReport(not violations, violations)


def validate_ldc(
    instance: ListDefectiveInstance, result: ColoringResult
) -> ValidationReport:
    """List defective coloring (Definition 1.1, first bullet).

    Every node ``v`` has at most ``d_v(phi(v))`` *neighbors* of color
    ``phi(v)``.  Works on the underlying undirected adjacency even if the
    instance graph is directed (a directed instance validated here is
    treated as its undirected support).
    """
    violations = _list_membership_violations(instance, result)
    max_seen = 0
    max_allowed = 0
    g = instance.graph
    for v in g.nodes:
        if v not in result.assignment or result.assignment[v] not in instance.lists[v]:
            continue
        x = result.assignment[v]
        if instance.directed:
            neigh = set(g.predecessors(v)) | set(g.successors(v))
        else:
            neigh = set(g.neighbors(v))
        same = sum(1 for u in neigh if result.assignment.get(u) == x)
        allowed = instance.defects[v][x]
        max_seen = max(max_seen, same)
        max_allowed = max(max_allowed, allowed)
        if same > allowed:
            violations.append(
                f"node {v}: {same} same-colored neighbors > allowed defect {allowed}"
            )
    return ValidationReport(not violations, violations, max_seen, max_allowed)


def validate_oldc(
    instance: ListDefectiveInstance, result: ColoringResult
) -> ValidationReport:
    """Oriented list defective coloring (Definition 1.1, second bullet).

    Every node ``v`` has at most ``d_v(phi(v))`` *out-neighbors* of color
    ``phi(v)`` in the instance's directed graph.
    """
    if not instance.directed:
        raise ValueError("OLDC validation requires a directed instance")
    violations = _list_membership_violations(instance, result)
    max_seen = 0
    max_allowed = 0
    for v in instance.graph.nodes:
        if v not in result.assignment or result.assignment[v] not in instance.lists[v]:
            continue
        x = result.assignment[v]
        same = sum(
            1
            for u in instance.graph.successors(v)
            if result.assignment.get(u) == x
        )
        allowed = instance.defects[v][x]
        max_seen = max(max_seen, same)
        max_allowed = max(max_allowed, allowed)
        if same > allowed:
            violations.append(
                f"node {v}: {same} same-colored out-neighbors > allowed {allowed}"
            )
    return ValidationReport(not violations, violations, max_seen, max_allowed)


def validate_arbdefective(
    instance: ListDefectiveInstance, result: ColoringResult
) -> ValidationReport:
    """List arbdefective coloring (Definition 1.1, third bullet).

    Requires ``result.orientation`` covering every edge of the graph; the
    OLDC condition must hold with respect to that orientation.
    """
    if instance.directed:
        raise ValueError("arbdefective validation expects an undirected instance")
    if result.orientation is None:
        return ValidationReport(False, ["no edge orientation in result"])
    violations = _list_membership_violations(instance, result)
    ori = result.orientation
    for u, v in instance.graph.edges:
        if not ori.is_oriented(u, v):
            violations.append(f"edge {{{u},{v}}} is unoriented")
    if violations:
        return ValidationReport(False, violations)
    max_seen = 0
    max_allowed = 0
    for v in instance.graph.nodes:
        x = result.assignment[v]
        out_same = sum(
            1
            for u in instance.graph.neighbors(v)
            if ori.points_from(v, u) and result.assignment.get(u) == x
        )
        allowed = instance.defects[v][x]
        max_seen = max(max_seen, out_same)
        max_allowed = max(max_allowed, allowed)
        if out_same > allowed:
            violations.append(
                f"node {v}: {out_same} same-colored out-neighbors > allowed {allowed}"
            )
    return ValidationReport(not violations, violations, max_seen, max_allowed)


def validate_defective_coloring(
    graph: nx.Graph, result: ColoringResult, defect: int
) -> ValidationReport:
    """Classic ``d``-defective coloring: each color class induces max degree <= d."""
    violations = [
        f"node {v} is uncolored" for v in graph.nodes if v not in result.assignment
    ]
    max_seen = 0
    for v in graph.nodes:
        if v not in result.assignment:
            continue
        x = result.assignment[v]
        same = sum(1 for u in graph.neighbors(v) if result.assignment.get(u) == x)
        max_seen = max(max_seen, same)
        if same > defect:
            violations.append(f"node {v}: defect {same} > {defect}")
    return ValidationReport(not violations, violations, max_seen, defect)


def validate_arbdefective_plain(
    graph: nx.Graph,
    result: ColoringResult,
    arbdefect: int,
) -> ValidationReport:
    """Classic ``d``-arbdefective coloring with an explicit orientation."""
    if result.orientation is None:
        return ValidationReport(False, ["no edge orientation in result"])
    violations = [
        f"node {v} is uncolored" for v in graph.nodes if v not in result.assignment
    ]
    ori = result.orientation
    for u, v in graph.edges:
        if not ori.is_oriented(u, v):
            violations.append(f"edge {{{u},{v}}} is unoriented")
    if violations:
        return ValidationReport(False, violations)
    max_seen = 0
    for v in graph.nodes:
        x = result.assignment[v]
        out_same = sum(
            1
            for u in graph.neighbors(v)
            if ori.points_from(v, u) and result.assignment.get(u) == x
        )
        max_seen = max(max_seen, out_same)
        if out_same > arbdefect:
            violations.append(f"node {v}: arbdefect {out_same} > {arbdefect}")
    return ValidationReport(not violations, violations, max_seen, arbdefect)


def validate_generalized_oldc(
    instance: ListDefectiveInstance,
    result: ColoringResult,
    g: int,
) -> ValidationReport:
    """The g-generalized OLDC of Section 3.2.

    Node ``v`` with color ``x_v`` may have at most ``d_v(x_v)`` out-neighbors
    ``w`` whose color satisfies ``|x_v - x_w| <= g``.  For ``g = 0`` this is
    exactly the OLDC condition.
    """
    if not instance.directed:
        raise ValueError("generalized OLDC requires a directed instance")
    if g < 0:
        raise ValueError(f"g must be >= 0, got {g}")
    violations = _list_membership_violations(instance, result)
    max_seen = 0
    max_allowed = 0
    for v in instance.graph.nodes:
        if v not in result.assignment or result.assignment[v] not in instance.lists[v]:
            continue
        x = result.assignment[v]
        close = sum(
            1
            for u in instance.graph.successors(v)
            if u in result.assignment and abs(result.assignment[u] - x) <= g
        )
        allowed = instance.defects[v][x]
        max_seen = max(max_seen, close)
        max_allowed = max(max_allowed, allowed)
        if close > allowed:
            violations.append(
                f"node {v}: {close} g-close out-neighbors > allowed {allowed}"
            )
    return ValidationReport(not violations, violations, max_seen, max_allowed)
