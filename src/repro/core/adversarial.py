"""Adversarial instance generators.

Random instances are kind to coloring algorithms (lists overlap little,
defect budgets are slack).  These builders construct the *hard* shapes each
mechanism exists to survive:

* :func:`same_list_clique` — the tightness witness of Lemmas A.1/A.2:
  every node of ``K_n`` holds the identical list and defect function, with
  the budget exactly at (or just below) the existence threshold.
* :func:`concentrated_subspace_instance` — stresses Theorem 1.2's
  reduction: all lists live inside a single part of the partition, so the
  part-choice step degenerates and all conflict pressure survives into one
  subproblem.
* :func:`skewed_defect_instance` — one color with a huge defect against
  many zero-defect colors: stresses Lemma 3.6's single-defect restriction
  (the bucket choice is maximally consequential).
* :func:`crown_conflict_instance` — a complete bipartite crown where both
  sides share one tiny list: maximal cross-pressure for the P1/P2
  machinery.
* :func:`minimal_budget_instance` — every node's budget sum is *exactly*
  ``deg(v) + 1``: zero slack for Eq. (1), the boundary of solvability.
"""

from __future__ import annotations

import random

import networkx as nx

from .colorspace import ColorSpace
from .instance import ListDefectiveInstance
from ..graphs.generators import clique


def same_list_clique(
    n: int, colors: int, defect: int
) -> ListDefectiveInstance:
    """K_n, identical lists ``range(colors)``, constant ``defect``.

    With ``colors * (defect+1) == n - 1`` this is the exact infeasible
    boundary of Eq. (1); one more color makes it feasible and tight.
    """
    g = clique(n)
    space = ColorSpace(max(colors, 1))
    lst = tuple(range(colors))
    return ListDefectiveInstance(
        g,
        space,
        {v: lst for v in g.nodes},
        {v: {x: defect for x in lst} for v in g.nodes},
    )


def concentrated_subspace_instance(
    graph: nx.Graph,
    parts: int,
    part_index: int,
    list_size: int,
    defect: int,
    space_size: int,
    rng: random.Random,
) -> ListDefectiveInstance:
    """All lists drawn from one part of a ``parts``-way partition of C."""
    space = ColorSpace(space_size)
    pieces = space.partition(parts)
    part = pieces[part_index % parts]
    pool = list(part.colors())
    if list_size > len(pool):
        raise ValueError(
            f"part holds {len(pool)} colors but list_size={list_size}"
        )
    lists = {
        v: tuple(sorted(rng.sample(pool, list_size))) for v in graph.nodes
    }
    defects = {v: {x: defect for x in lists[v]} for v in graph.nodes}
    return ListDefectiveInstance(graph, space, lists, defects)


def skewed_defect_instance(
    graph: nx.Graph,
    heavy_defect: int,
    zero_colors: int,
    space_size: int | None = None,
) -> ListDefectiveInstance:
    """One shared heavy-defect color plus per-node zero-defect colors.

    Color 0 tolerates ``heavy_defect`` same-colored neighbors for everyone;
    colors ``1 + v*zero_colors .. `` are private zero-defect colors.
    """
    n = graph.number_of_nodes()
    size = space_size or (1 + n * zero_colors)
    space = ColorSpace(size)
    lists: dict[int, tuple[int, ...]] = {}
    defects: dict[int, dict[int, int]] = {}
    for i, v in enumerate(sorted(graph.nodes)):
        own = [1 + i * zero_colors + j for j in range(zero_colors)]
        lists[v] = tuple([0] + own)
        d = {0: heavy_defect}
        d.update({x: 0 for x in own})
        defects[v] = d
    return ListDefectiveInstance(graph, space, lists, defects)


def crown_conflict_instance(
    side: int, list_size: int
) -> ListDefectiveInstance:
    """Complete bipartite K_{side,side}; both sides share one tiny list.

    Zero defects; feasible iff ``list_size >= 2`` (two-color the sides),
    but every pair of cross nodes fights over the same colors — maximal
    pressure on the conflict-avoidance machinery.
    """
    g = nx.complete_bipartite_graph(side, side)
    g = nx.relabel_nodes(g, {v: int(v) for v in g.nodes})
    space = ColorSpace(max(list_size, 1))
    lst = tuple(range(list_size))
    return ListDefectiveInstance(
        g,
        space,
        {v: lst for v in g.nodes},
        {v: {x: 0 for x in lst} for v in g.nodes},
    )


def minimal_budget_instance(
    graph: nx.Graph, rng: random.Random, space_size: int | None = None
) -> ListDefectiveInstance:
    """Budget sum exactly ``deg(v) + 1`` per node (zero Eq. (1) slack).

    Random split of the budget into per-color ``d+1`` shares; the instance
    is solvable (Lemma A.1) but with no slack at all.
    """
    delta = max((d for _, d in graph.degree), default=0)
    size = space_size or (4 * (delta + 2))
    space = ColorSpace(size)
    lists: dict[int, tuple[int, ...]] = {}
    defects: dict[int, dict[int, int]] = {}
    for v in graph.nodes:
        budget = graph.degree(v) + 1
        shares: list[int] = []
        left = budget
        while left > 0:
            s = rng.randint(1, left)
            shares.append(s)
            left -= s
        colors = rng.sample(range(size), len(shares))
        lists[v] = tuple(sorted(colors))
        by_color = dict(zip(colors, shares))
        defects[v] = {x: by_color[x] - 1 for x in lists[v]}
    return ListDefectiveInstance(graph, space, lists, defects)
