"""Conflict combinatorics: mu_g, tau&g-conflicts, and the Psi_g relation.

These are the combinatorial objects at the core of Section 3 of the paper:

* ``mu_g(x, C)`` (paper notation :math:`\\mu_g`): the number of colors in
  ``C`` at distance at most ``g`` from ``x``.
* two color sets ``C, C'`` *tau&g-conflict* (Definition 3.2) when
  ``sum_{x in C} mu_g(x, C') >= tau``.
* ``(K1, K2) in Psi_g(tau', tau)`` (Definition 3.3) when ``K1`` contains
  ``tau'`` distinct sets each of which tau&g-conflicts with some set of
  ``K2``.

For ``g = 0`` these specialize to the relations of [MT20] (Definition 3.1).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def mu_g(x: int, colors: Iterable[int], g: int) -> int:
    """Number of colors ``c`` in ``colors`` with ``|x - c| <= g``."""
    if g < 0:
        raise ValueError(f"g must be >= 0, got {g}")
    return sum(1 for c in colors if abs(x - c) <= g)


def conflict_weight(c1: Iterable[int], c2: Sequence[int], g: int) -> int:
    """``sum_{x in C1} mu_g(x, C2)``; symmetric in its two arguments.

    For ``g = 0`` this is ``|C1 ∩ C2|`` (when both are sets).  For lists
    restricted to single congruence classes mod ``2g+1`` each color of C1
    contributes at most 1 (Claim 3.3), so the weight is again essentially an
    intersection size after rounding.
    """
    if g == 0:
        s2 = set(c2)
        return sum(1 for x in c1 if x in s2)
    sorted2 = sorted(c2)
    import bisect

    total = 0
    for x in c1:
        lo = bisect.bisect_left(sorted2, x - g)
        hi = bisect.bisect_right(sorted2, x + g)
        total += hi - lo
    return total


def tau_g_conflict(c1: Iterable[int], c2: Sequence[int], tau: int, g: int) -> bool:
    """Definition 3.2: do ``C1`` and ``C2`` tau&g-conflict?"""
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    return conflict_weight(c1, c2, g) >= tau


def psi_g(
    k1: Sequence[Sequence[int]],
    k2: Sequence[Sequence[int]],
    tau_prime: int,
    tau: int,
    g: int = 0,
) -> bool:
    """Definition 3.3: is ``(K1, K2) in Psi_g(tau', tau)``?

    True when at least ``tau'`` distinct members of ``K1`` each
    tau&g-conflict with *some* member of ``K2``.  Note the relation is not
    symmetric in general.
    """
    if tau_prime < 1:
        raise ValueError(f"tau' must be >= 1, got {tau_prime}")
    count = 0
    sorted_k2 = [sorted(c) for c in k2]
    for c1 in k1:
        if any(tau_g_conflict(c1, c2, tau, g) for c2 in sorted_k2):
            count += 1
            if count >= tau_prime:
                return True
    return False


def conflicting_members(
    k1: Sequence[Sequence[int]],
    k2: Sequence[Sequence[int]],
    tau: int,
    g: int = 0,
) -> list[int]:
    """Indices ``i`` such that ``K1[i]`` tau&g-conflicts with some set of K2.

    The P1 step of the algorithms needs, for each candidate ``C in K_v`` and
    each out-neighbor ``u``, whether ``C`` conflicts with any member of
    ``K_u``; this helper returns the conflicted indices against one
    neighbor family.
    """
    sorted_k2 = [sorted(c) for c in k2]
    return [
        i
        for i, c1 in enumerate(k1)
        if any(tau_g_conflict(c1, c2, tau, g) for c2 in sorted_k2)
    ]


def pairwise_conflict_degree(
    families: Sequence[Sequence[Sequence[int]]],
    tau_prime: int,
    tau: int,
    g: int = 0,
) -> int:
    """Max over families ``K`` of the number of other families in Psi relation.

    Used by experiment E10 to measure the conflict degree ``d_2`` of the
    exact greedy construction against the bound of Lemma 3.1 / 3.2.
    """
    worst = 0
    for i, ka in enumerate(families):
        deg = 0
        for j, kb in enumerate(families):
            if i == j:
                continue
            if psi_g(ka, kb, tau_prime, tau, g) or psi_g(kb, ka, tau_prime, tau, g):
                deg += 1
        worst = max(worst, deg)
    return worst
