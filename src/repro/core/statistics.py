"""Descriptive statistics of colorings: histograms, balance, defect use.

Scenario summaries and examples keep re-deriving the same facts from an
assignment (how loaded is each color, how much of the defect budget was
actually spent, how balanced is the partition); this module centralizes
them with a single audited implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .coloring import ColoringResult
from .instance import ListDefectiveInstance


def color_histogram(result: ColoringResult) -> dict[int, int]:
    """``color -> number of nodes holding it``."""
    out: dict[int, int] = {}
    for _v, c in result.assignment.items():
        out[c] = out.get(c, 0) + 1
    return out


def balance(result: ColoringResult) -> float:
    """Max class size over mean class size (1.0 = perfectly balanced)."""
    hist = color_histogram(result)
    if not hist:
        return 1.0
    sizes = list(hist.values())
    return max(sizes) / (sum(sizes) / len(sizes))


def defect_histogram(
    instance: ListDefectiveInstance, result: ColoringResult
) -> dict[int, int]:
    """``realized defect -> node count`` (same-color neighbors per node)."""
    g = instance.graph
    out: dict[int, int] = {}
    for v in g.nodes:
        x = result.assignment[v]
        if instance.directed:
            neigh = set(g.successors(v))
        else:
            neigh = set(g.neighbors(v))
        realized = sum(1 for u in neigh if result.assignment.get(u) == x)
        out[realized] = out.get(realized, 0) + 1
    return out


@dataclass(frozen=True)
class BudgetUse:
    """How much of the defect budget a solution actually consumed."""

    total_budget: int  # sum over nodes of d_v(chosen color)
    total_realized: int  # sum over nodes of realized defects
    max_budget: int
    max_realized: int

    @property
    def utilization(self) -> float:
        """Realized over allowed (0.0 when no budget existed)."""
        return self.total_realized / self.total_budget if self.total_budget else 0.0


def budget_use(
    instance: ListDefectiveInstance, result: ColoringResult
) -> BudgetUse:
    """Summarize spent vs allowed defects for the chosen colors."""
    g = instance.graph
    total_budget = total_realized = max_budget = max_realized = 0
    for v in g.nodes:
        x = result.assignment[v]
        allowed = instance.defects[v][x]
        if instance.directed:
            neigh = set(g.successors(v))
        else:
            neigh = set(g.neighbors(v))
        realized = sum(1 for u in neigh if result.assignment.get(u) == x)
        total_budget += allowed
        total_realized += realized
        max_budget = max(max_budget, allowed)
        max_realized = max(max_realized, realized)
    return BudgetUse(total_budget, total_realized, max_budget, max_realized)


def monochromatic_edges(graph: nx.Graph, result: ColoringResult) -> int:
    """Number of edges whose endpoints share a color."""
    return sum(
        1
        for u, v in graph.edges
        if result.assignment.get(u) == result.assignment.get(v)
    )
