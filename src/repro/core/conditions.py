"""Existence and algorithm-requirement conditions from the paper.

Each predicate corresponds to a numbered condition:

* Eq. (1): LDC exists if ``sum_x (d_v(x) + 1) > Delta`` for all v.
* Eq. (2): list arbdefective coloring exists if ``sum_x (2 d_v(x) + 1) > Delta``.
* Eq. (3) / Theorem 1.1: OLDC solvable fast if
  ``sum_x (d_v(x) + 1)^2 >= alpha * beta_v^2 * kappa(beta, C, m)``.
* Eq. (11)/(12) (Section 5): the parameterized requirements of the abstract
  algorithms ``A^D_{nu,kappa}`` and ``A^O_{nu,kappa}``.

These are used three ways: instance builders target them, algorithms assert
them (in strict mode), and the E01/E07 experiments probe their tightness.
"""

from __future__ import annotations

from dataclasses import dataclass

from .instance import ListDefectiveInstance


def ldc_exists_condition(instance: ListDefectiveInstance) -> bool:
    """Eq. (1): sufficient condition for existence of an LDC solution.

    ``sum_{x in L_v} (d_v(x) + 1) > deg(v)`` for every node (the paper states
    the condition with Delta; per-node degree is the refined version used in
    Lemma A.1's proof, which is what the sequential solver needs).
    """
    return all(
        sum(d + 1 for d in instance.defects[v].values()) > instance.degree(v)
        for v in instance.graph.nodes
    )


def arbdefective_exists_condition(instance: ListDefectiveInstance) -> bool:
    """Eq. (2): sufficient condition for a list arbdefective coloring."""
    return all(
        sum(2 * d + 1 for d in instance.defects[v].values()) > instance.degree(v)
        for v in instance.graph.nodes
    )


def degree_plus_one_condition(instance: ListDefectiveInstance) -> bool:
    """The (degree+1)-list arbdefective condition of Theorem 1.3.

    ``sum_{x in L_v} (d_v(x) + 1) > deg(v)`` — same functional form as
    Eq. (1); Theorem 1.3 solves instances meeting it distributedly.
    """
    return ldc_exists_condition(instance)


def power_condition(
    instance: ListDefectiveInstance,
    nu: float,
    kappa: float,
    oriented: bool,
) -> bool:
    """Eqs. (11)/(12): ``sum (d_v(x)+1)^{1+nu} >= base_v^{1+nu} * kappa``.

    ``base_v`` is ``beta_v`` for oriented instances (Eq. 12) and ``deg(v)``
    for undirected ones (Eq. 11).
    """
    if nu < 0 or kappa <= 0:
        raise ValueError(f"need nu >= 0 and kappa > 0, got nu={nu}, kappa={kappa}")
    expo = 1.0 + nu
    for v in instance.graph.nodes:
        base = instance.outdegree(v) if oriented else max(1, instance.degree(v))
        lhs = sum((d + 1) ** expo for d in instance.defects[v].values())
        if lhs < float(base) ** expo * kappa:
            return False
    return True


def theorem_1_1_condition(
    instance: ListDefectiveInstance, alpha: float, kappa: float
) -> bool:
    """Eq. (3): requirement of the main OLDC algorithm (nu = 1 power condition
    with the multiplicative constant split out as ``alpha * kappa``)."""
    return power_condition(instance, nu=1.0, kappa=alpha * kappa, oriented=True)


def condition_slack(
    instance: ListDefectiveInstance, nu: float, oriented: bool
) -> float:
    """Smallest per-node ratio ``sum (d+1)^{1+nu} / base^{1+nu}``.

    This is the largest ``kappa`` for which :func:`power_condition` holds; the
    threshold experiments sweep it.  Returns ``inf`` on an empty graph.
    """
    expo = 1.0 + nu
    worst = float("inf")
    for v in instance.graph.nodes:
        base = instance.outdegree(v) if oriented else max(1, instance.degree(v))
        lhs = sum((d + 1) ** expo for d in instance.defects[v].values())
        worst = min(worst, lhs / float(base) ** expo)
    return worst


@dataclass(frozen=True)
class ConditionAudit:
    """Per-instance summary of which paper conditions hold."""

    eq1_ldc_exists: bool
    eq2_arbdefective_exists: bool
    slack_nu1: float
    slack_nu0: float

    @staticmethod
    def of(instance: ListDefectiveInstance) -> "ConditionAudit":
        oriented = instance.directed
        return ConditionAudit(
            eq1_ldc_exists=ldc_exists_condition(instance),
            eq2_arbdefective_exists=arbdefective_exists_condition(instance),
            slack_nu1=condition_slack(instance, 1.0, oriented),
            slack_nu0=condition_slack(instance, 0.0, oriented),
        )
