"""List defective coloring instances (Definition 1.1 of the paper).

An instance bundles a graph with, for every node ``v``:

* a color list ``L_v`` drawn from a common color space ``C``; and
* a defect function ``d_v : L_v -> N_0`` assigning an allowed defect to
  each color in the list.

The three problem variants of Definition 1.1 share the same input data and
differ only in how defects are counted against the output:

* **LDC** (list defective coloring): at most ``d_v(phi(v))`` *neighbors* of
  ``v`` share ``v``'s color.
* **OLDC** (oriented list defective coloring): the graph is directed and at
  most ``d_v(phi(v))`` *out-neighbors* share the color.
* **list arbdefective coloring**: the output additionally contains an edge
  orientation, and the OLDC condition must hold w.r.t. that orientation.

Instance builders for the standard special cases (``(Delta+1)``-coloring,
``(degree+1)``-list coloring, ``d``-defective ``c``-coloring, ...) live here
too, so the experiments and tests construct inputs through one audited path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import networkx as nx

from .colorspace import ColorSpace

DefectFn = Mapping[int, int]


@dataclass
class ListDefectiveInstance:
    """A list defective coloring instance on an (un)directed graph.

    Attributes
    ----------
    graph:
        ``networkx`` graph.  ``nx.Graph`` for LDC / list arbdefective
        instances, ``nx.DiGraph`` for OLDC instances.
    space:
        The common color space ``C``.
    lists:
        ``node -> sorted tuple of colors`` (the list ``L_v``).
    defects:
        ``node -> {color: defect}`` with exactly the list colors as keys.
    """

    graph: nx.Graph
    space: ColorSpace
    lists: dict[int, tuple[int, ...]]
    defects: dict[int, dict[int, int]]

    def __post_init__(self) -> None:
        for v in self.graph.nodes:
            if v not in self.lists:
                raise ValueError(f"node {v} has no color list")
            lst = tuple(sorted(set(self.lists[v])))
            self.lists[v] = lst
            dv = self.defects.get(v)
            if dv is None:
                raise ValueError(f"node {v} has no defect function")
            if set(dv) != set(lst):
                raise ValueError(
                    f"node {v}: defect function keys {sorted(dv)} != list {list(lst)}"
                )
            for x, d in dv.items():
                if x not in self.space:
                    raise ValueError(f"node {v}: color {x} outside color space")
                if d < 0:
                    raise ValueError(f"node {v}: negative defect {d} for color {x}")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def directed(self) -> bool:
        return self.graph.is_directed()

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    def degree(self, v: int) -> int:
        """Undirected degree (for digraphs: total in+out neighbor count)."""
        if self.directed:
            return len(set(self.graph.predecessors(v)) | set(self.graph.successors(v)))
        return self.graph.degree(v)

    def outdegree(self, v: int) -> int:
        """Paper's beta_v: the outdegree of ``v``, clamped to at least 1."""
        if not self.directed:
            raise ValueError("outdegree only defined for directed instances")
        return max(1, self.graph.out_degree(v))

    @property
    def max_degree(self) -> int:
        """Delta of the (underlying undirected) graph."""
        if self.n == 0:
            return 0
        return max(self.degree(v) for v in self.graph.nodes)

    @property
    def max_outdegree(self) -> int:
        """Paper's beta: maximum (clamped) outdegree."""
        return max(self.outdegree(v) for v in self.graph.nodes)

    @property
    def max_list_size(self) -> int:
        """Paper's Lambda: the maximum list size over all nodes."""
        return max((len(lst) for lst in self.lists.values()), default=0)

    def list_of(self, v: int) -> tuple[int, ...]:
        """Node ``v``'s color list ``L_v``."""
        return self.lists[v]

    def defect_of(self, v: int, color: int) -> int:
        """``d_v(color)`` — KeyError when the color is not on the list."""
        return self.defects[v][color]

    def defect_weight(self, v: int, exponent: float = 1.0) -> float:
        """``sum_{x in L_v} (d_v(x) + 1) ** exponent``.

        These sums appear in every condition of the paper: Eq. (1) uses
        exponent 1, Theorem 1.1 / Eq. (3) uses exponent 2 and Theorem 1.2
        the general ``1 + nu``.
        """
        return float(sum((d + 1) ** exponent for d in self.defects[v].values()))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def to_oriented(self) -> "ListDefectiveInstance":
        """Bidirect an undirected instance into an equivalent OLDC instance.

        The paper (after Theorem 1.2) notes that replacing each edge
        ``{u, v}`` by the two arcs ``(u, v)`` and ``(v, u)`` makes the LDC
        problem on ``G`` equivalent to the OLDC problem on the bidirected
        graph: every neighbor is an out-neighbor, so the defect counts match.
        """
        if self.directed:
            return self
        dg = nx.DiGraph()
        dg.add_nodes_from(self.graph.nodes)
        for u, v in self.graph.edges:
            dg.add_edge(u, v)
            dg.add_edge(v, u)
        return ListDefectiveInstance(
            dg,
            self.space,
            {v: tuple(lst) for v, lst in self.lists.items()},
            {v: dict(d) for v, d in self.defects.items()},
        )

    def restrict(
        self,
        nodes: Sequence[int] | None = None,
        keep_color: Callable[[int, int], bool] | None = None,
    ) -> "ListDefectiveInstance":
        """Induced sub-instance on ``nodes`` with per-node color filtering.

        ``keep_color(v, x)`` decides whether color ``x`` stays in ``L_v``
        (used by the recursive color space reduction, and by Theorem 1.3's
        removal of colors whose residual defect budget is exhausted).
        """
        sub_nodes = list(self.graph.nodes) if nodes is None else list(nodes)
        sub = self.graph.subgraph(sub_nodes).copy()
        lists: dict[int, tuple[int, ...]] = {}
        defects: dict[int, dict[int, int]] = {}
        for v in sub_nodes:
            kept = [
                x
                for x in self.lists[v]
                if keep_color is None or keep_color(v, x)
            ]
            lists[v] = tuple(kept)
            defects[v] = {x: self.defects[v][x] for x in kept}
        return ListDefectiveInstance(sub, self.space, lists, defects)

    def copy(self) -> "ListDefectiveInstance":
        """Independent deep-enough copy (graph, lists, and defects)."""
        return ListDefectiveInstance(
            self.graph.copy(),
            self.space,
            {v: tuple(lst) for v, lst in self.lists.items()},
            {v: dict(d) for v, d in self.defects.items()},
        )


# ----------------------------------------------------------------------
# instance builders
# ----------------------------------------------------------------------
def uniform_instance(
    graph: nx.Graph,
    space: ColorSpace,
    colors: Sequence[int],
    defect: int,
) -> ListDefectiveInstance:
    """All nodes share the same list and the same constant defect.

    The classic ``d``-defective ``c``-coloring is the special case with
    ``colors = range(c)`` and ``defect = d``; the plain ``c``-coloring is the
    further special case ``defect = 0``.
    """
    lst = tuple(sorted(set(colors)))
    return ListDefectiveInstance(
        graph,
        space,
        {v: lst for v in graph.nodes},
        {v: {x: defect for x in lst} for v in graph.nodes},
    )


def delta_plus_one_instance(graph: nx.Graph) -> ListDefectiveInstance:
    """The standard ``(Delta + 1)``-coloring problem as an LDC instance."""
    delta = max((d for _, d in graph.degree), default=0)
    space = ColorSpace(delta + 1)
    return uniform_instance(graph, space, space.colors(), defect=0)


def degree_plus_one_instance(
    graph: nx.Graph,
    space: ColorSpace | None = None,
    rng: random.Random | None = None,
) -> ListDefectiveInstance:
    """A ``(degree+1)``-list coloring instance with random lists.

    Every node gets a list of exactly ``deg(v) + 1`` distinct colors drawn
    from ``space`` (defaults to a space of ``Delta + 1`` colors so the
    instance degenerates to ``(Delta+1)``-coloring when ``rng`` is ``None``).
    All defects are zero, matching the problem in Theorem 1.4.
    """
    delta = max((d for _, d in graph.degree), default=0)
    if space is None:
        space = ColorSpace(delta + 1)
    lists: dict[int, tuple[int, ...]] = {}
    for v in graph.nodes:
        need = graph.degree(v) + 1
        if need > space.size:
            raise ValueError(
                f"node {v}: needs {need} colors but space has {space.size}"
            )
        if rng is None:
            chosen = list(space.colors())[:need]
        else:
            chosen = rng.sample(list(space.colors()), need)
        lists[v] = tuple(sorted(chosen))
    defects = {v: {x: 0 for x in lists[v]} for v in graph.nodes}
    return ListDefectiveInstance(graph, space, lists, defects)


def random_list_defective_instance(
    graph: nx.Graph,
    space: ColorSpace,
    list_size: int,
    max_defect: int,
    rng: random.Random,
) -> ListDefectiveInstance:
    """Random lists of a fixed size with i.i.d. uniform defects in [0, max]."""
    if list_size > space.size:
        raise ValueError("list size exceeds color space")
    colors = list(space.colors())
    lists = {v: tuple(sorted(rng.sample(colors, list_size))) for v in graph.nodes}
    defects = {
        v: {x: rng.randint(0, max_defect) for x in lists[v]} for v in graph.nodes
    }
    return ListDefectiveInstance(graph, space, lists, defects)


def scaled_budget_instance(
    graph: nx.Graph,
    space: ColorSpace,
    weight_exponent: float,
    slack: float,
    max_defect: int,
    rng: random.Random,
    directed_outdegrees: Mapping[int, int] | None = None,
) -> ListDefectiveInstance:
    """An instance whose defect budget meets a target condition with slack.

    Builds, for each node, a random list/defect pair satisfying::

        sum_{x in L_v} (d_v(x) + 1) ** weight_exponent
            >= slack * base(v) ** weight_exponent

    where ``base(v)`` is ``deg(v)`` (or the provided outdegree).  This is the
    instance family used by experiments E05/E07 to probe the requirement of
    Theorem 1.1 at a controlled distance from the threshold.
    """
    colors = list(space.colors())
    lists: dict[int, tuple[int, ...]] = {}
    defects: dict[int, dict[int, int]] = {}
    for v in graph.nodes:
        if directed_outdegrees is not None:
            base = max(1, directed_outdegrees.get(v, 0))
        else:
            base = max(1, graph.degree(v))
        target = slack * float(base) ** weight_exponent
        chosen: list[int] = []
        dv: dict[int, int] = {}
        total = 0.0
        order = rng.sample(colors, len(colors))
        for x in order:
            if total >= target:
                break
            d = rng.randint(0, max_defect)
            chosen.append(x)
            dv[x] = d
            total += (d + 1) ** weight_exponent
        if total < target:
            raise ValueError(
                f"color space too small to reach budget for node {v}: "
                f"{total:.1f} < {target:.1f}"
            )
        lists[v] = tuple(sorted(chosen))
        defects[v] = dv
    return ListDefectiveInstance(graph, space, lists, defects)


@dataclass
class PartialColoring:
    """Bookkeeping for multi-stage algorithms (Theorem 1.3, Theorem 1.4).

    Tracks which nodes are colored, with what color, and the orientation of
    edges between colored nodes.  ``a_v(x)`` counters (number of colored
    neighbors of ``v`` holding color ``x``) are maintained incrementally.
    """

    instance: ListDefectiveInstance
    colors: dict[int, int] = field(default_factory=dict)
    orientation: dict[tuple[int, int], None] = field(default_factory=dict)
    taken_counts: dict[int, dict[int, int]] = field(default_factory=dict)

    def colored(self, v: int) -> bool:
        return v in self.colors

    def a(self, v: int, x: int) -> int:
        """Number of colored neighbors of ``v`` with color ``x``."""
        return self.taken_counts.get(v, {}).get(x, 0)

    def assign(self, v: int, color: int) -> None:
        if v in self.colors:
            raise ValueError(f"node {v} already colored")
        self.colors[v] = color
        g = self.instance.graph
        neigh = (
            set(g.predecessors(v)) | set(g.successors(v))
            if self.instance.directed
            else set(g.neighbors(v))
        )
        for u in neigh:
            self.taken_counts.setdefault(u, {})
            self.taken_counts[u][color] = self.taken_counts[u].get(color, 0) + 1

    def orient(self, u: int, v: int) -> None:
        """Record edge {u, v} as oriented from ``u`` to ``v``."""
        if (v, u) in self.orientation:
            raise ValueError(f"edge {{{u},{v}}} already oriented the other way")
        self.orientation[(u, v)] = None

    def out_neighbors(self, v: int) -> list[int]:
        return [b for (a, b) in self.orientation if a == v]

    def uncolored_nodes(self) -> list[int]:
        return [v for v in self.instance.graph.nodes if v not in self.colors]
