"""Color spaces and congruence-class partitions.

Throughout the paper (and this library) colors are non-negative integers
drawn from a finite *color space* ``C`` (the paper's :math:`\\mathcal{C}`).
The main OLDC algorithm (Section 3.2.2 of the paper) restricts each node's
color list to a single congruence class modulo ``2g + 1`` so that the
generalized ``tau&g``-conflict relation behaves like the ``g = 0`` case; the
helpers for that trick live here as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True)
class ColorSpace:
    """A finite space of integer colors ``{offset, ..., offset + size - 1}``.

    The paper assumes w.l.o.g. that :math:`\\mathcal{C} \\subseteq \\mathbb{N}`;
    we additionally assume the space is a contiguous integer range, which is
    what every construction in the paper produces (color spaces are always
    ``[k]`` or products flattened into ranges).

    Parameters
    ----------
    size:
        Number of colors, ``|C| >= 1``.
    offset:
        Smallest color in the space (0 by default).
    """

    size: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"color space must be non-empty, got size={self.size}")
        if self.offset < 0:
            raise ValueError(f"colors must be non-negative, got offset={self.offset}")

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.offset, self.offset + self.size))

    def __contains__(self, color: int) -> bool:
        return self.offset <= color < self.offset + self.size

    @property
    def max_color(self) -> int:
        return self.offset + self.size - 1

    def bits_per_color(self) -> int:
        """Number of bits needed to transmit one color of this space."""
        return max(1, (self.max_color).bit_length())

    def colors(self) -> range:
        """The colors of this space as a ``range`` object."""
        return range(self.offset, self.offset + self.size)

    def partition(self, parts: int) -> list["ColorSpace"]:
        """Partition the space into ``parts`` contiguous, nearly equal parts.

        Used by the recursive color space reduction (Theorem 1.2): the space
        is split into ``p`` disjoint subspaces C_1, ..., C_p; part sizes
        differ by at most one.  Raises ``ValueError`` when ``parts`` does not
        lie in the paper's admissible interval ``(1, |C|]``.
        """
        if not 1 <= parts <= self.size:
            raise ValueError(
                f"cannot partition space of size {self.size} into {parts} parts"
            )
        base, extra = divmod(self.size, parts)
        out: list[ColorSpace] = []
        start = self.offset
        for i in range(parts):
            length = base + (1 if i < extra else 0)
            out.append(ColorSpace(length, start))
            start += length
        return out

    def subspace_of(self, color: int, parts: int) -> int:
        """Index ``i`` such that ``color`` lies in ``self.partition(parts)[i]``."""
        if color not in self:
            raise ValueError(f"color {color} not in {self}")
        base, extra = divmod(self.size, parts)
        rel = color - self.offset
        pivot = (base + 1) * extra
        if rel < pivot:
            return rel // (base + 1)
        return extra + (rel - pivot) // base if base else extra


def congruence_class(colors: Iterable[int], a: int, modulus: int) -> list[int]:
    """Colors congruent to ``a`` modulo ``modulus`` (paper's :math:`P^a`).

    The basic OLDC algorithm restricts each list to a single congruence
    class modulo ``2g + 1`` so that each color can ``tau&g``-conflict with at
    most one color of any other restricted list (Claim 3.3).
    """
    if modulus < 1:
        raise ValueError(f"modulus must be >= 1, got {modulus}")
    return [x for x in colors if x % modulus == a % modulus]


def best_congruence_class(colors: Sequence[int], modulus: int) -> tuple[int, list[int]]:
    """The residue ``a`` maximizing ``|L^a|`` and the restricted list.

    This is the first step of the zero-round P2 solution (Lemma 3.5): each
    node keeps only its largest congruence class, which by pigeonhole has
    size at least ``|L| / (2g + 1)``.  Ties are broken toward the smaller
    residue so the choice is deterministic.
    """
    if modulus < 1:
        raise ValueError(f"modulus must be >= 1, got {modulus}")
    if modulus == 1:
        return 0, sorted(set(colors))
    buckets: dict[int, list[int]] = {}
    for x in sorted(set(colors)):
        buckets.setdefault(x % modulus, []).append(x)
    if not buckets:
        return 0, []
    a = max(sorted(buckets), key=lambda r: len(buckets[r]))
    # max over sorted keys with key=len returns the *last* maximal entry;
    # re-scan to prefer the smallest residue among maxima.
    best_len = len(buckets[a])
    a = min(r for r, lst in buckets.items() if len(lst) == best_len)
    return a, sorted(buckets[a])


def round_to_congruence(color: int, b: int, modulus: int) -> int:
    """Round ``color`` to the closest value congruent to ``b (mod modulus)``.

    Implements the ``[C]_b`` rounding of Claim 3.3: for lists restricted to
    single congruence classes mod ``2g + 1``, ``x1`` and ``x2`` conflict
    (``|x1 - x2| <= g``) iff ``x1`` rounds exactly onto ``x2``.  Ties (exact
    half distance cannot occur for odd modulus) are rounded down.
    """
    if modulus < 1:
        raise ValueError(f"modulus must be >= 1, got {modulus}")
    r = (b - color) % modulus
    up = color + r
    down = color - (modulus - r)
    if down < 0:
        return up
    return up if (up - color) <= (color - down) else down
