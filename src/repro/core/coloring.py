"""Coloring outputs: assignments and edge orientations.

The outputs of the three problem variants (Definition 1.1):

* LDC / OLDC output: a color assignment ``phi : V -> C``.
* list arbdefective coloring output: a color assignment *plus* an edge
  orientation ``sigma``.

``EdgeOrientation`` stores an orientation of an undirected graph's edges and
provides the out-neighborhood queries the validators need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import networkx as nx


@dataclass
class EdgeOrientation:
    """An orientation of (a subset of) the edges of an undirected graph.

    Internally stored as a set of ordered pairs ``(u, v)`` meaning the edge
    ``{u, v}`` points from ``u`` to ``v``.  An edge may be oriented in only
    one direction.
    """

    arcs: set[tuple[int, int]] = field(default_factory=set)

    def orient(self, u: int, v: int) -> None:
        """Orient edge ``{u, v}`` as ``u -> v`` (error if already ``v -> u``)."""
        if (v, u) in self.arcs:
            raise ValueError(f"edge {{{u},{v}}} already oriented {v}->{u}")
        self.arcs.add((u, v))

    def is_oriented(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` has been oriented (either direction)."""
        return (u, v) in self.arcs or (v, u) in self.arcs

    def points_from(self, u: int, v: int) -> bool:
        """Whether the edge is oriented exactly ``u -> v``."""
        return (u, v) in self.arcs

    def out_neighbors(self, v: int) -> list[int]:
        """Endpoints of arcs leaving ``v``."""
        return [b for (a, b) in self.arcs if a == v]

    def out_degree(self, v: int) -> int:
        """Number of arcs leaving ``v``."""
        return sum(1 for (a, _b) in self.arcs if a == v)

    def covers(self, graph: nx.Graph) -> bool:
        """True iff every edge of ``graph`` is oriented."""
        return all(self.is_oriented(u, v) for u, v in graph.edges)

    def as_digraph(self, graph: nx.Graph) -> nx.DiGraph:
        """The directed graph induced by this orientation on ``graph``."""
        dg = nx.DiGraph()
        dg.add_nodes_from(graph.nodes)
        for u, v in graph.edges:
            if (u, v) in self.arcs:
                dg.add_edge(u, v)
            elif (v, u) in self.arcs:
                dg.add_edge(v, u)
            else:
                raise ValueError(f"edge {{{u},{v}}} is unoriented")
        return dg

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.arcs)

    def __len__(self) -> int:
        return len(self.arcs)


def orientation_from_priority(
    graph: nx.Graph, priority: Mapping[int, float]
) -> EdgeOrientation:
    """Orient every edge from higher to lower priority (ties by node id).

    Acyclic by construction; used by Theorem 1.3 to orient edges from
    later-colored nodes toward earlier-colored ones.
    """
    ori = EdgeOrientation()
    for u, v in graph.edges:
        if (priority[u], u) > (priority[v], v):
            ori.orient(u, v)
        else:
            ori.orient(v, u)
    return ori


@dataclass
class ColoringResult:
    """A (possibly partial) coloring with optional orientation.

    Attributes
    ----------
    assignment:
        ``node -> color``.  For total colorings every node of the graph must
        appear; validators check this.
    orientation:
        Present for list arbdefective outputs.
    """

    assignment: dict[int, int]
    orientation: EdgeOrientation | None = None

    def color(self, v: int) -> int:
        """The color assigned to node ``v`` (KeyError if uncolored)."""
        return self.assignment[v]

    def num_colors(self) -> int:
        """Number of distinct colors actually used."""
        return len(set(self.assignment.values()))

    def color_classes(self) -> dict[int, list[int]]:
        """``color -> nodes holding it`` (insertion order within a class)."""
        classes: dict[int, list[int]] = {}
        for v, c in self.assignment.items():
            classes.setdefault(c, []).append(v)
        return classes

    def is_total(self, nodes: Iterable[int]) -> bool:
        """Whether every node of ``nodes`` has been assigned a color."""
        return all(v in self.assignment for v in nodes)
