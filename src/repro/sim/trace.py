"""Round-by-round execution traces.

A :class:`Trace` records every message of a simulated run — round, sender,
receiver, declared bit size, and (optionally) the payload — plus per-round
activity snapshots.  Traces power debugging, the failure-injection tests
(assert *what* was said, not just how much), and post-hoc analyses such as
per-round bandwidth histograms.

Payload capture is off by default: payloads can be large (candidate
families) and most consumers only need the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class TracedMessage:
    round: int
    src: int
    dst: int
    bits: int
    payload: Any = None


@dataclass(frozen=True)
class TracedFault:
    """One injected fault event: kind is a :data:`repro.faults.FAULT_KINDS`
    entry; ``dst`` is ``None`` for node-level events (crashes)."""

    round: int
    kind: str
    src: int
    dst: int | None = None


@dataclass
class Trace:
    """Collected events of one run."""

    capture_payloads: bool = False
    messages: list[TracedMessage] = field(default_factory=list)
    active_per_round: list[int] = field(default_factory=list)
    faults: list[TracedFault] = field(default_factory=list)

    def record(self, rnd: int, src: int, dst: int, bits: int, payload: Any) -> None:
        """Log one message (payload kept only when capture is enabled)."""
        self.messages.append(
            TracedMessage(
                rnd, src, dst, bits, payload if self.capture_payloads else None
            )
        )

    def record_fault(self, rnd: int, kind: str, src: int, dst: int | None) -> None:
        """Log one injected fault event (message fate or node crash)."""
        self.faults.append(TracedFault(rnd, kind, src, dst))

    def record_round(self, active_count: int) -> None:
        """Close a round, noting how many nodes were still active."""
        self.active_per_round.append(active_count)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        return len(self.active_per_round)

    def messages_in_round(self, rnd: int) -> list[TracedMessage]:
        """All messages sent in round ``rnd``."""
        return [m for m in self.messages if m.round == rnd]

    def between(self, src: int, dst: int) -> list[TracedMessage]:
        """All messages from ``src`` to ``dst``, in round order."""
        return [m for m in self.messages if m.src == src and m.dst == dst]

    def faults_in_round(self, rnd: int) -> list[TracedFault]:
        """All fault events injected in round ``rnd``."""
        return [f for f in self.faults if f.round == rnd]

    def fault_counts(self) -> dict[str, int]:
        """Total injected events per fault kind (absent kinds omitted)."""
        out: dict[str, int] = {}
        for f in self.faults:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out

    def bits_per_round(self) -> list[int]:
        """Total bits shipped in each round.

        Sized to cover every recorded message, even when
        :meth:`record_round` was not called for a trailing round (messages
        beyond the last closed round used to be silently dropped, making
        ``sum(bits_per_round())`` disagree with ``summary()["total_bits"]``).
        """
        rounds = self.rounds
        if self.messages:
            rounds = max(rounds, max(m.round for m in self.messages) + 1)
        out = [0] * rounds
        for m in self.messages:
            if m.round < 0:
                raise ValueError(f"traced message with negative round: {m}")
            out[m.round] += m.bits
        assert sum(out) == sum(m.bits for m in self.messages), (
            "bits_per_round dropped messages — accounting bug"
        )
        return out

    def messages_per_round(self) -> list[int]:
        """Message count of each round (sized like :meth:`bits_per_round`)."""
        rounds = self.rounds
        if self.messages:
            rounds = max(rounds, max(m.round for m in self.messages) + 1)
        out = [0] * rounds
        for m in self.messages:
            out[m.round] += 1
        return out

    def busiest_round(self) -> int:
        """The round carrying the most bits (0 if no messages at all)."""
        per = self.bits_per_round()
        if not per:
            return 0
        return max(range(len(per)), key=lambda r: per[r])

    def summary(self) -> dict[str, int]:
        """Headline counters of the trace."""
        return {
            "rounds": self.rounds,
            "messages": len(self.messages),
            "total_bits": sum(m.bits for m in self.messages),
            "faults": len(self.faults),
        }
