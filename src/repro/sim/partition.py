"""Edge-cut partitioned execution with ghost nodes (multiprocess).

The single-CSR engine (:mod:`repro.sim.engine`) holds the whole graph —
adjacency, per-step ``(q, n)`` evaluation grids, collision counts — in
one process.  At ~10M nodes that is workable but uncomfortable: the
per-step temporaries alone reach gigabytes, and one Python process can
use only one core.  The LOCAL/CONGEST algorithms this repo reproduces
shard naturally, exactly like the exemplar partitioned colorers (an MPI
``V_local``/ghost-color-map strategy and a Spark GraphX colorer): each
round's color update is a pure function of *(own color, neighbor
colors)*, so a shard that owns a subset of nodes only needs the current
colors of its **ghosts** — off-shard neighbors of owned nodes — to run
the round locally.

This module provides that move in three layers:

* **partitioner** — :func:`partition_arrays` / :func:`partition_graph`
  split the dense node ids ``0..n-1`` into per-shard
  :class:`ShardPlan`\\ s under one of :data:`PARTITION_STRATEGIES`
  (``contiguous``: near-equal sorted ranges, the default;
  ``hash``: seeded splitmix64 of the node id).  Each plan carries the
  owned-node ids, the ghost-node ids, a local CSR over
  ``[owned..., ghosts...]`` (ghost rows empty — ghosts are read, never
  updated), and the owner→ghost **send lists** (which of its owned
  nodes every other shard reads);
* **round driver** — :func:`run_partitioned_dense` executes a Linial
  schedule shard-parallel: one worker process per shard, all current
  colors in one ``multiprocessing.shared_memory`` block, and a
  two-barrier exchange per round (snapshot barrier after every shard has
  pulled its ghost colors, publish barrier after every shard has written
  its owned colors).  **Shared memory over pipes**: the boundary
  exchange is then two fancy-indexed array copies per shard per round
  with zero serialization, and the published colors are the final result
  in place — pipes would pickle every cut's colors through the kernel
  each round and need explicit gather/scatter routing.  The price is
  POSIX shm lifecycle care (the parent owns create/unlink; workers
  attach/close) and no backpressure, which barrier-synchronous rounds do
  not need.  Workers default to the ``spawn`` start method so each
  shard's ``ru_maxrss`` is an honest per-shard figure (``fork`` children
  inherit the parent's full-graph pages in their peak-RSS accounting);
  tests may pass ``mp_context="fork"`` for startup speed;
* **equivalence twin** — :func:`run_partitioned_linial` mirrors
  :func:`repro.sim.vectorized.linial_vectorized` (same schedule, same
  tie-breaking, same synthesized accounting) and is registered as the
  ``partitioned`` backend with ``bit_identical_to="vectorized"``.  The
  bit-identity argument: every owned node's local neighbor multiset
  equals its global one by construction, the round kernel is
  pure-integer, and ``np.argmin``'s first-occurrence tie-break is
  columnwise — so each round's colors match the single-CSR run's
  exactly, for any shard count.

Observability: partitioned rounds carry the ``exchange`` column family
(:meth:`GraphPartition.exchange_row` — ghost-color bytes pulled per
round, ghost-replica count, cut directed edges) through
:func:`repro.sim.engine.record_uniform_round`; the message/bit columns
stay the *global* CONGEST accounting, so
:func:`repro.obs.compare_round_accounting` against a vectorized run of
the same cell passes unchanged.

Failure semantics: a worker that dies mid-run (crash, OOM kill) breaks
the round barrier within ``barrier_timeout`` seconds; surviving workers
exit on the broken barrier and the parent raises a structured
:class:`PartitionWorkerError` naming the first failed shard — never a
hang, never a silent partial result.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import signal
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from ..core.coloring import ColoringResult
from .engine import (
    CSRGraph,
    collision_counts,
    poly_digits,
    poly_eval_grid,
    record_uniform_round,
    synthesized_metrics,
)
from .message import int_bits
from .metrics import RunMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> sim)
    import networkx as nx

    from ..obs import RunRecorder

#: Node-assignment strategies :func:`partition_arrays` accepts.
PARTITION_STRATEGIES = ("contiguous", "hash")

#: Dtype of the shared color array (and of every CSR color array).
COLOR_DTYPE = np.int64

#: Bytes one ghost color occupies in the per-round boundary exchange.
COLOR_BYTES = 8

#: Default seconds a worker waits on a round barrier before concluding a
#: sibling shard died; also paces the parent's liveness polling.
DEFAULT_BARRIER_TIMEOUT = 60.0


class PartitionWorkerError(RuntimeError):
    """A shard worker died (or stalled) during a partitioned run.

    ``shard`` is the first shard observed failing, ``exitcode`` its
    process exit code (negative = killed by that signal number, ``None``
    when the failure was a timeout or a structured worker report).
    """

    def __init__(self, shard: int, detail: str, exitcode: int | None = None):
        self.shard = shard
        self.exitcode = exitcode
        super().__init__(f"partition shard {shard} failed: {detail}")


# ----------------------------------------------------------------------
# the partitioner
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """One shard's slice of a :class:`GraphPartition`.

    ``owned`` and ``ghosts`` are sorted global dense node ids; the local
    CSR (``indptr``/``indices``) is over local ids ``[owned...,
    ghosts...]`` in that order, with ghost rows empty (ghosts contribute
    colors, not updates).  ``send_to`` maps a destination shard to the
    sorted global ids of *this shard's owned nodes* that the destination
    reads as ghosts each round — the owner→ghost send lists; under the
    shared-memory transport they are accounting (and the mirror of the
    destinations' ``ghosts`` arrays), under a pipe transport they would
    be the literal per-round payloads.
    """

    shard: int
    owned: np.ndarray
    ghosts: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    send_to: Mapping[int, np.ndarray]
    cut_directed_edges: int

    @property
    def n_owned(self) -> int:
        """Nodes this shard updates."""
        return int(self.owned.shape[0])

    @property
    def n_ghost(self) -> int:
        """Off-shard neighbor colors this shard pulls each round."""
        return int(self.ghosts.shape[0])

    @property
    def n_local(self) -> int:
        """Local id-space size (owned + ghosts)."""
        return self.n_owned + self.n_ghost

    @property
    def num_local_directed_edges(self) -> int:
        """Directed edges stored locally (one per owned-node neighbor)."""
        return int(self.indices.shape[0])


@dataclass(frozen=True)
class GraphPartition:
    """A deterministic edge-cut partition of a dense-id graph.

    ``owner[i]`` is the shard owning global dense node ``i``; ``plans``
    hold each shard's local structure.  The partition is a pure function
    of ``(n, adjacency, shards, strategy, seed)`` — no RNG state, no
    timing — so reruns shard identically.
    """

    n: int
    num_directed_edges: int
    shards: int
    strategy: str
    seed: int
    owner: np.ndarray
    plans: tuple[ShardPlan, ...]

    @property
    def cut_directed_edges(self) -> int:
        """Directed edges whose endpoints live on different shards."""
        return sum(p.cut_directed_edges for p in self.plans)

    @property
    def cut_edge_fraction(self) -> float:
        """Fraction of (directed) edges crossing shards."""
        if not self.num_directed_edges:
            return 0.0
        return self.cut_directed_edges / self.num_directed_edges

    @property
    def total_ghosts(self) -> int:
        """Ghost replicas across all shards (a node ghosted by k shards
        counts k times)."""
        return sum(p.n_ghost for p in self.plans)

    @property
    def ghost_fraction(self) -> float:
        """Ghost replicas per node (can exceed 1 at high shard counts)."""
        return self.total_ghosts / self.n if self.n else 0.0

    @property
    def exchange_bytes_per_round(self) -> int:
        """Ghost-color bytes crossing shard boundaries each round."""
        return self.total_ghosts * COLOR_BYTES

    def exchange_row(self) -> dict[str, int]:
        """The per-round ``exchange`` column family for the obs layer.

        Static per round by construction: the partition (hence the ghost
        set) is fixed for the whole run, and every round pulls every
        ghost color once.
        """
        return {
            "bytes": self.exchange_bytes_per_round,
            "ghosts": self.total_ghosts,
            "cut_directed_edges": self.cut_directed_edges,
        }


def _assign_owners(
    n: int, shards: int, strategy: str, seed: int
) -> np.ndarray:
    """Global dense id -> owning shard, per the chosen strategy."""
    if strategy == "contiguous":
        # near-equal sorted ranges: shard s owns a contiguous id block
        base, rem = divmod(n, shards)
        sizes = np.full(shards, base, dtype=np.int64)
        sizes[:rem] += 1
        return np.repeat(np.arange(shards, dtype=np.int64), sizes)
    if strategy == "hash":
        from ..faults.plan import splitmix64, splitmix64_array

        mixed = splitmix64_array(
            np.arange(n, dtype=np.uint64) ^ np.uint64(splitmix64(seed))
        )
        return (mixed % np.uint64(shards)).astype(np.int64)
    raise ValueError(
        f"unknown partition strategy {strategy!r}; "
        f"options: {', '.join(PARTITION_STRATEGIES)}"
    )


def partition_arrays(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    shards: int,
    *,
    strategy: str = "contiguous",
    seed: int = 0,
) -> GraphPartition:
    """Edge-cut partition a dense-id CSR adjacency into ``shards`` plans.

    ``indptr``/``indices`` are the standard CSR arrays over dense ids
    ``0..n-1`` with every undirected edge stored in both directions
    (:class:`~repro.sim.engine.CSRGraph` layout).  Empty shards are legal
    (``shards > n`` included); ``shards < 1`` raises ``ValueError``.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    owner = _assign_owners(n, shards, strategy, seed)
    lengths = np.diff(indptr)
    edge_owner = np.repeat(owner, lengths)

    owned_by: list[np.ndarray] = []
    ghosts_by: list[np.ndarray] = []
    local_csr: list[tuple[np.ndarray, np.ndarray]] = []
    cuts: list[int] = []
    for s in range(shards):
        owned = np.nonzero(owner == s)[0]
        dst_global = indices[edge_owner == s]
        foreign = owner[dst_global] != s
        ghosts = np.unique(dst_global[foreign])
        # global -> local id translation (owned first, ghosts after)
        lookup = np.full(n, -1, dtype=np.int64)
        lookup[owned] = np.arange(owned.size, dtype=np.int64)
        lookup[ghosts] = owned.size + np.arange(ghosts.size, dtype=np.int64)
        local_indices = lookup[dst_global]
        n_local = owned.size + ghosts.size
        local_indptr = np.zeros(n_local + 1, dtype=np.int64)
        np.cumsum(lengths[owned], out=local_indptr[1 : owned.size + 1])
        local_indptr[owned.size + 1 :] = local_indptr[owned.size]
        owned_by.append(owned)
        ghosts_by.append(ghosts)
        local_csr.append((local_indptr, local_indices))
        cuts.append(int(foreign.sum()))

    plans = []
    for s in range(shards):
        send_to: dict[int, np.ndarray] = {}
        for t in range(shards):
            if t == s:
                continue
            mine = ghosts_by[t][owner[ghosts_by[t]] == s]
            if mine.size:
                send_to[t] = mine
        indptr_s, indices_s = local_csr[s]
        plans.append(
            ShardPlan(
                shard=s,
                owned=owned_by[s],
                ghosts=ghosts_by[s],
                indptr=indptr_s,
                indices=indices_s,
                send_to=send_to,
                cut_directed_edges=cuts[s],
            )
        )
    return GraphPartition(
        n=n,
        num_directed_edges=int(indices.shape[0]),
        shards=shards,
        strategy=strategy,
        seed=seed,
        owner=owner,
        plans=tuple(plans),
    )


def partition_graph(
    graph: "nx.Graph | CSRGraph",
    shards: int,
    *,
    strategy: str = "contiguous",
    seed: int = 0,
) -> tuple[CSRGraph, GraphPartition]:
    """Freeze ``graph`` to CSR (if needed) and partition its dense ids.

    The partition is over *dense* indices, so gappy/unsorted node labels
    shard exactly like the contiguous relabeling the CSR build performs —
    the label world only reappears at gather/scatter time.
    """
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_networkx(graph)
    return csr, partition_arrays(
        csr.n, csr.indptr, csr.indices, shards, strategy=strategy, seed=seed
    )


# ----------------------------------------------------------------------
# the shard worker (module-level: spawn requires an importable target)
# ----------------------------------------------------------------------
class _ShardCSR:
    """Duck-typed stand-in for :class:`CSRGraph` over a shard's local ids.

    Carries exactly what :func:`~repro.sim.engine.collision_counts`
    reads (``n``/``src``/``indices``/``num_directed_edges``) without the
    label machinery (``nodes`` tuple, ``index`` dict) that would cost
    hundreds of MB per shard at 10M nodes.
    """

    __slots__ = ("n", "indptr", "indices", "src")

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray):
        self.n = n
        self.indptr = indptr
        self.indices = indices
        self.src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))

    @property
    def num_directed_edges(self) -> int:
        return int(self.indices.shape[0])


def _attach_shared_colors(shm_name: str, n: int):
    """Attach the parent's shared color block (worker side).

    The parent owns the segment's lifecycle.  Workers deliberately do
    *not* ``resource_tracker.unregister`` their attachment: parent and
    children share one tracker process (its fd is inherited under both
    ``fork`` and ``spawn``), so the attach-side re-register is a set
    no-op there, while an unregister would strip the *parent's* entry
    and make the parent's ``unlink`` bookkeeping fail.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    colors = np.ndarray((n,), dtype=COLOR_DTYPE, buffer=shm.buf)
    return shm, colors


def _shard_worker(
    shard: int,
    shm_name: str,
    n_total: int,
    owned: np.ndarray,
    ghosts: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    sched: tuple[tuple[int, int], ...],
    barrier,
    result_queue,
    barrier_timeout: float,
    crash_round: int | None,
) -> None:
    """One shard's round loop (child-process entry point).

    Per round: pull ghost colors from shared memory, hit the snapshot
    barrier (now every shard has read the previous round's state),
    compute the Linial step on the local CSR, publish owned colors back
    into shared memory, hit the publish barrier (now every write of this
    round is visible).  ``crash_round`` is the worker-death test hook: a
    SIGKILL to self right before that round's snapshot barrier, which is
    exactly the mid-run death mode the parent must surface structurally.
    """
    shm = None
    try:
        shm, colors_global = _attach_shared_colors(shm_name, n_total)
        n_own = int(owned.shape[0])
        local = _ShardCSR(n_own + int(ghosts.shape[0]), indptr, indices)
        own = colors_global[owned].copy()
        own_range = np.arange(n_own)
        round_walls: list[float] = []
        for rnd, (q, deg) in enumerate(sched):
            if crash_round is not None and rnd == crash_round:
                os.kill(os.getpid(), signal.SIGKILL)
            t0 = time.perf_counter()
            ghost_colors = colors_global[ghosts]
            barrier.wait(timeout=barrier_timeout)  # all reads snapshotted
            if n_own:
                colors_local = np.concatenate([own, ghost_colors])
                digits = poly_digits(colors_local, q, deg)
                evals = poly_eval_grid(digits, q)  # (q, n_local)
                hits = collision_counts(local, evals)
                # restricting argmin to owned columns preserves the
                # single-CSR tie-break: columns are independent
                best_x = np.argmin(hits[:, :n_own], axis=0)
                own = best_x * q + evals[best_x, own_range]
                colors_global[owned] = own
            barrier.wait(timeout=barrier_timeout)  # all writes published
            round_walls.append(time.perf_counter() - t0)
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        result_queue.put(
            {
                "shard": shard,
                "ok": True,
                "peak_rss_kb": int(peak),
                "round_walls": round_walls,
            }
        )
    except BaseException as exc:  # noqa: BLE001 - report, then die loudly
        try:
            result_queue.put(
                {
                    "shard": shard,
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
        except Exception:  # pragma: no cover - queue already torn down
            pass
        os._exit(4)
    finally:
        if shm is not None:
            shm.close()


# ----------------------------------------------------------------------
# the multiprocess round driver
# ----------------------------------------------------------------------
@dataclass
class ShardRunStats:
    """One shard worker's self-reported execution figures."""

    shard: int
    n_owned: int
    n_ghost: int
    peak_rss_kb: int
    round_walls: list[float] = field(default_factory=list)


@dataclass
class PartitionRunStats:
    """What one partitioned run measured (parent-side aggregate)."""

    shards: int
    strategy: str
    rounds: int
    wall_s: float
    cut_edge_fraction: float
    ghost_fraction: float
    exchange_bytes_per_round: int
    shard_stats: list[ShardRunStats] = field(default_factory=list)

    @property
    def max_peak_rss_kb(self) -> int:
        """The heaviest shard's peak RSS (the sharding headline figure)."""
        return max((s.peak_rss_kb for s in self.shard_stats), default=0)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (benchmark/CLI artifact payload)."""
        return {
            "shards": self.shards,
            "strategy": self.strategy,
            "rounds": self.rounds,
            "wall_s": self.wall_s,
            "cut_edge_fraction": self.cut_edge_fraction,
            "ghost_fraction": self.ghost_fraction,
            "exchange_bytes_per_round": self.exchange_bytes_per_round,
            "max_peak_rss_kb": self.max_peak_rss_kb,
            "peak_rss_kb_per_shard": [
                s.peak_rss_kb for s in sorted(self.shard_stats, key=lambda x: x.shard)
            ],
        }


def _terminate_all(procs: list) -> None:
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        p.join(timeout=5.0)
        if p.is_alive():  # pragma: no cover - terminate refused
            p.kill()
            p.join(timeout=5.0)


def run_partitioned_dense(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    colors: np.ndarray,
    sched: list[tuple[int, int]],
    *,
    shards: int,
    strategy: str = "contiguous",
    seed: int = 0,
    partition: GraphPartition | None = None,
    mp_context: str = "spawn",
    barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
    _crash: Mapping[int, int] | None = None,
) -> tuple[np.ndarray, PartitionRunStats, GraphPartition]:
    """Run a Linial schedule shard-parallel over dense arrays.

    The array-native core under :func:`run_partitioned_linial` — and the
    entry point for graphs too large to pass through ``networkx``
    (``benchmarks/bench_partition.py`` feeds 10M-node adjacency built
    directly as numpy arrays).  ``sched`` is a list of ``(q, deg)``
    schedule steps (see :func:`repro.algorithms.linial.linial_schedule`);
    ``partition`` reuses a prebuilt partition (it must match ``n``/
    ``shards``).  Returns ``(final colors, run stats, partition)``.

    ``_crash`` (test hook) maps shard → round at which that shard's
    worker SIGKILLs itself; see :class:`PartitionWorkerError`.
    """
    part = partition
    if part is None:
        part = partition_arrays(
            n, indptr, indices, shards, strategy=strategy, seed=seed
        )
    elif part.n != n or part.shards != shards:
        raise ValueError(
            f"partition mismatch: partition has n={part.n}, "
            f"shards={part.shards}; run requested n={n}, shards={shards}"
        )
    colors = np.asarray(colors, dtype=COLOR_DTYPE)
    stats = PartitionRunStats(
        shards=part.shards,
        strategy=part.strategy,
        rounds=len(sched),
        wall_s=0.0,
        cut_edge_fraction=part.cut_edge_fraction,
        ghost_fraction=part.ghost_fraction,
        exchange_bytes_per_round=part.exchange_bytes_per_round,
    )
    if not sched or n == 0:
        # zero rounds: nothing to execute, nothing to exchange
        stats.shard_stats = [
            ShardRunStats(p.shard, p.n_owned, p.n_ghost, 0) for p in part.plans
        ]
        return colors.copy(), stats, part

    from multiprocessing import shared_memory

    ctx = mp.get_context(mp_context)
    t_start = time.perf_counter()
    shm = shared_memory.SharedMemory(create=True, size=n * COLOR_BYTES)
    procs: list = []
    try:
        shared = np.ndarray((n,), dtype=COLOR_DTYPE, buffer=shm.buf)
        shared[:] = colors
        barrier = ctx.Barrier(part.shards)
        results: "queue_mod.Queue | Any" = ctx.Queue()
        sched_tuple = tuple((int(q), int(deg)) for q, deg in sched)
        crash = dict(_crash or {})
        for plan in part.plans:
            procs.append(
                ctx.Process(
                    target=_shard_worker,
                    args=(
                        plan.shard,
                        shm.name,
                        n,
                        plan.owned,
                        plan.ghosts,
                        plan.indptr,
                        plan.indices,
                        sched_tuple,
                        barrier,
                        results,
                        barrier_timeout,
                        crash.get(plan.shard),
                    ),
                    daemon=True,
                )
            )
        for p in procs:
            p.start()

        reports: dict[int, dict] = {}
        # generous hard deadline: every round costs at most two barrier
        # waits, plus startup/teardown slack — a stalled worker is caught
        # by the barrier timeout long before this trips
        allowed_s = barrier_timeout * (2 * len(sched) + 4)
        deadline = time.monotonic() + allowed_s
        failure: tuple[int, str, int | None] | None = None
        while len(reports) < part.shards:
            try:
                msg = results.get(timeout=0.05)
                if not msg.get("ok"):
                    failure = (int(msg["shard"]), str(msg["error"]), None)
                    break
                reports[int(msg["shard"])] = msg
                continue
            except queue_mod.Empty:
                pass
            for plan, p in zip(part.plans, procs):
                code = p.exitcode
                if code not in (0, None) and plan.shard not in reports:
                    detail = (
                        f"killed by signal {-code}"
                        if code < 0
                        else f"exited with code {code}"
                    )
                    failure = (plan.shard, detail, code)
                    break
            if failure is not None:
                break
            if time.monotonic() > deadline:
                missing = sorted(
                    p.shard for p in part.plans if p.shard not in reports
                )
                failure = (
                    missing[0],
                    f"no result within {allowed_s:.0f}s "
                    f"(shards still pending: {missing})",
                    None,
                )
                break
        if failure is not None:
            _terminate_all(procs)
            shard_id, detail, code = failure
            raise PartitionWorkerError(shard_id, detail, exitcode=code)
        for p in procs:
            p.join(timeout=barrier_timeout)
        out = shared.copy()
    finally:
        if procs:
            _terminate_all(procs)
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass
    stats.wall_s = time.perf_counter() - t_start
    stats.shard_stats = [
        ShardRunStats(
            shard=plan.shard,
            n_owned=plan.n_owned,
            n_ghost=plan.n_ghost,
            peak_rss_kb=int(reports[plan.shard]["peak_rss_kb"]),
            round_walls=list(reports[plan.shard]["round_walls"]),
        )
        for plan in part.plans
    ]
    return out, stats, part


# ----------------------------------------------------------------------
# the equivalence twin (backend entry point)
# ----------------------------------------------------------------------
def run_partitioned_linial(
    graph: "nx.Graph",
    initial_colors: dict[int, int] | None = None,
    defect: int = 0,
    recorder: "RunRecorder | None" = None,
    *,
    shards: int = 2,
    strategy: str = "contiguous",
    seed: int = 0,
    mp_context: str = "spawn",
    barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
    stats_out: list[PartitionRunStats] | None = None,
    _crash: Mapping[int, int] | None = None,
) -> tuple[ColoringResult, RunMetrics, int]:
    """Shard-parallel twin of :func:`repro.sim.vectorized.linial_vectorized`.

    Same ``(coloring, metrics, palette)`` triple, same schedule, same
    smallest-evaluation-point tie-break, same synthesized global CONGEST
    accounting — bit-identical to the vectorized run for any ``shards``
    (the ``partitioned`` backend contract, enforced by the equivalence
    battery in ``tests/test_partition.py`` and the fuzz corpus replay).
    ``defect`` selects the [Kuh09] defective schedule exactly as in the
    single-CSR path (the defect changes the schedule, never the round
    kernel).  Recorder rows additionally carry the per-round ``exchange``
    column (:meth:`GraphPartition.exchange_row`); ``stats_out``, when a
    list, receives the run's :class:`PartitionRunStats`.
    """
    from ..algorithms.linial import defective_schedule, linial_schedule

    csr = CSRGraph.from_networkx(graph)
    n = csr.n
    delta = int(csr.degrees.max()) if n else 0
    if initial_colors is None:
        initial_colors = {v: i for i, v in enumerate(csr.nodes)}
    m0 = max(initial_colors.values()) + 1 if initial_colors else 1
    steps = (
        linial_schedule(m0, delta)
        if defect == 0
        else defective_schedule(m0, delta, defect)
    )
    palette = steps[-1].out_colors if steps else m0
    sched = [(step.q, step.deg) for step in steps]

    colors = csr.gather(initial_colors)
    out, stats, part = run_partitioned_dense(
        n,
        csr.indptr,
        csr.indices,
        colors,
        sched,
        shards=shards,
        strategy=strategy,
        seed=seed,
        mp_context=mp_context,
        barrier_timeout=barrier_timeout,
        _crash=_crash,
    )
    if stats_out is not None:
        stats_out.append(stats)

    metrics = synthesized_metrics(n)
    bits = int_bits(max(1, m0 - 1))
    exchange = part.exchange_row()
    for _ in sched:
        record_uniform_round(
            metrics,
            recorder,
            csr.num_directed_edges,
            bits,
            active=n,
            exchange=exchange,
        )
    result = ColoringResult(csr.scatter(out))
    if recorder is not None:
        recorder.finalize(
            metrics,
            n=n,
            m=csr.num_directed_edges // 2,
            palette=palette,
            algorithm=recorder.algorithm or "linial_partitioned",
        )
    return result, metrics, palette


__all__ = [
    "COLOR_BYTES",
    "COLOR_DTYPE",
    "DEFAULT_BARRIER_TIMEOUT",
    "GraphPartition",
    "PARTITION_STRATEGIES",
    "PartitionRunStats",
    "PartitionWorkerError",
    "ShardPlan",
    "ShardRunStats",
    "partition_arrays",
    "partition_graph",
    "run_partitioned_dense",
    "run_partitioned_linial",
]
