"""Batched multi-instance execution: k graphs, one block-diagonal CSR.

Every sweep cell, fuzz case, and benchmark row runs the vectorized CSR
engine on one graph at a time, so a grid of thousands of *small*
instances pays per-instance Python dispatch for every round.  The
schedule-driven kernels are embarrassingly parallel across instances —
no information ever crosses an instance boundary — so k instances can be
packed into a single block-diagonal :class:`BatchCSRGraph` and run
through the existing kernels as single NumPy operations spanning all
instances at once.

The packing is literal block-diagonal structure:

* member ``j``'s nodes occupy the contiguous dense range
  ``node_offsets[j]..node_offsets[j+1]`` and its directed edges the
  contiguous range ``edge_offsets[j]..edge_offsets[j+1]``;
* ``indptr``/``indices``/``src`` are the members' CSR arrays shifted by
  those offsets, so a :class:`BatchCSRGraph` duck-types as the adjacency
  argument of :func:`~repro.sim.engine.collision_counts` and
  :func:`~repro.sim.engine.equal_neighbor_counts` — the block-diagonal
  shape alone guarantees no cross-instance counting;
* ``instance_id`` maps every dense node back to its member.

**Equivalence contract** (the point of the whole module): each batched
kernel produces, per instance, the *identical* ``(output, RunMetrics,
palette)`` triple — and, with recorders attached, the identical obs
schema v2 :class:`~repro.obs.RunRecord` rows including per-round fault
columns — as its single-instance twin in :mod:`repro.sim.vectorized`.
Per-instance termination masks stop finished (or halted) instances from
contributing rounds, and the per-instance accounting is demultiplexed
through the same :func:`~repro.sim.engine.record_uniform_round`
primitive the single-instance paths charge through.  The battery in
``tests/test_batch.py`` replays the entire fuzz corpus through this
module at batch sizes 1/4/16 and asserts node-for-node equality.

Fault injection batches too: :func:`linial_vectorized_batch` accepts one
:class:`~repro.faults.FaultPlan` (or ``None``) per instance; plans are
pure functions of ``(seed, round, node labels)``, so each member of the
batch sees exactly the adversary its single-instance run would.  An
instance whose crash-stop plan exhausts its round budget raises the same
:class:`~repro.sim.node.HaltingError` (same rounds, same unfinished
list) — surfaced per instance via ``return_exceptions=True`` so sibling
instances in the batch still complete.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from ..core.coloring import ColoringResult
from .engine import (
    CSRGraph,
    collision_counts,
    equal_neighbor_counts,
    poly_digits,
    poly_eval_grid,
    ragged_lists,
    record_uniform_round,
    synthesized_metrics,
)
from .message import int_bits
from .metrics import RunMetrics, congest_bandwidth
from .node import HaltingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> sim)
    from ..obs import RunRecorder

#: Sentinel larger than any within-list position (greedy first-free scan).
_NO_PICK = np.int64(1) << np.int64(60)


# ----------------------------------------------------------------------
# the block-diagonal graph
# ----------------------------------------------------------------------
class BatchCSRGraph:
    """k independent :class:`~repro.sim.engine.CSRGraph`s as one CSR.

    Attributes
    ----------
    members:
        The per-instance CSR graphs, in batch order.
    k:
        Instance count.
    node_offsets / edge_offsets:
        ``len k+1`` prefix arrays: member ``j`` owns dense nodes
        ``node_offsets[j]:node_offsets[j+1]`` and directed edge slots
        ``edge_offsets[j]:edge_offsets[j+1]``.
    indptr / indices / src:
        The members' CSR arrays concatenated with ``indices``/``src``
        shifted into the global dense range — block-diagonal adjacency,
        so every neighbor of a member's node lies inside that member's
        own node range *by construction*.
    instance_id:
        Per dense node, the owning member's batch index.
    """

    __slots__ = (
        "members",
        "k",
        "node_offsets",
        "edge_offsets",
        "indptr",
        "indices",
        "src",
        "instance_id",
    )

    def __init__(self, members: Sequence[CSRGraph]) -> None:
        self.members = tuple(members)
        k = len(self.members)
        self.k = k
        node_counts = np.array([m.n for m in self.members], dtype=np.int64)
        edge_counts = np.array(
            [m.num_directed_edges for m in self.members], dtype=np.int64
        )
        self.node_offsets = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(node_counts, out=self.node_offsets[1:])
        self.edge_offsets = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(edge_counts, out=self.edge_offsets[1:])
        n_total = int(self.node_offsets[-1])
        self.indptr = np.zeros(n_total + 1, dtype=np.int64)
        self.indices = np.empty(int(self.edge_offsets[-1]), dtype=np.int64)
        self.src = np.empty(int(self.edge_offsets[-1]), dtype=np.int64)
        for j, member in enumerate(self.members):
            ns = slice(int(self.node_offsets[j]), int(self.node_offsets[j + 1]))
            es = slice(int(self.edge_offsets[j]), int(self.edge_offsets[j + 1]))
            self.indptr[ns.start + 1 : ns.stop + 1] = (
                member.indptr[1:] + self.edge_offsets[j]
            )
            self.indices[es] = member.indices + self.node_offsets[j]
            self.src[es] = member.src + self.node_offsets[j]
        self.instance_id = np.repeat(
            np.arange(k, dtype=np.int64), node_counts
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_graphs(cls, graphs: Sequence[Any]) -> "BatchCSRGraph":
        """Freeze k ``networkx`` graphs into one block-diagonal batch.

        One global ``fromiter`` / ``argsort`` / ``bincount`` over every
        member's edges replaces k per-graph freezes, so the fixed numpy
        dispatch cost of freezing amortizes across the whole batch — for
        many small instances this is where batching starts paying,
        before the first round kernel even runs.  The member
        :class:`~repro.sim.engine.CSRGraph`\\ s carved back out of the
        global arrays are value-identical to
        :meth:`CSRGraph.from_networkx` on each graph (same stable-sort
        edge order), so per-instance fallbacks and sub-batches see
        exactly what a per-graph freeze would have produced.
        """
        gs = list(graphs)
        for g in gs:
            if g.is_directed():
                raise ValueError(
                    "CSRGraph (and the vectorized fast paths) support "
                    "undirected graphs only; got a directed graph. Convert "
                    "explicitly with graph.to_undirected() if that is "
                    "intended."
                )
        k = len(gs)
        nodes_list = [tuple(sorted(g.nodes)) for g in gs]
        index_list = [{v: i for i, v in enumerate(nt)} for nt in nodes_list]
        node_counts = np.fromiter(
            (len(nt) for nt in nodes_list), dtype=np.int64, count=k
        )
        node_offsets = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(node_counts, out=node_offsets[1:])
        n_total = int(node_offsets[-1])
        m_total = sum(g.number_of_edges() for g in gs)

        def _endpoints():
            for g, idx, off in zip(gs, index_list, node_offsets.tolist()):
                for u, v in g.edges:
                    yield idx[u] + off
                    yield idx[v] + off

        flat = np.fromiter(_endpoints(), dtype=np.int64, count=2 * m_total)
        eu, ev = flat[0::2], flat[1::2]
        src_all = np.concatenate([eu, ev])
        dst_all = np.concatenate([ev, eu])
        # Stable sort by (global) source: member node ranges are disjoint
        # and increasing, so this both groups edges by member and — within
        # a member — reproduces from_networkx's [eu..., ev...] tie order.
        order = np.argsort(src_all, kind="stable")
        indices = dst_all[order]
        counts = (
            np.bincount(src_all, minlength=n_total)
            if m_total
            else np.zeros(n_total, dtype=np.int64)
        )
        indptr = np.zeros(n_total + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        edge_offsets = indptr[node_offsets]

        members = []
        for j in range(k):
            n0, n1 = int(node_offsets[j]), int(node_offsets[j + 1])
            e0, e1 = int(edge_offsets[j]), int(edge_offsets[j + 1])
            members.append(
                CSRGraph(
                    n1 - n0,
                    nodes_list[j],
                    index_list[j],
                    indptr[n0 : n1 + 1] - e0,
                    indices[e0:e1] - n0,
                )
            )

        batch = cls.__new__(cls)
        batch.members = tuple(members)
        batch.k = k
        batch.node_offsets = node_offsets
        batch.edge_offsets = edge_offsets
        batch.indptr = indptr
        batch.indices = indices
        batch.src = np.repeat(np.arange(n_total, dtype=np.int64), counts)
        batch.instance_id = np.repeat(
            np.arange(k, dtype=np.int64), node_counts
        )
        return batch

    @classmethod
    def from_csrs(cls, csrs: Sequence[CSRGraph]) -> "BatchCSRGraph":
        """Pack already-frozen member CSRs (cheap array concatenation)."""
        return cls(csrs)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total dense node count across all members (duck-types as
        ``CSRGraph.n`` for the shared engine kernels)."""
        return int(self.node_offsets[-1])

    @property
    def num_directed_edges(self) -> int:
        """Total directed edge slots across all members."""
        return int(self.edge_offsets[-1])

    @property
    def edge_instance_id(self) -> np.ndarray:
        """Per directed edge slot, the owning member's batch index."""
        return np.repeat(
            np.arange(self.k, dtype=np.int64), np.diff(self.edge_offsets)
        )

    def node_slice(self, j: int) -> slice:
        """Member ``j``'s contiguous dense node range."""
        return slice(int(self.node_offsets[j]), int(self.node_offsets[j + 1]))

    def edge_slice(self, j: int) -> slice:
        """Member ``j``'s contiguous directed edge range."""
        return slice(int(self.edge_offsets[j]), int(self.edge_offsets[j + 1]))

    # ------------------------------------------------------------------
    def gather(
        self, mappings: Sequence[Mapping[Any, int]], dtype: type = np.int64
    ) -> np.ndarray:
        """One dense array from k label-keyed mappings (member order)."""
        if len(mappings) != self.k:
            raise ValueError(
                f"gather expects {self.k} mappings, got {len(mappings)}"
            )
        if not self.k:
            return np.empty(0, dtype=dtype)
        return np.concatenate(
            [m.gather(mapping, dtype) for m, mapping in zip(self.members, mappings)]
        )

    def scatter(self, values: np.ndarray) -> list[dict[Any, int]]:
        """k label-keyed dicts from one dense per-node array."""
        return [
            member.scatter(values[self.node_slice(j)])
            for j, member in enumerate(self.members)
        ]

    def split(self, values: np.ndarray) -> list[np.ndarray]:
        """Per-member views of a dense per-node array (no copies)."""
        return [values[self.node_slice(j)] for j in range(self.k)]


# ----------------------------------------------------------------------
# small shared plumbing
# ----------------------------------------------------------------------
class _NullPhase:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


class _MultiPhase:
    """Enter the same profiler phase on every attached recorder at once."""

    def __init__(self, recorders: Sequence["RunRecorder | None"], name: str):
        self._cms = [
            r.profiler.phase(name) for r in recorders if r is not None
        ]

    def __enter__(self):
        for cm in self._cms:
            cm.__enter__()
        return None

    def __exit__(self, *exc):
        for cm in reversed(self._cms):
            cm.__exit__(*exc)
        return False


def _phase_all(recorders: Sequence["RunRecorder | None"], name: str):
    return _MultiPhase(recorders, name) if recorders else _NullPhase()


def _seq_arg(value, k: int, name: str) -> list:
    """Normalize an optional per-instance sequence argument."""
    if value is None:
        return [None] * k
    out = list(value)
    if len(out) != k:
        raise ValueError(f"{name} must have one entry per instance "
                         f"({k}), got {len(out)}")
    return out


def _int_list(value, k: int, name: str) -> list[int]:
    """Normalize an int-or-sequence argument (scalar broadcasts)."""
    if isinstance(value, (list, tuple)):
        if len(value) != k:
            raise ValueError(f"{name} must have one entry per instance "
                             f"({k}), got {len(value)}")
        return [int(v) for v in value]
    return [int(value)] * k


def _sub_batch(
    batch: BatchCSRGraph, js: list[int], colors: np.ndarray
) -> tuple[BatchCSRGraph, np.ndarray]:
    """The sub-batch over members ``js`` plus their color slices."""
    if len(js) == batch.k:
        return batch, colors.copy()
    sub = BatchCSRGraph.from_csrs([batch.members[j] for j in js])
    return sub, np.concatenate([colors[batch.node_slice(j)] for j in js])


def _write_back(
    batch: BatchCSRGraph, js: list[int], colors: np.ndarray, sub_colors: np.ndarray
) -> None:
    """Scatter a sub-batch's dense values back into the full batch array."""
    off = 0
    for j in js:
        sl = batch.node_slice(j)
        cnt = sl.stop - sl.start
        colors[sl] = sub_colors[off : off + cnt]
        off += cnt


def _raise_or_return(results: list, return_exceptions: bool) -> list:
    if not return_exceptions:
        for r in results:
            if isinstance(r, BaseException):
                raise r
    return results


# ----------------------------------------------------------------------
# batched Linial (fault-free round loop)
# ----------------------------------------------------------------------
#: Node-count cap per round-kernel tile.  One monolithic (q, n_total)
#: evaluation grid falls out of cache once n_total reaches the tens of
#: thousands and goes memory-bound — measurably *slower* than the
#: per-instance loop it replaces — while tiles of a few thousand nodes
#: keep the working set cache-resident and still amortize dispatch over
#: dozens of small instances.
_TILE_NODES = 2048


def _node_tiles(
    js: list[int], node_counts: list[int], cap: int = _TILE_NODES
) -> list[tuple[int, ...]]:
    """Partition member indices into contiguous tiles of <= ``cap`` total
    nodes (a member larger than ``cap`` gets a tile of its own)."""
    tiles: list[tuple[int, ...]] = []
    cur: list[int] = []
    cur_n = 0
    for j in js:
        if cur and cur_n + node_counts[j] > cap:
            tiles.append(tuple(cur))
            cur, cur_n = [], 0
        cur.append(j)
        cur_n += node_counts[j]
    if cur:
        tiles.append(tuple(cur))
    return tiles


def _linial_rounds_batch(
    batch: BatchCSRGraph, scheds: list, colors: np.ndarray
) -> np.ndarray:
    """Run every member's schedule, one global round at a time.

    Members whose current step shares ``(q, deg)`` are processed in
    cache-sized tiles (:data:`_TILE_NODES`), each tile one grid
    evaluation + collision count over the concatenated node/edge ranges;
    members whose schedule is exhausted simply drop out of the round's
    groups (per-instance termination masks).  Per member, the computed
    colors match :func:`~repro.sim.vectorized.linial_vectorized` value
    for value — same digits, same evaluations, same integer bincount
    collisions, same first-occurrence ``argmin`` tie-break.
    """
    if not batch.k:
        return colors
    max_len = max(len(s) for s in scheds)
    node_counts = [m.n for m in batch.members]
    sub_memo: dict[tuple[int, ...], BatchCSRGraph] = {}
    for r in range(max_len):
        groups: dict[tuple[int, int], list[int]] = {}
        for j, sched in enumerate(scheds):
            if r < len(sched):
                step = sched[r]
                groups.setdefault((step.q, step.deg), []).append(j)
        for (q, deg), js in sorted(groups.items()):
            for tile in _node_tiles(js, node_counts):
                if len(tile) == batch.k:
                    evals = poly_eval_grid(poly_digits(colors, q, deg), q)
                    hits = collision_counts(batch, evals)
                    best_x = np.argmin(hits, axis=0)
                    colors = best_x * q + evals[best_x, np.arange(batch.n)]
                    continue
                sub = sub_memo.get(tile)
                if sub is None:
                    sub = BatchCSRGraph.from_csrs(
                        [batch.members[j] for j in tile]
                    )
                    sub_memo[tile] = sub
                sub_colors = np.concatenate(
                    [colors[batch.node_slice(j)] for j in tile]
                )
                evals = poly_eval_grid(poly_digits(sub_colors, q, deg), q)
                hits = collision_counts(sub, evals)
                best_x = np.argmin(hits, axis=0)
                _write_back(
                    batch,
                    list(tile),
                    colors,
                    best_x * q + evals[best_x, np.arange(sub.n)],
                )
    return colors


# ----------------------------------------------------------------------
# batched Linial (faulty round loop)
# ----------------------------------------------------------------------
def _linial_faulty_rounds_batch(
    sub: BatchCSRGraph,
    scheds: list,
    colors: np.ndarray,
    bits_list: list[int],
    plans: list,
    metrics_list: list[RunMetrics],
    recorders: list,
) -> tuple[np.ndarray, list[BaseException | None]]:
    """Batched twin of :func:`repro.sim.vectorized._linial_faulty_rounds`.

    All instances share one global round clock (every single-instance run
    starts at round 0, so global round == per-instance round for as long
    as the instance is live).  Per round, fates/crashes/corruptions are
    drawn per instance from that instance's plan over its own label
    arrays — bit-identical to the single-instance queries — while the
    delivery buffer, step-skew grouping, and color update run over the
    whole batch at once.  An instance stops contributing rounds the
    moment all its nodes finish; an instance that exhausts its plan's
    round budget is halted with the identical
    :class:`~repro.sim.node.HaltingError` (returned per instance, not
    raised, so siblings keep running).
    """
    from ..faults.plan import (
        FATE_CORRUPT,
        FATE_DELAY,
        FATE_DELIVER,
        FATE_DROP,
        FATE_DUPLICATE,
        node_labels_u64,
    )

    k = sub.k
    n_tot = sub.n
    labels = np.concatenate([node_labels_u64(m.nodes) for m in sub.members])
    src_lab = labels[sub.src]
    dst_lab = labels[sub.indices]
    colors = colors.copy()
    steps = np.zeros(n_tot, dtype=np.int64)
    totals = np.concatenate(
        [
            np.full(m.n, len(s), dtype=np.int64)
            for m, s in zip(sub.members, scheds)
        ]
    )
    sched_q = [np.array([st.q for st in s], dtype=np.int64) for s in scheds]
    sched_deg = [np.array([st.deg for st in s], dtype=np.int64) for s in scheds]
    budgets = [plans[j].round_budget(len(scheds[j])) for j in range(k)]
    participating = np.ones(n_tot, dtype=bool)
    halted = [False] * k
    errors: list[BaseException | None] = [None] * k
    pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}

    rnd = 0
    while True:
        live = [
            j
            for j in range(k)
            if not halted[j]
            and bool((steps[sub.node_slice(j)] < totals[sub.node_slice(j)]).any())
        ]
        if not live:
            break
        for j in list(live):
            if rnd >= budgets[j]:
                sl = sub.node_slice(j)
                unfinished = [
                    sub.members[j].nodes[i]
                    for i in np.nonzero(steps[sl] < totals[sl])[0]
                ]
                errors[j] = HaltingError(rounds=rnd, unfinished=unfinished)
                halted[j] = True
                participating[sl] = False
                live.remove(j)
        if not live:
            break

        alive = np.ones(n_tot, dtype=bool)
        for j in live:
            sl = sub.node_slice(j)
            alive[sl] = ~plans[j].crashed_mask(rnd, labels[sl])
        active = (steps < totals) & participating
        transmit = (active & alive)[sub.src]

        delivered = np.full(sub.num_directed_edges, -1, dtype=np.int64)
        for edge_idx, values in pending.pop(rnd, ()):
            delivered[edge_idx] = values
        per_counts: dict[int, dict[str, int]] = {}
        for j in live:
            sl = sub.node_slice(j)
            esl = sub.edge_slice(j)
            counts = dict.fromkeys(
                ("dropped", "corrupted", "delayed", "duplicated"), 0
            )
            counts["crashed"] = int(sub.members[j].n - alive[sl].sum())
            tr = transmit[esl]
            if tr.any():
                codes, delays = plans[j].edge_fates(
                    rnd, src_lab[esl], dst_lab[esl]
                )
                codes = np.where(tr, codes, -1)
                payload = colors[sub.src[esl]]
                counts["dropped"] = int((codes == FATE_DROP).sum())
                counts["corrupted"] = int((codes == FATE_CORRUPT).sum())
                counts["delayed"] = int((codes == FATE_DELAY).sum())
                counts["duplicated"] = int((codes == FATE_DUPLICATE).sum())
                for code in (FATE_DELAY, FATE_DUPLICATE):
                    idx = np.nonzero(codes == code)[0]
                    for d in np.unique(delays[idx]):
                        sel = idx[delays[idx] == d]
                        pending.setdefault(rnd + int(d), []).append(
                            (sel + sub.edge_offsets[j], payload[sel].copy())
                        )
                dlv = delivered[esl]  # slice view: writes land in `delivered`
                now = (codes == FATE_DELIVER) | (codes == FATE_DUPLICATE)
                dlv[now] = payload[now]
                corrupt = codes == FATE_CORRUPT
                if corrupt.any():
                    dlv[corrupt] = plans[j].corrupt_values(
                        rnd,
                        src_lab[esl][corrupt],
                        dst_lab[esl][corrupt],
                        payload[corrupt],
                    )
            per_counts[j] = counts
        delivered[~alive[sub.indices]] = -1

        receiving = active & alive
        q_arr = np.zeros(n_tot, dtype=np.int64)
        deg_arr = np.zeros(n_tot, dtype=np.int64)
        for j in live:
            sl = sub.node_slice(j)
            ids = np.nonzero(receiving[sl])[0]
            if ids.size:
                gids = ids + sl.start
                st = steps[gids]
                q_arr[gids] = sched_q[j][st]
                deg_arr[gids] = sched_deg[j][st]
        new_colors = colors.copy()
        recv_idx = np.nonzero(receiving)[0]
        if recv_idx.size:
            step_pairs = sorted(
                set(zip(q_arr[recv_idx].tolist(), deg_arr[recv_idx].tolist()))
            )
            for q, deg in step_pairs:
                group = receiving & (q_arr == q) & (deg_arr == deg)
                members_idx = np.nonzero(group)[0]
                g = members_idx.size
                domain = q ** (deg + 1)
                local = np.full(n_tot, -1, dtype=np.int64)
                local[members_idx] = np.arange(g, dtype=np.int64)
                own_evals = poly_eval_grid(
                    poly_digits(colors[members_idx], q, deg), q
                )  # (q, g)
                edge_ok = (
                    group[sub.indices] & (delivered >= 0) & (delivered < domain)
                )
                hits = np.zeros((q, g), dtype=np.int64)
                if edge_ok.any():
                    dst_l = local[sub.indices[edge_ok]]
                    edge_evals = poly_eval_grid(
                        poly_digits(delivered[edge_ok], q, deg), q
                    )
                    match = edge_evals == own_evals[:, dst_l]
                    for x in range(q):
                        hits[x] = np.bincount(dst_l[match[x]], minlength=g)
                best_x = np.argmin(hits, axis=0)  # first occurrence
                new_colors[members_idx] = (
                    best_x * q + own_evals[best_x, np.arange(g)]
                )
        colors = new_colors
        steps[receiving] += 1

        for j in live:
            sl = sub.node_slice(j)
            esl = sub.edge_slice(j)
            record_uniform_round(
                metrics_list[j],
                recorders[j],
                int(transmit[esl].sum()),
                bits_list[j],
                active=int(active[sl].sum()),
                faults=per_counts[j],
            )
        rnd += 1
    return colors, errors


# ----------------------------------------------------------------------
# public batched kernels
# ----------------------------------------------------------------------
def linial_vectorized_batch(
    graphs: Sequence[Any],
    initial_colors: Sequence[dict[int, int] | None] | None = None,
    defect: int | Sequence[int] = 0,
    recorders: Sequence["RunRecorder | None"] | None = None,
    faults: Sequence[Any] | None = None,
    return_exceptions: bool = False,
    _batch: BatchCSRGraph | None = None,
    _finalize_recorders: bool = True,
    _rounds=None,
) -> list:
    """Batched twin of :func:`repro.sim.vectorized.linial_vectorized`.

    Returns one ``(ColoringResult, RunMetrics, palette)`` triple per
    instance, identical to k independent single-instance runs (outputs,
    palettes, metrics, and — with ``recorders`` — obs rows including
    fault columns).  ``initial_colors``/``recorders``/``faults`` are
    per-instance sequences (``None`` entries use the single-instance
    defaults); ``defect`` broadcasts a scalar or takes one value per
    instance.  With ``return_exceptions=True`` an instance that raises
    (a crash-stop :class:`~repro.sim.node.HaltingError`) yields the
    exception object in its slot instead of aborting the batch;
    otherwise the first error is raised after all instances finish.
    Identical ``(m0, delta, defect)`` parameters share one schedule
    computation — a real batching win on homogeneous grids.
    ``_rounds`` (internal) substitutes the fault-free round loop —
    :func:`repro.sim.compiled.linial_compiled_batch` passes its compiled
    rounds hook here so packing, termination masks, accounting, and
    quarantine stay this function's single implementation.
    """
    from ..algorithms.linial import defective_schedule, linial_schedule

    k = _batch.k if _batch is not None else len(graphs)
    recs = _seq_arg(recorders, k, "recorders")
    plans = _seq_arg(faults, k, "faults")
    inits = _seq_arg(initial_colors, k, "initial_colors")
    defects = _int_list(defect, k, "defect")

    with _phase_all(recs, "csr_build"):
        batch = _batch if _batch is not None else BatchCSRGraph.from_graphs(graphs)

    sched_memo: dict[tuple[int, int, int], Any] = {}
    scheds: list = []
    palettes: list[int] = []
    bits_list: list[int] = []
    colors_parts: list[np.ndarray] = []
    with _phase_all(recs, "schedule"):
        for j in range(k):
            member = batch.members[j]
            delta_j = int(member.degrees.max()) if member.n else 0
            init = inits[j]
            if init is None:
                # Identity init: gather({v: i}) is arange by construction,
                # so skip the dict build on the hot default path.
                m0 = member.n if member.n else 1
                colors_parts.append(np.arange(member.n, dtype=np.int64))
            else:
                m0 = max(init.values()) + 1 if init else 1
                colors_parts.append(member.gather(init))
            key = (m0, delta_j, defects[j])
            sched = sched_memo.get(key)
            if sched is None:
                sched = (
                    linial_schedule(m0, delta_j)
                    if defects[j] == 0
                    else defective_schedule(m0, delta_j, defects[j])
                )
                sched_memo[key] = sched
            scheds.append(sched)
            palettes.append(sched[-1].out_colors if sched else m0)
            bits_list.append(int_bits(max(1, m0 - 1)))
    colors = (
        np.concatenate(colors_parts) if colors_parts else np.empty(0, np.int64)
    )

    metrics_list = [synthesized_metrics(batch.members[j].n) for j in range(k)]
    errors: list[BaseException | None] = [None] * k

    plain = [j for j in range(k) if plans[j] is None]
    faulty = [j for j in range(k) if plans[j] is not None]

    if plain:
        rounds_fn = _rounds if _rounds is not None else _linial_rounds_batch
        with _phase_all([recs[j] for j in plain], "rounds"):
            sub, sub_colors = _sub_batch(batch, plain, colors)
            sub_colors = rounds_fn(
                sub, [scheds[j] for j in plain], sub_colors
            )
            _write_back(batch, plain, colors, sub_colors)
            for j in plain:
                member = batch.members[j]
                msgs = member.num_directed_edges
                for _ in range(len(scheds[j])):
                    record_uniform_round(
                        metrics_list[j], recs[j], msgs, bits_list[j],
                        active=member.n,
                    )
    if faulty:
        with _phase_all([recs[j] for j in faulty], "rounds"):
            sub, sub_colors = _sub_batch(batch, faulty, colors)
            sub_colors, sub_errors = _linial_faulty_rounds_batch(
                sub,
                [scheds[j] for j in faulty],
                sub_colors,
                [bits_list[j] for j in faulty],
                [plans[j] for j in faulty],
                [metrics_list[j] for j in faulty],
                [recs[j] for j in faulty],
            )
            _write_back(batch, faulty, colors, sub_colors)
        for pos, j in enumerate(faulty):
            errors[j] = sub_errors[pos]

    results: list = [None] * k
    for j in range(k):
        member = batch.members[j]
        if errors[j] is not None:
            # flush the partial per-round record before surfacing the
            # halt — the single-instance path's post-mortem contract
            if recs[j] is not None:
                recs[j].finalize(
                    metrics_list[j],
                    n=member.n,
                    m=member.num_directed_edges // 2,
                    palette=palettes[j],
                    algorithm=recs[j].algorithm or "linial_vectorized",
                )
            results[j] = errors[j]
            continue
        res = ColoringResult(member.scatter(colors[batch.node_slice(j)]))
        if recs[j] is not None and _finalize_recorders:
            recs[j].finalize(
                metrics_list[j],
                n=member.n,
                m=member.num_directed_edges // 2,
                palette=palettes[j],
                algorithm=recs[j].algorithm or "linial_vectorized",
            )
        results[j] = (res, metrics_list[j], palettes[j])
    return _raise_or_return(results, return_exceptions)


def _segments(
    starts: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten ragged per-segment ranges: (flat indices, segment id,
    within-segment position)."""
    total = int(counts.sum())
    if not total:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    seg = np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts)
    offs = np.zeros(counts.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=offs[1:])
    within = np.arange(total, dtype=np.int64) - offs[seg]
    return np.repeat(starts, counts) + within, seg, within


# ----------------------------------------------------------------------
# batched FK24 simple iterative list-defective coloring
# ----------------------------------------------------------------------
def _fk24_rounds_batch(
    sub: BatchCSRGraph,
    list_indptr: np.ndarray,
    list_values: np.ndarray,
    space_arr: np.ndarray,
    defect_arr: np.ndarray,
    budgets: list[int],
    bits_list: list[int],
    metrics_list: list[RunMetrics],
    recorders: list,
) -> tuple[np.ndarray, np.ndarray, list[BaseException | None]]:
    """Batched twin of :func:`repro.sim.vectorized._fk24_rounds`.

    All instances share one global round clock (every single-instance
    run starts at round 0), and the block-diagonal adjacency keeps the
    try/took exchanges instance-local by construction.  FK24's per-round
    message and active counts *vary* as nodes adopt and halt, so — unlike
    the schedule-driven Linial batch — accounting is demultiplexed per
    live instance inside the loop, not replayed afterwards.  An instance
    whose (invalid) instance idles past its round budget is halted with
    the identical :class:`~repro.sim.node.HaltingError`, returned per
    instance so siblings keep running.
    """
    from .vectorized import _fk24_candidates

    k = sub.k
    n_tot = sub.n
    degrees = np.diff(sub.indptr)
    status = np.zeros(n_tot, dtype=np.int64)
    colors = np.full(n_tot, -1, dtype=np.int64)
    adopted = np.full(n_tot, -1, dtype=np.int64)
    counts = np.zeros(
        (n_tot, max(1, int(space_arr.max()) if n_tot else 1)), dtype=np.int64
    )
    owner = np.repeat(np.arange(n_tot, dtype=np.int64), np.diff(list_indptr))
    idx = np.arange(n_tot, dtype=np.int64)
    participating = np.ones(n_tot, dtype=bool)
    halted = [False] * k
    errors: list[BaseException | None] = [None] * k

    rnd = 0
    while True:
        live = [
            j
            for j in range(k)
            if not halted[j] and bool((status[sub.node_slice(j)] < 2).any())
        ]
        if not live:
            break
        for j in list(live):
            if rnd >= budgets[j]:
                sl = sub.node_slice(j)
                unfinished = [
                    sub.members[j].nodes[i]
                    for i in np.nonzero(status[sl] < 2)[0]
                ]
                errors[j] = HaltingError(rounds=rnd, unfinished=unfinished)
                halted[j] = True
                participating[sl] = False
                live.remove(j)
        if not live:
            break
        trying = (status == 0) & participating
        announcing = (status == 1) & participating
        active = (status < 2) & participating
        has_cand, cand_color = _fk24_candidates(
            counts, owner, list_indptr, list_values, defect_arr, trying
        )
        sending = has_cand | announcing
        took_edge = announcing[sub.src]
        if took_edge.any():
            np.add.at(
                counts,
                (sub.indices[took_edge], colors[sub.src[took_edge]]),
                1,
            )
        taken = np.zeros(n_tot, dtype=np.int64)
        taken[has_cand] = counts[idx[has_cand], cand_color[has_cand]]
        conflict = (
            has_cand[sub.src]
            & has_cand[sub.indices]
            & (sub.src < sub.indices)
            & (cand_color[sub.src] == cand_color[sub.indices])
        )
        stronger = np.bincount(sub.indices[conflict], minlength=n_tot)
        adopt = has_cand & (taken + stronger <= defect_arr)
        status[announcing] = 2
        status[adopt] = 1
        colors[adopt] = cand_color[adopt]
        adopted[adopt] = rnd
        for j in live:
            sl = sub.node_slice(j)
            record_uniform_round(
                metrics_list[j],
                recorders[j],
                int(degrees[sl][sending[sl]].sum()),
                bits_list[j],
                active=int(active[sl].sum()),
            )
        rnd += 1
    return colors, adopted, errors


def _fk24_faulty_rounds_batch(
    sub: BatchCSRGraph,
    list_indptr: np.ndarray,
    list_values: np.ndarray,
    space_arr: np.ndarray,
    defect_arr: np.ndarray,
    budgets: list[int],
    bits_list: list[int],
    plans: list,
    metrics_list: list[RunMetrics],
    recorders: list,
) -> tuple[np.ndarray, np.ndarray, list[BaseException | None]]:
    """Batched twin of :func:`repro.sim.vectorized._fk24_faulty_rounds`.

    Per round, fates/crashes/corruptions are drawn per instance from
    that instance's plan over its own label and edge slices —
    bit-identical to the single-instance queries — while candidate
    selection, delivery decoding, and the adoption rule run over the
    whole batch at once.  ``space`` varies per instance, so payload
    encoding and the ``[0, 2 * space)`` decode window use per-node /
    per-edge space arrays.
    """
    from ..faults.plan import (
        FATE_CORRUPT,
        FATE_DELAY,
        FATE_DELIVER,
        FATE_DROP,
        FATE_DUPLICATE,
        node_labels_u64,
    )
    from .vectorized import _fk24_candidates

    k = sub.k
    n_tot = sub.n
    num_edges = sub.num_directed_edges
    labels = np.concatenate(
        [node_labels_u64(m.nodes) for m in sub.members]
    ) if k else np.empty(0, dtype=np.uint64)
    src_lab = labels[sub.src]
    dst_lab = labels[sub.indices]
    space_dst = space_arr[sub.indices]
    degrees = np.diff(sub.indptr)
    status = np.zeros(n_tot, dtype=np.int64)
    colors = np.full(n_tot, -1, dtype=np.int64)
    adopted = np.full(n_tot, -1, dtype=np.int64)
    counts2d = np.zeros(
        (n_tot, max(1, int(space_arr.max()) if n_tot else 1)), dtype=np.int64
    )
    know = np.full(num_edges, -1, dtype=np.int64)
    owner = np.repeat(np.arange(n_tot, dtype=np.int64), np.diff(list_indptr))
    idx = np.arange(n_tot, dtype=np.int64)
    participating = np.ones(n_tot, dtype=bool)
    halted = [False] * k
    errors: list[BaseException | None] = [None] * k
    pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}

    rnd = 0
    while True:
        live = [
            j
            for j in range(k)
            if not halted[j] and bool((status[sub.node_slice(j)] < 2).any())
        ]
        if not live:
            break
        for j in list(live):
            if rnd >= budgets[j]:
                sl = sub.node_slice(j)
                unfinished = [
                    sub.members[j].nodes[i]
                    for i in np.nonzero(status[sl] < 2)[0]
                ]
                errors[j] = HaltingError(rounds=rnd, unfinished=unfinished)
                halted[j] = True
                participating[sl] = False
                live.remove(j)
        if not live:
            break

        alive = np.ones(n_tot, dtype=bool)
        for j in live:
            sl = sub.node_slice(j)
            alive[sl] = ~plans[j].crashed_mask(rnd, labels[sl])
        trying = (status == 0) & participating
        announcing = (status == 1) & participating
        active = (status < 2) & participating
        has_cand, cand_color = _fk24_candidates(
            counts2d, owner, list_indptr, list_values, defect_arr, trying
        )
        sending = (has_cand | announcing) & alive
        transmit = sending[sub.src]

        delivered = np.full(num_edges, -1, dtype=np.int64)
        for edge_idx, values in pending.pop(rnd, ()):
            delivered[edge_idx] = values
        per_counts: dict[int, dict[str, int]] = {}
        for j in live:
            sl = sub.node_slice(j)
            esl = sub.edge_slice(j)
            fcounts = dict.fromkeys(
                ("dropped", "corrupted", "delayed", "duplicated"), 0
            )
            fcounts["crashed"] = int(sub.members[j].n - alive[sl].sum())
            tr = transmit[esl]
            if tr.any():
                codes, delays = plans[j].edge_fates(
                    rnd, src_lab[esl], dst_lab[esl]
                )
                codes = np.where(tr, codes, -1)
                payload = np.where(
                    announcing[sub.src[esl]],
                    space_arr[sub.src[esl]] + colors[sub.src[esl]],
                    cand_color[sub.src[esl]],
                )
                fcounts["dropped"] = int((codes == FATE_DROP).sum())
                fcounts["corrupted"] = int((codes == FATE_CORRUPT).sum())
                fcounts["delayed"] = int((codes == FATE_DELAY).sum())
                fcounts["duplicated"] = int((codes == FATE_DUPLICATE).sum())
                for code in (FATE_DELAY, FATE_DUPLICATE):
                    eidx = np.nonzero(codes == code)[0]
                    for d in np.unique(delays[eidx]):
                        sel = eidx[delays[eidx] == d]
                        pending.setdefault(rnd + int(d), []).append(
                            (sel + sub.edge_offsets[j], payload[sel].copy())
                        )
                dlv = delivered[esl]  # slice view: writes land in `delivered`
                now = (codes == FATE_DELIVER) | (codes == FATE_DUPLICATE)
                dlv[now] = payload[now]
                corrupt = codes == FATE_CORRUPT
                if corrupt.any():
                    dlv[corrupt] = plans[j].corrupt_values(
                        rnd,
                        src_lab[esl][corrupt],
                        dst_lab[esl][corrupt],
                        payload[corrupt],
                    )
            per_counts[j] = fcounts
        delivered[~alive[sub.indices]] = -1

        took = (delivered >= space_dst) & (delivered < 2 * space_dst)
        tk = np.nonzero(took)[0]
        if tk.size:
            newv = delivered[tk] - space_dst[tk]
            oldv = know[tk]
            chg = oldv != newv
            tk, newv, oldv = tk[chg], newv[chg], oldv[chg]
            dec = oldv >= 0
            if dec.any():
                np.add.at(counts2d, (sub.indices[tk[dec]], oldv[dec]), -1)
            if tk.size:
                np.add.at(counts2d, (sub.indices[tk], newv), 1)
                know[tk] = newv
        is_try = (delivered >= 0) & (delivered < space_dst)
        taken = np.zeros(n_tot, dtype=np.int64)
        receiver_cand = has_cand & alive
        taken[receiver_cand] = counts2d[
            idx[receiver_cand], cand_color[receiver_cand]
        ]
        conflict = (
            is_try
            & receiver_cand[sub.indices]
            & (sub.src < sub.indices)
            & (delivered == cand_color[sub.indices])
        )
        stronger = np.bincount(sub.indices[conflict], minlength=n_tot)
        adopt = receiver_cand & (taken + stronger <= defect_arr)
        status[announcing & alive] = 2
        status[adopt] = 1
        colors[adopt] = cand_color[adopt]
        adopted[adopt] = rnd
        for j in live:
            sl = sub.node_slice(j)
            esl = sub.edge_slice(j)
            record_uniform_round(
                metrics_list[j],
                recorders[j],
                int(transmit[esl].sum()),
                bits_list[j],
                active=int(active[sl].sum()),
                faults=per_counts[j],
            )
        rnd += 1
    return colors, adopted, errors


def fk24_vectorized_batch(
    graphs: Sequence[Any],
    lists: Sequence[Mapping[Any, Any] | None] | None = None,
    space_size: int | Sequence[int | None] | None = None,
    defect: int | Sequence[int] = 1,
    recorders: Sequence["RunRecorder | None"] | None = None,
    faults: Sequence[Any] | None = None,
    return_exceptions: bool = False,
    _finalize_recorders: bool = True,
    adoption_outs: Sequence[dict | None] | None = None,
) -> list:
    """Batched twin of :func:`repro.sim.vectorized.fk24_vectorized`.

    Returns one ``(ColoringResult, RunMetrics, palette)`` triple per
    instance — including the later-to-earlier adoption orientation on
    each result — identical to k independent single-instance runs
    (outputs, palettes, metrics, obs rows incl. fault columns).
    ``lists``/``recorders``/``faults``/``adoption_outs`` are per-instance
    sequences (``None`` entries use single-instance defaults);
    ``space_size``/``defect`` broadcast scalars or take one value per
    instance.  With ``return_exceptions=True`` an instance that halts
    (round-budget exhaustion under an adversarial plan) yields its
    :class:`~repro.sim.node.HaltingError` in place, siblings unaffected.
    """
    from ..algorithms.fk24 import fk24_lists, fk24_round_budget
    from ..core.coloring import orientation_from_priority

    gs = list(graphs)
    k = len(gs)
    recs = _seq_arg(recorders, k, "recorders")
    plans = _seq_arg(faults, k, "faults")
    lists_seq = _seq_arg(lists, k, "lists")
    outs_seq = _seq_arg(adoption_outs, k, "adoption_outs")
    defects = _int_list(defect, k, "defect")
    if isinstance(space_size, (list, tuple)):
        if len(space_size) != k:
            raise ValueError(
                f"space_size must have one entry per instance ({k}), "
                f"got {len(space_size)}"
            )
        spaces: list[int | None] = [
            None if s is None else int(s) for s in space_size
        ]
    else:
        spaces = [None if space_size is None else int(space_size)] * k

    with _phase_all(recs, "csr_build"):
        batch = BatchCSRGraph.from_graphs(gs)

    ragged: list[tuple[np.ndarray, np.ndarray]] = []
    budgets: list[int] = []
    bits_list: list[int] = []
    with _phase_all(recs, "schedule"):
        for j in range(k):
            member = batch.members[j]
            lst = lists_seq[j]
            if lst is None:
                lst, built_space = fk24_lists(gs[j], defects[j])
                if spaces[j] is None:
                    spaces[j] = built_space
            lst = {v: tuple(lst[v]) for v in member.nodes}
            if spaces[j] is None:
                spaces[j] = (
                    max((max(t) for t in lst.values() if t), default=0) + 1
                )
            ragged.append(ragged_lists(member, lst))
            base = fk24_round_budget(lst.values(), member.n)
            budgets.append(
                base if plans[j] is None else plans[j].round_budget(base)
            )
            bits_list.append(int_bits(max(1, 2 * spaces[j] - 1)))

    def _assemble(js: list[int]) -> tuple[
        BatchCSRGraph, np.ndarray, np.ndarray, np.ndarray, np.ndarray
    ]:
        """Sub-batch over members ``js`` plus its ragged/space/defect
        arrays (concatenated in ``js`` order, matching the sub CSR)."""
        if len(js) == k:
            sub = batch
        else:
            sub = BatchCSRGraph.from_csrs([batch.members[j] for j in js])
        indptr_parts = [np.zeros(1, dtype=np.int64)]
        value_parts: list[np.ndarray] = []
        off = 0
        for j in js:
            ip, vals = ragged[j]
            indptr_parts.append(ip[1:] + off)
            value_parts.append(vals)
            off += int(vals.shape[0])
        list_indptr = np.concatenate(indptr_parts)
        list_values = (
            np.concatenate(value_parts)
            if value_parts
            else np.empty(0, dtype=np.int64)
        )
        space_arr = np.concatenate(
            [np.full(batch.members[j].n, spaces[j], dtype=np.int64) for j in js]
        ) if js else np.empty(0, dtype=np.int64)
        defect_arr = np.concatenate(
            [np.full(batch.members[j].n, defects[j], dtype=np.int64) for j in js]
        ) if js else np.empty(0, dtype=np.int64)
        return sub, list_indptr, list_values, space_arr, defect_arr

    metrics_list = [synthesized_metrics(batch.members[j].n) for j in range(k)]
    colors = np.full(batch.n, -1, dtype=np.int64)
    adopted = np.full(batch.n, -1, dtype=np.int64)
    errors: list[BaseException | None] = [None] * k

    plain = [j for j in range(k) if plans[j] is None]
    faulty = [j for j in range(k) if plans[j] is not None]

    if plain:
        with _phase_all([recs[j] for j in plain], "rounds"):
            sub, li, lv, sa, da = _assemble(plain)
            sub_colors, sub_adopted, sub_errors = _fk24_rounds_batch(
                sub, li, lv, sa, da,
                [budgets[j] for j in plain],
                [bits_list[j] for j in plain],
                [metrics_list[j] for j in plain],
                [recs[j] for j in plain],
            )
            _write_back(batch, plain, colors, sub_colors)
            _write_back(batch, plain, adopted, sub_adopted)
        for pos, j in enumerate(plain):
            errors[j] = sub_errors[pos]
    if faulty:
        with _phase_all([recs[j] for j in faulty], "rounds"):
            sub, li, lv, sa, da = _assemble(faulty)
            sub_colors, sub_adopted, sub_errors = _fk24_faulty_rounds_batch(
                sub, li, lv, sa, da,
                [budgets[j] for j in faulty],
                [bits_list[j] for j in faulty],
                [plans[j] for j in faulty],
                [metrics_list[j] for j in faulty],
                [recs[j] for j in faulty],
            )
            _write_back(batch, faulty, colors, sub_colors)
            _write_back(batch, faulty, adopted, sub_adopted)
        for pos, j in enumerate(faulty):
            errors[j] = sub_errors[pos]

    results: list = [None] * k
    for j in range(k):
        member = batch.members[j]
        if errors[j] is not None:
            # flush the partial per-round record before surfacing the
            # halt — the single-instance path's post-mortem contract
            if recs[j] is not None:
                recs[j].finalize(
                    metrics_list[j],
                    n=member.n,
                    m=member.num_directed_edges // 2,
                    palette=spaces[j],
                    algorithm=recs[j].algorithm or "fk24_vectorized",
                )
            results[j] = errors[j]
            continue
        sl = batch.node_slice(j)
        adoption = member.scatter(adopted[sl])
        if outs_seq[j] is not None:
            outs_seq[j].update(adoption)
        res = ColoringResult(
            member.scatter(colors[sl]),
            orientation_from_priority(gs[j], adoption),
        )
        if recs[j] is not None and _finalize_recorders:
            recs[j].finalize(
                metrics_list[j],
                n=member.n,
                m=member.num_directed_edges // 2,
                palette=spaces[j],
                algorithm=recs[j].algorithm or "fk24_vectorized",
            )
        results[j] = (res, metrics_list[j], spaces[j])
    return _raise_or_return(results, return_exceptions)


def greedy_list_vectorized_batch(
    instances: Sequence[Any],
    return_exceptions: bool = False,
) -> list:
    """Batched twin of :func:`repro.sim.vectorized.greedy_list_vectorized`
    (zero-defect list instances, default sorted-label order).

    The sequential greedy is order-dependent *within* an instance but
    independent *across* instances, so the batch runs in waves: wave
    ``t`` colors the ``t``-th node (in sorted label order — dense index
    ``t``, since CSR node labels are sorted) of every still-running
    instance in one vectorized first-free-color scan.  Within an
    instance the waves replay the exact sequential order, so outputs
    match the single-instance path node for node.  A stuck instance
    fails with the identical ``ValueError`` and stops; siblings keep
    coloring.  Returns one :class:`~repro.core.coloring.ColoringResult`
    per instance (or the exception, with ``return_exceptions=True``).
    """
    k = len(instances)
    errors: list[BaseException | None] = [None] * k
    for j, inst in enumerate(instances):
        if inst.directed:
            errors[j] = ValueError(
                "greedy_list_vectorized expects an undirected instance"
            )
        elif any(d for dv in inst.defects.values() for d in dv.values()):
            errors[j] = ValueError(
                "greedy_list_vectorized handles zero-defect instances only; "
                "use repro.algorithms.greedy.greedy_list_coloring for defects"
            )
    valid = [j for j in range(k) if errors[j] is None]
    results: list = [None] * k

    if valid:
        batch = BatchCSRGraph.from_graphs([instances[j].graph for j in valid])
        list_indptr = np.zeros(batch.n + 1, dtype=np.int64)
        value_parts: list[np.ndarray] = []
        offset = 0
        for pos, j in enumerate(valid):
            lp, lv = ragged_lists(batch.members[pos], instances[j].lists)
            sl = batch.node_slice(pos)
            list_indptr[sl.start + 1 : sl.stop + 1] = lp[1:] + offset
            offset += int(lv.shape[0])
            value_parts.append(lv)
        list_values = (
            np.concatenate(value_parts) if value_parts else np.empty(0, np.int64)
        )
        space = int(list_values.max()) + 1 if list_values.size else 1
        final = np.full(batch.n, -1, dtype=np.int64)
        failed = np.zeros(len(valid), dtype=bool)
        max_n = max(m.n for m in batch.members) if batch.k else 0

        for t in range(max_n):
            wave = [
                p
                for p in range(len(valid))
                if not failed[p] and t < batch.members[p].n
            ]
            if not wave:
                continue
            wave_nodes = np.array(
                [batch.node_offsets[p] + t for p in wave], dtype=np.int64
            )
            nstarts = batch.indptr[wave_nodes]
            ncounts = batch.indptr[wave_nodes + 1] - nstarts
            npos, nseg, _ = _segments(nstarts, ncounts)
            ncol = final[batch.indices[npos]]
            seen = ncol >= 0
            taken_keys = nseg[seen] * space + ncol[seen]

            lstarts = list_indptr[wave_nodes]
            lcounts = list_indptr[wave_nodes + 1] - lstarts
            lpos, lseg, lwithin = _segments(lstarts, lcounts)
            cand = list_values[lpos]
            free = ~np.isin(lseg * space + cand, taken_keys)
            pos_masked = np.where(free, lwithin, _NO_PICK)
            loffs = np.zeros(len(wave), dtype=np.int64)
            np.cumsum(lcounts[:-1], out=loffs[1:])
            firsts = np.full(len(wave), _NO_PICK, dtype=np.int64)
            nonempty = lcounts > 0
            if pos_masked.size:
                firsts[nonempty] = np.minimum.reduceat(
                    pos_masked, loffs[nonempty]
                )
            good = firsts < _NO_PICK
            if good.any():
                gsel = np.nonzero(good)[0]
                final[wave_nodes[gsel]] = list_values[
                    lstarts[gsel] + firsts[gsel]
                ]
            for p_idx in np.nonzero(~good)[0]:
                p = wave[p_idx]
                errors[valid[p]] = ValueError(
                    f"greedy stuck at node {batch.members[p].nodes[t]}"
                )
                failed[p] = True

        for pos, j in enumerate(valid):
            if errors[j] is None:
                results[j] = ColoringResult(
                    batch.members[pos].scatter(final[batch.node_slice(pos)])
                )

    for j in range(k):
        if errors[j] is not None:
            results[j] = errors[j]
    return _raise_or_return(results, return_exceptions)


def defective_split_vectorized_batch(
    graphs: Sequence[Any],
    defect: int | Sequence[int] = 1,
    validate: bool = True,
    recorders: Sequence["RunRecorder | None"] | None = None,
    return_exceptions: bool = False,
) -> list:
    """Batched twin of :func:`repro.sim.vectorized.defective_split_vectorized`.

    One block-diagonal Linial run followed by one batch-wide defect
    validation (a single integer bincount across all instances, judged
    per instance against that instance's budget).  Returns one
    ``(classes, metrics, palette)`` triple per instance, identical to
    the single-instance path; a member failing validation yields the
    identical ``ValueError``.
    """
    k = len(graphs)
    recs = _seq_arg(recorders, k, "recorders")
    defects = _int_list(defect, k, "defect")
    errors: list[BaseException | None] = [None] * k
    for j, d in enumerate(defects):
        if d < 0:
            errors[j] = ValueError(f"defect must be >= 0, got {d}")
    valid = [j for j in range(k) if errors[j] is None]
    results: list = [None] * k

    if valid:
        valid_recs = [recs[j] for j in valid]
        with _phase_all(valid_recs, "csr_build"):
            batch = BatchCSRGraph.from_graphs([graphs[j] for j in valid])
        inner = linial_vectorized_batch(
            [graphs[j] for j in valid],
            defect=[defects[j] for j in valid],
            recorders=valid_recs,
            return_exceptions=True,
            _batch=batch,
            _finalize_recorders=False,
        )
        if validate:
            with _phase_all(valid_recs, "validate"):
                colors = np.full(batch.n, -1, dtype=np.int64)
                for pos, out in enumerate(inner):
                    if isinstance(out, BaseException):
                        continue
                    colors[batch.node_slice(pos)] = batch.members[pos].gather(
                        out[0].assignment
                    )
                same = equal_neighbor_counts(batch, colors)
                for pos, j in enumerate(valid):
                    if isinstance(inner[pos], BaseException):
                        continue
                    seg = same[batch.node_slice(pos)]
                    if seg.size and int(seg.max()) > defects[j]:
                        bad = batch.members[pos].nodes[int(np.argmax(seg))]
                        errors[j] = ValueError(
                            f"defective split invalid: node {bad} has "
                            f"{int(seg.max())} same-class neighbors "
                            f"(allowed {defects[j]})"
                        )
        for pos, j in enumerate(valid):
            out = inner[pos]
            if isinstance(out, BaseException):
                errors[j] = out
                continue
            if errors[j] is not None:
                continue  # validation failure: no finalize, like the single path
            res, metrics, palette = out
            member = batch.members[pos]
            if recs[j] is not None:
                recs[j].finalize(
                    metrics,
                    n=member.n,
                    m=member.num_directed_edges // 2,
                    palette=palette,
                    algorithm=recs[j].algorithm or "defective_split_vectorized",
                )
            results[j] = (dict(res.assignment), metrics, palette)

    for j in range(k):
        if errors[j] is not None:
            results[j] = errors[j]
    return _raise_or_return(results, return_exceptions)


def classic_delta_plus_one_vectorized_batch(
    graphs: Sequence[Any],
    recorders: Sequence["RunRecorder | None"] | None = None,
    return_exceptions: bool = False,
) -> list:
    """Batched twin of
    :func:`repro.sim.vectorized.classic_delta_plus_one_vectorized`.

    The Linial stage runs block-diagonal; the per-class schedule
    reduction runs per instance (its round structure is data-dependent);
    metrics merge through :func:`merge_sequential_batch` with each
    instance's **own** CONGEST budget stated explicitly as the budget of
    record — never a silently unified scalar.  Returns one
    ``(ColoringResult, RunMetrics)`` pair per instance.
    """
    from .vectorized import schedule_reduction_vectorized

    k = len(graphs)
    recs = _seq_arg(recorders, k, "recorders")
    inner = linial_vectorized_batch(
        graphs,
        recorders=recs,
        return_exceptions=True,
        _finalize_recorders=False,
    )
    results: list = [None] * k
    firsts: list[RunMetrics] = []
    seconds: list[RunMetrics] = []
    limits: list[int] = []
    staged: list[tuple[int, ColoringResult, int]] = []
    for j in range(k):
        out = inner[j]
        if isinstance(out, BaseException):
            results[j] = out
            continue
        pre, m1, _palette = out
        graph = graphs[j]
        delta = max((d for _, d in graph.degree), default=0)
        res, m2 = schedule_reduction_vectorized(
            graph,
            pre.assignment,
            delta + 1,
            recorder=recs[j],
            _finalize_recorder=False,
        )
        firsts.append(m1)
        seconds.append(m2)
        limits.append(congest_bandwidth(graph.number_of_nodes()))
        staged.append((j, res, delta))
    merged_list = merge_sequential_batch(firsts, seconds, bandwidth_limits=limits)
    for (j, res, delta), merged in zip(staged, merged_list):
        graph = graphs[j]
        if recs[j] is not None:
            recs[j].finalize(
                merged,
                n=graph.number_of_nodes(),
                m=graph.number_of_edges(),
                palette=delta + 1,
                algorithm=recs[j].algorithm or "classic_vectorized",
            )
        results[j] = (res, merged)
    return _raise_or_return(results, return_exceptions)


# ----------------------------------------------------------------------
# round-stepped driver (continuous batching substrate)
# ----------------------------------------------------------------------
class BatchInstance:
    """One Linial instance's complete state inside a round-stepped run.

    The batched kernels above are *drain* drivers: they take k instances,
    loop rounds internally, and return k results.  A serving scheduler
    needs the inverse control flow — *it* owns the round loop, so it can
    evict finished instances and admit queued ones between rounds
    (continuous batching).  A ``BatchInstance`` is therefore one
    instance's progress made explicit and portable: its CSR, schedule,
    current colors, per-node step counters, metrics, and (optionally) the
    :class:`~repro.faults.FaultPlan` adversary with its local round
    clock and pending-delivery buffer.  Because a Linial run is a pure
    function of ``(colors, schedule[, plan])`` and the block-diagonal
    packing never lets information cross instance boundaries, an
    instance computes the *identical* result no matter which batch
    composition — or admission round — each of its steps executed under.

    Build instances with :func:`make_batch_instance`; drive them with
    :class:`LinialBatchStepper`.
    """

    _next_uid = 0

    def __init__(
        self,
        csr: CSRGraph,
        sched: list,
        colors: np.ndarray,
        *,
        palette: int,
        bits: int,
        plan=None,
        recorder: "RunRecorder | None" = None,
    ) -> None:
        BatchInstance._next_uid += 1
        #: Stable identity across repacks (assigned at construction).
        self.uid = BatchInstance._next_uid
        self.csr = csr
        self.sched = sched
        self.colors = colors
        self.palette = palette
        self.bits = bits
        self.plan = plan
        self.recorder = recorder
        self.metrics = synthesized_metrics(csr.n)
        self.step = 0
        self.rounds_resident = 0
        self.error: BaseException | None = None
        self.result: tuple | None = None
        if plan is not None:
            from ..faults.plan import node_labels_u64

            self._steps = np.zeros(csr.n, dtype=np.int64)
            self._labels = node_labels_u64(csr.nodes)
            self._src_labels = self._labels[csr.src]
            self._dst_labels = self._labels[csr.indices]
            self._budget = plan.round_budget(len(sched))
            self._pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
            self._rnd = 0

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        """True once the instance needs no further rounds (done or halted)."""
        if self.error is not None:
            return True
        if self.plan is None:
            return self.step >= len(self.sched)
        return not bool((self._steps < len(self.sched)).any())

    @property
    def finished(self) -> bool:
        """True once :meth:`finalize` sealed the instance's outcome."""
        return self.result is not None or self.error is not None

    def current_step(self):
        """The schedule step this instance executes next (plain path)."""
        return self.sched[self.step]

    # ------------------------------------------------------------------
    def finalize(self, algorithm: str = "linial_vectorized") -> None:
        """Seal the outcome: build the result triple (or flush the halt).

        Mirrors :func:`linial_vectorized_batch`'s finish path — a halted
        instance flushes its partial per-round record before the error
        is surfaced; a completed one produces the same ``(ColoringResult,
        RunMetrics, palette)`` triple as its single-instance twin.
        """
        if self.finished:
            return
        if self.recorder is not None:
            self.recorder.finalize(
                self.metrics,
                n=self.csr.n,
                m=self.csr.num_directed_edges // 2,
                palette=self.palette,
                algorithm=self.recorder.algorithm or algorithm,
            )
        if self.error is None:
            self.result = (
                ColoringResult(self.csr.scatter(self.colors)),
                self.metrics,
                self.palette,
            )

    def outcome(self):
        """The finished result triple, or the per-instance exception."""
        if not self.finished:
            raise RuntimeError("instance has not finished; step it first")
        return self.error if self.error is not None else self.result

    # ------------------------------------------------------------------
    def _faulty_round(self) -> None:
        """One faulty round on this instance's *local* clock.

        A verbatim single-iteration transliteration of
        :func:`repro.sim.vectorized._linial_faulty_rounds` — plan queries
        use the instance's own round counter and label arrays, so an
        instance admitted at any global round replays exactly the
        adversary its standalone run would, and the per-round fault
        columns stay the cross-engine invariant.
        """
        from ..faults.plan import (
            FATE_CORRUPT,
            FATE_DELAY,
            FATE_DELIVER,
            FATE_DROP,
            FATE_DUPLICATE,
        )

        csr, plan = self.csr, self.plan
        n = csr.n
        total = len(self.sched)
        rnd = self._rnd
        if rnd >= self._budget:
            unfinished = [
                csr.nodes[i] for i in np.nonzero(self._steps < total)[0]
            ]
            self.error = HaltingError(rounds=rnd, unfinished=unfinished)
            return
        alive = ~plan.crashed_mask(rnd, self._labels)
        active = self._steps < total
        transmit = (active & alive)[csr.src]
        counts = dict.fromkeys(
            ("dropped", "corrupted", "delayed", "duplicated"), 0
        )
        counts["crashed"] = int(n - alive.sum())

        delivered = np.full(csr.num_directed_edges, -1, dtype=np.int64)
        for edge_idx, values in self._pending.pop(rnd, ()):
            delivered[edge_idx] = values
        if transmit.any():
            codes, delays = plan.edge_fates(
                rnd, self._src_labels, self._dst_labels
            )
            codes = np.where(transmit, codes, -1)
            payload = self.colors[csr.src]
            counts["dropped"] = int((codes == FATE_DROP).sum())
            counts["corrupted"] = int((codes == FATE_CORRUPT).sum())
            counts["delayed"] = int((codes == FATE_DELAY).sum())
            counts["duplicated"] = int((codes == FATE_DUPLICATE).sum())
            for code in (FATE_DELAY, FATE_DUPLICATE):
                idx = np.nonzero(codes == code)[0]
                for d in np.unique(delays[idx]):
                    sel = idx[delays[idx] == d]
                    self._pending.setdefault(rnd + int(d), []).append(
                        (sel, payload[sel].copy())
                    )
            now = (codes == FATE_DELIVER) | (codes == FATE_DUPLICATE)
            delivered[now] = payload[now]
            corrupt = codes == FATE_CORRUPT
            if corrupt.any():
                delivered[corrupt] = plan.corrupt_values(
                    rnd,
                    self._src_labels[corrupt],
                    self._dst_labels[corrupt],
                    payload[corrupt],
                )
        delivered[~alive[csr.indices]] = -1

        receiving = active & alive
        new_colors = self.colors.copy()
        for s in np.unique(self._steps[receiving]):
            step = self.sched[s]
            q, deg = step.q, step.deg
            domain = q ** (deg + 1)
            group = receiving & (self._steps == s)
            own_evals = poly_eval_grid(poly_digits(self.colors, q, deg), q)
            edge_ok = (
                group[csr.indices] & (delivered >= 0) & (delivered < domain)
            )
            hits = np.zeros((q, n), dtype=np.int64)
            if edge_ok.any():
                edge_dst = csr.indices[edge_ok]
                edge_evals = poly_eval_grid(
                    poly_digits(delivered[edge_ok], q, deg), q
                )
                match = edge_evals == own_evals[:, edge_dst]
                for x in range(q):
                    hits[x] = np.bincount(edge_dst[match[x]], minlength=n)
            members = np.nonzero(group)[0]
            best_x = np.argmin(hits[:, members], axis=0)
            new_colors[members] = best_x * q + own_evals[best_x, members]
        self.colors = new_colors
        self._steps[receiving] += 1

        record_uniform_round(
            self.metrics,
            self.recorder,
            int(transmit.sum()),
            self.bits,
            active=int(active.sum()),
            faults=counts,
        )
        self._rnd += 1


def make_batch_instance(
    graph: Any = None,
    *,
    csr: CSRGraph | None = None,
    initial_colors: dict[Any, int] | None = None,
    defect: int = 0,
    faults=None,
    recorder: "RunRecorder | None" = None,
) -> BatchInstance:
    """Freeze one Linial request into a steppable :class:`BatchInstance`.

    Mirrors :func:`~repro.sim.vectorized.linial_vectorized`'s setup
    exactly — identity initial colors by default, the zero-defect
    :func:`~repro.algorithms.linial.linial_schedule` or the
    defect-``d`` :func:`~repro.algorithms.linial.defective_schedule`,
    the same palette and per-message bit width — so stepping the
    instance to completion (under any batch composition) reproduces the
    single-instance triple bit for bit.  ``csr`` lets a caller that
    already froze the topology skip the second freeze.
    """
    from ..algorithms.linial import defective_schedule, linial_schedule

    if csr is None:
        if graph is None:
            raise ValueError("make_batch_instance needs a graph or a csr")
        csr = CSRGraph.from_networkx(graph)
    n = csr.n
    delta = int(csr.degrees.max()) if n else 0
    if initial_colors is None:
        m0 = n if n else 1
        colors = np.arange(n, dtype=np.int64)
    else:
        m0 = max(initial_colors.values()) + 1 if initial_colors else 1
        colors = csr.gather(initial_colors)
    sched = (
        linial_schedule(m0, delta)
        if defect == 0
        else defective_schedule(m0, delta, defect)
    )
    palette = sched[-1].out_colors if sched else m0
    return BatchInstance(
        csr,
        sched,
        colors,
        palette=palette,
        bits=int_bits(max(1, m0 - 1)),
        plan=faults,
        recorder=recorder,
    )


class StepReport:
    """What one :meth:`LinialBatchStepper.step` round did.

    ``finished`` is the round's newly sealed instances (completed *or*
    halted — check :attr:`BatchInstance.error`), already evicted from the
    stepper's live set; ``live`` counts the instances that participated,
    ``groups`` the distinct ``(q, deg)`` kernel groups the plain cohort
    packed into, and ``round_index`` the stepper's global round clock.
    """

    __slots__ = ("round_index", "live", "groups", "finished")

    def __init__(
        self,
        round_index: int,
        live: int,
        groups: int,
        finished: tuple[BatchInstance, ...],
    ) -> None:
        self.round_index = round_index
        self.live = live
        self.groups = groups
        self.finished = finished


class LinialBatchStepper:
    """Round-stepped block-diagonal execution with mid-run repacking.

    The continuous-batching substrate :mod:`repro.serve` schedules on:
    the caller owns the round loop — :meth:`admit` new instances between
    rounds, :meth:`step` one synchronous round over the current
    membership, and collect the step's ``finished`` instances (their
    slots are free immediately; per-instance termination masks are
    literal here, a finished instance simply leaves the membership).

    Each round, live fault-free instances are grouped by their current
    schedule step's ``(q, deg)`` and each group runs through the shared
    grid-evaluation/collision kernels in cache-sized tiles
    (:data:`_TILE_NODES`), exactly like :func:`_linial_rounds_batch`;
    faulty instances run their own local-clock round via
    :meth:`BatchInstance._faulty_round`.  Because no kernel ever reads
    across an instance boundary, every instance's final triple is
    bit-identical to its single-instance
    :func:`~repro.sim.vectorized.linial_vectorized` run regardless of
    when it was admitted or which siblings shared its rounds — the
    property ``tests/test_serve.py`` pins and ``benchmarks/bench_serve.py``
    re-asserts end to end against the offline batched engine.
    """

    def __init__(self, instances: Sequence[BatchInstance] = ()) -> None:
        self._live: list[BatchInstance] = []
        self._sealed_at_admit: list[BatchInstance] = []
        self._round = 0
        for inst in instances:
            self.admit(inst)

    # ------------------------------------------------------------------
    @property
    def round_index(self) -> int:
        """Global rounds stepped so far."""
        return self._round

    @property
    def occupancy(self) -> int:
        """Live instances currently packed (the batch's fill level)."""
        return len(self._live)

    @property
    def live(self) -> tuple[BatchInstance, ...]:
        """The current membership, admission order (per-round view)."""
        return tuple(self._live)

    @property
    def drained(self) -> bool:
        """True when a :meth:`step` would have nothing to do or report.

        Covers both live instances and instances sealed at admission
        that still await delivery through a step's ``finished`` list.
        """
        return not self._live and not self._sealed_at_admit

    # ------------------------------------------------------------------
    def admit(self, inst: BatchInstance) -> BatchInstance:
        """Add an instance to the membership, effective next round.

        An instance that needs no rounds at all (empty schedule) is
        sealed immediately and reported in the next step's ``finished``
        — it never occupies a slot.
        """
        if inst.finished:
            raise ValueError("cannot admit an already-finished instance")
        if inst.complete:
            inst.finalize()
            self._sealed_at_admit.append(inst)
        else:
            self._live.append(inst)
        return inst

    def evict(self, inst: BatchInstance) -> bool:
        """Remove an instance from the membership without finishing it.

        The deadline-enforcement hook for serving schedulers: an
        instance whose request can no longer meet its latency budget
        leaves the batch immediately — its slot refills next admission
        — instead of burning rounds on an answer nobody is waiting for.
        Its partial state is abandoned (no :meth:`BatchInstance.finalize`),
        so it never appears in a later step's ``finished`` list.  Because
        the block-diagonal kernels never read across instance
        boundaries, removing a member mid-run cannot perturb any
        sibling's colors.  Returns whether the instance was resident.
        """
        for members in (self._live, self._sealed_at_admit):
            try:
                members.remove(inst)
                return True
            except ValueError:
                continue
        return False

    def step(self) -> StepReport:
        """Run one synchronous round over the current membership.

        Finished instances (including any sealed at admission since the
        last step) are evicted from the membership and returned in the
        report; the freed slots are available to :meth:`admit` before
        the next round — which is all continuous batching is.
        """
        finished: list[BatchInstance] = self._sealed_at_admit
        self._sealed_at_admit = []
        live = list(self._live)
        plain = [i for i in live if i.plan is None]
        faulty = [i for i in live if i.plan is not None]

        groups: dict[tuple[int, int], list[BatchInstance]] = {}
        for inst in plain:
            step = inst.current_step()
            groups.setdefault((step.q, step.deg), []).append(inst)
        for (q, deg), members in sorted(groups.items()):
            node_counts = [m.csr.n for m in members]
            for tile in _node_tiles(list(range(len(members))), node_counts):
                tile_members = [members[p] for p in tile]
                if len(tile_members) == 1:
                    m = tile_members[0]
                    evals = poly_eval_grid(poly_digits(m.colors, q, deg), q)
                    hits = collision_counts(m.csr, evals)
                    best_x = np.argmin(hits, axis=0)
                    m.colors = best_x * q + evals[best_x, np.arange(m.csr.n)]
                    continue
                sub = BatchCSRGraph.from_csrs([m.csr for m in tile_members])
                colors = np.concatenate([m.colors for m in tile_members])
                evals = poly_eval_grid(poly_digits(colors, q, deg), q)
                hits = collision_counts(sub, evals)
                best_x = np.argmin(hits, axis=0)
                colors = best_x * q + evals[best_x, np.arange(sub.n)]
                for j, m in enumerate(tile_members):
                    m.colors = colors[sub.node_slice(j)].copy()
        for inst in plain:
            record_uniform_round(
                inst.metrics,
                inst.recorder,
                inst.csr.num_directed_edges,
                inst.bits,
                active=inst.csr.n,
            )
            inst.step += 1

        for inst in faulty:
            inst._faulty_round()

        still_live: list[BatchInstance] = []
        for inst in live:
            inst.rounds_resident += 1
            if inst.complete:
                inst.finalize()
                finished.append(inst)
            else:
                still_live.append(inst)
        self._live = still_live
        self._round += 1
        return StepReport(
            round_index=self._round - 1,
            live=len(live),
            groups=len(groups) + len(faulty),
            finished=tuple(finished),
        )

    def run_to_completion(self) -> list[BatchInstance]:
        """Step until the membership drains (static batch-and-drain mode).

        The offline counterpart of a serving loop — used by tests to pin
        stepper-vs-:func:`linial_vectorized_batch` equivalence.
        """
        done: list[BatchInstance] = []
        while self._live or self._sealed_at_admit:
            done.extend(self.step().finished)
        return done


def merge_sequential_batch(
    firsts: Sequence[RunMetrics],
    seconds: Sequence[RunMetrics],
    *,
    bandwidth_limits: Sequence[int | None] | int | None,
) -> list[RunMetrics]:
    """Per-instance :meth:`~repro.sim.metrics.RunMetrics.merge_sequential`
    with an **explicit budget of record per instance**.

    ``bandwidth_limits`` is normally one limit per instance (each
    instance's own CONGEST budget).  A scalar is accepted only when it
    matches every instance's native limit — a batch mixing budgets (e.g.
    cells of different ``n``) raises ``ValueError`` instead of silently
    unifying the budgets under one number, which would misattribute
    bandwidth violations across instances.
    """
    firsts = list(firsts)
    seconds = list(seconds)
    if len(firsts) != len(seconds):
        raise ValueError(
            f"merge_sequential_batch: {len(firsts)} first-phase vs "
            f"{len(seconds)} second-phase metrics"
        )
    k = len(firsts)
    if bandwidth_limits is None or isinstance(bandwidth_limits, int):
        native = {
            m.bandwidth_limit
            for m in [*firsts, *seconds]
            if m.bandwidth_limit is not None
        }
        if native - ({bandwidth_limits} if bandwidth_limits is not None else set()):
            raise ValueError(
                "merge_sequential_batch: mixed-budget batch — instances "
                f"carry bandwidth limits {sorted(native)} but a single "
                f"limit {bandwidth_limits!r} was given; pass one explicit "
                "bandwidth limit per instance (the budget of record is "
                "per-instance, never silently unified)"
            )
        limits: list[int | None] = [bandwidth_limits] * k
    else:
        limits = list(bandwidth_limits)
        if len(limits) != k:
            raise ValueError(
                f"merge_sequential_batch: {len(limits)} bandwidth limits "
                f"for {k} instances"
            )
    return [
        first.merge_sequential(second, bandwidth_limit=limit)
        for first, second, limit in zip(firsts, seconds, limits)
    ]
