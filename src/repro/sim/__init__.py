"""Synchronous LOCAL / CONGEST simulator."""

from .backends import (
    ALGORITHMS,
    BACKENDS,
    AlgorithmSupport,
    BackendError,
    BackendSpec,
    CapabilityError,
    UnknownBackendError,
    backend_names,
    backend_of_sweep_algorithm,
    batchable_sweep_algorithms,
    consistency_report,
    get_backend,
    require,
)
from .batch import (
    BatchCSRGraph,
    classic_delta_plus_one_vectorized_batch,
    defective_split_vectorized_batch,
    greedy_list_vectorized_batch,
    linial_vectorized_batch,
    merge_sequential_batch,
)
from .compiled import (
    NUMBA_AVAILABLE,
    defective_split_compiled,
    greedy_list_compiled,
    linial_compiled,
    linial_compiled_batch,
)
from .engine import (
    CSRGraph,
    collision_counts,
    equal_neighbor_counts,
    poly_digits,
    poly_eval_grid,
    ragged_lists,
    record_uniform_round,
    synthesized_metrics,
)
from .message import Message, color_list_bits, estimate_bits, index_bits, int_bits
from .metrics import RunMetrics, congest_bandwidth
from .network import SyncNetwork
from .node import DistributedAlgorithm, HaltingError, NodeView
from .phases import PhaseEntry, PhaseLog
from .referee import RefereeViolation, RefereedAlgorithm
from .trace import Trace, TracedMessage
from .vectorized import (
    classic_delta_plus_one_vectorized,
    defective_split_vectorized,
    greedy_list_vectorized,
    linial_vectorized,
    schedule_reduction_vectorized,
)

__all__ = [
    "ALGORITHMS",
    "BACKENDS",
    "AlgorithmSupport",
    "BackendError",
    "BackendSpec",
    "BatchCSRGraph",
    "CSRGraph",
    "CapabilityError",
    "DistributedAlgorithm",
    "HaltingError",
    "NUMBA_AVAILABLE",
    "UnknownBackendError",
    "Message",
    "NodeView",
    "PhaseEntry",
    "PhaseLog",
    "RefereeViolation",
    "RefereedAlgorithm",
    "RunMetrics",
    "SyncNetwork",
    "Trace",
    "TracedMessage",
    "color_list_bits",
    "congest_bandwidth",
    "estimate_bits",
    "index_bits",
    "int_bits",
    "backend_names",
    "backend_of_sweep_algorithm",
    "batchable_sweep_algorithms",
    "classic_delta_plus_one_vectorized",
    "classic_delta_plus_one_vectorized_batch",
    "collision_counts",
    "consistency_report",
    "defective_split_compiled",
    "defective_split_vectorized",
    "defective_split_vectorized_batch",
    "equal_neighbor_counts",
    "get_backend",
    "greedy_list_compiled",
    "greedy_list_vectorized",
    "greedy_list_vectorized_batch",
    "linial_compiled",
    "linial_compiled_batch",
    "linial_vectorized",
    "linial_vectorized_batch",
    "merge_sequential_batch",
    "require",
    "poly_digits",
    "poly_eval_grid",
    "ragged_lists",
    "record_uniform_round",
    "schedule_reduction_vectorized",
    "synthesized_metrics",
]
