"""The synchronous network simulator (LOCAL / CONGEST).

:class:`SyncNetwork` executes a :class:`~repro.sim.node.DistributedAlgorithm`
on a ``networkx`` graph in lockstep rounds, collecting
:class:`~repro.sim.metrics.RunMetrics`.  Semantics (paper Section 2):

* all nodes start at time 0;
* in each round every *active* node sends one message per incident edge
  (possibly different per neighbor, possibly none), then receives the
  messages sent to it this round;
* nodes perform arbitrary internal computation between rounds (uncharged);
* a node halts when ``is_done`` becomes true; the run ends when all halt.

Messages can be sent to any communication neighbor — for directed graphs,
both in- and out-neighbors, as the paper specifies.  Delivery is
simultaneous: messages computed in round ``r`` are only visible in round
``r``'s receive step, never earlier.

Determinism: nodes are always iterated in sorted id order and algorithms
receive no ambient randomness (seeded RNGs are part of node inputs when an
algorithm is randomized), so a run is a pure function of (graph, algorithm,
inputs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping

import networkx as nx

from ..exceptions import ProtocolError
from .message import Message
from .metrics import RunMetrics, congest_bandwidth
from .node import DistributedAlgorithm, HaltingError, NodeView
from .trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> sim)
    from ..faults import FaultPlan
    from ..obs import RunRecorder


class SyncNetwork:
    """A simulated synchronous network over a ``networkx`` (di)graph."""

    def __init__(
        self,
        graph: nx.Graph,
        model: str = "LOCAL",
        bandwidth: int | None = None,
    ) -> None:
        """
        Parameters
        ----------
        graph:
            Undirected or directed topology.  Node labels must be hashable
            and sortable; integer ids are conventional.
        model:
            ``"LOCAL"`` (unbounded messages) or ``"CONGEST"``.  In CONGEST a
            per-message budget is *recorded against*, not enforced — runs
            never fail mid-flight; compliance is an output, which is what
            the experiments report.
        bandwidth:
            Explicit CONGEST bit budget; defaults to
            :func:`congest_bandwidth` of the node count.
        """
        if model not in ("LOCAL", "CONGEST"):
            raise ValueError(f"unknown model {model!r}")
        self.graph = graph
        self.model = model
        self.directed = graph.is_directed()
        n = graph.number_of_nodes()
        self.bandwidth = (
            bandwidth
            if bandwidth is not None
            else (congest_bandwidth(n) if model == "CONGEST" else None)
        )
        self._views: dict[int, NodeView] = {}

    # ------------------------------------------------------------------
    def _build_views(
        self,
        inputs: Mapping[int, Mapping[str, Any]],
        shared: Mapping[str, Any],
    ) -> dict[int, NodeView]:
        views: dict[int, NodeView] = {}
        g = self.graph
        for v in sorted(g.nodes):
            if self.directed:
                outs = tuple(sorted(g.successors(v)))
                ins = tuple(sorted(g.predecessors(v)))
                neigh = tuple(sorted(set(outs) | set(ins)))
            else:
                neigh = tuple(sorted(g.neighbors(v)))
                outs = neigh
                ins = neigh
            views[v] = NodeView(
                id=v,
                neighbors=neigh,
                out_neighbors=outs,
                in_neighbors=ins,
                inputs=dict(inputs.get(v, {})),
                globals=dict(shared),
            )
        return views

    # ------------------------------------------------------------------
    def run(
        self,
        algorithm: DistributedAlgorithm,
        inputs: Mapping[int, Mapping[str, Any]] | None = None,
        shared: Mapping[str, Any] | None = None,
        max_rounds: int = 10_000,
        round_hook: Callable[[int, dict[int, dict[str, Any]]], None] | None = None,
        trace: Trace | None = None,
        recorder: "RunRecorder | None" = None,
        faults: "FaultPlan | None" = None,
        _finalize_recorder: bool = True,
    ) -> tuple[dict[int, Any], RunMetrics]:
        """Execute ``algorithm`` to completion.

        Returns ``(outputs, metrics)`` where ``outputs[v]`` is the node's
        declared output.  Raises :class:`HaltingError` if any node is still
        active after ``max_rounds`` rounds; the partial record of a
        ``recorder`` is finalized first, so a halted run's per-round
        accounting is still flushed.

        ``round_hook(rnd, states)`` — optional observer called after each
        round; used by tests to assert invariants mid-run.
        ``trace`` — optional :class:`~repro.sim.trace.Trace` that records
        every message (round, src, dst, bits) for post-hoc inspection.
        ``recorder`` — optional :class:`~repro.obs.RunRecorder`; it is fed
        one activity row per round and finalized into a structured
        :class:`~repro.obs.RunRecord` when the run completes (JSONL is
        emitted when the recorder was built with a ``jsonl_path``).
        ``faults`` — optional :class:`~repro.faults.FaultPlan` applied at
        the delivery step: crashed nodes neither send nor receive (state
        frozen), and every transmission is dropped / corrupted / delayed /
        duplicated per the plan.  Transmissions are still *charged* at
        their send round regardless of fate (see the plan's accounting
        contract); per-round fault counts flow into ``trace`` and the
        recorder's fault column family.
        ``_finalize_recorder`` — internal: :meth:`run_phases` defers
        finalization to the end of the composition.
        """
        inputs = inputs or {}
        shared = dict(shared or {})
        shared.setdefault("n", self.graph.number_of_nodes())
        views = self._build_views(inputs, shared)
        self._views = views
        states: dict[int, dict[str, Any]] = {
            v: algorithm.init_state(views[v]) for v in sorted(views)
        }
        metrics = RunMetrics(bandwidth_limit=self.bandwidth)
        active = {v for v in views if not algorithm.is_done(views[v], states[v])}

        if faults is not None:
            # deferred: repro.faults.wrappers imports this module
            from ..faults.plan import (
                FATE_CORRUPT as _FATE_CORRUPT,
                FATE_DELAY as _FATE_DELAY,
                FATE_DROP as _FATE_DROP,
                FATE_DUPLICATE as _FATE_DUPLICATE,
            )

        # (deliver_round, src, dst, message) buffer for delayed/duplicated
        # deliveries; stale entries are applied before the round's own send
        # loop, so a fresher same-sender message overwrites them.
        pending: list[tuple[int, int, int, Message]] = []
        rnd = 0
        while active:
            if rnd >= max_rounds:
                # flush unconditionally: callers that deferred
                # finalization (``_finalize_recorder=False``) never get
                # control back on this path, and a halted run's partial
                # per-round accounting is exactly what a post-mortem needs
                if recorder is not None:
                    recorder.finalize(
                        metrics,
                        n=self.graph.number_of_nodes(),
                        m=self.graph.number_of_edges(),
                        algorithm=recorder.algorithm or algorithm.name,
                    )
                raise HaltingError(rounds=rnd, unfinished=sorted(active))
            alive: set[int] | None = None
            counts: dict[str, int] | None = None
            if faults is not None:
                alive = {v for v in views if not faults.crashed(rnd, v)}
                counts = dict.fromkeys(
                    ("dropped", "corrupted", "delayed", "duplicated"), 0
                )
                counts["crashed"] = len(views) - len(alive)
                if trace is not None:
                    for v in sorted(set(views) - alive):
                        trace.record_fault(rnd, "crashed", v, None)
            # -- send phase ------------------------------------------------
            inboxes: dict[int, dict[int, Message]] = {v: {} for v in views}
            if pending:
                still: list[tuple[int, int, int, Message]] = []
                for deliver_rnd, src, dst, msg in pending:
                    if deliver_rnd > rnd:
                        still.append((deliver_rnd, src, dst, msg))
                    elif alive is None or dst in alive:
                        inboxes[dst][src] = msg
                pending = still
            sizes: list[int] = []
            for v in sorted(active):
                if alive is not None and v not in alive:
                    continue
                outbox = algorithm.send(views[v], states[v], rnd)
                for dst, msg in outbox.items():
                    if dst not in views or dst not in views[v].neighbors:
                        raise ProtocolError(
                            f"node {v} tried to message non-neighbor {dst}"
                        )
                    if not isinstance(msg, Message):
                        raise TypeError(
                            f"node {v} sent a non-Message to {dst}: {type(msg)!r}"
                        )
                    bits = msg.size_bits()
                    sizes.append(bits)
                    if trace is not None:
                        trace.record(rnd, v, dst, bits, msg.payload)
                    if faults is None:
                        inboxes[dst][v] = msg
                        continue
                    fate = faults.message_fate(rnd, v, dst)
                    deliver = msg
                    if fate.kind == _FATE_DROP:
                        counts["dropped"] += 1
                        if trace is not None:
                            trace.record_fault(rnd, "dropped", v, dst)
                        continue
                    if fate.kind == _FATE_CORRUPT:
                        counts["corrupted"] += 1
                        if trace is not None:
                            trace.record_fault(rnd, "corrupted", v, dst)
                        deliver = Message(
                            faults.corrupt_payload(rnd, v, dst, msg.payload),
                            bits=bits,
                        )
                    elif fate.kind == _FATE_DELAY:
                        counts["delayed"] += 1
                        if trace is not None:
                            trace.record_fault(rnd, "delayed", v, dst)
                        pending.append((rnd + fate.delay, v, dst, msg))
                        continue
                    elif fate.kind == _FATE_DUPLICATE:
                        counts["duplicated"] += 1
                        if trace is not None:
                            trace.record_fault(rnd, "duplicated", v, dst)
                        pending.append((rnd + fate.delay, v, dst, msg))
                    if dst in alive:
                        inboxes[dst][v] = deliver
            # -- receive phase ---------------------------------------------
            for v in sorted(active):
                if alive is not None and v not in alive:
                    continue
                algorithm.receive(views[v], states[v], rnd, inboxes[v])
            metrics.observe_round(sizes)
            if trace is not None:
                trace.record_round(len(active))
            if recorder is not None:
                recorder.on_round(active=len(active), faults=counts)
            if round_hook is not None:
                round_hook(rnd, states)
            active = {v for v in active if not algorithm.is_done(views[v], states[v])}
            rnd += 1

        outputs = {v: algorithm.output(views[v], states[v]) for v in sorted(views)}
        if recorder is not None and _finalize_recorder:
            recorder.finalize(
                metrics,
                n=self.graph.number_of_nodes(),
                m=self.graph.number_of_edges(),
                algorithm=recorder.algorithm or algorithm.name,
            )
        return outputs, metrics

    # ------------------------------------------------------------------
    def run_phases(
        self,
        phases: list[tuple[DistributedAlgorithm, Mapping[int, Mapping[str, Any]]]],
        shared: Mapping[str, Any] | None = None,
        max_rounds: int = 10_000,
        round_hook: Callable[[int, dict[int, dict[str, Any]]], None] | None = None,
        trace: Trace | None = None,
        recorder: "RunRecorder | None" = None,
        faults: "FaultPlan | None" = None,
    ) -> tuple[list[dict[int, Any]], RunMetrics]:
        """Run several algorithms back to back, summing their metrics.

        Each phase gets its own inputs (typically derived from the previous
        phase's outputs by the caller); this matches the paper's phase-based
        compositions (Linial precoloring, then gamma-class assignment, then
        the main coloring, ...).

        ``round_hook``, ``trace``, ``recorder``, and ``faults`` are
        threaded through to every phase's :meth:`run` so composed pipelines
        stay observable (and attackable); the hook's round index restarts
        at 0 in each phase — as does the fault plan's clock, since each
        phase is a fresh :meth:`run`; shift with
        :meth:`~repro.faults.FaultPlan.with_offset` for a continuous
        adversary — while ``trace`` and ``recorder`` accumulate across the
        whole composition (the recorder is finalized once, against the
        merged metrics).
        """
        total = RunMetrics(bandwidth_limit=self.bandwidth)
        outs: list[dict[int, Any]] = []
        names: list[str] = []
        for algorithm, inputs in phases:
            o, m = self.run(
                algorithm,
                inputs,
                shared,
                max_rounds,
                round_hook=round_hook,
                trace=trace,
                recorder=recorder,
                faults=faults,
                _finalize_recorder=False,
            )
            outs.append(o)
            names.append(algorithm.name)
            total = total.merge_sequential(m)
        if recorder is not None:
            recorder.finalize(
                total,
                n=self.graph.number_of_nodes(),
                m=self.graph.number_of_edges(),
                algorithm=recorder.algorithm or "+".join(names),
            )
        return outs, total
