"""Messages with explicit bit-size accounting.

The paper's results are stated both in rounds and in *message size in bits*
(e.g. Theorem 1.1: ``O(min{|C|, Lambda log|C|} + log beta + log m)``-bit
messages; Theorem 1.4 runs in CONGEST, i.e. ``O(log n)``-bit messages).  To
reproduce those statements the simulator charges every message an explicit
bit count.

Algorithms *declare* the encoded size of each message they send, mirroring
the encodings argued in the paper's proofs (send a list as a |C|-bit
characteristic vector or as ``Lambda`` colors of ``log|C|`` bits each,
whichever is smaller; send a set ``C_v`` as an index into ``K_v``; send
defects as powers of two in ``loglog beta`` bits; ...).  When an algorithm
does not declare a size, :func:`estimate_bits` provides a conservative
default derived from the payload structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any


def int_bits(value: int) -> int:
    """Bits to transmit a bounded non-negative integer (at least 1)."""
    if value < 0:
        raise ValueError(f"only non-negative integers are sized, got {value}")
    return max(1, value.bit_length())


def index_bits(domain_size: int) -> int:
    """Bits to transmit an index into a known domain of ``domain_size``."""
    if domain_size < 1:
        raise ValueError(f"domain must be non-empty, got {domain_size}")
    return max(1, math.ceil(math.log2(domain_size))) if domain_size > 1 else 1


def color_list_bits(list_len: int, space_size: int) -> int:
    """Paper's encoding of a color list: ``min{|C|, Lambda * log|C|}`` bits."""
    per_color = index_bits(space_size)
    return min(space_size, max(1, list_len) * per_color)


def estimate_bits(payload: Any) -> int:
    """Conservative structural bit estimate for an undeclared payload."""
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return int_bits(abs(payload)) + 1
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_bits(x) for x in payload) + int_bits(len(payload))
    if isinstance(payload, dict):
        return sum(
            estimate_bits(k) + estimate_bits(v) for k, v in payload.items()
        ) + int_bits(len(payload))
    raise TypeError(f"cannot estimate bit size of {type(payload).__name__}")


@dataclass(frozen=True)
class Message:
    """A single point-to-point message.

    Parameters
    ----------
    payload:
        Arbitrary (immutable-by-convention) content.
    bits:
        Declared encoded size.  ``None`` means "estimate from the payload".
    """

    payload: Any
    bits: int | None = None

    def __post_init__(self) -> None:
        # Validate at construction, not at send time: a bad declared size
        # should fail where the algorithm builds the message, not deep
        # inside a simulated round via size_bits().
        if self.bits is not None and self.bits < 1:
            raise ValueError(f"declared bit size must be >= 1, got {self.bits}")

    def size_bits(self) -> int:
        if self.bits is not None:
            return self.bits
        return estimate_bits(self.payload)
