"""Run metrics: rounds, message counts, bit sizes, bandwidth compliance.

The experiments report three quantities per run, matching how the paper
states its results:

* ``rounds`` — the synchronous round complexity;
* ``max_message_bits`` — the largest single message, compared against the
  per-theorem bounds (e.g. Theorem 1.1's ``O(min{|C|, Lambda log|C|} +
  log beta + log m)``);
* CONGEST compliance — whether every message fits in the model's
  ``B = bandwidth_factor * ceil(log2 n)`` bits, with violations itemized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def congest_bandwidth(n: int, factor: int = 32) -> int:
    """The CONGEST per-message budget ``B = factor * ceil(log2 n)`` bits.

    The model allows ``O(log n)``-bit messages; the constant is a modeling
    choice.  We default to 32, a common convention (a handful of machine
    words of ``log n`` bits each); experiments that probe compliance report
    bits directly so the conclusion does not hinge on the constant.
    """
    if n < 2:
        return factor
    return factor * math.ceil(math.log2(n))


_UNSET = object()  # sentinel: merge_sequential's bandwidth_limit not given


@dataclass
class RunMetrics:
    """Aggregated communication metrics of one simulated execution."""

    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    per_round_max_bits: list[int] = field(default_factory=list)
    per_round_messages: list[int] = field(default_factory=list)
    per_round_bits: list[int] = field(default_factory=list)
    bandwidth_limit: int | None = None
    bandwidth_violations: int = 0

    def observe_uniform_round(self, count: int, bits: int) -> None:
        """O(1) variant of :meth:`observe_round` for ``count`` equal-size
        messages — used by the vectorized engine (round totals identical)."""
        self.rounds += 1
        self.total_messages += count
        round_max = bits if count else 0
        self.total_bits += count * bits
        if (
            self.bandwidth_limit is not None
            and count
            and bits > self.bandwidth_limit
        ):
            self.bandwidth_violations += count
        self.max_message_bits = max(self.max_message_bits, round_max)
        self.per_round_max_bits.append(round_max)
        self.per_round_messages.append(count)
        self.per_round_bits.append(count * bits)

    def observe_round(self, message_sizes: list[int]) -> None:
        """Record one synchronous round given its per-message bit sizes."""
        self.rounds += 1
        self.total_messages += len(message_sizes)
        round_max = 0
        round_bits = 0
        for bits in message_sizes:
            round_bits += bits
            round_max = max(round_max, bits)
            if self.bandwidth_limit is not None and bits > self.bandwidth_limit:
                self.bandwidth_violations += 1
        self.total_bits += round_bits
        self.max_message_bits = max(self.max_message_bits, round_max)
        self.per_round_max_bits.append(round_max)
        self.per_round_messages.append(len(message_sizes))
        self.per_round_bits.append(round_bits)

    @property
    def per_round_complete(self) -> bool:
        """Whether every round carries per-round accounting.

        False for metrics assembled by hand (e.g. parallel merges that only
        set the aggregate counters), where per-round rows are undefined.
        """
        return (
            len(self.per_round_messages)
            == len(self.per_round_bits)
            == len(self.per_round_max_bits)
            == self.rounds
        )

    @property
    def congest_compliant(self) -> bool:
        """True when a bandwidth limit was set and never exceeded.

        Meaningful for single-network runs.  Pipelines that spawn
        sub-networks on subgraphs (Theorems 1.2-1.4) accumulate violation
        counts against each sub-network's *own* (smaller-n) budget; judge
        such composed runs with :meth:`compliant_with` against the global
        graph's budget instead.
        """
        return self.bandwidth_limit is not None and self.bandwidth_violations == 0

    def compliant_with(self, n: int, factor: int = 32) -> bool:
        """Whether every message fits the budget of an ``n``-node CONGEST
        network — the right compliance question for composed pipelines."""
        return self.max_message_bits <= congest_bandwidth(n, factor)

    def merge_sequential(
        self,
        other: "RunMetrics",
        *,
        bandwidth_limit: "int | None | object" = _UNSET,
    ) -> "RunMetrics":
        """Combine metrics of two phases run back to back.

        The merged ``bandwidth_limit`` is the phases' common limit: a
        ``None`` on either side defers to the other (a limitless phase
        imposes no budget), and two equal limits stay.  Two *different*
        non-``None`` limits are a modeling conflict (which budget would the
        merged violations be counted against?) and raise ``ValueError``;
        pipelines that legitimately compose sub-networks of different sizes
        must state the budget of record explicitly via the
        ``bandwidth_limit`` keyword (conventionally the enclosing network's
        — per-message violations were already tallied against each
        sub-network's own budget when the rounds were observed).
        """
        if bandwidth_limit is _UNSET:
            if self.bandwidth_limit is None:
                limit = other.bandwidth_limit
            elif (
                other.bandwidth_limit is None
                or other.bandwidth_limit == self.bandwidth_limit
            ):
                limit = self.bandwidth_limit
            else:
                raise ValueError(
                    f"merge_sequential: conflicting bandwidth limits "
                    f"{self.bandwidth_limit} vs {other.bandwidth_limit}; "
                    f"pass bandwidth_limit=... to pick the budget of record"
                )
        else:
            limit = bandwidth_limit  # type: ignore[assignment]
        merged = RunMetrics(
            rounds=self.rounds + other.rounds,
            total_messages=self.total_messages + other.total_messages,
            total_bits=self.total_bits + other.total_bits,
            max_message_bits=max(self.max_message_bits, other.max_message_bits),
            per_round_max_bits=self.per_round_max_bits + other.per_round_max_bits,
            per_round_messages=self.per_round_messages + other.per_round_messages,
            per_round_bits=self.per_round_bits + other.per_round_bits,
            bandwidth_limit=limit,
            bandwidth_violations=self.bandwidth_violations
            + other.bandwidth_violations,
        )
        return merged

    def summary(self) -> dict[str, int | bool | None]:
        """Flat dict of the headline counters (for records and asserts)."""
        return {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "bandwidth_limit": self.bandwidth_limit,
            "bandwidth_violations": self.bandwidth_violations,
        }
