"""Run metrics: rounds, message counts, bit sizes, bandwidth compliance.

The experiments report three quantities per run, matching how the paper
states its results:

* ``rounds`` — the synchronous round complexity;
* ``max_message_bits`` — the largest single message, compared against the
  per-theorem bounds (e.g. Theorem 1.1's ``O(min{|C|, Lambda log|C|} +
  log beta + log m)``);
* CONGEST compliance — whether every message fits in the model's
  ``B = bandwidth_factor * ceil(log2 n)`` bits, with violations itemized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def congest_bandwidth(n: int, factor: int = 32) -> int:
    """The CONGEST per-message budget ``B = factor * ceil(log2 n)`` bits.

    The model allows ``O(log n)``-bit messages; the constant is a modeling
    choice.  We default to 32, a common convention (a handful of machine
    words of ``log n`` bits each); experiments that probe compliance report
    bits directly so the conclusion does not hinge on the constant.
    """
    if n < 2:
        return factor
    return factor * math.ceil(math.log2(n))


@dataclass
class RunMetrics:
    """Aggregated communication metrics of one simulated execution."""

    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    per_round_max_bits: list[int] = field(default_factory=list)
    bandwidth_limit: int | None = None
    bandwidth_violations: int = 0

    def observe_uniform_round(self, count: int, bits: int) -> None:
        """O(1) variant of :meth:`observe_round` for ``count`` equal-size
        messages — used by the vectorized engine (round totals identical)."""
        self.rounds += 1
        self.total_messages += count
        round_max = bits if count else 0
        self.total_bits += count * bits
        if (
            self.bandwidth_limit is not None
            and count
            and bits > self.bandwidth_limit
        ):
            self.bandwidth_violations += count
        self.max_message_bits = max(self.max_message_bits, round_max)
        self.per_round_max_bits.append(round_max)

    def observe_round(self, message_sizes: list[int]) -> None:
        """Record one synchronous round given its per-message bit sizes."""
        self.rounds += 1
        self.total_messages += len(message_sizes)
        round_max = 0
        for bits in message_sizes:
            self.total_bits += bits
            round_max = max(round_max, bits)
            if self.bandwidth_limit is not None and bits > self.bandwidth_limit:
                self.bandwidth_violations += 1
        self.max_message_bits = max(self.max_message_bits, round_max)
        self.per_round_max_bits.append(round_max)

    @property
    def congest_compliant(self) -> bool:
        """True when a bandwidth limit was set and never exceeded.

        Meaningful for single-network runs.  Pipelines that spawn
        sub-networks on subgraphs (Theorems 1.2-1.4) accumulate violation
        counts against each sub-network's *own* (smaller-n) budget; judge
        such composed runs with :meth:`compliant_with` against the global
        graph's budget instead.
        """
        return self.bandwidth_limit is not None and self.bandwidth_violations == 0

    def compliant_with(self, n: int, factor: int = 32) -> bool:
        """Whether every message fits the budget of an ``n``-node CONGEST
        network — the right compliance question for composed pipelines."""
        return self.max_message_bits <= congest_bandwidth(n, factor)

    def merge_sequential(self, other: "RunMetrics") -> "RunMetrics":
        """Combine metrics of two phases run back to back."""
        merged = RunMetrics(
            rounds=self.rounds + other.rounds,
            total_messages=self.total_messages + other.total_messages,
            total_bits=self.total_bits + other.total_bits,
            max_message_bits=max(self.max_message_bits, other.max_message_bits),
            per_round_max_bits=self.per_round_max_bits + other.per_round_max_bits,
            bandwidth_limit=self.bandwidth_limit,
            bandwidth_violations=self.bandwidth_violations
            + other.bandwidth_violations,
        )
        return merged

    def summary(self) -> dict[str, int | bool | None]:
        """Flat dict of the headline counters (for records and asserts)."""
        return {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "bandwidth_limit": self.bandwidth_limit,
            "bandwidth_violations": self.bandwidth_violations,
        }
