"""Vectorized execution of schedule-driven algorithms (NumPy).

The reference simulator charges every message individually — perfect for
bit accounting, too slow for n in the hundreds of thousands.  For the
schedule-driven algorithms whose per-round behavior is a pure function of
(current colors, neighbor colors) — Linial's coloring and its defective
variant — this module provides a bit-for-bit equivalent vectorized engine:

* the **same schedule** (:func:`repro.algorithms.linial.linial_schedule`);
* the **same tie-breaking** (smallest evaluation point among minimal
  collision counts, which equals NumPy's first-occurrence ``argmin``);
* **synthesized metrics** identical to the reference run's (per round,
  every node messages every neighbor one current color of
  ``int_bits(m0-1)`` bits).

Equivalence is enforced by tests (`tests/test_vectorized.py`) that compare
outputs and metrics against :func:`repro.algorithms.linial.run_linial`
node for node.  Methodology per the HPC guides: the reference stays the
readable source of truth; the hot path is vectorized only after being
measured as the bottleneck for large-n experiments (E14).
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from ..core.coloring import ColoringResult
from .message import int_bits
from .metrics import RunMetrics, congest_bandwidth


def _edge_arrays(graph: nx.Graph) -> tuple[np.ndarray, np.ndarray, dict[int, int]]:
    """Directed edge arrays (both directions) over dense node indices."""
    nodes = sorted(graph.nodes)
    index = {v: i for i, v in enumerate(nodes)}
    m = graph.number_of_edges()
    src = np.empty(2 * m, dtype=np.int64)
    dst = np.empty(2 * m, dtype=np.int64)
    for k, (u, v) in enumerate(graph.edges):
        src[2 * k] = index[u]
        dst[2 * k] = index[v]
        src[2 * k + 1] = index[v]
        dst[2 * k + 1] = index[u]
    return src, dst, index


def _poly_digits(colors: np.ndarray, q: int, degree: int) -> np.ndarray:
    """Base-q digit matrix, shape (n, degree+1) — coefficient i in col i."""
    out = np.empty((colors.shape[0], degree + 1), dtype=np.int64)
    c = colors.copy()
    for i in range(degree + 1):
        out[:, i] = c % q
        c //= q
    return out


def _poly_eval_all(digits: np.ndarray, q: int) -> np.ndarray:
    """Evaluations at every x in F_q; shape (q, n).  Horner, vectorized."""
    n = digits.shape[0]
    xs = np.arange(q, dtype=np.int64)[:, None]  # (q, 1)
    acc = np.zeros((q, n), dtype=np.int64)
    for i in range(digits.shape[1] - 1, -1, -1):
        acc = (acc * xs + digits[None, :, i]) % q
    return acc


def linial_vectorized(
    graph: nx.Graph,
    initial_colors: dict[int, int] | None = None,
    defect: int = 0,
) -> tuple[ColoringResult, RunMetrics, int]:
    """Vectorized twin of :func:`repro.algorithms.linial.run_linial`.

    Returns the identical ``(coloring, metrics, palette)`` triple; see the
    module docstring for the equivalence contract.
    """
    from ..algorithms.linial import defective_schedule, linial_schedule

    nodes = sorted(graph.nodes)
    n = len(nodes)
    delta = max((d for _, d in graph.degree), default=0)
    if initial_colors is None:
        initial_colors = {v: i for i, v in enumerate(nodes)}
    m0 = max(initial_colors.values()) + 1 if initial_colors else 1
    sched = (
        linial_schedule(m0, delta)
        if defect == 0
        else defective_schedule(m0, delta, defect)
    )
    palette = sched[-1].out_colors if sched else m0

    src, dst, index = _edge_arrays(graph)
    colors = np.array([initial_colors[v] for v in nodes], dtype=np.int64)
    # match the reference driver's default CONGEST budget
    metrics = RunMetrics(bandwidth_limit=congest_bandwidth(n))
    bits = int_bits(max(1, m0 - 1))
    per_round_messages = src.shape[0]

    for step in sched:
        q, deg = step.q, step.deg
        digits = _poly_digits(colors, q, deg)
        evals = _poly_eval_all(digits, q)  # (q, n)
        # collision counts per (x, node): neighbors with equal evaluation
        hits = np.zeros((q, n), dtype=np.int64)
        if per_round_messages:
            matches = evals[:, src] == evals[:, dst]  # (q, 2m)
            for x in range(q):
                hits[x] = np.bincount(src, weights=matches[x], minlength=n)
        best_x = np.argmin(hits, axis=0)  # first occurrence = smallest x
        colors = best_x * q + evals[best_x, np.arange(n)]
        metrics.observe_uniform_round(per_round_messages, bits)

    assignment = {v: int(colors[index[v]]) for v in nodes}
    return ColoringResult(assignment), metrics, palette


def schedule_reduction_vectorized(
    graph: nx.Graph,
    schedule_colors: dict[int, int],
    palettes_size: int,
) -> tuple[ColoringResult, RunMetrics]:
    """Vectorized twin of the one-class-per-round list reduction
    (:class:`repro.algorithms.reduction.ScheduledListColoring` with the
    shared palette ``range(palettes_size)``).

    Class ``c`` picks in round ``c`` the smallest palette color unused by
    already-finalized neighbors and announces it the following round;
    metrics are synthesized to match the reference run exactly (each node
    sends its color once to every neighbor, one round after picking).
    """
    from .message import index_bits

    nodes = sorted(graph.nodes)
    n = len(nodes)
    index = {v: i for i, v in enumerate(nodes)}
    src, dst, _ = _edge_arrays(graph)
    cls = np.array([schedule_colors[v] for v in nodes], dtype=np.int64)
    final = np.full(n, -1, dtype=np.int64)
    taken = np.zeros((n, palettes_size), dtype=bool)
    bits = index_bits(max(2, palettes_size))
    metrics = RunMetrics(bandwidth_limit=congest_bandwidth(n))
    degree = np.zeros(n, dtype=np.int64)
    if src.shape[0]:
        degree = np.bincount(src, minlength=n)

    max_cls = int(cls.max()) if n else 0
    # messages in round r: announcements from the class that picked at r-1
    announce_counts = [0] * (max_cls + 2)
    for c in range(max_cls + 1):
        members = np.nonzero(cls == c)[0]
        if members.size:
            # pick smallest free color per member (argmax of ~taken)
            free = ~taken[members]
            picks = np.argmax(free, axis=1)
            final[members] = picks
            # mark neighbors
            member_set = np.zeros(n, dtype=bool)
            member_set[members] = True
            mask = member_set[src]
            np.add.at(
                taken, (dst[mask], final[src[mask]]), True
            )
            announce_counts[c + 1] = int(degree[members].sum())
    rounds_needed = max_cls + 2
    for r in range(rounds_needed):
        metrics.observe_uniform_round(announce_counts[r], bits)
    assignment = {v: int(final[index[v]]) for v in nodes}
    return ColoringResult(assignment), metrics


def classic_delta_plus_one_vectorized(
    graph: nx.Graph,
) -> tuple[ColoringResult, RunMetrics]:
    """Vectorized classic pipeline: Linial then the schedule reduction.

    Output-equivalent to
    :func:`repro.algorithms.reduction.classic_delta_plus_one` (tests
    compare node for node); usable at n in the hundreds of thousands.
    """
    pre, m1, _palette = linial_vectorized(graph)
    delta = max((d for _, d in graph.degree), default=0)
    res, m2 = schedule_reduction_vectorized(graph, pre.assignment, delta + 1)
    return res, m1.merge_sequential(m2)
