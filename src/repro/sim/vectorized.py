"""Vectorized fast paths for schedule-driven algorithms (NumPy).

The reference simulator charges every message individually — perfect for
bit accounting, too slow for n in the hundreds of thousands.  For the
schedule-driven algorithms whose per-round behavior is a pure function of
(current colors, neighbor colors), this module provides bit-for-bit
equivalent fast paths, all built on the shared CSR execution layer in
:mod:`repro.sim.engine`:

* :func:`linial_vectorized` — Linial's coloring and the [Kuh09] defective
  variant, on the **same schedule** and with the **same tie-breaking**
  (smallest evaluation point among minimal collision counts, which equals
  NumPy's first-occurrence ``argmin``) as the reference;
* :func:`schedule_reduction_vectorized` — the classic one-class-per-round
  list reduction;
* :func:`greedy_list_vectorized` — the sequential greedy of
  :func:`repro.algorithms.greedy.greedy_list_coloring` for zero-defect
  list instances, with O(deg) array work per node;
* :func:`defective_split_vectorized` — the defective-split decomposition
  step of :func:`repro.algorithms.defective.defective_class_partition`,
  with vectorized defect validation.

All fast paths synthesize metrics identical to the reference run's
(per round, every node messages every neighbor one current color).
Equivalence is enforced by tests (`tests/test_vectorized.py`) comparing
outputs and metrics against the reference implementations node for node.
Methodology per the HPC guides: the reference stays the readable source
of truth; the hot path is vectorized only after being measured as the
bottleneck for large-n experiments (E14).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
import networkx as nx

from ..core.coloring import ColoringResult
from .engine import (
    CSRGraph,
    collision_counts,
    equal_neighbor_counts,
    poly_digits,
    poly_eval_grid,
    ragged_lists,
    record_uniform_round,
    synthesized_metrics,
)
from .message import int_bits
from .metrics import RunMetrics
from .node import HaltingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> sim)
    from ..obs import RunRecorder


class _NullPhase:
    """No-op context manager used when no recorder/profiler is attached."""

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def _phase(recorder: "RunRecorder | None", name: str):
    """The recorder's profiler phase, or a no-op when unobserved."""
    return recorder.profiler.phase(name) if recorder is not None else _NullPhase()


def _edge_arrays(graph: nx.Graph) -> tuple[np.ndarray, np.ndarray, dict[int, int]]:
    """Directed edge arrays (both directions) over dense node indices.

    Backward-compatible wrapper over :class:`~repro.sim.engine.CSRGraph`;
    raises ``ValueError`` on directed inputs (a digraph used to be
    silently double-directed here).
    """
    csr = CSRGraph.from_networkx(graph)
    return csr.src, csr.indices, csr.index


def linial_vectorized(
    graph: nx.Graph,
    initial_colors: dict[int, int] | None = None,
    defect: int = 0,
    recorder: "RunRecorder | None" = None,
    faults=None,
    _finalize_recorder: bool = True,
    _csr: CSRGraph | None = None,
) -> tuple[ColoringResult, RunMetrics, int]:
    """Vectorized twin of :func:`repro.algorithms.linial.run_linial`.

    Returns the identical ``(coloring, metrics, palette)`` triple; see the
    module docstring for the equivalence contract.  ``recorder`` (a
    :class:`~repro.obs.RunRecorder`) additionally collects one
    observability row per schedule step — every node is active in every
    round, exactly as in the reference run — plus ``csr_build`` /
    ``schedule`` / ``rounds`` phase timings.  ``faults`` (a
    :class:`~repro.faults.FaultPlan`) switches to the mask-based faulty
    kernel, which replays the plan's exact message/crash schedule and is
    bit-for-bit equivalent to ``run_linial(..., faults=plan)`` — outputs,
    metrics, and the per-round fault column family all match (the
    standing cross-engine contract under fault injection).  ``_csr``
    (internal) lets a composing fast path reuse an already-built CSR of
    ``graph`` instead of freezing the topology twice.
    """
    from ..algorithms.linial import defective_schedule, linial_schedule

    with _phase(recorder, "csr_build"):
        csr = _csr if _csr is not None else CSRGraph.from_networkx(graph)
    n = csr.n
    delta = int(csr.degrees.max()) if n else 0
    if initial_colors is None:
        initial_colors = {v: i for i, v in enumerate(csr.nodes)}
    m0 = max(initial_colors.values()) + 1 if initial_colors else 1
    with _phase(recorder, "schedule"):
        sched = (
            linial_schedule(m0, delta)
            if defect == 0
            else defective_schedule(m0, delta, defect)
        )
    palette = sched[-1].out_colors if sched else m0

    colors = csr.gather(initial_colors)
    # match the reference driver's default CONGEST budget
    metrics = synthesized_metrics(n)
    bits = int_bits(max(1, m0 - 1))
    per_round_messages = csr.num_directed_edges

    if faults is not None:
        try:
            with _phase(recorder, "rounds"):
                colors = _linial_faulty_rounds(
                    csr, sched, colors, bits, faults, metrics, recorder
                )
        except HaltingError:
            # flush the partial per-round record before propagating —
            # the same post-mortem contract as SyncNetwork.run's halt path
            if recorder is not None:
                recorder.finalize(
                    metrics,
                    n=n,
                    m=csr.num_directed_edges // 2,
                    palette=palette,
                    algorithm=recorder.algorithm or "linial_vectorized",
                )
            raise
    else:
        with _phase(recorder, "rounds"):
            for step in sched:
                q, deg = step.q, step.deg
                digits = poly_digits(colors, q, deg)
                evals = poly_eval_grid(digits, q)  # (q, n)
                hits = collision_counts(csr, evals)  # (q, n) int64
                best_x = np.argmin(hits, axis=0)  # first occurrence = smallest x
                colors = best_x * q + evals[best_x, np.arange(n)]
                record_uniform_round(
                    metrics, recorder, per_round_messages, bits, active=n
                )

    result = ColoringResult(csr.scatter(colors))
    if recorder is not None and _finalize_recorder:
        recorder.finalize(
            metrics,
            n=n,
            m=csr.num_directed_edges // 2,
            palette=palette,
            algorithm=recorder.algorithm or "linial_vectorized",
        )
    return result, metrics, palette


def _linial_faulty_rounds(
    csr: CSRGraph,
    sched,
    colors: np.ndarray,
    bits: int,
    faults,
    metrics: RunMetrics,
    recorder: "RunRecorder | None",
) -> np.ndarray:
    """The mask-based faulty Linial round loop (see :func:`linial_vectorized`).

    Mirrors the reference simulator's delivery semantics edge for edge:
    transmissions are drawn from active+alive senders, fates come from the
    plan's vectorized hash (pinned equal to the scalar hash), delayed and
    duplicated copies sit in a per-round pending buffer whose stale
    entries are overwritten by fresher same-edge deliveries, deliveries to
    crashed receivers are discarded, and receivers decode only payloads
    inside their step's ``q^(deg+1)`` domain.  Nodes advance one schedule
    step per round they are up, so crash outages leave step *skew* —
    distinct steps are processed group by group, exactly like the
    per-node reference receive.
    """
    from ..faults.plan import (
        FATE_CORRUPT,
        FATE_DELAY,
        FATE_DELIVER,
        FATE_DROP,
        FATE_DUPLICATE,
        node_labels_u64,
    )
    from .node import HaltingError

    n = csr.n
    total_steps = len(sched)
    steps = np.zeros(n, dtype=np.int64)
    colors = colors.copy()
    labels = node_labels_u64(csr.nodes)
    src_labels = labels[csr.src]
    dst_labels = labels[csr.indices]
    num_edges = csr.num_directed_edges
    max_rounds = faults.round_budget(total_steps)
    # deliver_round -> [(edge indices, payload snapshot), ...] in the order
    # scheduled; later writes overwrite earlier ones like the reference's
    # sender-keyed inbox.
    pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}

    rnd = 0
    while bool((steps < total_steps).any()):
        if rnd >= max_rounds:
            unfinished = [
                csr.nodes[i] for i in np.nonzero(steps < total_steps)[0]
            ]
            raise HaltingError(rounds=rnd, unfinished=unfinished)
        alive = ~faults.crashed_mask(rnd, labels)
        active = steps < total_steps
        transmit = (active & alive)[csr.src]
        counts = dict.fromkeys(
            ("dropped", "corrupted", "delayed", "duplicated"), 0
        )
        counts["crashed"] = int(n - alive.sum())

        delivered = np.full(num_edges, -1, dtype=np.int64)
        for edge_idx, values in pending.pop(rnd, ()):
            delivered[edge_idx] = values
        if transmit.any():
            codes, delays = faults.edge_fates(rnd, src_labels, dst_labels)
            codes = np.where(transmit, codes, -1)
            payload = colors[csr.src]
            counts["dropped"] = int((codes == FATE_DROP).sum())
            counts["corrupted"] = int((codes == FATE_CORRUPT).sum())
            counts["delayed"] = int((codes == FATE_DELAY).sum())
            counts["duplicated"] = int((codes == FATE_DUPLICATE).sum())
            for code in (FATE_DELAY, FATE_DUPLICATE):
                idx = np.nonzero(codes == code)[0]
                for d in np.unique(delays[idx]):
                    sel = idx[delays[idx] == d]
                    pending.setdefault(rnd + int(d), []).append(
                        (sel, payload[sel].copy())
                    )
            now = (codes == FATE_DELIVER) | (codes == FATE_DUPLICATE)
            delivered[now] = payload[now]
            corrupt = codes == FATE_CORRUPT
            if corrupt.any():
                delivered[corrupt] = faults.corrupt_values(
                    rnd,
                    src_labels[corrupt],
                    dst_labels[corrupt],
                    payload[corrupt],
                )
        # deliveries (stale included) to crashed receivers are discarded
        delivered[~alive[csr.indices]] = -1

        receiving = active & alive
        new_colors = colors.copy()
        for s in np.unique(steps[receiving]):
            step = sched[s]
            q, deg = step.q, step.deg
            domain = q ** (deg + 1)
            group = receiving & (steps == s)
            own_evals = poly_eval_grid(poly_digits(colors, q, deg), q)  # (q, n)
            edge_ok = (
                group[csr.indices] & (delivered >= 0) & (delivered < domain)
            )
            hits = np.zeros((q, n), dtype=np.int64)
            if edge_ok.any():
                edge_dst = csr.indices[edge_ok]
                edge_evals = poly_eval_grid(
                    poly_digits(delivered[edge_ok], q, deg), q
                )  # (q, #ok)
                match = edge_evals == own_evals[:, edge_dst]
                for x in range(q):
                    hits[x] = np.bincount(edge_dst[match[x]], minlength=n)
            members = np.nonzero(group)[0]
            best_x = np.argmin(hits[:, members], axis=0)  # first occurrence
            new_colors[members] = best_x * q + own_evals[best_x, members]
        colors = new_colors
        steps[receiving] += 1

        record_uniform_round(
            metrics,
            recorder,
            int(transmit.sum()),
            bits,
            active=int(active.sum()),
            faults=counts,
        )
        rnd += 1
    return colors


def schedule_reduction_vectorized(
    graph: nx.Graph,
    schedule_colors: dict[int, int],
    palettes_size: int,
    recorder: "RunRecorder | None" = None,
    _finalize_recorder: bool = True,
) -> tuple[ColoringResult, RunMetrics]:
    """Vectorized twin of the one-class-per-round list reduction
    (:class:`repro.algorithms.reduction.ScheduledListColoring` with the
    shared palette ``range(palettes_size)``).

    Class ``c`` picks in round ``c`` the smallest palette color unused by
    already-finalized neighbors and announces it the following round;
    metrics are synthesized to match the reference run exactly (each node
    sends its color once to every neighbor, one round after picking).
    ``recorder`` rows carry the per-round uncolored count (nodes whose
    class has not picked yet).
    """
    from .message import index_bits

    with _phase(recorder, "csr_build"):
        csr = CSRGraph.from_networkx(graph)
    n = csr.n
    src, dst = csr.src, csr.indices
    cls = csr.gather(schedule_colors)
    final = np.full(n, -1, dtype=np.int64)
    taken = np.zeros((n, palettes_size), dtype=bool)
    bits = index_bits(max(2, palettes_size))
    metrics = synthesized_metrics(n)
    degree = csr.degrees

    max_cls = int(cls.max()) if n else 0
    # messages in round r: announcements from the class that picked at r-1
    announce_counts = [0] * (max_cls + 2)
    picked_counts = [0] * (max_cls + 2)  # nodes picking *in* round r
    with _phase(recorder, "rounds"):
        for c in range(max_cls + 1):
            members = np.nonzero(cls == c)[0]
            if members.size:
                # pick smallest free color per member (argmax of ~taken)
                free = ~taken[members]
                picks = np.argmax(free, axis=1)
                final[members] = picks
                # mark neighbors
                member_set = np.zeros(n, dtype=bool)
                member_set[members] = True
                mask = member_set[src]
                np.add.at(taken, (dst[mask], final[src[mask]]), True)
                announce_counts[c + 1] = int(degree[members].sum())
                picked_counts[c] = int(members.size)
        rounds_needed = max_cls + 2
        uncolored = n
        for r in range(rounds_needed):
            uncolored -= picked_counts[r]
            record_uniform_round(
                metrics, recorder, announce_counts[r], bits, uncolored=uncolored
            )
    result = ColoringResult(csr.scatter(final))
    if recorder is not None and _finalize_recorder:
        recorder.finalize(
            metrics,
            n=n,
            m=csr.num_directed_edges // 2,
            palette=palettes_size,
            algorithm=recorder.algorithm or "schedule_reduction_vectorized",
        )
    return result, metrics


def greedy_list_vectorized(
    instance,
    order: list[int] | None = None,
) -> ColoringResult:
    """Fast path for :func:`repro.algorithms.greedy.greedy_list_coloring`
    on **zero-defect** list instances (the (degree+1)-list case).

    Processes nodes in ``order`` (default: sorted node-label order, the
    reference greedy's default), each taking the first color of its list
    not held by an already-colored neighbor — the exact rule the reference
    greedy applies when every defect is zero, so the outputs match node
    for node (tested, including non-contiguous unsorted label regimes).
    Per-node work is O(deg) NumPy ops over the CSR arrays instead of the
    reference's repeated Python neighborhood scans.

    Raises ``ValueError`` on directed instances, on nonzero defects (the
    reference's budget semantics are inherently sequential), and when the
    greedy gets stuck.
    """
    if instance.directed:
        raise ValueError("greedy_list_vectorized expects an undirected instance")
    if any(d for dv in instance.defects.values() for d in dv.values()):
        raise ValueError(
            "greedy_list_vectorized handles zero-defect instances only; "
            "use repro.algorithms.greedy.greedy_list_coloring for defects"
        )
    csr = CSRGraph.from_networkx(instance.graph)
    list_indptr, list_values = ragged_lists(csr, instance.lists)
    final = np.full(csr.n, -1, dtype=np.int64)
    # Default order is *sorted node labels* — the reference greedy's
    # default — mapped through the label index, never raw dense positions:
    # the two only coincide while the CSR build happens to sort labels,
    # and the equivalence contract must not depend on that coincidence.
    dense_order = [
        csr.index[v] for v in (order if order is not None else sorted(csr.nodes))
    ]
    for i in dense_order:
        neigh_colors = final[csr.neighbors_of(i)]
        neigh_colors = neigh_colors[neigh_colors >= 0]
        lst = list_values[list_indptr[i] : list_indptr[i + 1]]
        free = lst[~np.isin(lst, neigh_colors)]
        if not free.size:
            raise ValueError(f"greedy stuck at node {csr.nodes[i]}")
        final[i] = free[0]
    return ColoringResult(csr.scatter(final))


def defective_split_vectorized(
    graph: nx.Graph,
    defect: int,
    validate: bool = True,
    recorder: "RunRecorder | None" = None,
) -> tuple[dict[int, int], RunMetrics, int]:
    """Fast path for the defective-split decomposition step
    (:func:`repro.algorithms.defective.defective_class_partition`).

    Returns the identical ``(classes, metrics, palette)`` triple: the
    class index of each node under a ``defect``-defective coloring, so
    each class induces a subgraph of maximum degree <= ``defect``
    (the graph-decomposition step of the Theorem 1.3 transformation).
    Validation is vectorized (per-node same-color neighbor counts via one
    integer bincount) instead of the reference's per-edge Python scan;
    with a ``recorder`` attached it is timed as a ``validate`` phase.

    The topology is frozen into a :class:`CSRGraph` exactly once: the same
    CSR drives the Linial run, the defect validation, and the finalized
    record's ``n``/``m`` (asserted against the run's own node/edge counts),
    so validation can never silently audit a different adjacency than the
    one the coloring was computed on.
    """
    if defect < 0:
        raise ValueError(f"defect must be >= 0, got {defect}")
    with _phase(recorder, "csr_build"):
        csr = CSRGraph.from_networkx(graph)
    result, metrics, palette = linial_vectorized(
        graph, defect=defect, recorder=recorder, _finalize_recorder=False, _csr=csr
    )
    if validate:
        with _phase(recorder, "validate"):
            colors = csr.gather(result.assignment)
            same = equal_neighbor_counts(csr, colors)
            if same.size and int(same.max()) > defect:
                bad = csr.nodes[int(np.argmax(same))]
                raise ValueError(
                    f"defective split invalid: node {bad} has {int(same.max())} "
                    f"same-class neighbors (allowed {defect})"
                )
    if recorder is not None:
        n, m = csr.n, csr.num_directed_edges // 2
        assert n == len(result.assignment) and m == graph.number_of_edges(), (
            "defective_split_vectorized: finalize n/m drifted from the run's CSR"
        )
        recorder.finalize(
            metrics,
            n=n,
            m=m,
            palette=palette,
            algorithm=recorder.algorithm or "defective_split_vectorized",
        )
    return dict(result.assignment), metrics, palette


def classic_delta_plus_one_vectorized(
    graph: nx.Graph,
    recorder: "RunRecorder | None" = None,
) -> tuple[ColoringResult, RunMetrics]:
    """Vectorized classic pipeline: Linial then the schedule reduction.

    Output-equivalent to
    :func:`repro.algorithms.reduction.classic_delta_plus_one` (tests
    compare node for node); usable at n in the hundreds of thousands.
    A ``recorder`` accumulates rows across both stages and is finalized
    once against the merged metrics.
    """
    pre, m1, _palette = linial_vectorized(
        graph, recorder=recorder, _finalize_recorder=False
    )
    delta = max((d for _, d in graph.degree), default=0)
    res, m2 = schedule_reduction_vectorized(
        graph, pre.assignment, delta + 1, recorder=recorder, _finalize_recorder=False
    )
    merged = m1.merge_sequential(m2)
    if recorder is not None:
        recorder.finalize(
            merged,
            n=graph.number_of_nodes(),
            m=graph.number_of_edges(),
            palette=delta + 1,
            algorithm=recorder.algorithm or "classic_vectorized",
        )
    return res, merged


# ----------------------------------------------------------------------
# FK24 simple iterative list-defective coloring
# ----------------------------------------------------------------------
#: Sentinel larger than any within-ragged-array position (first-viable scan).
_NO_CAND = np.int64(1) << np.int64(60)


def _fk24_candidates(
    counts: np.ndarray,
    owner: np.ndarray,
    list_indptr: np.ndarray,
    list_values: np.ndarray,
    defect_arr: np.ndarray,
    trying: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """First viable list color per trying node: ``(has_cand, cand_color)``.

    Position ``p`` (owned by node ``owner[p]``, carrying color
    ``list_values[p]``) is viable when at most ``defect`` known neighbors
    hold that color (``counts`` is the per-(node, color) knowledge
    matrix).  The candidate is the first viable position in the node's
    original list order — exactly the reference's ``for x in L_v`` scan.
    """
    n = list_indptr.shape[0] - 1
    total = list_values.shape[0]
    if total:
        viable = counts[owner, list_values] <= defect_arr[owner]
        masked = np.where(viable, np.arange(total, dtype=np.int64), _NO_CAND)
        # reduceat quirks: clip trailing starts into range and overwrite
        # empty segments (their reduceat slot holds a neighbor segment's
        # element) with the no-candidate sentinel
        starts = np.minimum(list_indptr[:-1], total - 1)
        first = np.minimum.reduceat(masked, starts)
        first[np.diff(list_indptr) == 0] = _NO_CAND
    else:
        first = np.full(n, _NO_CAND, dtype=np.int64)
    has_cand = trying & (first < _NO_CAND)
    cand_color = np.zeros(n, dtype=np.int64)
    cand_color[has_cand] = list_values[first[has_cand]]
    return has_cand, cand_color


def fk24_vectorized(
    graph: nx.Graph,
    lists=None,
    space_size: int | None = None,
    defect: int = 1,
    recorder: "RunRecorder | None" = None,
    faults=None,
    _finalize_recorder: bool = True,
    _csr: CSRGraph | None = None,
    adoption_out: dict | None = None,
) -> tuple[ColoringResult, RunMetrics, int]:
    """Vectorized twin of :func:`repro.algorithms.fk24.run_fk24`.

    Returns the identical ``(result, metrics, palette)`` triple —
    ``result.orientation`` orients monochromatic conflicts from later
    adopters to earlier ones, making the output a list arbdefective
    coloring — with per-round obs rows (message counts vary round to
    round as nodes adopt and halt, unlike the schedule-driven kernels).
    ``faults`` switches to the mask-based faulty kernel, bit-for-bit
    equivalent to ``run_fk24(..., faults=plan)`` including the fault
    column family and the (stretched) round budget, so a plan that
    livelocks the algorithm halts both engines with the identical
    :class:`~repro.sim.node.HaltingError`.  ``adoption_out``, if given,
    is filled with each node's adoption round.
    """
    from ..algorithms.fk24 import fk24_lists, fk24_round_budget
    from ..core.coloring import orientation_from_priority

    with _phase(recorder, "csr_build"):
        csr = _csr if _csr is not None else CSRGraph.from_networkx(graph)
    n = csr.n
    with _phase(recorder, "schedule"):
        if lists is None:
            lists, built_space = fk24_lists(graph, defect)
            if space_size is None:
                space_size = built_space
        lists = {v: tuple(lists[v]) for v in csr.nodes}
        if space_size is None:
            space_size = (
                max((max(lst) for lst in lists.values() if lst), default=0) + 1
            )
        space = int(space_size)
        list_indptr, list_values = ragged_lists(csr, lists)
        budget = fk24_round_budget(lists.values(), n)
    max_rounds = budget if faults is None else faults.round_budget(budget)
    bits = int_bits(max(1, 2 * space - 1))
    metrics = synthesized_metrics(n)

    try:
        with _phase(recorder, "rounds"):
            if faults is not None:
                colors, adopted = _fk24_faulty_rounds(
                    csr, list_indptr, list_values, space, int(defect),
                    bits, max_rounds, faults, metrics, recorder,
                )
            else:
                colors, adopted = _fk24_rounds(
                    csr, list_indptr, list_values, space, int(defect),
                    bits, max_rounds, metrics, recorder,
                )
    except HaltingError:
        # flush the partial per-round record before propagating — the
        # same post-mortem contract as SyncNetwork.run's halt path
        if recorder is not None:
            recorder.finalize(
                metrics,
                n=n,
                m=csr.num_directed_edges // 2,
                palette=space,
                algorithm=recorder.algorithm or "fk24_vectorized",
            )
        raise

    adoption = csr.scatter(adopted)
    if adoption_out is not None:
        adoption_out.update(adoption)
    result = ColoringResult(
        csr.scatter(colors), orientation_from_priority(graph, adoption)
    )
    if recorder is not None and _finalize_recorder:
        recorder.finalize(
            metrics,
            n=n,
            m=csr.num_directed_edges // 2,
            palette=space,
            algorithm=recorder.algorithm or "fk24_vectorized",
        )
    return result, metrics, space


def _fk24_rounds(
    csr: CSRGraph,
    list_indptr: np.ndarray,
    list_values: np.ndarray,
    space: int,
    defect: int,
    bits: int,
    max_rounds: int,
    metrics: RunMetrics,
    recorder: "RunRecorder | None",
) -> tuple[np.ndarray, np.ndarray]:
    """The fault-free FK24 round loop (see :func:`fk24_vectorized`).

    Per-node knowledge is a ``(n, space)`` counts matrix updated
    incrementally — valid because fault-free every adopter announces its
    color exactly once with guaranteed delivery, so per-sender knowledge
    equals the delivered-announcement multiset.  Candidate selection uses
    the counts as of the *end of the previous round* (the reference picks
    in ``send``); adoption re-checks against counts updated with this
    round's announcements plus same-round smaller-label rivals trying the
    same color (dense index order equals sorted label order, so the index
    comparison is the reference's ``u < view.id``).
    """
    n = csr.n
    status = np.zeros(n, dtype=np.int64)  # 0 trying, 1 announcing, 2 done
    colors = np.full(n, -1, dtype=np.int64)
    adopted = np.full(n, -1, dtype=np.int64)
    counts = np.zeros((n, max(1, space)), dtype=np.int64)
    owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(list_indptr))
    defect_arr = np.full(n, defect, dtype=np.int64)
    idx = np.arange(n, dtype=np.int64)

    rnd = 0
    while bool((status < 2).any()):
        if rnd >= max_rounds:
            unfinished = [csr.nodes[i] for i in np.nonzero(status < 2)[0]]
            raise HaltingError(rounds=rnd, unfinished=unfinished)
        trying = status == 0
        announcing = status == 1
        active_n = int((status < 2).sum())
        has_cand, cand_color = _fk24_candidates(
            counts, owner, list_indptr, list_values, defect_arr, trying
        )
        sending = has_cand | announcing
        msgs = int(csr.degrees[sending].sum())
        # this round's announcements update everyone's knowledge first
        took_edge = announcing[csr.src]
        if took_edge.any():
            np.add.at(
                counts,
                (csr.indices[took_edge], colors[csr.src[took_edge]]),
                1,
            )
        taken = np.zeros(n, dtype=np.int64)
        taken[has_cand] = counts[idx[has_cand], cand_color[has_cand]]
        conflict = (
            has_cand[csr.src]
            & has_cand[csr.indices]
            & (csr.src < csr.indices)
            & (cand_color[csr.src] == cand_color[csr.indices])
        )
        stronger = np.bincount(csr.indices[conflict], minlength=n)
        adopt = has_cand & (taken + stronger <= defect_arr)
        status[announcing] = 2
        status[adopt] = 1
        colors[adopt] = cand_color[adopt]
        adopted[adopt] = rnd
        record_uniform_round(metrics, recorder, msgs, bits, active=active_n)
        rnd += 1
    return colors, adopted


def _fk24_faulty_rounds(
    csr: CSRGraph,
    list_indptr: np.ndarray,
    list_values: np.ndarray,
    space: int,
    defect: int,
    bits: int,
    max_rounds: int,
    faults,
    metrics: RunMetrics,
    recorder: "RunRecorder | None",
) -> tuple[np.ndarray, np.ndarray]:
    """The mask-based faulty FK24 round loop (see :func:`fk24_vectorized`).

    Mirrors the reference simulator's delivery semantics edge for edge
    (same machinery as :func:`_linial_faulty_rounds`): transmissions come
    from active+alive senders, fates from the plan's vectorized hash,
    delayed/duplicated copies sit in a pending buffer overwritten by
    fresher same-edge deliveries, and deliveries to crashed receivers are
    discarded.  Knowledge is per directed edge (``know[e]`` = last
    decoded ``took`` color on ``e``) because under corruption a sender's
    announcement can differ per round — the counts matrix is adjusted
    incrementally as entries change.  Payloads encode ``tag * space +
    color``; decoders discard anything outside ``[0, 2 * space)`` exactly
    like the reference's inbox filter.
    """
    from ..faults.plan import (
        FATE_CORRUPT,
        FATE_DELAY,
        FATE_DELIVER,
        FATE_DROP,
        FATE_DUPLICATE,
        node_labels_u64,
    )

    n = csr.n
    num_edges = csr.num_directed_edges
    labels = node_labels_u64(csr.nodes)
    src_labels = labels[csr.src]
    dst_labels = labels[csr.indices]
    status = np.zeros(n, dtype=np.int64)
    colors = np.full(n, -1, dtype=np.int64)
    adopted = np.full(n, -1, dtype=np.int64)
    counts2d = np.zeros((n, max(1, space)), dtype=np.int64)
    know = np.full(num_edges, -1, dtype=np.int64)
    owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(list_indptr))
    defect_arr = np.full(n, defect, dtype=np.int64)
    idx = np.arange(n, dtype=np.int64)
    pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}

    rnd = 0
    while bool((status < 2).any()):
        if rnd >= max_rounds:
            unfinished = [csr.nodes[i] for i in np.nonzero(status < 2)[0]]
            raise HaltingError(rounds=rnd, unfinished=unfinished)
        alive = ~faults.crashed_mask(rnd, labels)
        trying = status == 0
        announcing = status == 1
        active = status < 2
        has_cand, cand_color = _fk24_candidates(
            counts2d, owner, list_indptr, list_values, defect_arr, trying
        )
        sending = (has_cand | announcing) & alive
        transmit = sending[csr.src]
        fcounts = dict.fromkeys(
            ("dropped", "corrupted", "delayed", "duplicated"), 0
        )
        fcounts["crashed"] = int(n - alive.sum())

        delivered = np.full(num_edges, -1, dtype=np.int64)
        for edge_idx, values in pending.pop(rnd, ()):
            delivered[edge_idx] = values
        if transmit.any():
            codes, delays = faults.edge_fates(rnd, src_labels, dst_labels)
            codes = np.where(transmit, codes, -1)
            payload = np.where(
                announcing[csr.src],
                space + colors[csr.src],
                cand_color[csr.src],
            )
            fcounts["dropped"] = int((codes == FATE_DROP).sum())
            fcounts["corrupted"] = int((codes == FATE_CORRUPT).sum())
            fcounts["delayed"] = int((codes == FATE_DELAY).sum())
            fcounts["duplicated"] = int((codes == FATE_DUPLICATE).sum())
            for code in (FATE_DELAY, FATE_DUPLICATE):
                eidx = np.nonzero(codes == code)[0]
                for d in np.unique(delays[eidx]):
                    sel = eidx[delays[eidx] == d]
                    pending.setdefault(rnd + int(d), []).append(
                        (sel, payload[sel].copy())
                    )
            now = (codes == FATE_DELIVER) | (codes == FATE_DUPLICATE)
            delivered[now] = payload[now]
            corrupt = codes == FATE_CORRUPT
            if corrupt.any():
                delivered[corrupt] = faults.corrupt_values(
                    rnd,
                    src_labels[corrupt],
                    dst_labels[corrupt],
                    payload[corrupt],
                )
        # deliveries (stale included) to crashed receivers are discarded
        delivered[~alive[csr.indices]] = -1

        # decode: know updates for this round's took deliveries, with the
        # counts matrix adjusted where an edge's knowledge changed
        took = (delivered >= space) & (delivered < 2 * space)
        tk = np.nonzero(took)[0]
        if tk.size:
            newv = delivered[tk] - space
            oldv = know[tk]
            chg = oldv != newv
            tk, newv, oldv = tk[chg], newv[chg], oldv[chg]
            dec = oldv >= 0
            if dec.any():
                np.add.at(
                    counts2d, (csr.indices[tk[dec]], oldv[dec]), -1
                )
            if tk.size:
                np.add.at(counts2d, (csr.indices[tk], newv), 1)
                know[tk] = newv
        is_try = (delivered >= 0) & (delivered < space)
        taken = np.zeros(n, dtype=np.int64)
        receiver_cand = has_cand & alive
        taken[receiver_cand] = counts2d[
            idx[receiver_cand], cand_color[receiver_cand]
        ]
        conflict = (
            is_try
            & receiver_cand[csr.indices]
            & (csr.src < csr.indices)
            & (delivered == cand_color[csr.indices])
        )
        stronger = np.bincount(csr.indices[conflict], minlength=n)
        adopt = receiver_cand & (taken + stronger <= defect_arr)
        status[announcing & alive] = 2
        status[adopt] = 1
        colors[adopt] = cand_color[adopt]
        adopted[adopt] = rnd
        record_uniform_round(
            metrics,
            recorder,
            int(transmit.sum()),
            bits,
            active=int(active.sum()),
            faults=fcounts,
        )
        rnd += 1
    return colors, adopted
